"""Tests for SSSP: Listing 4 parity, every policy/variant vs oracles."""

import numpy as np
import pytest

from repro.algorithms.sssp import sssp, sssp_async, sssp_delta_stepping
from repro.baselines import bellman_ford, dijkstra, nx_shortest_paths
from repro.errors import FrontierError
from repro.graph import from_edge_list
from repro.graph.generators import chain, erdos_renyi_gnp, grid_2d, rmat, star
from repro.types import INF


def assert_distances_match(result_dist, ref, atol=1e-2):
    ref = np.asarray(ref)
    finite = ref < 1e37
    assert np.allclose(
        np.asarray(result_dist)[finite], ref[finite], atol=atol
    ), "finite distances diverge"
    assert np.all(np.asarray(result_dist)[~finite] >= 1e37), (
        "unreachable vertices must stay at INF"
    )


class TestListing4Parity:
    """The exact worked example behavior from the paper."""

    def test_diamond_shortest_path(self, diamond_graph, policy):
        r = sssp(diamond_graph, 0, policy=policy)
        assert r.distances.tolist() == [0.0, 1.0, 4.0, 3.0]

    def test_initialization_contract(self, diamond_graph):
        """dist = FLT_MAX everywhere, 0 at source (Listing 4 init)."""
        r = sssp(diamond_graph, 3)  # vertex 3 has no out-edges
        assert r.distances[3] == 0.0
        assert np.all(r.distances[:3] == INF)

    def test_loop_converges_on_empty_frontier(self, diamond_graph):
        r = sssp(diamond_graph, 0)
        assert r.stats.converged
        # diamond: frontier {0} -> {1,2} -> {3} -> {} = 3 supersteps.
        assert r.stats.num_iterations == 3

    def test_source_out_of_range(self, diamond_graph):
        with pytest.raises(FrontierError):
            sssp(diamond_graph, 99)


class TestPolicyInvariance:
    """One algorithm text, four execution policies, identical answers."""

    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: grid_2d(10, 10, weighted=True, seed=1),
            lambda: rmat(8, 8, weighted=True, seed=2),
            lambda: erdos_renyi_gnp(150, 0.04, weighted=True, seed=3),
        ],
        ids=["grid", "rmat", "er"],
    )
    def test_matches_dijkstra(self, make_graph, policy):
        g = make_graph()
        r = sssp(g, 0, policy=policy)
        assert_distances_match(r.distances, dijkstra(g, 0))

    def test_without_frontier_dedup_still_correct(self, weighted_grid):
        r = sssp(weighted_grid, 0, deduplicate_frontier=False)
        assert_distances_match(r.distances, dijkstra(weighted_grid, 0))

    def test_dense_output_representation(self, weighted_grid):
        r = sssp(weighted_grid, 0, output_representation="dense")
        assert_distances_match(r.distances, dijkstra(weighted_grid, 0))


class TestAsyncSSSP:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_dijkstra(self, weighted_grid, workers):
        r = sssp_async(weighted_grid, 0, num_workers=workers, timeout=60)
        assert_distances_match(r.distances, dijkstra(weighted_grid, 0))

    def test_rmat(self, small_rmat):
        r = sssp_async(small_rmat, 0, num_workers=3, timeout=60)
        assert_distances_match(r.distances, dijkstra(small_rmat, 0))

    def test_isolated_source(self):
        g = from_edge_list([(1, 2, 1.0)], n_vertices=3)
        r = sssp_async(g, 0, timeout=10)
        assert r.distances[0] == 0.0
        assert r.distances[1] == INF


class TestDeltaStepping:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: grid_2d(12, 12, weighted=True, seed=4),
            lambda: rmat(8, 8, weighted=True, seed=5),
        ],
        ids=["grid", "rmat"],
    )
    def test_matches_dijkstra(self, make_graph):
        g = make_graph()
        r = sssp_delta_stepping(g, 0)
        assert_distances_match(r.distances, dijkstra(g, 0))

    @pytest.mark.parametrize("delta", [0.5, 2.0, 100.0])
    def test_any_delta_is_correct(self, weighted_grid, delta):
        """delta trades bucket count for work but never correctness.
        Huge delta degenerates to Bellman-Ford, tiny to Dijkstra."""
        r = sssp_delta_stepping(weighted_grid, 0, delta=delta)
        assert_distances_match(r.distances, dijkstra(weighted_grid, 0))

    def test_bucket_count_decreases_with_delta(self, weighted_grid):
        small = sssp_delta_stepping(weighted_grid, 0, delta=1.0)
        large = sssp_delta_stepping(weighted_grid, 0, delta=50.0)
        assert large.stats.num_iterations <= small.stats.num_iterations

    def test_invalid_delta_rejected(self, weighted_grid):
        with pytest.raises(ValueError):
            sssp_delta_stepping(weighted_grid, 0, delta=0.0)


class TestEdgeCases:
    def test_single_vertex(self):
        g = from_edge_list([], n_vertices=1)
        r = sssp(g, 0)
        assert r.distances.tolist() == [0.0]
        # Listing 4: `while (f.size() != 0)` runs one (empty) expand.
        assert r.stats.num_iterations == 1

    def test_disconnected(self, two_component_graph):
        r = sssp(two_component_graph, 0)
        assert r.distances[2] == 2.0  # unit weights
        assert r.distances[3] == INF
        assert r.reached().tolist() == [True, True, True, False, False]

    def test_star_single_superstep(self):
        g = star(50)
        r = sssp(g, 0)
        assert r.stats.num_iterations <= 2
        assert np.all(r.distances[1:] == 1.0)

    def test_chain_iteration_count_equals_length(self):
        g = chain(30, directed=True)
        r = sssp(g, 0)
        assert r.stats.num_iterations == 30  # 29 hops + final empty expand

    def test_unweighted_equals_bfs_hops(self, small_grid):
        from repro.baselines import sequential_bfs

        r = sssp(small_grid, 0)
        hops = sequential_bfs(small_grid, 0)
        assert np.array_equal(r.distances.astype(int), hops)

    def test_matches_bellman_ford(self, small_er):
        assert_distances_match(
            sssp(small_er, 0).distances, bellman_ford(small_er, 0)
        )

    def test_matches_networkx(self, weighted_grid):
        assert_distances_match(
            sssp(weighted_grid, 5).distances, nx_shortest_paths(weighted_grid, 5)
        )

    def test_stats_edges_touched_positive(self, weighted_grid):
        r = sssp(weighted_grid, 0)
        assert r.stats.total_edges_touched > 0
        assert r.stats.frontier_profile()[0] == 1  # starts with the source
