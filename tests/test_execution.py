"""Tests for execution policies, atomics, the thread pool, and the
asynchronous scheduler."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ExecutionPolicyError
from repro.execution import (
    AsyncScheduler,
    AtomicArray,
    ThreadPool,
    bulk_max_relax,
    bulk_min_relax,
    get_pool,
    par,
    par_nosync,
    par_vector,
    resolve_policy,
    seq,
)
from repro.execution.thread_pool import even_chunks


class TestPolicies:
    def test_unique_types(self):
        types = {type(p) for p in (seq, par, par_nosync, par_vector)}
        assert len(types) == 4

    def test_synchronization_contracts(self):
        assert seq.synchronous and not seq.parallel
        assert par.synchronous and par.parallel
        assert not par_nosync.synchronous and par_nosync.parallel
        assert par_vector.synchronous and par_vector.parallel

    def test_with_workers_preserves_type(self):
        tuned = par.with_workers(3)
        assert type(tuned) is type(par)
        assert tuned.num_workers == 3
        assert par.num_workers is None  # original untouched

    def test_with_chunk_size_and_load_balance(self):
        tuned = par.with_chunk_size(64).with_load_balance("edge")
        assert tuned.chunk_size == 64
        assert tuned.load_balance == "edge"

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ExecutionPolicyError):
            par.with_workers(0)
        with pytest.raises(ExecutionPolicyError):
            par.with_chunk_size(0)
        with pytest.raises(ExecutionPolicyError):
            par.with_load_balance("magic")

    def test_resolve_by_name(self):
        assert resolve_policy("seq") is seq
        assert resolve_policy("par_vector") is par_vector
        assert resolve_policy(par) is par

    def test_resolve_unknown_rejected(self):
        with pytest.raises(ExecutionPolicyError):
            resolve_policy("warp")
        with pytest.raises(ExecutionPolicyError):
            resolve_policy(42)

    def test_repr_contains_name(self):
        assert "par_nosync" in repr(par_nosync)


class TestAtomicArray:
    def test_min_at_returns_old(self):
        a = AtomicArray(np.array([5.0, 2.0]))
        assert a.min_at(0, 3.0) == 5.0
        assert a.array[0] == 3.0
        assert a.min_at(0, 9.0) == 3.0  # no change
        assert a.array[0] == 3.0

    def test_max_at(self):
        a = AtomicArray(np.array([1.0]))
        assert a.max_at(0, 5.0) == 1.0
        assert a.array[0] == 5.0

    def test_add_at(self):
        a = AtomicArray(np.array([10.0]))
        assert a.add_at(0, 2.5) == 10.0
        assert a.array[0] == 12.5

    def test_compare_exchange(self):
        a = AtomicArray(np.array([7.0]))
        ok, seen = a.compare_exchange(0, 7.0, 1.0)
        assert ok and seen == 7.0
        ok, seen = a.compare_exchange(0, 7.0, 2.0)
        assert not ok and seen == 1.0

    def test_load_store(self):
        a = AtomicArray(np.zeros(3))
        a.store(1, 4.0)
        assert a.load(1) == 4.0

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            AtomicArray(np.zeros((2, 2)))

    def test_concurrent_min_is_linearizable(self):
        """N threads racing atomic::min must leave the global minimum."""
        values = np.full(8, 1e9)
        a = AtomicArray(values, n_stripes=4)
        rng = np.random.default_rng(0)
        samples = rng.random((8, 200)) * 1000

        def worker(tid):
            for i in range(8):
                for x in samples[i]:
                    a.min_at(i, float(x))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert np.allclose(values, samples.min(axis=1))

    def test_concurrent_add_conserves_total(self):
        a = AtomicArray(np.zeros(1))

        def worker():
            for _ in range(1000):
                a.add_at(0, 1.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert a.array[0] == 4000.0


class TestBulkRelax:
    def test_min_relax_improvement_mask(self):
        vals = np.array([10.0, 10.0])
        improved = bulk_min_relax(vals, np.array([0, 1]), np.array([5.0, 20.0]))
        assert improved.tolist() == [True, False]
        assert vals.tolist() == [5.0, 10.0]

    def test_duplicate_indices_apply_sequentially(self):
        vals = np.array([10.0])
        improved = bulk_min_relax(
            vals, np.array([0, 0]), np.array([7.0, 4.0])
        )
        # Both compare against the pre-batch value (GPU atomic semantics).
        assert improved.tolist() == [True, True]
        assert vals[0] == 4.0

    def test_max_relax(self):
        vals = np.array([1.0, 5.0])
        raised = bulk_max_relax(vals, np.array([0, 1]), np.array([3.0, 2.0]))
        assert raised.tolist() == [True, False]
        assert vals.tolist() == [3.0, 5.0]

    def test_empty_batch(self):
        vals = np.array([1.0])
        out = bulk_min_relax(vals, np.array([], dtype=int), np.array([]))
        assert out.size == 0


class TestThreadPool:
    def test_even_chunks_cover_range(self):
        chunks = even_chunks(10, 3)
        assert chunks == [(0, 4), (4, 7), (7, 10)]
        assert even_chunks(2, 5) == [(0, 1), (1, 2)]
        assert even_chunks(0, 3) == []

    def test_parallel_for_barrier_and_results(self):
        pool = ThreadPool(4)
        out = pool.parallel_for(1000, lambda s, e: sum(range(s, e)))
        assert sum(out) == sum(range(1000))
        pool.shutdown()

    def test_parallel_for_exception_propagates(self):
        pool = ThreadPool(2)

        def boom(s, e):
            raise ValueError("kaboom")

        with pytest.raises(ValueError, match="kaboom"):
            pool.parallel_for(10, boom)
        pool.shutdown()

    def test_run_tasks(self):
        pool = get_pool(2)
        assert pool.run_tasks([lambda: 1, lambda: 2]) == [1, 2]

    def test_get_pool_caches(self):
        assert get_pool(3) is get_pool(3)

    def test_empty_work(self):
        assert get_pool(2).parallel_for(0, lambda s, e: None) == []
        assert get_pool(2).run_tasks([]) == []


class TestAsyncScheduler:
    def test_processes_all_spawned_work(self):
        sched = AsyncScheduler(3)
        seen = []
        lock = threading.Lock()

        def process(item, push):
            with lock:
                seen.append(item)
            if item < 50:
                push(item + 10)

        total = sched.run(process, [0, 1, 2], 1000, timeout=10)
        assert total == len(seen)
        # 0,1,2 -> chains +10 until >= 50: 6 items per seed.
        assert sorted(seen) == sorted(
            s + 10 * k for s in (0, 1, 2) for k in range(6)
        )

    def test_empty_initial_returns_immediately(self):
        sched = AsyncScheduler(2)
        assert sched.run(lambda i, push: None, [], 10, timeout=5) == 0

    def test_worker_exception_propagates(self):
        sched = AsyncScheduler(2)

        def process(item, push):
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            sched.run(process, [1], 10, timeout=5)

    def test_no_barriers_between_items(self):
        """Items spawned late must be processable while early items are
        still in flight — i.e. makespan is bounded by the chain, not by
        supersteps.  We verify the chain 0->1->...->9 completes even
        though each item is only enqueued by its predecessor."""
        sched = AsyncScheduler(2)
        seen = []
        lock = threading.Lock()

        def process(item, push):
            with lock:
                seen.append(item)
            if item < 9:
                push(item + 1)

        sched.run(process, [0], 100, timeout=10)
        assert seen == list(range(10))

    def test_invalid_workers_rejected(self):
        with pytest.raises(ExecutionPolicyError):
            AsyncScheduler(0)
