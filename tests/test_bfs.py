"""Tests for BFS: push, pull, direction-optimized; parents; profiles."""

import numpy as np
import pytest

from repro.algorithms.bfs import UNREACHED, bfs, bfs_levels_by_superstep
from repro.baselines import nx_bfs_levels, sequential_bfs
from repro.graph import from_edge_list
from repro.graph.generators import binary_tree, chain, grid_2d, rmat, star
from repro.types import INVALID_VERTEX

DIRECTIONS = ["push", "pull", "auto"]


class TestCorrectness:
    @pytest.mark.parametrize("direction", DIRECTIONS)
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: binary_tree(5),
            lambda: grid_2d(12, 12),
            lambda: rmat(8, 8, seed=1),
        ],
        ids=["tree", "grid", "rmat"],
    )
    def test_levels_match_reference(self, make_graph, direction):
        g = make_graph()
        r = bfs(g, 0, direction=direction)
        assert np.array_equal(r.levels, sequential_bfs(g, 0))

    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_levels_match_networkx(self, small_ws, direction):
        r = bfs(small_ws, 3, direction=direction)
        assert np.array_equal(r.levels, nx_bfs_levels(small_ws, 3))

    @pytest.mark.parametrize("direction", DIRECTIONS)
    def test_policy_invariance(self, small_rmat, direction, policy):
        r = bfs(small_rmat, 0, direction=direction, policy=policy)
        assert np.array_equal(r.levels, sequential_bfs(small_rmat, 0))


class TestParents:
    def test_parent_tree_is_consistent(self, small_grid):
        r = bfs(small_grid, 0)
        for v in range(small_grid.n_vertices):
            if r.levels[v] > 0:
                p = int(r.parents[v])
                assert p != INVALID_VERTEX
                assert r.levels[p] == r.levels[v] - 1
                assert small_grid.has_edge(p, v)

    def test_source_is_own_parent(self, small_grid):
        r = bfs(small_grid, 0)
        assert r.parents[0] == 0

    def test_unreached_have_no_parent(self, two_component_graph):
        r = bfs(two_component_graph, 0)
        assert r.parents[3] == INVALID_VERTEX
        assert r.levels[3] == UNREACHED


class TestDirectionOptimized:
    def test_switches_to_pull_on_wide_frontier(self):
        g = binary_tree(9)  # frontier doubles per level -> crosses 5%
        r = bfs(g, 0, direction="auto")
        assert "pull" in r.directions
        assert r.directions[0] == "push"  # single-source start is narrow

    def test_stays_push_on_narrow_frontier(self):
        g = chain(60)
        r = bfs(g, 0, direction="auto")
        assert all(d == "push" for d in r.directions)

    def test_thresholds_configurable(self):
        g = binary_tree(6)
        eager = bfs(g, 0, direction="auto", pull_threshold=0.01)
        lazy = bfs(g, 0, direction="auto", pull_threshold=0.99)
        assert eager.directions.count("pull") >= lazy.directions.count("pull")
        assert np.array_equal(eager.levels, lazy.levels)

    def test_fixed_direction_records_nothing(self, small_grid):
        assert bfs(small_grid, 0, direction="push").directions == []

    def test_bad_direction_rejected(self, small_grid):
        with pytest.raises(ValueError):
            bfs(small_grid, 0, direction="both")


class TestShapes:
    def test_binary_tree_one_level_per_superstep(self):
        depth = 6
        g = binary_tree(depth)
        r = bfs(g, 0)
        assert r.stats.num_iterations == depth + 1  # +1 empty-terminator
        profile = bfs_levels_by_superstep(r)
        assert profile == {k: 2**k for k in range(depth + 1)}

    def test_star_two_supersteps(self):
        r = bfs(star(100), 0)
        assert r.stats.num_iterations <= 2
        assert np.all(r.levels[1:] == 1)

    def test_chain_diameter_supersteps(self):
        n = 40
        r = bfs(chain(n), 0)
        assert r.stats.num_iterations == n  # n-1 hops + empty expand
        assert r.levels[n - 1] == n - 1

    def test_frontier_profile_is_bell_curve_on_grid(self):
        r = bfs(grid_2d(20, 20), 0)
        sizes = [s.frontier_size for s in r.stats.iterations]
        peak = int(np.argmax(sizes))
        assert 0 < peak < len(sizes) - 1  # grows then shrinks


class TestEdgeCases:
    def test_isolated_source(self):
        g = from_edge_list([(1, 2)], n_vertices=3)
        r = bfs(g, 0)
        assert r.levels.tolist() == [0, -1, -1]

    def test_self_loop_harmless(self):
        g = from_edge_list([(0, 0), (0, 1)], n_vertices=2)
        r = bfs(g, 0)
        assert r.levels.tolist() == [0, 1]

    def test_directed_unreachability(self):
        g = from_edge_list([(1, 0)], n_vertices=2)
        r = bfs(g, 0)
        assert r.levels.tolist() == [0, -1]
