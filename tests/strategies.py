"""Shared hypothesis strategies: graphs, frontiers, and vertex lists.

One place to grow adversarial structure generation instead of each
property-test module hand-rolling its own edge lists.  The graph
strategy deliberately covers the same pathologies as the conformance
pool (``repro.verify.graph_pool``): self-loops, parallel edges,
isolated vertices, empty graphs — hypothesis then *shrinks* any failure
to the smallest graph exhibiting it, which the fixed pool cannot do.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graph import from_edge_array
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE


def vertex_ids(n_vertices: int):
    """Ids valid for a graph/frontier with ``n_vertices`` slots."""
    return st.integers(min_value=0, max_value=n_vertices - 1)


def vertex_lists(n_vertices: int, *, max_size: int = 200):
    """Lists of in-range vertex ids (duplicates allowed, any order)."""
    return st.lists(vertex_ids(n_vertices), max_size=max_size)


def edge_weights(*, min_value: float = 0.5, max_value: float = 9.5):
    """Finite nonnegative float weights in a comparison-friendly band."""
    return st.floats(
        min_value, max_value, allow_nan=False, allow_infinity=False
    )


@st.composite
def graphs(
    draw,
    *,
    n_vertices: int = 16,
    max_edges: int = 50,
    directed: bool = True,
    weighted: bool = True,
    allow_self_loops: bool = True,
    min_weight: float = 0.5,
    max_weight: float = 9.5,
):
    """An arbitrary small graph as a built :class:`repro.graph.Graph`.

    Self-loops and parallel edges are generated (and shrunk) naturally
    unless excluded; the empty graph is the minimal shrink target.
    """
    n_edges = draw(st.integers(0, max_edges))
    srcs = draw(
        st.lists(
            vertex_ids(n_vertices), min_size=n_edges, max_size=n_edges
        )
    )
    dsts = draw(
        st.lists(
            vertex_ids(n_vertices), min_size=n_edges, max_size=n_edges
        )
    )
    if not allow_self_loops:
        dsts = [
            (d + 1) % n_vertices if s == d else d
            for s, d in zip(srcs, dsts)
        ]
        if n_vertices == 1:
            srcs, dsts = [], []
    weights = None
    if weighted:
        weights = np.asarray(
            draw(
                st.lists(
                    edge_weights(
                        min_value=min_weight, max_value=max_weight
                    ),
                    min_size=len(srcs),
                    max_size=len(srcs),
                )
            ),
            dtype=WEIGHT_DTYPE,
        )
    return from_edge_array(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        weights,
        n_vertices=n_vertices,
        directed=directed,
    )


@st.composite
def graphs_with_frontier(
    draw,
    *,
    n_vertices: int = 16,
    max_edges: int = 50,
    max_frontier: int = 20,
    **graph_kwargs,
):
    """A graph plus a list of frontier vertex ids (dups allowed)."""
    graph = draw(
        graphs(n_vertices=n_vertices, max_edges=max_edges, **graph_kwargs)
    )
    frontier_ids = draw(
        vertex_lists(n_vertices, max_size=max_frontier)
    )
    return graph, frontier_ids


@st.composite
def graphs_with_source(
    draw, *, n_vertices: int = 16, max_edges: int = 50, **graph_kwargs
):
    """A graph plus a valid source vertex (for rooted traversals)."""
    graph = draw(
        graphs(n_vertices=n_vertices, max_edges=max_edges, **graph_kwargs)
    )
    source = draw(vertex_ids(n_vertices))
    return graph, source
