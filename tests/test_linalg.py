"""The linear-algebra backend: semirings, kernels, dispatch, conformance.

Three load-bearing tests live here.  The *planted-bug* test swaps the
(min, +) semiring's additive identity for a wrong one and asserts the
conformance matrix catches it on the linalg axis — the whole point of
adding ``backend`` as a seventh axis is that algebra bugs are caught
mechanically, and a harness that cannot see a planted one is a no-op.
The *semiring/enactor cross-check* proves the algebra the kernels fold
with is the same algebra the native enactor reduces with (identities
and all).  The *scipy gating* tests run every kernel under both the
scipy fast path and the forced pure-NumPy reference and demand
identical results — the path CI locks in by uninstalling scipy.
"""

import numpy as np
import pytest

from repro.execution.backend import (
    BACKENDS,
    LINALG_ALGORITHMS,
    resolve_backend,
    supports,
)
from repro.graph import from_edge_array
from repro.graph.generators import rmat
from repro.linalg import (
    MIN_PLUS,
    MIN_SELECT,
    OR_AND,
    PLUS_TIMES,
    SEMIRINGS,
    Semiring,
    force_numpy,
    resolve_semiring,
    scipy_available,
    semiring_names,
    spmspv,
    spmv,
)
from repro.observability.probe import Probe
from repro.operators.reduce import reduce_values
from repro.operators.segmented import segmented_neighbor_reduce


def small_graph():
    """A weighted digraph with a self-loop, parallel edges, an isolated
    vertex (6), and a dangling sink (5)."""
    srcs = [0, 0, 0, 1, 2, 2, 3, 4, 4]
    dsts = [1, 2, 2, 3, 3, 2, 4, 5, 5]
    wts = [1.0, 4.0, 2.5, 1.0, 0.5, 3.0, 2.0, 1.5, 2.0]
    return from_edge_array(srcs, dsts, wts, n_vertices=7)


#: Runs each test once per kernel path; the scipy case skips itself
#: when the import is genuinely unavailable (the no-scipy CI job).
@pytest.fixture(params=["numpy", "scipy"])
def kernel_path(request):
    if request.param == "scipy":
        if not scipy_available():
            pytest.skip("scipy not importable (or gated off)")
        yield "scipy"
    else:
        with force_numpy():
            yield "numpy"


# -- semirings ----------------------------------------------------------------


def test_registry_and_resolution():
    assert set(semiring_names()) == {"min_plus", "or_and", "plus_times"}
    assert resolve_semiring("min_plus") is MIN_PLUS
    assert resolve_semiring(PLUS_TIMES) is PLUS_TIMES
    with pytest.raises(KeyError):
        resolve_semiring("max_times")


def test_zeros_holds_the_additive_identity():
    assert np.all(np.isinf(MIN_PLUS.zeros(4)))
    assert OR_AND.zeros(4).dtype == bool and not OR_AND.zeros(4).any()
    assert np.all(PLUS_TIMES.zeros(4) == 0.0)
    assert np.all(np.isinf(MIN_SELECT.zeros(4)))


def test_semiring_identities_match_enactor_reductions():
    """⊕ identity == what the enactor's empty reduction returns.

    The kernels fill untouched outputs with ``add_identity``; the native
    enactor fills no-neighbor vertices with its op identity.  If these
    ever diverge the two backends disagree on exactly the vertices no
    edge reaches.
    """
    empty = np.empty(0)
    assert reduce_values("par_vector", empty, op="min") == MIN_PLUS.add_identity
    assert reduce_values("par_vector", empty, op="sum") == PLUS_TIMES.add_identity
    rng = np.random.default_rng(7)
    vals = rng.random(64)
    assert MIN_PLUS.add.reduce(vals) == reduce_values("par_vector", vals, op="min")
    assert np.isclose(
        PLUS_TIMES.add.reduce(vals), reduce_values("par_vector", vals, op="sum")
    )


@pytest.mark.parametrize(
    "semiring,op,transform",
    [
        (MIN_PLUS, "min", lambda vals, w: vals + w),
        (PLUS_TIMES, "sum", lambda vals, w: vals * w),
    ],
)
def test_pull_spmv_equals_segmented_neighbor_reduce(semiring, op, transform):
    """Transposed SpMV == the enactor's in-direction segmented fold."""
    graph = small_graph()
    rng = np.random.default_rng(3)
    x = rng.random(graph.n_vertices)
    with force_numpy():
        got = spmv(graph, x, semiring=semiring, transpose=True)
    want = segmented_neighbor_reduce(
        "par_vector", graph, x, op=op, direction="in", edge_transform=transform
    )
    np.testing.assert_allclose(got, want, rtol=1e-12)


# -- kernels under both paths -------------------------------------------------


def test_spmv_same_result_on_both_paths(kernel_path):
    graph = rmat(8, 8, weighted=True, seed=5)
    x = np.random.default_rng(0).random(graph.n_vertices)
    y = spmv(graph, x)
    with force_numpy():
        reference = spmv(graph, x)
    np.testing.assert_allclose(y, reference, rtol=1e-9)


def test_spmv_rejects_bad_shapes():
    graph = small_graph()
    with pytest.raises(ValueError):
        spmv(graph, np.zeros(3))
    with pytest.raises(ValueError):
        spmv(graph, np.zeros(graph.n_vertices), mask=np.zeros(2, dtype=bool))


def test_masked_spmv_touches_only_selected_rows(kernel_path):
    graph = small_graph()
    n = graph.n_vertices
    x = np.arange(n, dtype=np.float64)
    mask = np.zeros(n, dtype=bool)
    mask[[2, 3]] = True
    y = spmv(graph, x, mask=mask)
    full = spmv(graph, x)
    np.testing.assert_allclose(y[[2, 3]], full[[2, 3]])
    outside = np.setdiff1d(np.arange(n), [2, 3])
    assert np.all(y[outside] == PLUS_TIMES.add_identity)
    # Complement selects exactly the other rows.
    yc = spmv(graph, x, mask=mask, complement=True)
    np.testing.assert_allclose(yc[outside], full[outside])
    assert np.all(yc[[2, 3]] == PLUS_TIMES.add_identity)


def test_spmspv_empty_frontier_returns_identities(kernel_path):
    graph = small_graph()
    y, touched = spmspv(
        graph, np.empty(0, dtype=np.int64), np.zeros(graph.n_vertices)
    )
    assert touched.size == 0
    assert np.all(y == PLUS_TIMES.add_identity)


def test_spmspv_output_mask_drops_contributions(kernel_path):
    graph = small_graph()
    n = graph.n_vertices
    x = np.ones(n)
    visited = np.zeros(n, dtype=bool)
    visited[2] = True
    y, touched = spmspv(
        graph, np.asarray([0]), x, mask=visited, complement=True
    )
    assert 2 not in touched
    assert y[2] == PLUS_TIMES.add_identity
    # Unmasked, vertex 2 receives both parallel edges' mass (4.0 + 2.5).
    y_all, touched_all = spmspv(graph, np.asarray([0]), x)
    assert 2 in touched_all
    assert np.isclose(y_all[2], 6.5)


def test_scipy_gating_env_and_context(monkeypatch):
    if not scipy_available():
        pytest.skip("scipy not importable")
    with force_numpy():
        assert not scipy_available()
        with force_numpy():  # nesting
            assert not scipy_available()
        assert not scipy_available()
    assert scipy_available()
    monkeypatch.setenv("REPRO_NO_SCIPY", "1")
    assert not scipy_available()


# -- backend dispatch ---------------------------------------------------------


def test_resolve_backend_table():
    assert resolve_backend(None, "sssp") == "native"
    assert resolve_backend("native", "sssp") == "native"
    assert resolve_backend("linalg", "sssp") == "linalg"
    assert resolve_backend("auto", "pagerank") == "linalg"
    assert resolve_backend("auto", "astar") == "native"
    assert supports("linalg", "bfs")
    assert not supports("linalg", "astar")
    assert "native" in BACKENDS and "linalg" in BACKENDS


def test_unknown_backend_raises_through_the_entry_point():
    from repro.algorithms import sssp

    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("cuda", "sssp")
    with pytest.raises(ValueError, match="unknown backend"):
        sssp(small_graph(), 0, backend="cuda")


def test_linalg_fallback_emits_probe_event_and_counter():
    probe = Probe(trace=True)
    with probe:
        with probe.span("test"):
            assert resolve_backend("linalg", "astar") == "native"
    assert probe.metrics.counter("backend.fallbacks").value == 1
    # "auto" degrades silently: no second increment.
    with probe:
        with probe.span("test"):
            assert resolve_backend("auto", "astar") == "native"
    assert probe.metrics.counter("backend.fallbacks").value == 1


def test_every_linalg_algorithm_is_dispatchable():
    assert LINALG_ALGORITHMS == {
        "bfs", "sssp", "cc", "pagerank", "ppr", "hits", "spmv", "spgemm"
    }


# -- end-to-end equivalence through the entry points --------------------------


def test_entry_points_agree_across_backends(kernel_path):
    from repro.algorithms import bfs, connected_components, pagerank, sssp
    from repro.algorithms.spmv import spmv as spmv_algo

    graph = rmat(8, 8, weighted=True, seed=11)
    np.testing.assert_array_equal(
        bfs(graph, 0, backend="linalg").levels, bfs(graph, 0).levels
    )
    np.testing.assert_allclose(
        sssp(graph, 0, backend="linalg").distances,
        sssp(graph, 0).distances,
        rtol=1e-5,
    )
    # Same partition (labels are canonical-representative choices).
    got_labels = connected_components(graph, backend="linalg").labels
    want_labels = connected_components(graph).labels
    _, got_canon = np.unique(got_labels, return_inverse=True)
    _, want_canon = np.unique(want_labels, return_inverse=True)
    np.testing.assert_array_equal(got_canon, want_canon)
    np.testing.assert_allclose(
        pagerank(graph, backend="linalg").ranks,
        pagerank(graph).ranks,
        rtol=1e-6,
    )
    x = np.random.default_rng(2).random(graph.n_vertices)
    np.testing.assert_allclose(
        spmv_algo(graph, x, backend="linalg"), spmv_algo(graph, x), rtol=1e-9
    )


def test_spgemm_backends_agree(kernel_path):
    from repro.algorithms.spgemm import spgemm

    graph = rmat(6, 8, weighted=True, seed=3)
    native = spgemm(graph, graph)
    linalg = spgemm(graph, graph, backend="linalg")

    def entries(g):
        coo = g.coo()
        return {
            (int(r), int(c)): float(v)
            for r, c, v in zip(coo.rows, coo.cols, coo.vals)
            if v != 0
        }
    got, want = entries(linalg), entries(native)
    assert got.keys() == want.keys()
    for key, val in want.items():
        assert got[key] == pytest.approx(val, rel=1e-4, abs=1e-3)


# -- the planted bug ----------------------------------------------------------


def test_matrix_catches_wrong_identity_semiring(monkeypatch):
    """A (min, +) semiring with identity 0 collapses every distance to 0;
    the linalg axis of the conformance matrix must notice."""
    import repro.linalg.algorithms as linalg_algos
    from repro.verify import run_matrix

    broken = Semiring(
        name="min_plus_broken",
        add=np.minimum,
        multiply=lambda x, w: x + w,
        add_identity=0.0,  # the bug: ⊕ identity of min is +inf, not 0
    )
    monkeypatch.setattr(linalg_algos, "MIN_PLUS", broken)
    report = run_matrix(
        seed=0,
        quick=True,
        algos=["sssp"],
        graphs=["chain32", "star16"],
        backends=["linalg"],
    )
    assert report.cells_run > 0
    assert not report.ok, "planted wrong-identity semiring went undetected"
    assert all(m.cell.variant.backend == "linalg" for m in report.mismatches)
    assert any("--backend linalg" in m.repro for m in report.mismatches)


def test_matrix_linalg_axis_is_clean_when_unbroken():
    from repro.verify import run_matrix

    report = run_matrix(
        seed=0,
        quick=True,
        algos=["sssp", "bfs", "pagerank"],
        graphs=["chain32", "multiedge4", "selfloops4"],
        backends=["linalg"],
    )
    assert report.ok, [m.detail for m in report.mismatches]
    assert report.cells_run > 0
