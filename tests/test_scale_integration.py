"""At-scale integration: the vectorized pipeline on 100k+ edge graphs.

The unit suite runs on small graphs; this file pushes the
vectorized-policy algorithms through scale-13 workloads to catch O(n²)
regressions and int32 overflow-type bugs that tiny graphs never see.
Kept under ~30s by using only the bulk code paths.
"""

import numpy as np
import pytest

from repro.algorithms import (
    bfs,
    connected_components,
    kcore_decomposition,
    pagerank,
    sssp,
)
from repro.graph.generators import grid_2d, rmat


@pytest.fixture(scope="module")
def big_rmat():
    return rmat(13, 16, weighted=True, seed=99, directed=False)


@pytest.fixture(scope="module")
def big_grid():
    return grid_2d(128, 128, weighted=True, seed=99)


class TestAtScale:
    def test_sizes(self, big_rmat, big_grid):
        assert big_rmat.n_vertices == 8192
        assert big_rmat.n_edges > 100_000
        assert big_grid.n_vertices == 16384

    def test_sssp_internal_consistency(self, big_rmat):
        r = sssp(big_rmat, 0)
        assert r.stats.converged
        # Fixed-point check on a sample of edges (full check is O(E) python).
        csr = big_rmat.csr()
        rng = np.random.default_rng(0)
        for v in rng.integers(0, big_rmat.n_vertices, 200):
            v = int(v)
            if r.distances[v] >= 1e37:
                continue
            nbrs = csr.get_neighbors(v)
            wts = csr.get_neighbor_weights(v)
            assert np.all(r.distances[nbrs] <= r.distances[v] + wts + 1e-3)

    def test_sssp_grid_diameter_supersteps(self, big_grid):
        r = sssp(big_grid, 0)
        assert 128 <= r.stats.num_iterations <= 2 * 128 + 2

    def test_bfs_direction_optimized(self, big_rmat):
        push = bfs(big_rmat, 0, direction="push")
        auto = bfs(big_rmat, 0, direction="auto")
        assert np.array_equal(push.levels, auto.levels)
        assert "pull" in auto.directions

    def test_pagerank_mass_conserved(self, big_rmat):
        r = pagerank(big_rmat, tolerance=1e-8)
        assert r.converged
        assert r.ranks.sum() == pytest.approx(1.0, abs=1e-6)

    def test_cc_methods_agree(self, big_rmat):
        a = connected_components(big_rmat, method="label_propagation")
        b = connected_components(big_rmat, method="hooking")
        assert np.array_equal(a.labels, b.labels)

    def test_kcore_invariant_sampled(self, big_rmat):
        r = kcore_decomposition(big_rmat)
        csr = big_rmat.csr()
        rng = np.random.default_rng(1)
        for v in rng.integers(0, big_rmat.n_vertices, 100):
            v = int(v)
            k = r.core_numbers[v]
            if k > 0:
                nbrs = csr.get_neighbors(v)
                assert np.count_nonzero(r.core_numbers[nbrs] >= k) >= k

    def test_partitioning_at_scale(self, big_grid):
        from repro.partition import edge_cut, metis_like_partition, random_partition

        cut_rand = edge_cut(big_grid, random_partition(big_grid, 8, seed=0))
        cut_metis = edge_cut(
            big_grid, metis_like_partition(big_grid, 8, seed=0)
        )
        assert cut_metis < cut_rand / 4
