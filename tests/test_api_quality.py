"""API quality gates: documentation coverage and import hygiene.

Deliverable (e) requires doc comments on every public item; this test
enforces it mechanically — every public module, class, function, and
method in :mod:`repro` must carry a docstring — and checks that the
advertised ``__all__`` names actually resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not any(part.startswith("_") for part in name.split("."))
)


def _public_members(module):
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        attr = getattr(module, attr_name)
        # Only audit items *defined* in this module — re-exports are the
        # defining module's responsibility.
        defined_in = getattr(attr, "__module__", "") or ""
        if defined_in != module.__name__:
            continue
        yield attr_name, attr


def _doc_of(cls, meth_name):
    """Docstring of a method, accepting inherited documentation (an
    override that implements a documented ABC hook is documented)."""
    for klass in cls.__mro__:
        candidate = klass.__dict__.get(meth_name)
        if candidate is not None:
            doc = getattr(candidate, "__doc__", None)
            if doc and doc.strip():
                return doc
    return None


def test_all_modules_importable():
    for name in PUBLIC_MODULES:
        importlib.import_module(name)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for attr_name, attr in _public_members(module):
        if inspect.isfunction(attr) or inspect.isclass(attr):
            if not (attr.__doc__ and attr.__doc__.strip()):
                undocumented.append(f"{module_name}.{attr_name}")
        if inspect.isclass(attr):
            for meth_name, meth in inspect.getmembers(attr, inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != attr.__name__:
                    continue  # inherited
                if not _doc_of(attr, meth_name):
                    undocumented.append(
                        f"{module_name}.{attr_name}.{meth_name}"
                    )
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"


def test_subpackage_all_resolves():
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), (
                f"{module_name}.__all__ lists missing {name!r}"
            )
