"""Query-service tests: protocol, admission, breaker, cache, journal,
catalog, the full handler pipeline, and the TCP layer.

The handler tests drive :meth:`QueryService.handle` on plain dicts —
every policy decision (shed, 404, 504, stale-while-error, breaker
cycling) is asserted without a socket.  The socket tests then check
only what the socket adds: framing, concurrency, and zero leaked
threads after stop.
"""

import json
import os
import threading
import time

import pytest

from repro.errors import (
    AdmissionRejected,
    CatalogError,
    ProtocolError,
    ServiceError,
)
from repro.service import (
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    GraphCatalog,
    GraphQueryServer,
    QueryJournal,
    QueryService,
    ResultCache,
    ServiceClient,
    ServiceConfig,
    cache_key,
    parse_graph_spec,
)
from repro.service import protocol
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN


# -- protocol --------------------------------------------------------------------------


class TestProtocol:
    def test_roundtrip(self):
        req = {"op": "query", "graph": "g", "algorithm": "bfs", "params": {}}
        assert protocol.decode(protocol.encode(req)) == req

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"not json\n")
        with pytest.raises(ProtocolError):
            protocol.decode(b"[1, 2]\n")

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError, match="cap"):
            protocol.decode(b"x" * (protocol.MAX_FRAME_BYTES + 1))

    def test_validate_fills_defaults(self):
        req = protocol.validate_request(
            {"graph": "g", "algorithm": "pagerank"}
        )
        assert req["op"] == "query"
        assert req["tenant"] == "default"
        assert req["params"] == {}
        assert req["timeout_s"] is None

    @pytest.mark.parametrize(
        "bad",
        [
            {"op": "explode"},
            {"op": "query"},  # no graph
            {"op": "query", "graph": "g"},  # no algorithm
            {"op": "query", "graph": "g", "algorithm": "quantum"},
            {"op": "query", "graph": "g", "algorithm": "bfs", "params": 3},
            {
                "op": "query",
                "graph": "g",
                "algorithm": "bfs",
                "timeout_s": -1,
            },
        ],
    )
    def test_validate_rejects(self, bad):
        with pytest.raises(ProtocolError):
            protocol.validate_request(bad)

    def test_response_status_mapping(self):
        assert protocol.response(None, 200)["status"] == "ok"
        assert protocol.response(None, 206)["status"] == "partial"
        assert protocol.response(None, 429)["status"] == "error"
        resp = protocol.response({"id": 7}, 200, result={"x": 1}, cached=True)
        assert resp["id"] == 7
        assert resp["server"]["cached"] is True


# -- admission -------------------------------------------------------------------------


class TestAdmission:
    def test_acquire_release_counts(self):
        adm = AdmissionController(max_concurrent=2)
        adm.acquire("a")
        adm.acquire("b")
        assert adm.active == 2
        adm.release("a")
        adm.release("b")
        assert adm.active == 0
        assert adm.stats()["admitted"] == 2

    def test_queue_full_sheds_immediately(self):
        adm = AdmissionController(max_concurrent=1, max_queue_depth=0)
        adm.acquire("a")
        t0 = time.monotonic()
        with pytest.raises(AdmissionRejected) as info:
            adm.acquire("b", timeout=5.0)
        assert info.value.reason == "queue_full"
        assert time.monotonic() - t0 < 0.5  # shed, not queued
        adm.release("a")

    def test_tenant_cap_sheds(self):
        adm = AdmissionController(max_concurrent=4, per_tenant_limit=1)
        adm.acquire("greedy")
        with pytest.raises(AdmissionRejected) as info:
            adm.acquire("greedy")
        assert info.value.reason == "tenant_cap"
        adm.acquire("polite")  # other tenants unaffected
        adm.release("greedy")
        adm.release("polite")

    def test_wait_timeout_sheds(self):
        adm = AdmissionController(max_concurrent=1, max_queue_depth=4)
        adm.acquire("a")
        with pytest.raises(AdmissionRejected) as info:
            adm.acquire("b", timeout=0.05)
        assert info.value.reason == "timeout"
        assert adm.stats()["shed_timeout"] == 1
        adm.release("a")

    def test_waiter_admitted_on_release(self):
        adm = AdmissionController(max_concurrent=1, max_queue_depth=4)
        adm.acquire("a")
        admitted = threading.Event()

        def waiter():
            adm.acquire("b", timeout=5.0)
            admitted.set()

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        assert not admitted.is_set()
        adm.release("a")
        t.join(timeout=5.0)
        assert admitted.is_set()
        adm.release("b")

    def test_release_without_acquire_raises(self):
        with pytest.raises(ServiceError):
            AdmissionController().release("x")


# -- breaker ---------------------------------------------------------------------------


class TestBreaker:
    def _breaker(self, clock, **kw):
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("cooldown_s", 10.0)
        return CircuitBreaker(clock=lambda: clock[0], **kw)

    def test_opens_after_consecutive_failures(self):
        clock = [0.0]
        b = self._breaker(clock)
        for _ in range(2):
            assert b.allow()
            b.record(False)
        assert b.state == CLOSED  # one short of threshold
        b.allow()
        b.record(False)
        assert b.state == OPEN
        assert not b.allow()

    def test_success_resets_the_count(self):
        clock = [0.0]
        b = self._breaker(clock)
        b.record(False)
        b.record(False)
        b.record(True)
        b.record(False)
        b.record(False)
        assert b.state == CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = [0.0]
        b = self._breaker(clock)
        for _ in range(3):
            b.record(False)
        assert not b.allow()
        clock[0] = 11.0  # past cooldown
        assert b.allow()  # the probe
        assert b.state == HALF_OPEN
        assert not b.allow()  # only ONE probe at a time
        b.record(True)
        assert b.state == CLOSED
        assert b.allow()

    def test_half_open_probe_reopens_on_failure(self):
        clock = [0.0]
        b = self._breaker(clock)
        for _ in range(3):
            b.record(False)
        clock[0] = 11.0
        assert b.allow()
        b.record(False)
        assert b.state == OPEN
        assert not b.allow()  # cooldown restarted at t=11
        clock[0] = 22.0
        assert b.allow()

    def test_board_isolates_pairs(self):
        board = BreakerBoard(failure_threshold=1, cooldown_s=10.0)
        board.of("g", "bfs").record(False)
        assert board.of("g", "bfs").state == OPEN
        assert board.of("g", "pagerank").state == CLOSED
        assert board.of("h", "bfs").state == CLOSED
        assert "g/bfs" in board.stats()


# -- cache -----------------------------------------------------------------------------


class TestCache:
    def _cache(self, clock, **kw):
        kw.setdefault("capacity", 3)
        kw.setdefault("ttl_s", 10.0)
        return ResultCache(clock=lambda: clock[0], **kw)

    def test_fresh_hit_within_ttl(self):
        clock = [0.0]
        c = self._cache(clock)
        c.put("k", {"v": 1})
        assert c.get_fresh("k") == {"v": 1}
        clock[0] = 11.0
        assert c.get_fresh("k") is None  # expired
        result, age = c.get_stale("k")  # but stale path still serves
        assert result == {"v": 1} and age == 11.0

    def test_lru_eviction(self):
        clock = [0.0]
        c = self._cache(clock)
        for i in range(3):
            c.put(f"k{i}", {"v": i})
        c.get_fresh("k0")  # refresh k0's recency
        c.put("k3", {"v": 3})
        assert c.get_fresh("k0") is not None
        assert c.get_fresh("k1") is None  # the LRU victim
        assert len(c) == 3

    def test_cache_key_canonicalizes_params(self):
        assert cache_key("g", "bfs", {"a": 1, "b": 2}) == cache_key(
            "g", "bfs", {"b": 2, "a": 1}
        )
        assert cache_key("g", "bfs", {"a": 1}) != cache_key(
            "g", "bfs", {"a": 2}
        )


# -- journal ---------------------------------------------------------------------------


class TestJournal:
    def test_begin_end_resolves(self, tmp_path):
        j = QueryJournal(str(tmp_path / "journal.jsonl"))
        j.begin("q1", graph="g", algorithm="bfs")
        j.end("q1", code=200, seconds=0.1)
        assert j.in_flight() == []

    def test_recover_marks_orphans_aborted(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        j = QueryJournal(path)
        j.begin("q1", graph="g", algorithm="bfs")
        j.end("q1", code=200, seconds=0.1)
        j.begin("q2", graph="g", algorithm="pagerank")  # "crash" here

        j2 = QueryJournal(path)  # the restarted process
        orphans = j2.recover()
        assert [o["qid"] for o in orphans] == ["q2"]
        assert j2.in_flight() == []
        events = list(j2.events())
        assert events[-1]["event"] == "aborted"
        assert j2.recover() == []  # idempotent

    def test_corrupt_lines_counted(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        j = QueryJournal(path)
        j.begin("q1", graph="g", algorithm="bfs")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn!!\n')
        j.end("q1", code=200, seconds=0.1)
        assert len(list(j.events())) == 2
        assert j.skipped_lines == 1


# -- catalog ---------------------------------------------------------------------------


class TestCatalog:
    def test_parse_path_spec(self):
        assert parse_graph_spec("web=data/web.npz") == {
            "name": "web",
            "path": "data/web.npz",
        }

    def test_parse_generator_specs(self):
        assert parse_graph_spec("g=grid:8") == {
            "name": "g",
            "generator": "grid",
            "scale": 8,
        }
        spec = parse_graph_spec("r=rmat:6:seed=3:edge_factor=4")
        assert spec == {
            "name": "r",
            "generator": "rmat",
            "scale": 6,
            "seed": 3,
            "edge_factor": 4,
        }

    @pytest.mark.parametrize("bad", ["noequals", "=grid:8", "g=grid:8:bogus=1"])
    def test_parse_rejects(self, bad):
        with pytest.raises(CatalogError):
            parse_graph_spec(bad)

    def test_add_get_and_unknown(self):
        cat = GraphCatalog()
        g = cat.add({"name": "g", "generator": "grid", "scale": 6})
        assert cat.get("g") is g
        assert "g" in cat and len(cat) == 1
        with pytest.raises(CatalogError, match="unknown graph"):
            cat.get("nope")

    def test_manifest_persists_and_restores(self, tmp_path):
        data_dir = str(tmp_path / "svc")
        cat = GraphCatalog(data_dir=data_dir)
        cat.add({"name": "g", "generator": "grid", "scale": 6, "seed": 1})
        assert os.path.exists(os.path.join(data_dir, "catalog.json"))

        fresh = GraphCatalog(data_dir=data_dir)
        assert fresh.restore() == ["g"]
        assert fresh.get("g").n_vertices == cat.get("g").n_vertices
        assert fresh.describe()["g"]["spec"]["generator"] == "grid"


# -- the handler pipeline --------------------------------------------------------------


@pytest.fixture
def service(tmp_path):
    cat = GraphCatalog()
    cat.add({"name": "g", "generator": "grid", "scale": 8, "seed": 0})
    return QueryService(
        cat,
        data_dir=str(tmp_path / "svc"),
        config=ServiceConfig(
            breaker_threshold=2,
            breaker_cooldown_s=0.2,
            cache_ttl_s=0.2,
            record_ledger=False,
        ),
    )


def query(service, algorithm="pagerank", graph="g", params=None, **extra):
    req = {
        "op": "query",
        "graph": graph,
        "algorithm": algorithm,
        "params": params or {},
    }
    req.update(extra)
    return service.handle(req)


class TestHandlerPipeline:
    def test_ok_query_and_cache_hit(self, service):
        first = query(service)
        assert first["code"] == 200
        assert first["result"]["converged"] is True
        assert first["result"]["n"] == 256
        second = query(service)
        assert second["code"] == 200
        assert second["server"]["cached"] is True

    def test_unknown_graph_404(self, service):
        assert query(service, graph="nope")["code"] == 404

    def test_malformed_request_400(self, service):
        assert service.handle({"op": "query"})["code"] == 400
        assert service.handle({"op": "voodoo"})["code"] == 400

    def test_bad_params_400_not_500(self, service):
        resp = query(service, "bfs", params={"source": 10**9})
        assert resp["code"] == 400
        assert "out of range" in resp["error"]

    def test_deadline_504_within_grace(self, service):
        t0 = time.monotonic()
        resp = query(service, "bfs", timeout_s=1e-4)
        elapsed = time.monotonic() - t0
        assert resp["code"] == 504
        assert "deadline exceeded" in resp["error"]
        assert elapsed < 1e-4 + 0.25  # the issue's grace bound

    def test_pagerank_partial_206(self, service):
        resp = query(
            service,
            "pagerank",
            params={"tolerance": 0.0, "max_iterations": 100000},
            timeout_s=0.03,
        )
        assert resp["code"] == 206
        assert resp["status"] == "partial"
        assert resp["result"]["converged"] is False

    def test_breaker_opens_serves_stale_then_recovers(self, service):
        # Prime the cache with a completed bfs.
        assert query(service, "bfs")["code"] == 200
        time.sleep(0.25)  # let the fresh entry expire (ttl_s=0.2)

        # Two deadline blowups open the breaker (threshold=2).
        for _ in range(2):
            assert query(service, "bfs", timeout_s=1e-4)["code"] == 504
        assert service.breakers.of("g", "bfs").state == OPEN

        # Open + cached history => stale serve, marked as such.
        resp = query(service, "bfs")
        assert resp["code"] == 200
        assert resp["server"]["stale"] is True
        assert resp["server"]["breaker"] == "open"

        # Open + no history (different params) => 503.
        resp = query(service, "bfs", params={"source": 5})
        assert resp["code"] == 503

        # After the cooldown one probe runs; success closes the breaker.
        time.sleep(0.25)
        resp = query(service, "bfs", params={"source": 5})
        assert resp["code"] == 200
        assert service.breakers.of("g", "bfs").state == CLOSED

    def test_client_errors_do_not_trip_breaker(self, service):
        for _ in range(5):
            assert query(service, "bfs", params={"source": -5})["code"] == 400
        assert service.breakers.of("g", "bfs").state == CLOSED

    def test_internal_error_serves_stale(self, service, monkeypatch):
        assert query(service, "cc")["code"] == 200
        time.sleep(0.25)  # past ttl: fresh path misses

        import repro.service.server as server_mod

        def explode(*a, **kw):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(server_mod, "execute_query", explode)
        resp = query(service, "cc")
        assert resp["code"] == 200
        assert resp["server"]["stale"] is True
        assert "kaboom" in resp["error"]

    def test_journal_records_every_query(self, service):
        query(service)
        query(service, "bfs", timeout_s=1e-4)
        events = list(service.journal.events())
        begins = [e for e in events if e["event"] == "begin"]
        ends = [e for e in events if e["event"] == "end"]
        # The cache-missing executions journal; the codes land in 'end'.
        assert len(begins) == len(ends) == 2
        assert sorted(e["code"] for e in ends) == [200, 504]

    def test_ping_stats_catalog_ops(self, service):
        assert service.handle({"op": "ping"})["result"]["pong"] is True
        query(service)
        stats = service.handle({"op": "stats"})["result"]
        assert stats["catalog"] == ["g"]
        assert stats["codes"]["200"] == 1
        cat = service.handle({"op": "catalog"})["result"]
        assert cat["g"]["n_vertices"] == 256

    def test_shed_429_when_saturated(self, service, monkeypatch):
        import repro.service.server as server_mod

        release = threading.Event()
        started = threading.Event()

        def slow(*a, **kw):
            started.set()
            release.wait(5.0)
            return {"algorithm": "x", "n": 0, "converged": True,
                    "partial": False, "iterations": 0, "checksum": 0.0,
                    "head": []}

        monkeypatch.setattr(server_mod, "execute_query", slow)
        monkeypatch.setattr(service.admission, "max_concurrent", 1)
        monkeypatch.setattr(service.admission, "max_queue_depth", 0)

        results = {}
        t = threading.Thread(
            target=lambda: results.update(slow_resp=query(service, "sssp"))
        )
        t.start()
        assert started.wait(5.0)
        shed = query(service, "sssp", params={"source": 1})
        assert shed["code"] == 429
        assert shed["server"]["shed"] == "queue_full"
        release.set()
        t.join(5.0)
        assert results["slow_resp"]["code"] == 200

    def test_tenant_cap_sheds_per_tenant(self, tmp_path, monkeypatch):
        cat = GraphCatalog()
        cat.add({"name": "g", "generator": "grid", "scale": 6})
        svc = QueryService(
            cat,
            config=ServiceConfig(
                per_tenant_limit=1, record_ledger=False
            ),
        )
        import repro.service.server as server_mod

        release = threading.Event()
        started = threading.Event()

        def slow(*a, **kw):
            started.set()
            release.wait(5.0)
            return {"algorithm": "x", "n": 0, "converged": True,
                    "partial": False, "iterations": 0, "checksum": 0.0,
                    "head": []}

        monkeypatch.setattr(server_mod, "execute_query", slow)
        t = threading.Thread(
            target=lambda: query(svc, "sssp", tenant="greedy")
        )
        t.start()
        assert started.wait(5.0)
        shed = query(svc, "sssp", params={"source": 1}, tenant="greedy")
        assert shed["code"] == 429
        assert shed["server"]["shed"] == "tenant_cap"
        release.set()
        t.join(5.0)

    def test_shutdown_op_cancels_in_flight(self, service):
        resp = service.handle({"op": "shutdown"})
        assert resp["code"] == 200
        assert service.shutdown_requested.is_set()


class TestCrashRecovery:
    def test_restart_replays_journal_and_catalog(self, tmp_path):
        data_dir = str(tmp_path / "svc")
        cat = GraphCatalog(data_dir=data_dir)
        cat.add({"name": "g", "generator": "grid", "scale": 6, "seed": 0})
        svc = QueryService(
            cat, data_dir=data_dir, config=ServiceConfig(record_ledger=False)
        )
        assert query(svc, "bfs")["code"] == 200
        # Simulate dying mid-query: a begin with no end.
        svc.journal.begin("q-crash", graph="g", algorithm="pagerank")

        # --- restart ---
        cat2 = GraphCatalog(data_dir=data_dir)
        assert cat2.restore() == ["g"]
        svc2 = QueryService(
            cat2, data_dir=data_dir, config=ServiceConfig(record_ledger=False)
        )
        assert [o["qid"] for o in svc2.recovered] == ["q-crash"]
        assert svc2.journal.in_flight() == []
        assert query(svc2, "bfs")["code"] == 200  # fully operational
        assert svc2.stats()["recovered_aborted"] == 1


# -- the TCP layer ---------------------------------------------------------------------


class TestSocketServer:
    @pytest.fixture
    def running(self, tmp_path):
        cat = GraphCatalog()
        cat.add({"name": "g", "generator": "grid", "scale": 8})
        service = QueryService(
            cat, config=ServiceConfig(record_ledger=False)
        )
        server = GraphQueryServer(service)
        server.start()
        yield server
        server.stop()

    def test_roundtrip_and_concurrency(self, running):
        host, port = running.address

        results = []
        lock = threading.Lock()

        def client_run(i):
            with ServiceClient(host, port) as c:
                r = c.query("g", "bfs", {"source": i})
                with lock:
                    results.append(r["code"])

        threads = [
            threading.Thread(target=client_run, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert results == [200] * 6

    def test_garbage_line_gets_400_connection_survives(self, running):
        import socket

        host, port = running.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            f = sock.makefile("rb")
            sock.sendall(b"this is not json\n")
            resp = json.loads(f.readline())
            assert resp["code"] == 400
            sock.sendall(protocol.encode({"op": "ping"}))
            assert json.loads(f.readline())["code"] == 200

    def test_stop_leaks_no_threads(self, tmp_path):
        cat = GraphCatalog()
        cat.add({"name": "g", "generator": "grid", "scale": 6})
        service = QueryService(cat, config=ServiceConfig(record_ledger=False))
        baseline = threading.active_count()
        server = GraphQueryServer(service)
        server.start()
        host, port = server.address
        with ServiceClient(host, port) as c:
            assert c.ping()
        server.stop()
        deadline = time.monotonic() + 5.0
        while (
            threading.active_count() > baseline
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert threading.active_count() <= baseline

    def test_shutdown_op_over_the_wire(self, tmp_path):
        cat = GraphCatalog()
        cat.add({"name": "g", "generator": "grid", "scale": 6})
        service = QueryService(cat, config=ServiceConfig(record_ledger=False))
        server = GraphQueryServer(service)
        server.start()
        try:
            host, port = server.address
            with ServiceClient(host, port) as c:
                resp = c.shutdown()
            assert resp["code"] == 200
            assert service.shutdown_requested.is_set()
        finally:
            server.stop()
