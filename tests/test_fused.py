"""Fused kernels, frontier-adaptive dispatch, and workspace pooling.

The contract under test: routing an eligible condition through the
single-pass fused path (or flipping traversal direction, or switching
output representation, or pooling buffers) never changes any result —
only how fast it is produced.  Equality here is exact (``array_equal``),
not approximate: the fused kernels replicate the unfused arithmetic
operation-for-operation.
"""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.sssp import sssp, sssp_delta_stepping
from repro.frontier.dense import DenseFrontier
from repro.frontier.sparse import SparseFrontier
from repro.graph import from_edge_list
from repro.graph.generators import grid_2d, rmat
from repro.observability.probe import Probe
from repro.operators.advance import neighbors_expand
from repro.operators.fused import (
    DirectionOptimizer,
    choose_direction,
    choose_representation,
    claim_levels_condition,
    fused_kernel_of,
    min_relax_condition,
    segmented_sum,
)
from repro.execution.workspace import Workspace
from repro.types import INF


GRAPHS = {
    "grid": lambda: grid_2d(16, 16, weighted=True, seed=11),
    "rmat": lambda: rmat(8, 8, weighted=True, seed=12),
    "disconnected": lambda: from_edge_list(
        [(0, 1, 1.0), (1, 2, 2.0), (4, 5, 1.5), (5, 6, 0.5)],
        n_vertices=8,
        directed=False,
    ),
}


@pytest.fixture(params=list(GRAPHS), ids=list(GRAPHS))
def any_graph(request):
    return GRAPHS[request.param]()


class TestFusedEqualsUnfused:
    """par_vector (fused) must agree exactly with seq (scalar, unfused)."""

    def test_sssp_distances_identical(self, any_graph):
        fused = sssp(any_graph, 0, policy="par_vector")
        plain = sssp(any_graph, 0, policy="seq")
        assert np.array_equal(fused.distances, plain.distances)

    def test_bfs_levels_identical(self, any_graph):
        fused = bfs(any_graph, 0, policy="par_vector")
        plain = bfs(any_graph, 0, policy="seq")
        assert np.array_equal(fused.levels, plain.levels)
        # Parents may legitimately differ (any discovering parent is
        # valid) but must always be one level above the child.
        reached = fused.levels > 0
        assert np.array_equal(
            fused.levels[reached],
            fused.levels[fused.parents[reached]] + 1,
        )

    def test_cc_labels_identical(self, any_graph):
        fused = connected_components(any_graph, policy="par_vector")
        plain = connected_components(any_graph, policy="seq")
        assert np.array_equal(fused.labels, plain.labels)
        assert fused.n_components == plain.n_components

    def test_delta_stepping_masked_kernels(self, any_graph):
        fused = sssp_delta_stepping(any_graph, 0, policy="par_vector")
        plain = sssp_delta_stepping(any_graph, 0, policy="seq")
        assert np.array_equal(fused.distances, plain.distances)

    def test_condition_alone_is_policy_neutral(self, any_graph):
        """The factory condition without fused routing (par policy)
        matches the fused vectorized run."""
        threaded = sssp(any_graph, 0, policy="par")
        fused = sssp(any_graph, 0, policy="par_vector")
        assert np.allclose(threaded.distances, fused.distances)


class TestDirectionProperty:
    """Push-only vs pull-only vs adaptive never changes results."""

    @pytest.mark.parametrize("make_graph", list(GRAPHS.values()), ids=list(GRAPHS))
    def test_sssp_direction_invariance(self, make_graph):
        g = make_graph()
        push = sssp(g, 0, direction="push")
        pull = sssp(g, 0, direction="pull")
        auto = sssp(g, 0, direction="auto")
        assert np.array_equal(push.distances, pull.distances)
        assert np.array_equal(push.distances, auto.distances)

    @pytest.mark.parametrize("make_graph", list(GRAPHS.values()), ids=list(GRAPHS))
    def test_bfs_direction_invariance(self, make_graph):
        g = make_graph()
        push = bfs(g, 0, direction="push")
        pull = bfs(g, 0, direction="pull")
        auto = bfs(g, 0, direction="auto")
        assert np.array_equal(push.levels, pull.levels)
        assert np.array_equal(push.levels, auto.levels)

    def test_sources_randomized(self):
        g = grid_2d(12, 12, weighted=True, seed=3)
        for source in np.random.default_rng(0).integers(0, 144, size=5):
            source = int(source)
            push = sssp(g, source, direction="push")
            auto = sssp(g, source, direction="auto")
            assert np.array_equal(push.distances, auto.distances)


class TestFusedRouting:
    def test_factory_attaches_kernel(self):
        values = np.full(4, INF, dtype=np.float32)
        cond = min_relax_condition(values)
        kernel = fused_kernel_of(cond)
        assert kernel is not None and kernel.supports_pull

    def test_masked_kernel_is_push_only(self):
        values = np.full(4, INF, dtype=np.float32)
        mask = np.array([True, False])
        kernel = fused_kernel_of(min_relax_condition(values, edge_mask=mask))
        assert not kernel.supports_pull

    def test_plain_condition_not_fused(self):
        assert fused_kernel_of(lambda s, d, e, w: True) is None

    def test_masked_pull_falls_back_and_stays_correct(self, diamond_graph):
        """Pull with a push-only kernel routes through the generic
        pipeline; results still match the push run."""
        m = diamond_graph.n_edges
        dist_push = np.full(4, INF, dtype=np.float32)
        dist_push[0] = 0.0
        dist_pull = dist_push.copy()
        all_edges = np.ones(m, dtype=bool)
        f = SparseFrontier.from_indices([0], 4)
        neighbors_expand(
            "par_vector", diamond_graph, f,
            min_relax_condition(dist_push, edge_mask=all_edges),
        )
        neighbors_expand(
            "par_vector", diamond_graph, f.copy(),
            min_relax_condition(dist_pull, edge_mask=all_edges),
            direction="pull",
        )
        assert np.array_equal(dist_push, dist_pull)

    def test_fused_output_matches_generic(self, weighted_grid):
        """One advance, fused vs generic, same output set and values."""
        n = weighted_grid.n_vertices
        frontier = SparseFrontier.from_indices([0, 1, 5], n)
        dist_a = np.full(n, INF, dtype=np.float32)
        dist_a[[0, 1, 5]] = 0.0
        dist_b = dist_a.copy()
        fused_out = neighbors_expand(
            "par_vector", weighted_grid, frontier,
            min_relax_condition(dist_a), workspace=Workspace(),
        )
        plain_out = neighbors_expand(
            "par", weighted_grid, frontier.copy(), min_relax_condition(dist_b)
        )
        assert np.array_equal(dist_a, dist_b)
        assert np.array_equal(
            np.unique(fused_out.to_indices()), np.unique(plain_out.to_indices())
        )

    def test_claim_condition_scalar_call(self):
        """Seq policy calls the claim condition with scalars."""
        levels = np.array([0, -1, -1], dtype=np.int64)
        parents = np.array([0, -1, -1], dtype=np.int32)
        cond = claim_levels_condition(levels, parents)
        assert cond(0, 1, 0, 1.0) is True
        assert levels[1] == 1 and parents[1] == 0
        assert cond(0, 1, 0, 1.0) is False  # already claimed


class TestAdaptiveHeuristics:
    def test_small_frontier_pushes(self):
        g = grid_2d(32, 32)
        f = SparseFrontier.from_indices([0], g.n_vertices)
        assert choose_direction(g, f) == "push"

    def test_huge_frontier_pulls(self):
        g = grid_2d(32, 32)
        f = SparseFrontier.from_indices(
            np.arange(g.n_vertices, dtype=np.int32), g.n_vertices
        )
        assert choose_direction(g, f) == "pull"

    def test_hysteresis(self):
        """Once pulled, stay pulled until the frontier re-narrows below
        n/beta (not merely below the push→pull threshold)."""
        g = grid_2d(32, 32)
        n = g.n_vertices
        mid = SparseFrontier.from_indices(
            np.arange(n // 4, dtype=np.int32), n
        )
        assert choose_direction(g, mid, last_direction="pull") == "pull"
        tiny = SparseFrontier.from_indices([0], n)
        assert choose_direction(g, tiny, last_direction="pull") == "push"

    def test_optimizer_records_history(self):
        g = grid_2d(16, 16)
        opt = DirectionOptimizer(g)
        n = g.n_vertices
        opt.choose(SparseFrontier.from_indices([0], n))
        opt.choose(
            SparseFrontier.from_indices(np.arange(n, dtype=np.int32), n)
        )
        assert opt.history == ["push", "pull"]
        assert opt.last_direction == "pull"

    def test_optimizer_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            DirectionOptimizer(grid_2d(4, 4), alpha=0)

    def test_empty_graph_and_frontier_push(self):
        g = from_edge_list([], n_vertices=3)
        assert choose_direction(g, SparseFrontier(3)) == "push"

    def test_representation_threshold(self):
        f_sparse = SparseFrontier.from_indices([0], 1000)
        f_dense = SparseFrontier.from_indices(
            np.arange(500, dtype=np.int32), 1000
        )
        assert choose_representation(f_sparse) == "sparse"
        assert choose_representation(f_dense) == "dense"

    def test_auto_representation_advance(self, weighted_grid):
        """output_representation='auto' produces a valid frontier whose
        active set matches the fixed-representation run."""
        n = weighted_grid.n_vertices
        dist_a = np.full(n, INF, dtype=np.float32)
        dist_a[0] = 0.0
        dist_b = dist_a.copy()
        f = SparseFrontier.from_indices([0], n)
        out_auto = neighbors_expand(
            "par_vector", weighted_grid, f,
            min_relax_condition(dist_a), output_representation="auto",
        )
        out_sparse = neighbors_expand(
            "par_vector", weighted_grid, f.copy(),
            min_relax_condition(dist_b), output_representation="sparse",
        )
        assert np.array_equal(
            np.unique(out_auto.to_indices()),
            np.unique(out_sparse.to_indices()),
        )


class TestWorkspace:
    def test_reuse_hits(self):
        ws = Workspace()
        a = ws.array("x", 100, np.int64)
        b = ws.array("x", 50, np.int64)
        assert ws.hits == 1 and ws.misses == 1
        assert a.base is b.base or a.base is not None

    def test_dtype_change_reallocates(self):
        ws = Workspace()
        ws.array("x", 10, np.int64)
        ws.array("x", 10, np.float32)
        assert ws.misses == 2

    def test_geometric_growth(self):
        ws = Workspace()
        ws.array("x", 100, np.int64)
        grown = ws.array("x", 101, np.int64)
        assert grown.shape[0] == 101
        ws.array("x", 150, np.int64)  # within doubled room: a hit
        assert ws.hits == 1

    def test_cleared_is_zeroed(self):
        ws = Workspace()
        buf = ws.array("m", 8, bool)
        buf[:] = True
        assert not ws.cleared("m", 8, bool).any()

    def test_take_gathers(self):
        ws = Workspace()
        src = np.array([10.0, 20.0, 30.0], dtype=np.float32)
        out = ws.take("g", src, np.array([2, 0]))
        assert out.tolist() == [30.0, 10.0]

    def test_arange_cached(self):
        ws = Workspace()
        r1 = ws.arange(10)
        r2 = ws.arange(5)
        assert r1[:5].tolist() == r2.tolist()
        assert ws.hits == 1

    def test_nbytes_and_clear(self):
        ws = Workspace()
        ws.array("x", 64, np.int64)
        assert ws.nbytes >= 64 * 8
        ws.clear()
        assert ws.nbytes == 0

    def test_workspace_reuse_across_supersteps_safe(self):
        """Same workspace through a whole run: results identical to a
        workspace-free run (buffers never leak stale state)."""
        g = grid_2d(16, 16, weighted=True, seed=5)
        a = sssp(g, 0)  # enactor-owned workspace, fused path
        n = g.n_vertices
        dist = np.full(n, INF, dtype=np.float32)
        dist[0] = 0.0
        cond = min_relax_condition(dist)
        frontier = SparseFrontier.from_indices([0], n)
        while frontier.size():
            out = neighbors_expand("par_vector", g, frontier, cond)
            frontier = SparseFrontier.from_indices(
                np.unique(out.to_indices()), n
            )
        assert np.array_equal(a.distances, dist)


class TestSegmentedSum:
    def test_matches_add_at(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 50, size=500)
        w = rng.random(500)
        expect = np.zeros(50)
        np.add.at(expect, idx, w)
        assert np.allclose(segmented_sum(idx, w, 50), expect)

    def test_empty(self):
        out = segmented_sum(np.empty(0, np.int64), np.empty(0), 4)
        assert out.shape == (4,) and not out.any()


class TestSpanAttributes:
    def test_advance_span_carries_dispatch_attrs(self, weighted_grid):
        probe = Probe()
        with probe:
            sssp(weighted_grid, 0, direction="auto")
        spans = [
            s for s in probe.tracer.spans() if s.name == "operator:advance"
        ]
        assert spans
        for s in spans:
            assert s.attrs["direction"] in ("push", "pull")
            assert s.attrs["fused"] is True
            assert s.attrs["representation"] in ("sparse", "dense", "queue")
            assert "output_size" in s.attrs

    def test_unfused_span_says_so(self, weighted_grid):
        probe = Probe()
        with probe:
            f = SparseFrontier.from_indices([0], weighted_grid.n_vertices)
            neighbors_expand(
                "par_vector", weighted_grid, f, lambda s, d, e, w: True
            )
        (span,) = [
            s for s in probe.tracer.spans() if s.name == "operator:advance"
        ]
        assert span.attrs["fused"] is False


class TestTrustedFrontierAdd:
    def test_add_many_trusted_matches_add_many(self):
        a = SparseFrontier(100)
        b = SparseFrontier(100)
        ids = np.array([3, 7, 7, 99], dtype=np.int32)
        a.add_many(ids)
        b.add_many_trusted(ids)
        assert np.array_equal(a.to_indices(), b.to_indices())

    def test_dense_frontier_unaffected(self):
        f = DenseFrontier(10)
        f.add_many(np.array([1, 1, 2], dtype=np.int32))
        assert f.size() == 2
