"""Tests for the executable Table I (capability registry)."""

import pytest

from repro.capability import TABLE_I, format_table, verify_capabilities


class TestTableI:
    def test_four_pillars_present(self):
        pillars = [row.pillar for row in TABLE_I]
        assert pillars == [
            "Timing",
            "Communication",
            "Execution Model",
            "Partitioning",
        ]

    def test_paper_models_captured(self):
        by_pillar = {row.pillar: row for row in TABLE_I}
        assert set(by_pillar["Timing"].models_captured) == {
            "Bulk-Synchronous",
            "Asynchronous",
        }
        assert set(by_pillar["Communication"].models_captured) == {
            "Shared-Memory",
            "Message Passing",
        }
        assert set(by_pillar["Execution Model"].models_captured) == {
            "Vertex Programs",
            "Push vs. Pull",
        }

    def test_paper_ignored_models_recorded(self):
        by_pillar = {row.pillar: row for row in TABLE_I}
        assert "Active Messages" in by_pillar["Communication"].models_ignored
        assert "Vertex Cuts" in by_pillar["Partitioning"].models_ignored
        assert (
            "Dynamic Repartitioning"
            in by_pillar["Partitioning"].models_ignored
        )

    def test_every_claim_backed_by_code(self):
        """The core reproduction assertion: each captured model's claimed
        implementation imports and exposes the named symbol."""
        assert verify_capabilities() == []

    def test_every_row_has_implementations(self):
        for row in TABLE_I:
            assert row.implementations, f"{row.pillar} row lists no code"

    def test_format_table_renders_all_rows(self):
        text = format_table()
        for row in TABLE_I:
            assert row.pillar in text
        assert "Models Ignored" in text

    def test_broken_claim_detected(self, monkeypatch):
        """verify_capabilities must actually catch a missing symbol."""
        import repro.capability as cap

        broken = cap.PillarCapability(
            pillar="Fake",
            models_captured=("X",),
            abstraction="",
            mechanism="",
            models_ignored=(),
            implementations=(("repro.graph.csr", "NoSuchThing"),),
        )
        monkeypatch.setattr(cap, "TABLE_I", cap.TABLE_I + [broken])
        failures = cap.verify_capabilities()
        assert any("NoSuchThing" in f for f in failures)

    def test_missing_module_detected(self, monkeypatch):
        import repro.capability as cap

        broken = cap.PillarCapability(
            pillar="Fake",
            models_captured=("X",),
            abstraction="",
            mechanism="",
            models_ignored=(),
            implementations=(("repro.not_a_module", "x"),),
        )
        monkeypatch.setattr(cap, "TABLE_I", [broken])
        failures = cap.verify_capabilities()
        assert len(failures) == 1 and "cannot import" in failures[0]
