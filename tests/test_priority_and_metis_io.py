"""Tests for the priority enactor, bucketed SSSP, and METIS .graph I/O."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, GraphIOError
from repro.baselines import dijkstra
from repro.frontier.bucketed import BucketedFrontier
from repro.graph.generators import grid_2d, rmat, watts_strogatz
from repro.graph.io import read_metis_graph, write_metis_graph
from repro.loop import PriorityEnactor, sssp_bucketed


class TestPriorityEnactor:
    def test_drains_all_buckets_in_order(self, small_grid):
        seen_buckets = []
        frontier = BucketedFrontier.from_priorities(
            [0, 1, 2], [0.0, 5.0, 10.0], small_grid.n_vertices, delta=2.0
        )

        def step(ids, bucket):
            seen_buckets.append((bucket, sorted(ids.tolist())))
            return np.empty(0, dtype=np.int64), np.empty(0)

        enactor = PriorityEnactor(small_grid)
        stats = enactor.run(frontier, step)
        assert stats.converged
        assert seen_buckets == [(0, [0]), (2, [1]), (5, [2])]

    def test_same_bucket_reactivation_loops(self, small_grid):
        """A step that re-activates into the current bucket must be
        reprocessed before the bucket rotates."""
        calls = []
        frontier = BucketedFrontier.from_priorities(
            [0], [0.0], small_grid.n_vertices, delta=1.0
        )

        def step(ids, bucket):
            calls.append(ids.tolist())
            if len(calls) == 1:
                return np.asarray([1]), np.asarray([0.5])  # same bucket
            return np.empty(0, dtype=np.int64), np.empty(0)

        PriorityEnactor(small_grid).run(frontier, step)
        assert calls == [[0], [1]]

    def test_divergence_guard(self, small_grid):
        frontier = BucketedFrontier.from_priorities(
            [0], [0.0], small_grid.n_vertices, delta=1.0
        )

        def step(ids, bucket):
            # Always push work one bucket ahead: never exhausts.
            return np.asarray([0]), np.asarray([(bucket + 1) * 1.0])

        enactor = PriorityEnactor(small_grid, max_buckets=10)
        with pytest.raises(ConvergenceError):
            enactor.run(frontier, step)

    def test_stats_record_processed_counts(self, small_grid):
        frontier = BucketedFrontier.from_priorities(
            [0, 1], [0.0, 0.0], small_grid.n_vertices, delta=1.0
        )
        enactor = PriorityEnactor(small_grid)
        stats = enactor.run(
            frontier,
            lambda ids, b: (np.empty(0, dtype=np.int64), np.empty(0)),
        )
        assert stats.iterations[0].frontier_size == 2


class TestBucketedSSSP:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: grid_2d(10, 10, weighted=True, seed=1),
            lambda: rmat(8, 8, weighted=True, seed=2),
        ],
        ids=["grid", "rmat"],
    )
    def test_matches_dijkstra(self, make_graph):
        g = make_graph()
        r = sssp_bucketed(g, 0)
        ref = dijkstra(g, 0)
        finite = ref < 1e37
        assert np.allclose(r.distances[finite], ref[finite], atol=1e-2)

    @pytest.mark.parametrize("delta", [0.5, 3.0, 1000.0])
    def test_any_delta_correct(self, weighted_grid, delta):
        r = sssp_bucketed(weighted_grid, 0, delta=delta)
        assert np.allclose(
            r.distances, dijkstra(weighted_grid, 0), atol=1e-2
        )

    def test_agrees_with_specialized_delta_stepping(self, weighted_grid):
        from repro.algorithms import sssp_delta_stepping

        a = sssp_bucketed(weighted_grid, 0, delta=2.0).distances
        b = sssp_delta_stepping(weighted_grid, 0, delta=2.0).distances
        assert np.allclose(a, b, atol=1e-3)

    def test_invalid_delta(self, weighted_grid):
        with pytest.raises(ValueError):
            sssp_bucketed(weighted_grid, 0, delta=0)


class TestMetisGraphIO:
    def test_roundtrip_unweighted(self, tmp_path, small_grid):
        path = tmp_path / "g.graph"
        write_metis_graph(small_grid, path)
        g = read_metis_graph(path)
        assert g.n_vertices == small_grid.n_vertices
        assert g.n_edges == small_grid.n_edges
        assert not g.properties.weighted

    def test_roundtrip_weighted(self, tmp_path, weighted_grid):
        path = tmp_path / "g.graph"
        write_metis_graph(weighted_grid, path)
        g = read_metis_graph(path)
        assert g.properties.weighted
        from repro.baselines import dijkstra as dj

        assert np.allclose(dj(g, 0), dj(weighted_grid, 0), atol=1e-4)

    def test_parse_reference_example(self, tmp_path):
        """The 7-vertex example graph from the METIS manual."""
        path = tmp_path / "manual.graph"
        path.write_text(
            "% the METIS manual's unweighted example\n"
            "7 11\n"
            "5 3 2\n"
            "1 3 4\n"
            "5 4 2 1\n"
            "2 3 6 7\n"
            "1 3 6\n"
            "5 4 7\n"
            "6 4\n"
        )
        g = read_metis_graph(path)
        assert g.n_vertices == 7
        assert g.n_edges == 22  # 11 undirected edges, both arcs
        assert g.has_edge(0, 4) and g.has_edge(4, 0)

    def test_isolated_trailing_vertex(self, tmp_path):
        path = tmp_path / "iso.graph"
        path.write_text("3 1\n2\n1\n")
        g = read_metis_graph(path)
        assert g.n_vertices == 3
        assert g.out_degrees().tolist() == [1, 1, 0]

    def test_directed_write_rejected(self, tmp_path, small_rmat):
        with pytest.raises(GraphIOError, match="undirected"):
            write_metis_graph(small_rmat, tmp_path / "x.graph")

    def test_vertex_weights_rejected(self, tmp_path):
        path = tmp_path / "vw.graph"
        path.write_text("2 1 011\n1 2 1\n1 1 1\n")
        with pytest.raises(GraphIOError, match="not supported"):
            read_metis_graph(path)

    def test_arc_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphIOError, match="declares"):
            read_metis_graph(path)

    def test_out_of_range_neighbor_rejected(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("2 1\n3\n1\n")
        with pytest.raises(GraphIOError, match="out of range"):
            read_metis_graph(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.graph"
        path.write_text("")
        with pytest.raises(GraphIOError, match="empty"):
            read_metis_graph(path)

    def test_partitioner_consumes_metis_file(self, tmp_path, small_grid):
        """End-to-end: write METIS format, read back, partition."""
        from repro.partition import edge_cut, metis_like_partition

        path = tmp_path / "g.graph"
        write_metis_graph(small_grid, path)
        g = read_metis_graph(path)
        p = metis_like_partition(g, 4, seed=0)
        assert edge_cut(g, p) < g.n_edges / 2
