"""The ``par_proc`` multiprocess policy: correctness vs ``seq``, SHM
lifecycle, supervision, cancellation, and observability stitching.

These tests drive real spawned worker processes (two of them, via
``with_workers(2)``, regardless of the container's core count — the
point is the cross-process merge path, not speedup).  The pool is
process-cached, so spawn cost is paid once per session.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.algorithms import (
    bfs,
    connected_components,
    pagerank,
    sssp,
    sssp_delta_stepping,
)
from repro.execution import par_proc, shm
from repro.execution.policy import ProcPolicy
from repro.execution.proc_pool import (
    default_proc_workers,
    get_proc_pool,
    in_worker_process,
)
from repro.execution.thread_pool import default_worker_count
from repro.graph.generators import rmat
from repro.observability.analysis import analyze_probe
from repro.observability.probe import Probe
from repro.operators.fused import fusion_override

#: Two worker processes: exercises partition ownership, the mailbox
#: merge across ranks, and rank-order concatenation.
PROC2 = par_proc.with_workers(2)


@pytest.fixture(scope="module")
def proc_graph():
    """Scale-9 weighted R-MAT — big enough for multi-superstep frontiers,
    small enough that every test stays sub-second after spawn."""
    return rmat(9, 8, weighted=True, seed=7)


# -- policy surface --------------------------------------------------------------------


def test_par_proc_policy_registered():
    from repro.execution import resolve_policy

    p = resolve_policy("par_proc")
    assert isinstance(p, ProcPolicy)
    assert p.name == "par_proc"
    assert p.with_workers(2).num_workers == 2
    assert isinstance(p.with_workers(2), ProcPolicy)


def test_worker_count_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
    assert default_proc_workers() == 3
    assert default_worker_count() == 3
    monkeypatch.delenv("REPRO_NUM_WORKERS")
    assert default_proc_workers() == max(1, os.cpu_count() or 1)


def test_not_in_worker_process():
    assert not in_worker_process()


# -- kernel equivalence (in-process, no spawn) -----------------------------------------


def test_min_relax_push_kernel_matches_dense_relaxation(proc_graph):
    from repro.execution import proc_kernels

    g = proc_graph
    csr = g.csr()
    values = np.full(g.n_vertices, np.inf, dtype=np.float64)
    rng = np.random.default_rng(0)
    seeds = rng.choice(g.n_vertices, size=16, replace=False)
    values[seeds] = rng.random(16)
    work = np.sort(seeds.astype(np.int32))

    dsts, cand = proc_kernels.min_relax_push(
        csr.row_offsets, csr.column_indices, csr.values, values, work
    )
    # Every proposal must strictly improve on the pre-round values.
    assert np.all(cand < values[dsts])
    # And folding them must reproduce one dense relaxation round.
    expected = values.copy()
    for u in work:
        lo, hi = csr.row_offsets[u], csr.row_offsets[u + 1]
        for v, w in zip(csr.column_indices[lo:hi], csr.values[lo:hi]):
            expected[v] = min(expected[v], values[u] + w)
    folded = values.copy()
    np.minimum.at(folded, dsts, cand)
    np.testing.assert_allclose(folded, expected)


def test_pagerank_range_kernel_partitions_cleanly(proc_graph):
    from repro.execution import proc_kernels

    g = proc_graph
    csc = g.csc()
    n = g.n_vertices
    ranks = np.random.default_rng(1).random(n)
    offsets = g.csr().row_offsets
    out_weight = np.asarray(offsets[1:] - offsets[:-1], dtype=np.float64)
    whole = np.zeros(n, dtype=np.float64)
    split = np.zeros(n, dtype=np.float64)
    proc_kernels.pagerank_range(
        csc.col_offsets, csc.row_indices, csc.values,
        ranks, out_weight, whole, 0, n,
    )
    mid = n // 2
    proc_kernels.pagerank_range(
        csc.col_offsets, csc.row_indices, csc.values,
        ranks, out_weight, split, 0, mid,
    )
    proc_kernels.pagerank_range(
        csc.col_offsets, csc.row_indices, csc.values,
        ranks, out_weight, split, mid, n,
    )
    np.testing.assert_allclose(split, whole)


# -- end-to-end conformance against seq ------------------------------------------------


def test_bfs_matches_seq(proc_graph):
    a = bfs(proc_graph, 0, policy="seq")
    b = bfs(proc_graph, 0, policy=PROC2)
    assert np.array_equal(a.levels, b.levels)
    # Parent choice may differ from seq (the fold picks the minimum
    # proposing parent), but every parent edge must be tree-valid.
    reached = b.levels > 0
    assert np.all(b.levels[b.parents[reached]] + 1 == b.levels[reached])


def test_bfs_pull_and_auto_match_seq(proc_graph):
    for direction in ("pull", "auto"):
        a = bfs(proc_graph, 0, policy="seq", direction=direction)
        b = bfs(proc_graph, 0, policy=PROC2, direction=direction)
        assert np.array_equal(a.levels, b.levels), direction


def test_sssp_matches_seq(proc_graph):
    a = sssp(proc_graph, 0, policy="seq")
    b = sssp(proc_graph, 0, policy=PROC2)
    assert np.array_equal(a.distances, b.distances)


def test_sssp_delta_stepping_matches_seq(proc_graph):
    a = sssp_delta_stepping(proc_graph, 0, policy="seq")
    b = sssp_delta_stepping(proc_graph, 0, policy=PROC2)
    assert np.array_equal(a.distances, b.distances)


def test_cc_matches_seq(proc_graph):
    a = connected_components(proc_graph, policy="seq")
    b = connected_components(proc_graph, policy=PROC2)
    assert np.array_equal(a.labels, b.labels)


def test_pagerank_matches_vector(proc_graph):
    a = pagerank(proc_graph, policy="par_vector")
    b = pagerank(proc_graph, policy=PROC2)
    assert a.iterations == b.iterations
    np.testing.assert_allclose(a.ranks, b.ranks, atol=1e-12)


def test_fusion_off_degrades_to_vector_path(proc_graph):
    # No fused kernel -> proc_expand is skipped and the ProcPolicy rides
    # its VectorPolicy base class through the in-process overloads.
    with fusion_override(False):
        b = sssp(proc_graph, 0, policy=PROC2)
    a = sssp(proc_graph, 0, policy="seq")
    assert np.array_equal(a.distances, b.distances)


# -- observability stitching -----------------------------------------------------------


def test_probe_sees_rounds_bytes_and_worker_spans(proc_graph):
    probe = Probe()
    with probe:
        bfs(proc_graph, 0, policy=PROC2)
    metrics = probe.metrics.as_dict()
    assert metrics.get("proc.rounds", 0) > 0
    assert metrics.get("comm.bytes", 0) > 0
    names = {s.name for s in probe.tracer.spans()}
    assert "proc:round" in names
    assert "proc:task" in names
    workers = {
        s.attrs.get("worker")
        for s in probe.tracer.spans()
        if s.name == "proc:task"
    }
    assert workers == {0, 1}


def test_analysis_attributes_proc_to_comm_layer(proc_graph):
    probe = Probe()
    with probe:
        bfs(proc_graph, 0, policy=PROC2)
    report = analyze_probe(probe)
    assert report.layers.get("comm", 0.0) > 0.0
    # proc:task spans feed the worker-load table; with two ranks the
    # imbalance factor is defined (>= 1.0 by construction).
    assert {w.worker for w in report.workers} >= {0, 1}
    assert report.imbalance_factor >= 1.0


# -- supervision, cancellation, lifecycle ----------------------------------------------


def test_worker_sigkill_is_survived(proc_graph):
    expected = bfs(proc_graph, 0, policy="seq").levels
    pool = get_proc_pool(2)
    before = pool.restarts
    os.kill(pool.worker_pids()[0], signal.SIGKILL)
    time.sleep(0.05)
    got = bfs(proc_graph, 0, policy=PROC2).levels
    assert np.array_equal(expected, got)
    assert pool.restarts == before + 1


def test_cancellation_reaches_rounds(proc_graph):
    from repro.resilience.deadline import CancelToken

    token = CancelToken()
    token.cancel("test")
    with token:
        result = pagerank(proc_graph, policy=PROC2, max_iterations=50)
    assert result.iterations == 0
    assert not result.converged


def test_shutdown_unlinks_every_segment(proc_graph):
    from repro.execution import proc_engine

    # Ensure the engine holds placements and mirror slots right now.
    sssp(proc_graph, 0, policy=PROC2)
    assert shm.live_segment_names()
    proc_engine.shutdown()
    assert shm.live_segment_names() == []
    # The machinery must come back cleanly after a full teardown.
    a = bfs(proc_graph, 0, policy="seq")
    b = bfs(proc_graph, 0, policy=PROC2)
    assert np.array_equal(a.levels, b.levels)


def test_subprocess_exit_leaves_no_shm_and_no_tracker_noise(tmp_path):
    """A fresh interpreter that runs par_proc and exits normally must
    leave /dev/shm clean and print no resource-tracker warnings."""
    script = tmp_path / "run_par_proc.py"
    script.write_text(
        textwrap.dedent(
            """
            import numpy as np
            from repro.algorithms import bfs, sssp
            from repro.execution import par_proc, shm
            from repro.graph.generators import rmat

            def main():
                g = rmat(8, 8, weighted=True, seed=3)
                policy = par_proc.with_workers(2)
                a = bfs(g, 0, policy="seq")
                b = bfs(g, 0, policy=policy)
                assert np.array_equal(a.levels, b.levels)
                s = sssp(g, 0, policy=policy)
                assert np.array_equal(
                    s.distances, sssp(g, 0, policy="seq").distances
                )
                print("SEGMENTS", ";".join(shm.live_segment_names()))

            if __name__ == "__main__":
                main()
            """
        )
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "resource_tracker" not in proc.stderr
    assert "Traceback" not in proc.stderr
    # The atexit sweep ran: whatever segments were live at the print are
    # named repro_shm_<pid>_* and must be gone from /dev/shm now.
    seg_line = next(
        line for line in proc.stdout.splitlines() if line.startswith("SEGMENTS")
    )
    names = [n for n in seg_line.split(" ", 1)[-1].split(";") if n]
    assert names, "the run should have had live segments before exit"
    if os.path.isdir("/dev/shm"):  # POSIX: verify the unlink actually landed
        for name in names:
            assert not os.path.exists(os.path.join("/dev/shm", name)), name
