"""Tests for the command-line interface (direct main() invocation)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graph.generators import grid_2d
from repro.graph.io import load_graph_npz, save_graph_npz


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.npz"
    save_graph_npz(grid_2d(6, 6, weighted=True, seed=1), path)
    return str(path)


class TestGenerate:
    @pytest.mark.parametrize("kind", ["rmat", "er", "grid", "ws", "ba"])
    def test_kinds(self, tmp_path, kind, capsys):
        out = str(tmp_path / f"{kind}.npz")
        rc = main(
            ["generate", kind, out, "--scale", "6", "--edge-factor", "4",
             "--seed", "3"]
        )
        assert rc == 0
        g = load_graph_npz(out)
        assert g.n_vertices > 0 and g.n_edges > 0
        assert "wrote" in capsys.readouterr().out

    def test_weighted_flag(self, tmp_path):
        out = str(tmp_path / "w.npz")
        main(["generate", "rmat", out, "--scale", "6", "--weighted"])
        assert load_graph_npz(out).properties.weighted

    def test_edgelist_output(self, tmp_path):
        out = str(tmp_path / "g.txt")
        main(["generate", "grid", out, "--scale", "4"])
        assert "vertices" in open(out).readline()

    def test_deterministic(self, tmp_path):
        a = str(tmp_path / "a.npz")
        b = str(tmp_path / "b.npz")
        main(["generate", "rmat", a, "--scale", "6", "--seed", "9"])
        main(["generate", "rmat", b, "--scale", "6", "--seed", "9"])
        ga, gb = load_graph_npz(a), load_graph_npz(b)
        assert np.array_equal(
            ga.csr().column_indices, gb.csr().column_indices
        )


class TestInfo:
    def test_plain(self, graph_file, capsys):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "n_vertices" in out and "36" in out

    def test_json_with_components(self, graph_file, capsys):
        assert main(["info", graph_file, "--components", "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["n_vertices"] == 36
        assert info["n_components"] == 1


class TestConvert:
    @pytest.mark.parametrize("ext", ["mtx", "gr", "txt"])
    def test_roundtrip_through_format(self, graph_file, tmp_path, ext, capsys):
        mid = str(tmp_path / f"g.{ext}")
        back = str(tmp_path / "back.npz")
        assert main(["convert", graph_file, mid]) == 0
        assert main(["convert", mid, back]) == 0
        original = load_graph_npz(graph_file)
        restored = load_graph_npz(back)
        assert restored.n_vertices == original.n_vertices
        assert restored.n_edges == original.n_edges


class TestRun:
    @pytest.mark.parametrize(
        "algorithm", ["sssp", "bfs", "pagerank", "cc", "kcore", "color"]
    )
    def test_algorithms(self, graph_file, algorithm, capsys):
        assert main(["run", algorithm, graph_file]) == 0
        out = capsys.readouterr().out
        assert "supersteps" in out

    def test_tc(self, graph_file, capsys):
        assert main(["run", "tc", graph_file]) == 0
        assert "triangles: 0" in capsys.readouterr().out  # grids have none

    def test_head_prints_values(self, graph_file, capsys):
        main(["run", "sssp", graph_file, "--head", "3"])
        assert "first 3 values" in capsys.readouterr().out

    def test_output_npy(self, graph_file, tmp_path, capsys):
        out = str(tmp_path / "dist.npy")
        main(["run", "sssp", graph_file, "--output", out])
        dist = np.load(out)
        assert dist.shape == (36,)
        assert dist[0] == 0.0

    def test_policy_flag(self, graph_file, capsys):
        assert main(["run", "sssp", graph_file, "--policy", "seq"]) == 0

    def test_sssp_matches_library(self, graph_file, tmp_path):
        from repro.algorithms import sssp

        out = str(tmp_path / "d.npy")
        main(["run", "sssp", graph_file, "--output", out])
        ref = sssp(load_graph_npz(graph_file), 0).distances
        assert np.allclose(np.load(out), ref)


class TestPartition:
    @pytest.mark.parametrize(
        "method", ["random", "contiguous", "ldg", "fennel", "metis"]
    )
    def test_methods(self, graph_file, method, capsys):
        assert main(["partition", graph_file, "--method", method]) == 0
        out = capsys.readouterr().out
        assert "edge_cut=" in out and "balance=" in out

    def test_assignment_output(self, graph_file, tmp_path):
        out = str(tmp_path / "parts.npy")
        main(["partition", graph_file, "--parts", "3", "--output", out])
        assignment = np.load(out)
        assert assignment.shape == (36,)
        assert set(np.unique(assignment)) <= {0, 1, 2}


class TestTable1:
    def test_prints_and_verifies(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Timing" in out and "Partitioning" in out
        assert "verified" in out


class TestInfoStats:
    def test_stats_flag(self, graph_file, capsys):
        assert main(["info", graph_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "degree_skew" in out
        assert "diameter_lower_bound" in out
        assert "hints" in out

    def test_stats_json(self, graph_file, capsys):
        assert main(["info", graph_file, "--stats", "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["diameter_lower_bound"] == 10  # 6x6 grid diameter


class TestRunExtendedAlgorithms:
    @pytest.mark.parametrize("algorithm", ["ppr", "mis", "communities"])
    def test_new_algorithms(self, graph_file, algorithm, capsys):
        assert main(["run", algorithm, graph_file]) == 0
        assert "supersteps" in capsys.readouterr().out

    def test_ktruss(self, graph_file, capsys):
        assert main(["run", "ktruss", graph_file]) == 0
        assert "max truss: 2" in capsys.readouterr().out  # grid: no triangles

    def test_mis_reports_size(self, graph_file, capsys):
        main(["run", "mis", graph_file])
        assert "independent set size:" in capsys.readouterr().out

    def test_communities_reports_modularity(self, graph_file, capsys):
        main(["run", "communities", graph_file])
        assert "Q=" in capsys.readouterr().out

    def test_scc(self, graph_file, capsys):
        assert main(["run", "scc", graph_file]) == 0
        assert "strongly connected" in capsys.readouterr().out
