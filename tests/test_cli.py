"""Tests for the command-line interface (direct main() invocation)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graph.generators import grid_2d
from repro.graph.io import load_graph_npz, save_graph_npz


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.npz"
    save_graph_npz(grid_2d(6, 6, weighted=True, seed=1), path)
    return str(path)


class TestGenerate:
    @pytest.mark.parametrize("kind", ["rmat", "er", "grid", "ws", "ba"])
    def test_kinds(self, tmp_path, kind, capsys):
        out = str(tmp_path / f"{kind}.npz")
        rc = main(
            ["generate", kind, out, "--scale", "6", "--edge-factor", "4",
             "--seed", "3"]
        )
        assert rc == 0
        g = load_graph_npz(out)
        assert g.n_vertices > 0 and g.n_edges > 0
        assert "wrote" in capsys.readouterr().out

    def test_weighted_flag(self, tmp_path):
        out = str(tmp_path / "w.npz")
        main(["generate", "rmat", out, "--scale", "6", "--weighted"])
        assert load_graph_npz(out).properties.weighted

    def test_edgelist_output(self, tmp_path):
        out = str(tmp_path / "g.txt")
        main(["generate", "grid", out, "--scale", "4"])
        assert "vertices" in open(out).readline()

    def test_deterministic(self, tmp_path):
        a = str(tmp_path / "a.npz")
        b = str(tmp_path / "b.npz")
        main(["generate", "rmat", a, "--scale", "6", "--seed", "9"])
        main(["generate", "rmat", b, "--scale", "6", "--seed", "9"])
        ga, gb = load_graph_npz(a), load_graph_npz(b)
        assert np.array_equal(
            ga.csr().column_indices, gb.csr().column_indices
        )


class TestInfo:
    def test_plain(self, graph_file, capsys):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "n_vertices" in out and "36" in out

    def test_json_with_components(self, graph_file, capsys):
        assert main(["info", graph_file, "--components", "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["n_vertices"] == 36
        assert info["n_components"] == 1


class TestConvert:
    @pytest.mark.parametrize("ext", ["mtx", "gr", "txt"])
    def test_roundtrip_through_format(self, graph_file, tmp_path, ext, capsys):
        mid = str(tmp_path / f"g.{ext}")
        back = str(tmp_path / "back.npz")
        assert main(["convert", graph_file, mid]) == 0
        assert main(["convert", mid, back]) == 0
        original = load_graph_npz(graph_file)
        restored = load_graph_npz(back)
        assert restored.n_vertices == original.n_vertices
        assert restored.n_edges == original.n_edges


class TestRun:
    @pytest.mark.parametrize(
        "algorithm", ["sssp", "bfs", "pagerank", "cc", "kcore", "color"]
    )
    def test_algorithms(self, graph_file, algorithm, capsys):
        assert main(["run", algorithm, graph_file]) == 0
        out = capsys.readouterr().out
        assert "supersteps" in out

    def test_tc(self, graph_file, capsys):
        assert main(["run", "tc", graph_file]) == 0
        assert "triangles: 0" in capsys.readouterr().out  # grids have none

    def test_head_prints_values(self, graph_file, capsys):
        main(["run", "sssp", graph_file, "--head", "3"])
        assert "first 3 values" in capsys.readouterr().out

    def test_output_npy(self, graph_file, tmp_path, capsys):
        out = str(tmp_path / "dist.npy")
        main(["run", "sssp", graph_file, "--output", out])
        dist = np.load(out)
        assert dist.shape == (36,)
        assert dist[0] == 0.0

    def test_policy_flag(self, graph_file, capsys):
        assert main(["run", "sssp", graph_file, "--policy", "seq"]) == 0

    def test_sssp_matches_library(self, graph_file, tmp_path):
        from repro.algorithms import sssp

        out = str(tmp_path / "d.npy")
        main(["run", "sssp", graph_file, "--output", out])
        ref = sssp(load_graph_npz(graph_file), 0).distances
        assert np.allclose(np.load(out), ref)


class TestPartition:
    @pytest.mark.parametrize(
        "method", ["random", "contiguous", "ldg", "fennel", "metis"]
    )
    def test_methods(self, graph_file, method, capsys):
        assert main(["partition", graph_file, "--method", method]) == 0
        out = capsys.readouterr().out
        assert "edge_cut=" in out and "balance=" in out

    def test_assignment_output(self, graph_file, tmp_path):
        out = str(tmp_path / "parts.npy")
        main(["partition", graph_file, "--parts", "3", "--output", out])
        assignment = np.load(out)
        assert assignment.shape == (36,)
        assert set(np.unique(assignment)) <= {0, 1, 2}


class TestTable1:
    def test_prints_and_verifies(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Timing" in out and "Partitioning" in out
        assert "verified" in out


class TestInfoStats:
    def test_stats_flag(self, graph_file, capsys):
        assert main(["info", graph_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "degree_skew" in out
        assert "diameter_lower_bound" in out
        assert "hints" in out

    def test_stats_json(self, graph_file, capsys):
        assert main(["info", graph_file, "--stats", "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["diameter_lower_bound"] == 10  # 6x6 grid diameter


class TestRunExtendedAlgorithms:
    @pytest.mark.parametrize("algorithm", ["ppr", "mis", "communities"])
    def test_new_algorithms(self, graph_file, algorithm, capsys):
        assert main(["run", algorithm, graph_file]) == 0
        assert "supersteps" in capsys.readouterr().out

    def test_ktruss(self, graph_file, capsys):
        assert main(["run", "ktruss", graph_file]) == 0
        assert "max truss: 2" in capsys.readouterr().out  # grid: no triangles

    def test_mis_reports_size(self, graph_file, capsys):
        main(["run", "mis", graph_file])
        assert "independent set size:" in capsys.readouterr().out

    def test_communities_reports_modularity(self, graph_file, capsys):
        main(["run", "communities", graph_file])
        assert "Q=" in capsys.readouterr().out

    def test_scc(self, graph_file, capsys):
        assert main(["run", "scc", graph_file]) == 0
        assert "strongly connected" in capsys.readouterr().out


class TestInterrupt:
    """SIGINT/SIGTERM on recording commands flush telemetry, exit 130."""

    def _boom(self, monkeypatch, exc_factory):
        import repro.algorithms

        def interrupted_pagerank(*args, **kwargs):
            raise exc_factory()

        monkeypatch.setattr(
            repro.algorithms, "pagerank", interrupted_pagerank
        )

    def test_keyboard_interrupt_exits_130_with_ledger_record(
        self, graph_file, tmp_path, monkeypatch, capsys
    ):
        from repro.observability.ledger import RunLedger

        self._boom(monkeypatch, KeyboardInterrupt)
        ledger_dir = str(tmp_path / "runs")
        rc = main(
            ["run", "pagerank", graph_file, "--ledger-dir", ledger_dir]
        )
        assert rc == 130
        assert "interrupted" in capsys.readouterr().err
        (record,) = RunLedger(ledger_dir).tail(1)
        assert record["metrics"]["interrupted"] is True
        assert record["algorithm"] == "pagerank"

    def test_interrupt_still_flushes_trace(
        self, graph_file, tmp_path, monkeypatch, capsys
    ):
        self._boom(monkeypatch, KeyboardInterrupt)
        trace = str(tmp_path / "trace.json")
        rc = main(
            ["run", "pagerank", graph_file, "--trace", trace,
             "--no-ledger"]
        )
        assert rc == 130
        assert "traceEvents" in json.load(open(trace))  # flushed, parseable

    def test_sigterm_takes_the_interrupt_path(
        self, graph_file, tmp_path, monkeypatch, capsys
    ):
        """A supervisor's TERM must behave exactly like Ctrl-C."""
        import signal
        import time

        def term_factory():
            signal.raise_signal(signal.SIGTERM)
            # The converted KeyboardInterrupt fires on a bytecode
            # boundary; if conversion failed, fail loudly instead.
            time.sleep(0.5)
            return AssertionError("SIGTERM was not converted")

        self._boom(monkeypatch, term_factory)
        rc = main(
            ["run", "pagerank", graph_file, "--ledger-dir",
             str(tmp_path / "runs")]
        )
        assert rc == 130
        assert "interrupted" in capsys.readouterr().err

    def test_profile_interrupt_exits_130(
        self, graph_file, tmp_path, monkeypatch, capsys
    ):
        self._boom(monkeypatch, KeyboardInterrupt)
        rc = main(
            ["profile", "pagerank", graph_file, "--ledger-dir",
             str(tmp_path / "runs")]
        )
        assert rc == 130
        assert "interrupted" in capsys.readouterr().err


class TestLedgerCorruptWarning:
    def test_ledger_cli_warns_on_corrupt_lines(
        self, graph_file, tmp_path, capsys
    ):
        from repro.observability.ledger import RunLedger

        ledger_dir = str(tmp_path / "runs")
        assert main(
            ["run", "bfs", graph_file, "--ledger-dir", ledger_dir]
        ) == 0
        with open(RunLedger(ledger_dir).path, "a", encoding="utf-8") as fh:
            fh.write('{"torn": "no closing brace\n')
        capsys.readouterr()
        assert main(["ledger", "--ledger-dir", ledger_dir]) == 0
        captured = capsys.readouterr()
        assert "bfs" in captured.out  # the intact record still lists
        assert "skipped 1 corrupt ledger line" in captured.err

    def test_no_warning_when_clean(self, graph_file, tmp_path, capsys):
        ledger_dir = str(tmp_path / "runs")
        main(["run", "bfs", graph_file, "--ledger-dir", ledger_dir])
        capsys.readouterr()
        main(["ledger", "--ledger-dir", ledger_dir])
        assert "corrupt" not in capsys.readouterr().err


class TestServeAndQuery:
    """End-to-end over a real process: serve, query, SIGTERM."""

    def test_serve_query_shutdown_cycle(self, tmp_path):
        import os
        import re
        import signal
        import subprocess
        import sys as sys_mod
        import time

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        data_dir = str(tmp_path / "svc")
        proc = subprocess.Popen(
            [sys_mod.executable, "-m", "repro.cli", "serve",
             "--graph", "g=grid:6", "--port", "0",
             "--data-dir", data_dir, "--no-ledger"],
            cwd="/root/repo",
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"on ([\d.]+):(\d+)", banner)
            assert match, f"no address banner in {banner!r}"
            host, port = match.group(1), match.group(2)

            rc = main(
                ["query", "g", "bfs", "--host", host, "--port", port,
                 "--param", "source=0"]
            )
            assert rc == 0

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 130
            stderr = proc.stderr.read()
            assert "interrupted" in stderr
            assert "served:" in stderr
            # The catalog manifest and journal survived the TERM.
            assert os.path.exists(os.path.join(data_dir, "catalog.json"))
            assert os.path.exists(os.path.join(data_dir, "journal.jsonl"))
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
