"""Unit tests for the conformance comparators: each equivalence spec
must accept what it should and, more importantly, reject what it must."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.verify.comparators import (
    ToleranceSpec,
    bfs_parents_valid,
    exact_equal,
    float_allclose,
    partition_isomorphic,
)


def test_exact_equal_accepts_and_rejects():
    assert exact_equal(np.array([1, 2, 3]), np.array([1, 2, 3])).ok
    out = exact_equal(np.array([1, 2, 3]), np.array([1, 9, 3]))
    assert not out.ok
    assert "1" in out.detail  # the mismatching index is named


def test_exact_equal_shape_mismatch():
    assert not exact_equal(np.zeros(3), np.zeros(4)).ok


def test_float_allclose_tolerance_band():
    a = np.array([1.0, 2.0])
    assert float_allclose(a, a + 1e-6, atol=1e-4).ok
    assert not float_allclose(a, a + 1e-2, atol=1e-4, rtol=1e-6).ok


def test_float_allclose_requires_matching_infinities():
    got = np.array([1.0, np.inf])
    want = np.array([1.0, 5.0])
    assert not float_allclose(got, want, atol=1e-4).ok
    assert float_allclose(
        np.array([np.inf]), np.array([np.inf]), atol=1e-4
    ).ok


def test_partition_isomorphic_is_label_invariant():
    a = np.array([0, 0, 1, 1, 2])
    b = np.array([7, 7, 3, 3, 9])
    assert partition_isomorphic(a, b).ok


def test_partition_isomorphic_rejects_merge_and_split():
    a = np.array([0, 0, 1, 1])
    merged = np.array([5, 5, 5, 5])
    split = np.array([1, 2, 3, 3])
    assert not partition_isomorphic(a, merged).ok
    assert not partition_isomorphic(a, split).ok


@pytest.fixture
def tie_graph():
    """Two equal-length shortest paths 0→3: predecessors may differ."""
    return from_edge_list(
        [(0, 1), (0, 2), (1, 3), (2, 3)], n_vertices=4, directed=True
    )


def test_bfs_parents_tie_tolerant(tie_graph):
    levels = np.array([0, 1, 1, 2])
    # Both parent choices for vertex 3 are valid BFS trees.
    for parent_of_3 in (1, 2):
        parents = np.array([0, 0, 0, parent_of_3])
        assert bfs_parents_valid(parents, levels, tie_graph, 0).ok


def test_bfs_parents_rejects_wrong_level_parent(tie_graph):
    levels = np.array([0, 1, 1, 2])
    parents = np.array([0, 0, 0, 0])  # 0 is two levels up, not one
    assert not bfs_parents_valid(parents, levels, tie_graph, 0).ok


def test_bfs_parents_rejects_nonedge_parent(tie_graph):
    levels = np.array([0, 1, 1, 2])
    parents = np.array([0, 2, 0, 1])  # no edge 2→1 in the graph
    assert not bfs_parents_valid(parents, levels, tie_graph, 0).ok


def test_tolerance_spec_dispatch():
    exact = ToleranceSpec(kind="exact")
    assert exact.compare(np.array([1]), np.array([1])).ok
    approx = ToleranceSpec(kind="float-atol", atol=1e-3)
    assert approx.compare(np.array([1.0]), np.array([1.0005])).ok
    assert not approx.compare(np.array([1.0]), np.array([1.5])).ok


def test_tolerance_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        ToleranceSpec(kind="vibes").compare(1, 1)
