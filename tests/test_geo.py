"""Tests for the geolocation-inference application."""

import numpy as np
import pytest

from repro.algorithms.geo import GeoResult, geolocate, haversine_km
from repro.graph import from_edge_list
from repro.graph.generators import chain, grid_2d, star


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(48.85, 2.35, 48.85, 2.35) == pytest.approx(0.0)

    def test_known_pair(self):
        # Paris -> London ≈ 344 km.
        d = haversine_km(48.8566, 2.3522, 51.5074, -0.1278)
        assert d == pytest.approx(344, abs=5)

    def test_antipodal(self):
        d = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(np.pi * 6371.0, rel=1e-3)

    def test_vectorized(self):
        d = haversine_km(
            np.zeros(3), np.zeros(3), np.zeros(3), np.array([0.0, 90.0, 180.0])
        )
        assert d.shape == (3,)
        assert d[0] == 0.0 and d[1] < d[2]


class TestGeolocate:
    def test_single_seed_floods_component(self):
        g = chain(6)
        r = geolocate(g, [0], [10.0], [20.0])
        assert r.coverage == 1.0
        # Everyone inherits the only available position.
        assert np.allclose(r.latitudes, 10.0)
        assert np.allclose(r.longitudes, 20.0)

    def test_interpolation_between_two_seeds(self):
        g = chain(3)
        r = geolocate(g, [0, 2], [0.0, 10.0], [0.0, 10.0])
        # Middle vertex sees both located neighbors: spatial median of 2
        # points lands between them.
        assert 0.0 < r.latitudes[1] < 10.0

    def test_star_hub_takes_median(self):
        g = star(5)
        # Leaves at known positions; the hub's median must be central.
        seeds = [1, 2, 3, 4, 5]
        lats = [0.0, 0.0, 0.0, 0.0, 40.0]  # one outlier
        lons = [0.0, 0.0, 0.0, 0.0, 40.0]
        r = geolocate(g, seeds, lats, lons)
        # Geometric median resists the outlier (unlike the mean = 8.0).
        assert r.latitudes[0] < 4.0

    def test_unreachable_stay_unlocated(self, two_component_graph):
        r = geolocate(two_component_graph, [0], [1.0], [1.0])
        assert r.located[:3].all()
        assert not r.located[3] and not r.located[4]
        assert np.isnan(r.latitudes[3])
        assert r.coverage == pytest.approx(3 / 5)

    def test_seeds_never_move(self):
        g = grid_2d(4, 4)
        r = geolocate(g, [0, 15], [-30.0, 30.0], [-30.0, 30.0])
        assert r.latitudes[0] == -30.0 and r.latitudes[15] == 30.0

    def test_grid_positions_form_gradient(self):
        """Seeds at opposite corners: inferred latitudes should increase
        along the diagonal (smooth propagation, no wild jumps)."""
        side = 6
        g = grid_2d(side, side)
        r = geolocate(g, [0, side * side - 1], [0.0, 10.0], [0.0, 10.0])
        assert r.coverage == 1.0
        assert r.latitudes[0] < r.latitudes[side * side - 1]

    def test_validation(self):
        g = chain(3)
        with pytest.raises(ValueError, match="equal lengths"):
            geolocate(g, [0, 1], [0.0], [0.0])
        with pytest.raises(ValueError, match="seed vertex"):
            geolocate(g, [9], [0.0], [0.0])

    def test_iteration_stats(self):
        g = chain(10)
        r = geolocate(g, [0], [0.0], [0.0])
        assert r.iterations >= 9  # one hop of coverage per round
        assert r.stats.iterations[0].frontier_size == 1
