"""The race checker: a hand-built torn read-modify-write compound is
flagged as a lost update, the properly atomic equivalent is not, and the
library's own par_nosync algorithms come out clean under perturbation."""

import threading

import numpy as np
import pytest

from repro.execution.atomics import AtomicArray
from repro.verify import (
    RaceFinding,
    RaceInstrument,
    check_races,
    specs_with_nosync,
)


def _hammer(make_worker, n_threads=8):
    """Run ``n_threads`` workers concurrently from a common barrier."""
    gate = threading.Barrier(n_threads)
    threads = [
        threading.Thread(target=make_worker(t, gate)) for t in range(n_threads)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()


def test_torn_rmw_compound_is_flagged():
    """load → compute → store without the lock loses updates; the
    instrument must catch at least one under heavy perturbation."""
    instrument = RaceInstrument(
        seed=0, watch_stores=True, sleep_probability=1.0, max_sleep=2e-4
    )
    with instrument.installed():
        shared = AtomicArray(np.full(1, 1e9))

        def make_worker(t, gate):
            rng = np.random.default_rng(t)

            def work():
                gate.wait(timeout=30)
                for _ in range(60):
                    current = shared.load(0)  # torn: min is not atomic
                    value = float(rng.uniform(0.0, 1000.0))
                    shared.store(0, min(current, value))

            return work

        _hammer(make_worker)
    assert instrument.violations, "torn RMW compound went undetected"
    assert instrument.contended_slots >= 1
    assert "lost update" in str(instrument.violations[0])


def test_atomic_min_is_not_flagged():
    """The same workload through min_at is race-free: zero violations."""
    instrument = RaceInstrument(
        seed=0, sleep_probability=1.0, max_sleep=2e-4
    )
    with instrument.installed():
        shared = AtomicArray(np.full(1, 1e9))

        def make_worker(t, gate):
            rng = np.random.default_rng(t)

            def work():
                gate.wait(timeout=30)
                for _ in range(60):
                    shared.min_at(0, float(rng.uniform(0.0, 1000.0)))

            return work

        _hammer(make_worker)
    assert instrument.violations == []
    assert instrument.op_counts["min"] == 8 * 60


def test_instrument_only_sees_arrays_created_inside():
    outside = AtomicArray(np.zeros(2))
    instrument = RaceInstrument(seed=0, perturb=False)
    with instrument.installed():
        outside.min_at(0, -1.0)  # pre-existing array: not instrumented
        inside = AtomicArray(np.zeros(2))
        inside.min_at(1, -1.0)
    assert instrument.op_counts["min"] == 1


def test_sweep_capable_specs_exist():
    specs = specs_with_nosync()
    names = {s.name for s in specs}
    assert "sssp" in names
    assert len(names) >= 3


def test_quick_sweep_is_clean():
    report = check_races(seed=0, trials=2, quick=True)
    details = [f"{f.algo}@{f.graph}[{f.kind}]: {f.detail}" for f in report.findings]
    assert report.ok, "\n".join(details)
    assert report.runs > 0


def test_sweep_rejects_unknown_algo():
    with pytest.raises(KeyError):
        check_races(seed=0, quick=True, algos=["definitely_not_an_algo"])


def test_finding_repro_command_shape():
    finding = RaceFinding(
        algo="sssp",
        graph="star16",
        seed=3,
        trial=1,
        kind="lost-update",
        detail="x",
    )
    assert (
        finding.repro
        == "repro verify --races --algo sssp --graph star16 --seed 3"
    )


def test_report_record_is_ledger_shaped():
    report = check_races(seed=0, trials=1, quick=True, algos=["sssp"])
    record = report.to_record()
    assert record["runs"] == report.runs
    assert record["n_findings"] == 0
    assert record["trials"] == 1
