"""Service observability: tracing, metrics scrape, flight recorder.

Covers the observe-enabled pipeline end to end: per-query trace ids
propagated over a live socket into ``par_proc`` worker rounds, the
``metrics`` op in both JSON and Prometheus shapes (validated by the
same validators CI runs), latency percentiles in ``stats``, and the
incident flight recorder's dump-on-degradation contract.
"""

import json
import os

import pytest

from repro.observability.flight import (
    INCIDENT_SCHEMA,
    FlightRecorder,
    validate_incident_jsonl,
)
from repro.observability.ledger import RunLedger
from repro.observability.prom import (
    METRICS_SCHEMA,
    metrics_to_prometheus,
    validate_metrics_json,
    validate_prometheus,
)
from repro.service import (
    GraphCatalog,
    GraphQueryServer,
    QueryService,
    ServiceClient,
    ServiceConfig,
)


@pytest.fixture
def observed(tmp_path):
    """An observe-enabled service over a small grid, ledger on."""
    cat = GraphCatalog()
    cat.add({"name": "g", "generator": "grid", "scale": 8, "seed": 0})
    cwd = os.getcwd()
    os.chdir(tmp_path)  # incidents default under .repro/ of the cwd
    service = QueryService(
        cat,
        data_dir=str(tmp_path / "svc"),
        config=ServiceConfig(observe=True, record_ledger=True),
    )
    yield service
    service.close()
    os.chdir(cwd)


def query(service, algorithm="bfs", graph="g", params=None, **extra):
    req = {
        "op": "query",
        "graph": graph,
        "algorithm": algorithm,
        "params": params or {"source": 0},
    }
    req.update(extra)
    return service.handle(req)


def incident_files(tmp_path):
    root = tmp_path / ".repro" / "incidents"
    return sorted(root.glob("*.jsonl")) if root.is_dir() else []


# -- flight recorder unit --------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded(self, tmp_path):
        fr = FlightRecorder(str(tmp_path), capacity=4)
        for i in range(10):
            fr.record("tick", i=i)
        ring = fr.snapshot()
        assert len(ring) == 4
        assert [e["i"] for e in ring] == [6, 7, 8, 9]
        assert fr.stats()["recorded"] == 10

    def test_incident_dump_shape(self, tmp_path):
        fr = FlightRecorder(str(tmp_path), capacity=8)
        fr.record("query", qid="q1", code=200)
        span = {
            "id": 1, "name": "service:query", "ts": 0.0, "dur": 1.0,
            "parent": None, "attrs": {"trace_id": "q2"}, "events": [],
        }
        path = fr.incident("code_504", trace_id="q2", spans=[span], code=504)
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        assert validate_incident_jsonl(lines) == []
        header = json.loads(lines[0])
        assert header["schema"] == INCIDENT_SCHEMA
        assert header["reason"] == "code_504"
        assert header["trace_id"] == "q2"
        kinds = [json.loads(line)["type"] for line in lines[1:]]
        assert "ring" in kinds and "span" in kinds
        assert fr.stats()["dumped"] == 1

    def test_validator_rejects_headerless_file(self):
        bad = [json.dumps({"type": "ring", "kind": "query", "at": 0.0}) + "\n"]
        assert validate_incident_jsonl(bad)

    def test_incident_ids_are_unique(self, tmp_path):
        fr = FlightRecorder(str(tmp_path))
        paths = {fr.incident("code_504", trace_id=f"q{i}") for i in range(3)}
        assert len(paths) == 3


# -- the observe-enabled pipeline ------------------------------------------------------


class TestObservedService:
    def test_ok_query_dumps_no_incident(self, observed, tmp_path):
        resp = query(observed)
        assert resp["code"] == 200
        assert resp["server"]["qid"].startswith("q")
        assert incident_files(tmp_path) == []

    def test_deadline_504_dumps_ledgered_incident(self, observed, tmp_path):
        resp = query(observed, "sssp", timeout_s=1e-4)
        assert resp["code"] == 504
        qid = resp["server"]["qid"]

        files = incident_files(tmp_path)
        assert len(files) == 1
        with open(files[0], encoding="utf-8") as fh:
            lines = fh.readlines()
        assert validate_incident_jsonl(lines) == []
        header = json.loads(lines[0])
        assert header["reason"] == "code_504"
        assert header["trace_id"] == qid

        record = RunLedger(str(tmp_path / "svc" / "runs")).get(qid)
        assert record is not None
        assert record["incident"].endswith(os.path.basename(files[0]))
        names = {s["name"] for s in record["trace"]}
        assert "service:query" in names
        assert "service:execute" in names

    def test_trace_is_one_tree_under_the_qid(self, observed):
        resp = query(observed)
        qid = resp["server"]["qid"]
        record = RunLedger(str(observed.data_dir) + "/runs").get(qid)
        trace = record["trace"]
        root = trace[-1]
        assert root["name"] == "service:query"
        assert root["attrs"]["trace_id"] == qid
        assert root["attrs"]["code"] == 200
        ids = {s["id"] for s in trace}
        for span in trace:
            assert span["parent"] is None or span["parent"] in ids
        assert any(s["name"].startswith("operator:") for s in trace)

    def test_early_rejection_is_not_an_incident(self, observed, tmp_path):
        assert query(observed, graph="nope")["code"] == 404
        assert incident_files(tmp_path) == []

    def test_unknown_graphs_never_become_latency_keys(self, observed):
        """404s stay out of the per-key histograms — the key would come
        from a client-supplied name, an unbounded-cardinality hole."""
        for i in range(3):
            query(observed, graph=f"bogus-{i}")
        query(observed)
        latency = observed.stats()["latency_ms"]
        assert set(latency) == {"g/bfs", "_all"}
        assert latency["_all"]["count"] == 4  # the aggregate still counts them

    def test_concurrent_queries_keep_traces_apart(self, observed):
        import threading

        responses = []
        lock = threading.Lock()

        def run(i):
            resp = query(observed, params={"source": i})
            with lock:
                responses.append(resp)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert len(responses) == 4
        ledger = RunLedger(str(observed.data_dir) + "/runs")
        for resp in responses:
            qid = resp["server"]["qid"]
            record = ledger.get(qid)
            root = record["trace"][-1]
            assert root["attrs"]["trace_id"] == qid

    def test_close_releases_the_probe(self, observed):
        from repro.observability.probe import active_probe

        assert active_probe().enabled
        observed.close()
        assert not active_probe().enabled
        observed.close()  # idempotent


# -- metrics scrape --------------------------------------------------------------------


class TestMetricsScrape:
    def test_snapshot_passes_both_validators(self, observed):
        query(observed)
        query(observed, "sssp", timeout_s=1e-4)
        snapshot = observed.metrics_snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA
        assert validate_metrics_json(snapshot) == []
        text = metrics_to_prometheus(snapshot)
        assert validate_prometheus(text.splitlines()) == []
        assert "repro_responses_total" in text
        assert 'quantile="0.99"' in text

    def test_metrics_op_json_and_prom(self, observed):
        query(observed)
        resp = observed.handle({"op": "metrics"})
        assert resp["code"] == 200
        assert resp["result"]["schema"] == METRICS_SCHEMA
        prom = observed.handle({"op": "metrics", "format": "prom"})
        assert prom["code"] == 200
        assert prom["result"]["format"] == "prometheus"
        assert validate_prometheus(prom["result"]["text"].splitlines()) == []

    def test_stats_carries_percentiles(self, observed):
        for _ in range(3):
            query(observed)
        stats = observed.stats()
        entry = stats["latency_ms"]["g/bfs"]
        for key in ("count", "p50", "p95", "p99"):
            assert key in entry
        assert entry["p50"] <= entry["p95"] <= entry["p99"]
        assert stats["latency_ms"]["_all"]["count"] >= 3

    def test_snapshot_tracks_epoch_lag(self, observed):
        query(observed)
        observed.handle({"op": "mutate", "graph": "g", "insert": [[0, 9]]})
        snapshot = observed.metrics_snapshot()
        assert snapshot["epochs"]["g"]["lag"] == 1
        query(observed)
        assert observed.metrics_snapshot()["epochs"]["g"]["lag"] == 0

    def test_observe_off_snapshot_still_validates(self, tmp_path):
        cat = GraphCatalog()
        cat.add({"name": "g", "generator": "grid", "scale": 6})
        service = QueryService(
            cat, config=ServiceConfig(record_ledger=False)
        )
        service.handle({
            "op": "query", "graph": "g", "algorithm": "bfs",
            "params": {"source": 0},
        })
        snapshot = service.metrics_snapshot()
        assert validate_metrics_json(snapshot) == []
        text = metrics_to_prometheus(snapshot)
        assert validate_prometheus(text.splitlines()) == []
        assert service.stats().get("latency_ms") is None


# -- live socket + par_proc ------------------------------------------------------------


class TestLiveTracePropagation:
    @pytest.fixture
    def running(self, tmp_path):
        cat = GraphCatalog()
        cat.add({"name": "g", "generator": "grid", "scale": 8, "seed": 0})
        cwd = os.getcwd()
        os.chdir(tmp_path)
        service = QueryService(
            cat,
            data_dir=str(tmp_path / "svc"),
            config=ServiceConfig(observe=True, record_ledger=True),
        )
        server = GraphQueryServer(service)
        server.start()
        yield server, service
        server.stop()
        os.chdir(cwd)

    def test_proc_task_spans_carry_the_query_trace_id(self, running):
        server, service = running
        host, port = server.address
        with ServiceClient(host, port) as client:
            resp = client.query(
                "g", "sssp", {"source": 0, "policy": "par_proc"}
            )
        assert resp["code"] == 200
        qid = resp["server"]["qid"]
        record = RunLedger(str(service.data_dir) + "/runs").get(qid)
        trace = record["trace"]
        proc_tasks = [s for s in trace if s["name"] == "proc:task"]
        assert proc_tasks, "par_proc rounds left no proc:task spans"
        for span in proc_tasks:
            assert span["attrs"]["trace_id"] == qid
            assert "worker" in span["attrs"]
        root = trace[-1]
        assert root["name"] == "service:query"
        assert root["attrs"]["trace_id"] == qid
        ids = {s["id"] for s in trace}
        orphans = [
            s for s in trace
            if s["parent"] is not None and s["parent"] not in ids
        ]
        assert orphans == []

    def test_metrics_scrape_over_the_wire(self, running):
        server, service = running
        host, port = server.address
        with ServiceClient(host, port) as client:
            client.query("g", "bfs", {"source": 0})
            snapshot = client.metrics()
            assert validate_metrics_json(snapshot) == []
            prom = client.metrics(format="prom")
        assert prom["format"] == "prometheus"
        assert validate_prometheus(prom["text"].splitlines()) == []

    def test_forced_504_dumps_incident_over_the_wire(self, running, tmp_path):
        server, service = running
        host, port = server.address
        with ServiceClient(host, port) as client:
            resp = client.query("g", "sssp", {"source": 0}, timeout_s=1e-4)
        assert resp["code"] == 504
        files = incident_files(tmp_path)
        assert len(files) == 1
        with open(files[0], encoding="utf-8") as fh:
            assert validate_incident_jsonl(fh.readlines()) == []
