"""Property-based partitioning tests (hypothesis).

The laws every partitioner must satisfy on arbitrary graphs: valid part
ids, full coverage, determinism under a fixed seed, metric sanity
(cut bounded by edge count, single part cuts nothing, balance ≥ 1).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_array
from repro.partition import (
    PartitionAssignment,
    communication_volume,
    contiguous_partition,
    edge_cut,
    fennel_partition,
    ldg_partition,
    load_balance,
    metis_like_partition,
    random_partition,
    round_robin_partition,
)
from repro.types import VERTEX_DTYPE

N = 20

PARTITIONERS = [
    lambda g, k: random_partition(g, k, seed=0),
    contiguous_partition,
    round_robin_partition,
    lambda g, k: ldg_partition(g, k, seed=0),
    lambda g, k: fennel_partition(g, k, seed=0),
    lambda g, k: metis_like_partition(g, k, seed=0),
]


@st.composite
def graphs(draw):
    n_edges = draw(st.integers(0, 60))
    srcs = draw(st.lists(st.integers(0, N - 1), min_size=n_edges, max_size=n_edges))
    dsts = draw(st.lists(st.integers(0, N - 1), min_size=n_edges, max_size=n_edges))
    return from_edge_array(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        None,
        n_vertices=N,
        directed=False,
        remove_self_loops=True,
        deduplicate=True,
    )


@given(graphs(), st.integers(1, 6), st.integers(0, len(PARTITIONERS) - 1))
@settings(max_examples=40, deadline=None)
def test_partition_is_valid_and_total(g, k, which):
    p = PARTITIONERS[which](g, k)
    assert p.n_vertices == N
    assert p.n_parts == k
    assert int(p.assignment.min(initial=0)) >= 0
    assert int(p.assignment.max(initial=0)) < k
    # Coverage: every vertex appears in exactly one part.
    assert sum(p.vertices_of(i).shape[0] for i in range(k)) == N


@given(graphs(), st.integers(1, 6), st.integers(0, len(PARTITIONERS) - 1))
@settings(max_examples=40, deadline=None)
def test_metric_sanity(g, k, which):
    p = PARTITIONERS[which](g, k)
    cut = edge_cut(g, p)
    assert 0 <= cut <= g.n_edges
    assert load_balance(p) >= 1.0 - 1e-12
    assert 0 <= communication_volume(g, p) <= g.n_edges


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_single_part_cuts_nothing(g):
    p = PartitionAssignment(np.zeros(N, dtype=np.int64), 1)
    assert edge_cut(g, p) == 0
    assert communication_volume(g, p) == 0


@given(graphs(), st.integers(2, 5))
@settings(max_examples=30, deadline=None)
def test_deterministic_given_seed(g, k):
    for fn in (random_partition, ldg_partition, metis_like_partition):
        a = fn(g, k, seed=7)
        b = fn(g, k, seed=7)
        assert np.array_equal(a.assignment, b.assignment)


@given(graphs(), st.integers(2, 5))
@settings(max_examples=30, deadline=None)
def test_cut_counts_both_arcs_symmetrically(g, k):
    """Undirected storage: the cut over (u,v) arcs equals the cut over
    (v,u) arcs, so edge_cut is even."""
    p = random_partition(g, k, seed=1)
    assert edge_cut(g, p) % 2 == 0
