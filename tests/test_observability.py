"""Observability subsystem tests: tracing, metrics, exporters, probe
ambience, and the disabled-path overhead bound.

The headline properties the issue pins:

* spans nest correctly under the threaded scheduler (per-thread stacks);
* the Chrome trace export passes its own schema validator and carries
  one track per worker thread;
* the disabled probe costs under 2% on a grid-SSSP workload;
* legacy ``ResilienceCounters`` names appear unchanged in the probe's
  :class:`MetricsRegistry` while a probe is ambient;
* the asynchronous enactor reports the same ``loop.*`` metric shape as
  the BSP enactors (stats parity).
"""

import json
import threading
import time
from collections import defaultdict

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.sssp import sssp, sssp_async
from repro.execution.scheduler import AsyncScheduler
from repro.graph.generators import grid_2d
from repro.loop.enactor import Enactor
from repro.observability.export import (
    SCHEMA_VERSION,
    render_summary,
    to_chrome_trace,
    validate_chrome_trace,
    validate_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.probe import (
    NULL_PROBE,
    NullProbe,
    Probe,
    active_probe,
    install_probe,
    uninstall_probe,
)
from repro.observability.profile import PROFILED_ALGORITHMS, profile_algorithm
from repro.observability.span import Span, SpanEvent
from repro.observability.tracer import Tracer
from repro.observability.validate import validate_file
from repro.resilience import FaultInjector, ResiliencePolicy, RetryPolicy
from repro.utils.counters import ResilienceCounters, RunStats
from repro.utils.timing import WallClock


@pytest.fixture
def grid():
    return grid_2d(16, 16, weighted=True, seed=0)


# -- tracer ---------------------------------------------------------------------------


def test_span_nesting_single_thread():
    tracer = Tracer()
    with tracer.span("superstep", iteration=0) as outer:
        with tracer.span("operator:advance") as inner:
            assert tracer.current_span() is inner
        assert tracer.current_span() is outer
    assert tracer.current_span() is None
    spans = tracer.spans()
    assert [s.name for s in spans] == ["operator:advance", "superstep"]
    assert spans[0].parent_id == spans[1].span_id
    assert spans[1].parent_id is None


def test_span_records_error_attribute():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("superstep"):
            raise ValueError("boom")
    (span,) = tracer.spans()
    assert span.attrs["error"] == "ValueError"
    assert span.end is not None


def test_span_buffer_bounded():
    tracer = Tracer(max_spans=5)
    for _ in range(8):
        with tracer.span("s"):
            pass
    assert len(tracer) == 5
    assert tracer.dropped == 3
    tracer.clear()
    assert len(tracer) == 0 and tracer.dropped == 0


def test_event_attaches_to_open_span_only():
    tracer = Tracer()
    tracer.event("orphan")  # silently dropped: no span open
    with tracer.span("superstep"):
        tracer.event("fault", kind="task")
    (span,) = tracer.spans()
    assert [e.name for e in span.events] == ["fault"]
    assert span.events[0].attrs == {"kind": "task"}


def test_span_nesting_under_threaded_scheduler():
    """Worker spans parent per-thread, never across threads."""
    probe = Probe()
    sched = AsyncScheduler(num_workers=4)

    def process(item, push):
        if item < 32:
            push(item + 100)

    with probe:
        with probe.span("superstep", iteration=0):
            sched.run(process, list(range(32)), capacity=1024)

    spans = probe.tracer.spans()
    tasks = [s for s in spans if s.name == "scheduler:task"]
    root = next(s for s in spans if s.name == "superstep")
    assert len(tasks) == 64  # 32 seeds + 32 children
    # The scheduler's workers are their own threads: their spans must
    # not claim the main thread's superstep as a parent.
    main_ident = threading.get_ident()
    for t in tasks:
        assert t.thread_id != main_ident
        assert t.parent_id is None
        assert t.attrs["worker"] in range(4)
    assert root.parent_id is None
    # Per-worker tracks exist: more than one distinct worker thread ran.
    assert len({t.thread_id for t in tasks}) >= 1


# -- metrics --------------------------------------------------------------------------


def test_counter_monotone():
    c = Counter("x")
    c.increment()
    c.increment(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.increment(-1)


def test_gauge_last_value_wins():
    g = Gauge("x")
    g.set(3)
    g.set(7)
    assert g.value == 7


def test_histogram_summary_and_percentiles():
    h = Histogram("x")
    for v in range(1, 101):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 100 and s["min"] == 1 and s["max"] == 100
    assert s["mean"] == pytest.approx(50.5)
    assert h.percentile(50) == pytest.approx(50, abs=1)
    assert h.percentile(100) == 100
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_reservoir_bounded():
    h = Histogram("x", reservoir=10)
    for v in range(1000):
        h.observe(v)
    assert h.count == 1000  # exact count survives the bounded sample
    assert h.summary()["max"] == 999


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("a")
    with pytest.raises(TypeError):
        reg.gauge("a")


def test_registry_record_run_folds_runstats(grid):
    result = sssp(grid, 0)
    reg = MetricsRegistry()
    reg.record_run(result.stats)
    snap = reg.as_dict()
    assert snap["loop.supersteps"] == result.stats.num_iterations
    assert snap["loop.edges_expanded"] == result.stats.total_edges_touched
    assert snap["loop.converged"] == 1.0
    assert snap["loop.frontier_size"]["count"] == result.stats.num_iterations


# -- probe ambience -------------------------------------------------------------------


def test_active_probe_defaults_to_null():
    probe = active_probe()
    assert probe is NULL_PROBE
    assert not probe.enabled
    with probe.span("anything") as span:
        assert span.set("k", 1) is span  # no-op, chainable


def test_install_uninstall_and_nested_rejection():
    probe = Probe()
    with probe:
        assert active_probe() is probe
        with pytest.raises(RuntimeError):
            install_probe(Probe())
    assert active_probe() is NULL_PROBE
    uninstall_probe(probe)  # idempotent


def test_metrics_only_probe_skips_spans():
    probe = Probe(trace=False)
    with probe:
        with probe.span("superstep"):
            probe.counter("x")
    assert len(probe.tracer) == 0
    assert probe.metrics.counters_dict() == {"x": 1}


def test_resilience_counters_forward_into_ambient_registry():
    """Legacy counter names land unchanged in the probe's registry."""
    counters = ResilienceCounters()
    counters.increment("tasks_retried")  # before install: not forwarded
    probe = Probe()
    with probe:
        counters.increment("tasks_retried", 2)
        counters.increment("messages_dropped", 5)
    counters.increment("messages_dropped")  # after uninstall: not forwarded
    assert counters["tasks_retried"] == 3
    assert probe.metrics.counters_dict() == {
        "tasks_retried": 2,
        "messages_dropped": 5,
    }


def test_chaos_run_metrics_match_legacy_counters(grid):
    """A chaos SSSP's registry counters equal the ResilienceCounters
    the run recorded (same names, same values)."""
    policy = ResiliencePolicy(
        chaos=FaultInjector.uniform(seed=0, rate=0.1),
        retry=RetryPolicy(max_attempts=12, base_delay=0.0, max_delay=0.0),
    )
    probe = Probe(trace=False)
    with probe:
        sssp(grid, 0, resilience=policy)
    legacy = policy.counters.as_dict()
    mirrored = probe.metrics.counters_dict()
    for name, value in legacy.items():
        assert mirrored.get(name) == value, name


# -- instrumented layers --------------------------------------------------------------


def test_enactor_superstep_spans_carry_loop_attributes(grid):
    probe = Probe()
    with probe:
        result = sssp(grid, 0)
    supersteps = [s for s in probe.tracer.spans() if s.name == "superstep"]
    assert len(supersteps) == result.stats.num_iterations
    for span, it in zip(supersteps, result.stats.iterations):
        assert span.attrs["frontier_size"] == it.frontier_size
        assert span.attrs["edges_expanded"] == it.edges_touched
    advances = [s for s in probe.tracer.spans() if s.name == "operator:advance"]
    assert advances, "advance operator spans missing"
    assert probe.metrics.counters_dict()["loop.supersteps"] == len(supersteps)


def test_async_enactor_stats_parity(grid):
    """The async enactor exposes the same RunStats shape and the same
    loop.* metric names as the BSP enactors."""
    probe = Probe(trace=False)
    with probe:
        result = sssp_async(grid, 0, num_workers=2)
    assert isinstance(result.stats, RunStats)
    assert result.stats.converged
    assert result.stats.num_iterations == 1  # one pseudo-iteration
    assert result.stats.total_edges_touched > 0
    counters = probe.metrics.counters_dict()
    for name in ("loop.supersteps", "loop.edges_expanded",
                 "scheduler.tasks_processed"):
        assert name in counters, name
    # Distances agree with the synchronous baseline, as before.
    baseline = sssp(grid, 0)
    np.testing.assert_allclose(result.distances, baseline.distances)


def test_pregel_run_reports_superstep_spans_and_counters(grid):
    from repro.algorithms.pregel_programs import pregel_pagerank

    probe = Probe()
    with probe:
        pregel_pagerank(grid)
    spans = probe.tracer.spans()
    assert any(s.name == "superstep" for s in spans)
    assert any(s.name == "pregel:rank" for s in spans)
    assert any(s.name == "mailbox:deliver" for s in spans)
    counters = probe.metrics.counters_dict()
    assert counters["pregel.supersteps"] > 0
    assert counters["comm.messages_sent"] > 0


def test_fault_events_attach_to_spans(grid):
    """Injected faults and retries surface as span events."""
    policy = ResiliencePolicy(
        chaos=FaultInjector(seed=0, task_rate=0.2),
        retry=RetryPolicy(max_attempts=12, base_delay=0.0, max_delay=0.0),
    )
    probe = Probe()
    with probe:
        sssp(grid, 0, policy="par_nosync", resilience=policy)
    events = [e for s in probe.tracer.spans() for e in s.events or ()]
    names = {e.name for e in events}
    if policy.chaos.total_faults:
        assert "fault" in names
        assert "retry" in names


# -- exporters ------------------------------------------------------------------------


def _profiled_probe(grid):
    return profile_algorithm(grid, "sssp").probe


def test_chrome_trace_schema_valid(grid):
    trace = to_chrome_trace(_profiled_probe(grid))
    assert validate_chrome_trace(trace) == []
    assert trace["otherData"]["schema"] == SCHEMA_VERSION
    names = {e["name"] for e in trace["traceEvents"]}
    assert {"process_name", "thread_name", "superstep"} <= names


def test_chrome_trace_one_track_per_worker_thread(grid):
    """A threaded profile emits one thread_name metadata event per
    worker thread that recorded spans."""
    report = profile_algorithm(grid, "sssp_async", num_workers=3)
    trace = to_chrome_trace(report.probe)
    assert validate_chrome_trace(trace) == []
    meta = [e for e in trace["traceEvents"] if e["name"] == "thread_name"]
    idents = {s.thread_id for s in report.probe.tracer.spans()}
    assert len(meta) == len(idents)
    tids = {e["tid"] for e in meta}
    assert tids == set(range(len(meta)))  # dense tid remapping


def test_chrome_trace_validator_catches_malformed():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": "nope"}) != []
    bad = {"traceEvents": [{"ph": "X", "name": "s", "pid": 0, "tid": 0,
                            "ts": 0.0, "dur": -1.0}]}
    assert any("negative" in p for p in validate_chrome_trace(bad))


def test_events_jsonl_roundtrip(tmp_path, grid):
    probe = _profiled_probe(grid)
    path = tmp_path / "events.jsonl"
    write_events_jsonl(probe, str(path), algorithm="sssp")
    lines = path.read_text().splitlines()
    assert validate_events_jsonl(lines) == []
    header = json.loads(lines[0])
    assert header["schema"] == SCHEMA_VERSION
    assert header["algorithm"] == "sssp"
    assert json.loads(lines[-1])["type"] == "metrics"


def test_validate_file_dispatches_by_extension(tmp_path, grid):
    probe = _profiled_probe(grid)
    trace = tmp_path / "trace.json"
    events = tmp_path / "events.jsonl"
    write_chrome_trace(probe, str(trace))
    write_events_jsonl(probe, str(events))
    assert validate_file(str(trace)) == []
    assert validate_file(str(events)) == []
    assert validate_file(str(tmp_path / "missing.json")) != []


def test_render_summary_lists_spans_and_metrics(grid):
    text = render_summary(_profiled_probe(grid))
    assert "superstep" in text
    assert "loop.supersteps" in text
    assert render_summary(Probe()) == "(no telemetry recorded)"


def test_dropped_spans_counter_mirrors_overflow():
    """Buffer overflow shows up in the metrics sink, not just on the
    tracer — a live ``metrics`` scrape can report it without exports."""
    probe = Probe(Tracer(max_spans=3))
    for _ in range(5):
        with probe.span("s"):
            pass
    assert probe.tracer.dropped == 2
    assert probe.metrics.counter("trace.dropped_spans").value == 2
    # clear() resets the buffer accounting; the counter stays cumulative
    probe.tracer.clear()
    assert probe.tracer.dropped == 0
    assert probe.metrics.counter("trace.dropped_spans").value == 2


def test_export_warns_once_about_dropped_spans(tmp_path, capsys):
    probe = Probe(Tracer(max_spans=2))
    for _ in range(4):
        with probe.span("s"):
            pass
    write_chrome_trace(probe, str(tmp_path / "trace.json"))
    err = capsys.readouterr().err
    assert "2 spans dropped" in err
    assert "trace.json" in err


def test_export_is_silent_without_drops(tmp_path, capsys):
    probe = Probe()
    with probe.span("s"):
        pass
    write_chrome_trace(probe, str(tmp_path / "trace.json"))
    write_events_jsonl(probe, str(tmp_path / "events.jsonl"))
    assert capsys.readouterr().err == ""


# -- profile runner -------------------------------------------------------------------


def test_profile_algorithm_covers_registry(grid):
    for name in PROFILED_ALGORITHMS:
        report = profile_algorithm(grid, name, trace=False)
        assert report.seconds > 0
        summary = report.summary_metrics()
        assert summary["algorithm"] == name
        assert summary["n_vertices"] == grid.n_vertices


def test_profile_algorithm_unknown_name(grid):
    with pytest.raises(ValueError, match="unknown profile algorithm"):
        profile_algorithm(grid, "nope")


def test_profile_leaves_no_probe_installed(grid):
    profile_algorithm(grid, "bfs")
    assert active_probe() is NULL_PROBE


# -- CLI ------------------------------------------------------------------------------


def test_cli_profile_writes_valid_exports(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "t.json"
    events = tmp_path / "e.jsonl"
    code = main([
        "profile", "sssp", "--scale", "8",
        "--trace", str(trace), "--events", str(events),
    ])
    assert code == 0
    assert validate_file(str(trace)) == []
    assert validate_file(str(events)) == []
    out = capsys.readouterr().out
    assert "superstep" in out


def test_cli_profile_json_summary(capsys):
    from repro.cli import main

    assert main(["profile", "bfs", "--scale", "8", "--json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert payload["algorithm"] == "bfs"
    assert payload["spans"] > 0


def test_cli_run_trace_flag(tmp_path, capsys):
    from repro.cli import main
    from repro.graph.io import save_graph_npz

    g = grid_2d(8, 8, weighted=True, seed=0)
    gpath = tmp_path / "g.npz"
    save_graph_npz(g, str(gpath))
    trace = tmp_path / "run.json"
    assert main(["run", "sssp", str(gpath), "--trace", str(trace)]) == 0
    assert validate_file(str(trace)) == []


# -- WallClock satellites -------------------------------------------------------------


def test_wallclock_restart_after_stop_accumulates():
    clock = WallClock()
    clock.start()
    time.sleep(0.002)
    first = clock.stop()
    clock.start()  # restart after stop is allowed and resumes
    time.sleep(0.002)
    total = clock.stop()
    assert total > first


def test_wallclock_double_start_raises():
    clock = WallClock()
    clock.start()
    with pytest.raises(RuntimeError):
        clock.start()
    clock.stop()


def test_wallclock_measure_context_manager():
    clock = WallClock()
    with clock.measure():
        time.sleep(0.002)
    assert not clock.running
    assert clock.elapsed > 0
    before = clock.elapsed
    with pytest.raises(ValueError):
        with clock.measure():
            raise ValueError("stop still runs")
    assert not clock.running
    assert clock.elapsed > before


# -- overhead bound -------------------------------------------------------------------


def test_disabled_probe_overhead_under_two_percent():
    """The null-probe path must cost <2% of a grid-SSSP run.

    Direct A/B wall-clock comparison of full runs is noise-dominated at
    this workload size, so the bound is computed compositionally:
    (number of instrumentation touchpoints S, counted from an enabled
    run) x (measured per-touchpoint null cost c) must be under 2% of the
    median disabled-run time T.  Each touchpoint on the disabled path is
    one ``active_probe()`` read plus one no-op call — c is measured on
    exactly that sequence.

    The workload is sized so per-superstep kernel work dominates the
    fixed per-superstep touchpoint count (96x96: supersteps grow with
    the side, work with its square).  Smaller grids measure CPython's
    with-statement floor against nearly-empty supersteps, which is not
    the regime the bound is about — the fused-kernel speedups would
    then fail this test by making the denominator faster, with the
    disabled path's absolute cost unchanged.
    """
    g = grid_2d(96, 96, weighted=True, seed=0)

    # S: spans recorded by an enabled run bound the touchpoint count
    # (every disabled touchpoint corresponds to at most one span plus
    # the constant-per-run metric calls).
    probe = Probe()
    with probe:
        sssp(g, 0)
    touchpoints = len(probe.tracer) + 64  # spans + per-run metric calls

    def measure():
        # c: per-touchpoint cost of the disabled path, best-of-3 blocks
        # (min is the right estimator for a fixed cost under one-sided
        # scheduling noise).
        reps = 50_000
        block_times = []
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(reps):
                null = active_probe()
                with null.span("x", a=1):
                    pass
            block_times.append(time.perf_counter() - t0)
        per_op = min(block_times) / reps

        # T: median disabled run.
        times = []
        for _ in range(5):
            t0 = time.perf_counter()
            sssp(g, 0)
            times.append(time.perf_counter() - t0)
        median = sorted(times)[len(times) // 2]
        return per_op, median

    # The bound asserts a property of the code, not of the machine's
    # instantaneous load; a CPU-frequency dip or noisy neighbor inflates
    # per_op disproportionately (it is pure interpreter work while the
    # sssp denominator is partly numpy).  Re-measure up to 3 times and
    # pass if any attempt meets the bound.
    for attempt in range(3):
        per_op, median = measure()
        overhead = touchpoints * per_op
        if overhead < 0.02 * median:
            break
    assert overhead < 0.02 * median, (
        f"disabled-probe overhead {overhead * 1e3:.3f} ms exceeds 2% of "
        f"{median * 1e3:.3f} ms ({touchpoints} touchpoints x "
        f"{per_op * 1e9:.0f} ns) in all {attempt + 1} attempts"
    )


def test_null_probe_is_shared_and_allocation_free():
    assert isinstance(NULL_PROBE, NullProbe)
    assert not hasattr(NULL_PROBE, "tracer")
    with NULL_PROBE as p:
        assert p is NULL_PROBE
    span_a = NULL_PROBE.span("a").__enter__()
    span_b = NULL_PROBE.span("b").__enter__()
    assert span_a is span_b  # shared singleton, nothing allocated

# -- reservoir sampling (unbiased percentiles) ----------------------------------------


def test_histogram_reservoir_is_uniform_not_tail_biased():
    """Algorithm R keeps each observation with probability k/n, so the
    bounded sample stays representative of the whole stream — the
    percentiles of an ascending ramp must land near their true values,
    not near the tail that arrived after the reservoir filled."""
    h = Histogram("ramp", reservoir=256)
    n = 20_000
    for v in range(n):
        h.observe(v)
    assert h.count == n
    # Exact stats survive regardless of sampling.
    s = h.summary()
    assert s["min"] == 0 and s["max"] == n - 1
    assert s["mean"] == pytest.approx((n - 1) / 2)
    # A tail-biased reservoir (overwrite-on-overflow) would put p50 far
    # above n/2; a uniform one lands near it (256 samples: sd of the
    # median estimate is a few hundred).
    assert abs(h.percentile(50) - n / 2) < 0.15 * n
    assert h.percentile(10) < 0.35 * n
    assert h.percentile(90) > 0.65 * n


def test_histogram_reservoir_seeded_and_deterministic():
    """Same name, same stream => same sample (seed derives from the
    metric name), so test runs and run-to-run summaries are stable."""
    a, b = Histogram("x", reservoir=32), Histogram("x", reservoir=32)
    for v in range(5000):
        a.observe(v)
        b.observe(v)
    assert a.percentile(50) == b.percentile(50)
    assert a.percentile(99) == b.percentile(99)
    # A different name reseeds (a different but equally valid sample).
    c = Histogram("y", reservoir=32)
    for v in range(5000):
        c.observe(v)
    assert c.count == a.count


# -- summary truncation rollup --------------------------------------------------------


def test_render_summary_truncation_rolls_up_hidden_spans():
    probe = Probe()
    with probe:
        for i in range(8):
            with probe.span(f"operator:kind{i}"):
                pass
    text = render_summary(probe, top=3)
    assert "(+5 more span names," in text
    assert "ms total)" in text
    # No rollup line when everything fits.
    assert "more span names" not in render_summary(probe, top=8)


# -- instant events tie to their enclosing span ---------------------------------------


def test_chrome_instants_carry_enclosing_span_identity():
    probe = Probe()
    with probe:
        with probe.span("superstep", iteration=3):
            probe.event("retry", site="advance", attempt=1)
    trace = to_chrome_trace(probe)
    assert validate_chrome_trace(trace) == []
    (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert instant["args"]["span"] == "superstep"
    # The id matches the recorded span's id.
    (recorded,) = probe.tracer.spans()
    assert instant["args"]["span_id"] == recorded.span_id
    assert instant["s"] == "t" and instant["cat"] == "event"


def test_chrome_trace_validator_rejects_untied_instant():
    probe = Probe()
    with probe:
        with probe.span("superstep"):
            probe.event("fault", kind="task")
    trace = to_chrome_trace(probe)
    (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    del instant["args"]["span_id"]
    problems = validate_chrome_trace(trace)
    assert any("span_id" in p for p in problems)


# -- concurrent enactors under one probe ----------------------------------------------


def test_concurrent_enactors_share_one_probe(tmp_path, grid):
    """Two enactor runs driven from two threads record into the same
    ambient probe without corrupting each other's span stacks; both
    exports stay schema-valid and the tracks stay thread-separated."""
    probe = Probe()
    errors = []
    # Both threads must be alive at once: if one finished before the
    # other started, the OS could reuse the thread ident and the two
    # runs would collapse onto one track, failing the assertion below
    # for scheduling (not correctness) reasons.
    gate = threading.Barrier(2)

    def run():
        try:
            gate.wait(timeout=30)
            sssp(grid, 0)
        except Exception as exc:  # pragma: no cover - diagnostic only
            errors.append(exc)

    with probe:
        threads = [threading.Thread(target=run) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert not errors

    spans = probe.tracer.spans()
    supersteps = [s for s in spans if s.name == "superstep"]
    by_thread = defaultdict(list)
    for s in supersteps:
        by_thread[s.thread_id].append(s)
    assert len(by_thread) == 2, "each enactor thread owns its own track"
    # Parenting never crosses threads: a span's parent lives on its own
    # thread (per-thread stacks).
    ids_by_thread = {
        tid: {s.span_id for s in spans if s.thread_id == tid}
        for tid in {s.thread_id for s in spans}
    }
    for s in spans:
        if s.parent_id is not None:
            assert s.parent_id in ids_by_thread[s.thread_id]

    trace = to_chrome_trace(probe)
    assert validate_chrome_trace(trace) == []
    tids = {
        e["tid"]
        for e in trace["traceEvents"]
        if e["ph"] == "X" and e["name"] == "superstep"
    }
    assert len(tids) == 2

    events_path = tmp_path / "concurrent.jsonl"
    write_events_jsonl(probe, str(events_path))
    with open(events_path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    assert validate_events_jsonl(lines) == []
    parsed = [json.loads(line) for line in lines]
    assert sum(1 for r in parsed if r.get("type") == "span") == len(spans)


class TestLedgerCorruptLines:
    """A crashed writer's torn lines are skipped, *counted*, and
    surfaced as the ``ledger.corrupt_lines`` probe counter."""

    def _ledger_with_garbage(self, tmp_path):
        from repro.observability.ledger import RunLedger, make_record

        ledger = RunLedger(str(tmp_path))
        ledger.append(make_record(kind="run", algorithm="bfs"))
        with open(ledger.path, "a", encoding="utf-8") as fh:
            fh.write('{"torn": "no closing brace"\n')
            fh.write("not json at all\n")
            fh.write('{"valid_json": "but no run_id"}\n')
        ledger.append(make_record(kind="run", algorithm="sssp"))
        return ledger

    def test_skipped_lines_counted(self, tmp_path):
        ledger = self._ledger_with_garbage(tmp_path)
        records = list(ledger.records())
        assert [r["algorithm"] for r in records] == ["bfs", "sssp"]
        assert ledger.skipped_lines == 3

    def test_counter_resets_per_pass(self, tmp_path):
        ledger = self._ledger_with_garbage(tmp_path)
        list(ledger.records())
        list(ledger.records())
        assert ledger.skipped_lines == 3  # not 6: reset each pass

    def test_probe_counter_mirrored(self, tmp_path):
        from repro.observability.probe import Probe

        ledger = self._ledger_with_garbage(tmp_path)
        probe = Probe(trace=False)
        with probe:
            list(ledger.records())
        assert probe.metrics.counter("ledger.corrupt_lines").value == 3

    def test_clean_ledger_reports_zero(self, tmp_path):
        from repro.observability.ledger import RunLedger, make_record

        ledger = RunLedger(str(tmp_path))
        ledger.append(make_record(kind="run", algorithm="bfs"))
        list(ledger.records())
        assert ledger.skipped_lines == 0
