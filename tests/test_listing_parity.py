"""Listing-by-listing parity with the paper's code artifacts.

Each test reconstructs one listing's exact usage pattern against our
API, asserting the Python surface can express the paper's C++ verbatim
(modulo syntax).  These are the L1–L4 experiments of DESIGN.md.
"""

import numpy as np
import pytest

from repro.algorithms.sssp import sssp
from repro.baselines import dijkstra
from repro.execution import par, par_nosync, par_vector, seq
from repro.frontier import SparseFrontier
from repro.graph import from_edge_list
from repro.graph.generators import rmat
from repro.operators import neighbors_expand
from repro.execution.atomics import AtomicArray
from repro.types import INF


class TestListing1:
    """CSR storage queried through a graph-focused API."""

    def test_csr_fields_exist(self, diamond_graph):
        csr = diamond_graph.csr()
        # struct csr_t { rows, cols, row_offsets, column_indices, values }
        assert csr.n_rows == 4 and csr.n_cols == 4
        assert csr.row_offsets.shape == (5,)
        assert csr.column_indices.shape == (4,)
        assert csr.values.shape == (4,)

    def test_get_edge_weight_delegates_to_values(self, diamond_graph):
        # float get_edge_weight(e) { return values[e]; }
        csr = diamond_graph.csr()
        for e in range(diamond_graph.n_edges):
            assert diamond_graph.get_edge_weight(e) == csr.values[e]

    def test_multiple_underlying_structures(self, diamond_graph):
        """'variadic inheritance to support multiple underlying data
        structures' — one graph, several formats, same answers."""
        diamond_graph.csc()
        diamond_graph.coo()
        assert set(diamond_graph.materialized_views()) == {"csr", "csc", "coo"}
        assert (
            diamond_graph.csr().get_num_edges()
            == diamond_graph.csc().get_num_edges()
            == diamond_graph.coo().get_num_edges()
        )


class TestListing2:
    """Sparse frontier as a vector of active vertices."""

    def test_exact_member_functions(self):
        f = SparseFrontier(16)
        assert f.size() == 0
        f.add_vertex(4)
        f.add_vertex(9)
        assert f.size() == 2
        assert f.get_active_vertex(0) == 4
        assert f.get_active_vertex(1) == 9


class TestListing3:
    """neighbors_expand: policy-overloaded synchronous parallel expand."""

    def test_signature_shape(self, diamond_graph):
        # frontier_t neighbors_expand(policy, graph, frontier, condition)
        f = SparseFrontier.from_indices([0], 4)
        out = neighbors_expand(
            par, diamond_graph, f, lambda src, dst, edge, weight: True
        )
        assert sorted(out.to_indices().tolist()) == [1, 2]

    def test_overload_per_policy_same_semantics(self, small_rmat):
        f = SparseFrontier.from_indices([0, 3, 9], small_rmat.n_vertices)
        cond = lambda s, d, e, w: w < 6.0
        expected = np.sort(
            neighbors_expand(seq, small_rmat, f, cond).to_indices()
        )
        for policy in (par, par_nosync, par_vector):
            got = np.sort(
                neighbors_expand(policy, small_rmat, f, cond).to_indices()
            )
            assert np.array_equal(got, expected), policy.name

    def test_output_is_fresh_frontier(self, diamond_graph):
        f = SparseFrontier.from_indices([0], 4)
        out = neighbors_expand(par, diamond_graph, f, lambda *a: True)
        assert out is not f
        assert f.size() == 1  # input untouched


class TestListing4:
    """The complete SSSP example."""

    def test_exact_transliteration(self):
        """Build Listing 4 inline from raw components (not the packaged
        sssp()) and check it against Dijkstra."""
        g = rmat(7, 8, weighted=True, seed=3)
        n = g.n_vertices

        # std::vector<float> dist(n, FLT_MAX); dist[source] = 0;
        dist = np.full(n, INF, dtype=np.float32)
        dist[0] = 0.0
        atomic_dist = AtomicArray(dist)

        # frontier_t f; f.add_vertex(source);
        f = SparseFrontier(n)
        f.add_vertex(0)

        # while (f.size() != 0) { f = neighbors_expand(par, g, f, ...); }
        while f.size() != 0:
            def relax(src, dst, edge, weight):
                new_d = dist[src] + weight
                curr_d = atomic_dist.min_at(dst, new_d)
                return new_d < curr_d

            f = neighbors_expand(par, g, f, relax)

        assert np.allclose(dist, dijkstra(g, 0), atol=1e-3)

    def test_packaged_equivalent(self):
        g = rmat(7, 8, weighted=True, seed=3)
        r = sssp(g, 0, policy=par)
        assert np.allclose(r.distances, dijkstra(g, 0), atol=1e-3)
