"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert,
    binary_tree,
    bipartite_random,
    chain,
    complete,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    grid_2d,
    kronecker,
    rmat,
    star,
    torus_2d,
    watts_strogatz,
    with_random_weights,
)
from repro.graph.validate import validate_graph


class TestErdosRenyi:
    def test_gnp_deterministic(self):
        a = erdos_renyi_gnp(100, 0.05, seed=1)
        b = erdos_renyi_gnp(100, 0.05, seed=1)
        assert a.n_edges == b.n_edges
        assert np.array_equal(a.csr().column_indices, b.csr().column_indices)

    def test_gnp_edge_count_near_expectation(self):
        g = erdos_renyi_gnp(300, 0.05, seed=2)
        expected = 300 * 299 * 0.05
        assert abs(g.n_edges - expected) < 4 * np.sqrt(expected)

    def test_gnp_no_self_loops(self):
        g = erdos_renyi_gnp(50, 0.5, seed=3)
        coo = g.coo()
        assert not np.any(coo.rows == coo.cols)

    def test_gnp_dense_regime(self):
        g = erdos_renyi_gnp(30, 0.9, seed=4)
        assert g.n_edges > 0.8 * 30 * 29
        validate_graph(g)

    def test_gnp_p_zero_and_empty(self):
        assert erdos_renyi_gnp(10, 0.0, seed=0).n_edges == 0
        assert erdos_renyi_gnp(0, 0.5, seed=0).n_vertices == 0

    def test_gnp_undirected_symmetric(self):
        g = erdos_renyi_gnp(60, 0.1, seed=5, directed=False)
        coo = g.coo()
        pairs = set(zip(coo.rows.tolist(), coo.cols.tolist()))
        assert all((d, s) in pairs for s, d in pairs)

    def test_gnm_exact_count(self):
        g = erdos_renyi_gnm(100, 321, seed=6)
        assert g.n_edges == 321

    def test_gnm_undirected_exact_count(self):
        g = erdos_renyi_gnm(100, 200, seed=7, directed=False)
        assert g.n_edges == 400  # both arcs stored

    def test_gnm_too_many_edges_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            erdos_renyi_gnm(5, 100, seed=0)

    def test_gnm_weighted(self):
        g = erdos_renyi_gnm(50, 100, seed=8, weighted=True, weight_range=(2, 3))
        vals = g.csr().values
        assert np.all((vals >= 2) & (vals < 3))

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnp(10, 1.5)


class TestRmat:
    def test_vertex_count_power_of_two(self):
        g = rmat(7, 4, seed=1)
        assert g.n_vertices == 128

    def test_deterministic(self):
        a, b = rmat(8, 8, seed=9), rmat(8, 8, seed=9)
        assert np.array_equal(a.csr().row_offsets, b.csr().row_offsets)

    def test_degree_skew(self):
        """R-MAT with Graph500 params must be much more skewed than ER."""
        g = rmat(10, 16, seed=10)
        er = erdos_renyi_gnm(1024, g.n_edges, seed=10)
        assert g.out_degrees().max() > 3 * er.out_degrees().max()

    def test_no_self_loops_after_clean(self):
        coo = rmat(8, 8, seed=11).coo()
        assert not np.any(coo.rows == coo.cols)

    def test_dedup_makes_edges_unique(self):
        coo = rmat(7, 16, seed=12).coo()
        keys = coo.rows.astype(np.int64) * 128 + coo.cols
        assert np.unique(keys).shape[0] == keys.shape[0]

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            rmat(4, 2, a=0.9, b=0.9, c=0.9)

    def test_uniform_quadrants_approach_er(self):
        g = rmat(9, 8, a=0.25, b=0.25, c=0.25, seed=13)
        # With uniform quadrants the degree distribution is near-binomial:
        # max degree stays within a small factor of the mean.
        degs = g.out_degrees()
        assert degs.max() <= degs.mean() * 4


class TestKronecker:
    def test_vertex_count(self):
        g = kronecker([[0.9, 0.5], [0.5, 0.1]], 6, 2000, seed=1)
        assert g.n_vertices == 64

    def test_matches_rmat_family(self):
        g = kronecker([[0.57, 0.19], [0.19, 0.05]], 8, 4096, seed=2)
        assert g.n_edges > 0
        validate_graph(g)

    def test_3x3_initiator(self):
        g = kronecker(np.ones((3, 3)), 4, 500, seed=3)
        assert g.n_vertices == 81

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            kronecker(np.ones((2, 3)), 2, 10)

    def test_negative_cells_rejected(self):
        with pytest.raises(ValueError):
            kronecker([[-1, 1], [1, 1]], 2, 10)


class TestWattsStrogatz:
    def test_p_zero_is_ring(self):
        g = watts_strogatz(20, 4, 0.0, seed=1)
        assert np.all(g.out_degrees() == 4)

    def test_rewiring_changes_structure(self):
        ring = watts_strogatz(100, 4, 0.0, seed=2)
        rewired = watts_strogatz(100, 4, 1.0, seed=2)
        assert not np.array_equal(
            ring.csr().column_indices, rewired.csr().column_indices
        )

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError, match="even"):
            watts_strogatz(10, 3, 0.1)

    def test_k_ge_n_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, 0.1)

    def test_no_self_loops(self):
        coo = watts_strogatz(200, 6, 0.5, seed=3).coo()
        assert not np.any(coo.rows == coo.cols)


class TestBarabasiAlbert:
    def test_hub_formation(self):
        g = barabasi_albert(500, 3, seed=1)
        degs = g.out_degrees()
        assert degs.max() > 5 * degs.mean()

    def test_edge_count(self):
        g = barabasi_albert(100, 2, seed=2)
        # (n - m) joins, m undirected edges each, both arcs stored.
        assert g.n_edges == 2 * (100 - 2) * 2

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 5)
        with pytest.raises(ValueError):
            barabasi_albert(5, 0)


class TestLattices:
    def test_grid_degrees(self):
        g = grid_2d(3, 4)
        degs = g.out_degrees()
        assert degs.min() == 2  # corners
        assert degs.max() == 4  # interior
        assert g.n_edges == 2 * (3 * 3 + 2 * 4)

    def test_torus_uniform_degree(self):
        g = torus_2d(5, 6)
        assert np.all(g.out_degrees() == 4)

    def test_grid_single_row(self):
        g = grid_2d(1, 5)
        assert g.n_edges == 2 * 4  # a path

    def test_grid_weighted_symmetric(self):
        g = grid_2d(4, 4, weighted=True, seed=1)
        csr = g.csr()
        for v in range(g.n_vertices):
            for e in csr.get_edges(v):
                u = csr.get_dest_vertex(e)
                w = csr.get_edge_weight(e)
                back = csr.get_neighbors(u).tolist().index(v)
                w_back = csr.get_neighbor_weights(u)[back]
                assert w == pytest.approx(w_back)


class TestSyntheticShapes:
    def test_star(self):
        g = star(10)
        assert g.n_vertices == 11
        assert g.get_num_neighbors(0) == 10

    def test_chain_weighted_closed_form(self):
        g = chain(5, directed=True, weighted=True)
        # dist(0 -> k) = 1 + 2 + ... + k
        from repro.baselines import dijkstra

        d = dijkstra(g, 0)
        assert d[4] == pytest.approx(1 + 2 + 3 + 4)

    def test_complete_degrees(self):
        g = complete(6)
        assert np.all(g.out_degrees() == 5)

    def test_binary_tree_levels(self):
        g = binary_tree(3)
        assert g.n_vertices == 15
        from repro.baselines import sequential_bfs

        levels = sequential_bfs(g, 0)
        counts = np.bincount(levels)
        assert counts.tolist() == [1, 2, 4, 8]

    def test_binary_tree_depth_zero(self):
        g = binary_tree(0)
        assert g.n_vertices == 1 and g.n_edges == 0

    def test_bipartite_no_intra_side_edges(self):
        g = bipartite_random(10, 12, 0.5, seed=1)
        coo = g.coo()
        left = coo.rows < 10
        assert np.all(coo.cols[left] >= 10)
        right = coo.rows >= 10
        assert np.all(coo.cols[right] < 10)


class TestWithRandomWeights:
    def test_weights_in_range(self, small_grid):
        g = with_random_weights(small_grid, low=2.0, high=5.0, seed=1)
        vals = g.csr().values
        assert np.all((vals >= 2.0) & (vals < 5.0))

    def test_symmetric_for_undirected(self, small_grid):
        g = with_random_weights(small_grid, seed=2)
        csr = g.csr()
        v0 = int(csr.get_neighbors(0)[0])
        w_fwd = csr.get_neighbor_weights(0)[0]
        idx = csr.get_neighbors(v0).tolist().index(0)
        assert csr.get_neighbor_weights(v0)[idx] == pytest.approx(w_fwd)

    def test_bad_range_rejected(self, small_grid):
        with pytest.raises(ValueError):
            with_random_weights(small_grid, low=5.0, high=2.0)
