"""Property-based operator tests (hypothesis): the operator contracts
over arbitrary small graphs and frontiers.

Complements the example-based operator tests with the general laws:
advance output == brute-force edge filter, filter == Python filter,
uniquify == set, reduce == NumPy reduce, policy invariance throughout.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import graphs_with_frontier

from repro.frontier import DenseFrontier, SparseFrontier
from repro.operators import (
    filter_frontier,
    neighbors_expand,
    reduce_values,
    uniquify,
)
from repro.operators.advance import expand_to_edges
from repro.execution import par, par_vector, seq

N = 16

#: Shared graph+frontier strategy (tests/strategies.py); N-vertex
#: directed weighted graphs with self-loops and parallel edges.
graph_and_frontier = graphs_with_frontier


def brute_force_expand(graph, frontier_ids, threshold):
    """Reference semantics: per-edge loop over the frontier."""
    csr = graph.csr()
    out = []
    for v in frontier_ids:
        for e in csr.get_edges(int(v)):
            if csr.get_edge_weight(e) < threshold:
                out.append(csr.get_dest_vertex(e))
    return sorted(out)


@given(graph_and_frontier(), st.floats(0.0, 10.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_advance_matches_brute_force(gf, threshold):
    graph, frontier_ids = gf
    # Weights are stored float32; route the threshold through float32 so
    # the scalar (float64) and bulk (float32) comparisons agree at
    # rounding boundaries (see operators/conditions.py precision note).
    threshold = float(np.float32(threshold))
    f = SparseFrontier.from_indices(frontier_ids, N)
    out = neighbors_expand(
        par_vector, graph, f, lambda s, d, e, w: w < threshold
    )
    assert sorted(out.to_indices().tolist()) == brute_force_expand(
        graph, frontier_ids, threshold
    )


@given(graph_and_frontier(), st.floats(0.0, 10.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_advance_policy_invariance(gf, threshold):
    graph, frontier_ids = gf
    threshold = float(np.float32(threshold))  # float32-exact (see above)
    f = SparseFrontier.from_indices(frontier_ids, N)
    cond = lambda s, d, e, w: w < threshold
    results = [
        sorted(neighbors_expand(p, graph, f, cond).to_indices().tolist())
        for p in (seq, par, par_vector)
    ]
    assert results[0] == results[1] == results[2]


@given(graph_and_frontier())
@settings(max_examples=40, deadline=None)
def test_edge_expand_resolves_consistently(gf):
    graph, frontier_ids = gf
    f = SparseFrontier.from_indices(frontier_ids, N)
    ef = expand_to_edges(par_vector, graph, f, lambda *a: True)
    srcs, dsts, _ = ef.resolve(graph)
    vertex_out = neighbors_expand(par_vector, graph, f, lambda *a: True)
    assert sorted(dsts.tolist()) == sorted(vertex_out.to_indices().tolist())
    # Every resolved source must be in the input frontier.
    assert set(srcs.tolist()) <= set(int(v) for v in frontier_ids)


@given(st.lists(st.integers(0, N - 1), max_size=30), st.integers(0, N))
@settings(max_examples=60, deadline=None)
def test_filter_matches_python_filter(ids, pivot):
    f = SparseFrontier.from_indices(ids, N)
    out = filter_frontier(par_vector, f, lambda v: v < pivot)
    assert out.to_indices().tolist() == [v for v in ids if v < pivot]


@given(st.lists(st.integers(0, N - 1), max_size=30))
@settings(max_examples=60, deadline=None)
def test_uniquify_strategies_agree(ids):
    f = SparseFrontier.from_indices(ids, N)
    a = uniquify(seq, f, strategy="sort").to_indices().tolist()
    b = uniquify(seq, f, strategy="bitmap").to_indices().tolist()
    assert a == b == sorted(set(ids))


@given(
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50),
    st.sampled_from(["sum", "min", "max"]),
)
@settings(max_examples=60, deadline=None)
def test_reduce_matches_numpy(values, op):
    arr = np.asarray(values)
    got = reduce_values(par, arr, op=op)
    ref = {"sum": arr.sum(), "min": arr.min(), "max": arr.max()}[op]
    assert got == np.float64(ref) or abs(got - ref) < 1e-9 * max(1, abs(ref))


@given(graph_and_frontier())
@settings(max_examples=40, deadline=None)
def test_dense_output_is_unique_destinations(gf):
    graph, frontier_ids = gf
    f = SparseFrontier.from_indices(frontier_ids, N)
    dense = neighbors_expand(
        par_vector, graph, f, lambda *a: True, output_representation="dense"
    )
    sparse = neighbors_expand(par_vector, graph, f, lambda *a: True)
    assert dense.to_indices().tolist() == sorted(
        set(sparse.to_indices().tolist())
    )
