"""Smoke tests: every shipped example runs end to end.

Run as subprocesses with reduced problem sizes where the script accepts
one, so a broken public API (which examples exercise exactly as users
would) fails the suite.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.skipif(not EXAMPLES.exists(), reason="examples not shipped")
class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "shortest path 0 -> 3" in proc.stdout

    def test_road_network_routing_small(self):
        proc = run_example("road_network_routing.py", "16")
        assert proc.returncode == 0, proc.stderr
        assert "delta-stepping" in proc.stdout
        assert "dijkstra" in proc.stdout

    def test_social_network_analysis_small(self):
        proc = run_example("social_network_analysis.py", "8")
        assert proc.returncode == 0, proc.stderr
        assert "pagerank" in proc.stdout
        assert "sanity holds" in proc.stdout

    def test_pregel_vertex_programs(self):
        proc = run_example("pregel_vertex_programs.py")
        assert proc.returncode == 0, proc.stderr
        assert "metis-like" in proc.stdout
        assert "NO" not in proc.stdout  # every row matched

    @pytest.mark.slow
    def test_design_space_tour(self):
        proc = run_example("design_space_tour.py")
        assert proc.returncode == 0, proc.stderr
        assert "Pillar 4" in proc.stdout
        assert "all OK" in proc.stdout

    def test_community_and_walks(self):
        proc = run_example("community_and_walks.py", "400")
        assert proc.returncode == 0, proc.stderr
        assert "modularity" in proc.stdout
        assert "locality confirmed" in proc.stdout
