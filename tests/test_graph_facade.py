"""Tests for the multi-view Graph facade, builders, and validation."""

import numpy as np
import pytest

import scipy.sparse as sp

from repro.errors import GraphFormatError, GraphViewError
from repro.graph import (
    AdjacencyList,
    Graph,
    from_csr_arrays,
    from_edge_array,
    from_edge_list,
    from_networkx,
    from_scipy_sparse,
    validate_csr,
    validate_graph,
)
from repro.graph.csr import CSRMatrix


class TestViews:
    def test_lazy_view_derivation(self, diamond_graph):
        g = diamond_graph
        assert "csr" in g.materialized_views()
        assert "csc" not in g.materialized_views()
        g.csc()
        assert "csc" in g.materialized_views()

    def test_csc_is_transpose(self, diamond_graph):
        validate_graph(diamond_graph)  # forces cross-view consistency check
        diamond_graph.csc()
        validate_graph(diamond_graph)

    def test_coo_from_csr(self, diamond_graph):
        coo = diamond_graph.coo()
        pairs = set(zip(coo.rows.tolist(), coo.cols.tolist()))
        assert pairs == {(0, 1), (0, 2), (1, 3), (2, 3)}

    def test_unknown_view_rejected(self, diamond_graph):
        with pytest.raises(GraphViewError, match="unknown view"):
            diamond_graph.view("ell")

    def test_empty_views_rejected(self):
        with pytest.raises(GraphViewError):
            Graph({})

    def test_wrong_view_type_rejected(self):
        csr = CSRMatrix(1, 1, np.array([0, 0]), np.array([]), np.array([]))
        with pytest.raises(GraphViewError, match="must be a"):
            Graph({"csc": csr})

    def test_csr_derived_from_coo_only(self, diamond_graph):
        coo = diamond_graph.coo()
        g = Graph({"coo": coo})
        assert g.csr().get_num_edges() == 4

    def test_csr_derived_from_csc_only(self, diamond_graph):
        csc = diamond_graph.csc()
        g = Graph({"csc": csc})
        assert g.get_neighbors(0).tolist() == [1, 2]


class TestNativeGraphAPI:
    def test_listing1_queries(self, diamond_graph):
        g = diamond_graph
        assert g.get_num_vertices() == 4
        assert g.get_num_edges() == 4
        e0 = list(g.get_edges(0))
        assert len(e0) == 2
        assert g.get_dest_vertex(e0[0]) == 1
        assert g.get_edge_weight(e0[0]) == 1.0

    def test_degrees(self, diamond_graph):
        assert diamond_graph.out_degrees().tolist() == [2, 1, 1, 0]
        assert diamond_graph.in_degrees().tolist() == [0, 1, 1, 2]

    def test_in_neighbors(self, diamond_graph):
        assert sorted(diamond_graph.get_in_neighbors(3).tolist()) == [1, 2]

    def test_has_edge(self, diamond_graph):
        assert diamond_graph.has_edge(0, 2)
        assert not diamond_graph.has_edge(2, 0)

    def test_memory_footprint_positive(self, diamond_graph):
        diamond_graph.csc()
        fp = diamond_graph.memory_footprint()
        assert fp["csr"] > 0 and fp["csc"] > 0


class TestDerivedGraphs:
    def test_reverse(self, diamond_graph):
        r = diamond_graph.reverse()
        assert r.has_edge(3, 1) and r.has_edge(1, 0)
        assert not r.has_edge(0, 1)
        assert r.n_edges == diamond_graph.n_edges

    def test_with_sorted_neighbors_idempotent(self, small_rmat):
        s1 = small_rmat.with_sorted_neighbors()
        assert s1.properties.sorted_neighbors
        assert s1.with_sorted_neighbors() is s1
        for v in range(0, s1.n_vertices, 37):
            nbrs = s1.get_neighbors(v)
            assert np.all(np.diff(nbrs) >= 0)

    def test_induced_subgraph(self, diamond_graph):
        sub, ids = diamond_graph.induced_subgraph(np.array([0, 1, 3]))
        assert ids.tolist() == [0, 1, 3]
        assert sub.n_vertices == 3
        # Edges 0->1 and 1->3 survive (relabeled), 0->2 and 2->3 drop.
        assert sub.n_edges == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)


class TestBuilders:
    def test_from_edge_array_infers_n(self):
        g = from_edge_array([0, 5], [5, 0])
        assert g.n_vertices == 6

    def test_from_edge_array_unit_weights(self):
        g = from_edge_array([0], [1])
        assert not g.properties.weighted
        assert g.get_edge_weight(0) == 1.0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_array([0, 1], [1])
        with pytest.raises(GraphFormatError):
            from_edge_array([0], [1], [1.0, 2.0])

    def test_undirected_materializes_both_arcs(self):
        g = from_edge_array([0], [1], [3.0], directed=False)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.n_edges == 2

    def test_undirected_dedups_double_listed(self):
        g = from_edge_array([0, 1], [1, 0], [3.0, 3.0], directed=False)
        assert g.n_edges == 2

    def test_remove_self_loops(self):
        g = from_edge_array([0, 1], [0, 0], remove_self_loops=True)
        assert g.n_edges == 1
        assert not g.properties.has_self_loops

    def test_deduplicate_min_combine(self):
        g = from_edge_array(
            [0, 0], [1, 1], [5.0, 2.0], deduplicate=True, combine="min"
        )
        assert g.n_edges == 1
        assert g.get_edge_weight(0) == 2.0

    def test_from_edge_list_mixed_arity(self):
        g = from_edge_list([(0, 1), (1, 2, 7.0)])
        assert g.properties.weighted
        assert g.get_edge_weight(list(g.get_edges(0))[0]) == 1.0

    def test_from_edge_list_bad_arity(self):
        with pytest.raises(GraphFormatError):
            from_edge_list([(0, 1, 2.0, 3.0)])

    def test_from_csr_arrays(self):
        g = from_csr_arrays([0, 1, 2], [1, 0])
        assert g.n_vertices == 2
        assert g.has_edge(0, 1)

    def test_from_scipy_sparse(self):
        m = sp.csr_matrix(np.array([[0, 2.0], [0, 0]]))
        g = from_scipy_sparse(m)
        assert g.n_edges == 1
        assert g.get_edge_weight(0) == 2.0

    def test_from_scipy_rejects_nonsquare(self):
        with pytest.raises(GraphFormatError):
            from_scipy_sparse(sp.csr_matrix(np.ones((2, 3))))

    def test_from_networkx_directed(self):
        import networkx as nx

        G = nx.DiGraph()
        G.add_weighted_edges_from([("a", "b", 2.0), ("b", "c", 3.0)])
        g = from_networkx(G)
        assert g.n_vertices == 3
        assert g.properties.directed
        assert g.properties.weighted

    def test_from_networkx_undirected_symmetrizes(self):
        import networkx as nx

        G = nx.Graph()
        G.add_edge(0, 1)
        g = from_networkx(G)
        assert g.n_edges == 2
        assert not g.properties.directed


class TestAdjacencyList:
    def test_build_and_convert(self):
        adj = AdjacencyList(3)
        adj.add_edge(0, 1, 2.0)
        adj.add_undirected_edge(1, 2, 5.0)
        assert adj.get_num_edges() == 3
        assert adj.has_edge(2, 1)
        ro, ci, vals = adj.to_csr_arrays()
        g = from_csr_arrays(ro, ci, vals)
        assert g.has_edge(0, 1) and g.has_edge(1, 2) and g.has_edge(2, 1)

    def test_out_of_range_rejected(self):
        adj = AdjacencyList(2)
        with pytest.raises(GraphFormatError):
            adj.add_edge(0, 2)

    def test_iter_edges(self):
        adj = AdjacencyList(2)
        adj.add_edges([(0, 1, 1.0), (1, 0, 2.0)])
        assert list(adj.iter_edges()) == [(0, 1, 1.0), (1, 0, 2.0)]

    def test_self_loop_undirected_added_once(self):
        adj = AdjacencyList(1)
        adj.add_undirected_edge(0, 0)
        assert adj.get_num_edges() == 1


class TestValidation:
    def test_validate_good_graph(self, small_rmat):
        small_rmat.csc()
        validate_graph(small_rmat)

    def test_validate_detects_bad_columns(self):
        csr = CSRMatrix(2, 2, np.array([0, 1, 2]), np.array([0, 1]), np.ones(2))
        csr.column_indices[0] = 5  # corrupt after construction
        with pytest.raises(GraphFormatError, match="column indices"):
            validate_csr(csr)

    def test_validate_detects_decreasing_offsets(self):
        csr = CSRMatrix(2, 2, np.array([0, 2, 2]), np.array([0, 1]), np.ones(2))
        csr.row_offsets[1] = 3
        csr.row_offsets[2] = 2
        with pytest.raises(GraphFormatError, match="decreases"):
            validate_csr(csr)

    def test_validate_detects_nonfinite_weights(self):
        csr = CSRMatrix(2, 2, np.array([0, 1, 2]), np.array([0, 1]), np.ones(2))
        csr.values[0] = np.nan
        with pytest.raises(GraphFormatError, match="finite"):
            validate_csr(csr)

    def test_cross_view_mismatch_detected(self, diamond_graph):
        diamond_graph.csc()
        # Corrupt the CSC weights so the views disagree.
        diamond_graph.view("csc").values[0] += 1.0
        with pytest.raises(GraphFormatError, match="transpose"):
            validate_graph(diamond_graph)
