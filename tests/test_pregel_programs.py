"""Tests for the Pregel-model algorithm ports."""

import numpy as np
import pytest

from repro.algorithms import pagerank, sssp
from repro.algorithms.pregel_programs import (
    ComponentsProgram,
    MaxValueProgram,
    PageRankProgram,
    SSSPProgram,
    pregel_components,
    pregel_pagerank,
    pregel_sssp,
)
from repro.baselines import dijkstra, union_find_components
from repro.comm.pregel import PregelEngine
from repro.graph.generators import (
    chain,
    erdos_renyi_gnp,
    grid_2d,
    watts_strogatz,
)
from repro.types import INF


class TestMaxValueProgram:
    """The Pregel paper's own introductory example."""

    def test_floods_maximum(self):
        g = chain(12)
        engine = PregelEngine(g)
        values = engine.run(MaxValueProgram(), np.arange(12, dtype=float))
        assert np.all(values == 11.0)

    def test_supersteps_track_distance_to_max(self):
        # Max at one end of a chain: needs ~n supersteps to reach the other.
        g = chain(12)
        engine = PregelEngine(g)
        engine.run(MaxValueProgram(), np.arange(12, dtype=float))
        assert engine.stats.supersteps >= 11


class TestSSSPProgram:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: grid_2d(8, 8, weighted=True, seed=1),
            lambda: watts_strogatz(100, 6, 0.1, seed=2),
        ],
        ids=["grid", "ws"],
    )
    def test_matches_dijkstra(self, make_graph):
        g = make_graph()
        out = pregel_sssp(g, 0)
        ref = dijkstra(g, 0)
        finite = ref < 1e37
        assert np.allclose(out[finite], ref[finite], atol=1e-3)
        assert np.all(out[~finite] >= 1e37)

    def test_matches_operator_sssp(self, weighted_grid):
        a = sssp(weighted_grid, 0).distances
        b = pregel_sssp(weighted_grid, 0)
        finite = a < INF
        assert np.allclose(a[finite], b[finite], atol=1e-3)

    def test_unreachable_stays_inf(self, two_component_graph):
        out = pregel_sssp(two_component_graph, 0)
        assert out[4] >= float(INF)


class TestPageRankProgram:
    def test_matches_operator_pagerank_fixed_rounds(self):
        g = erdos_renyi_gnp(60, 0.08, seed=3)  # unweighted
        ours = pagerank(g, tolerance=0.0, max_iterations=30).ranks
        theirs = pregel_pagerank(g, rounds=30)
        assert np.allclose(ours, theirs, atol=1e-8)

    def test_ranks_are_distribution(self):
        g = erdos_renyi_gnp(60, 0.08, seed=4)
        out = pregel_pagerank(g, rounds=20)
        assert out.sum() == pytest.approx(1.0, abs=1e-6)

    def test_round_budget_respected(self):
        g = chain(10)
        engine = PregelEngine(g)
        engine.run(PageRankProgram(10, rounds=7), np.full(10, 0.1))
        # rounds supersteps of sending + one halt round (+ message drain).
        assert engine.stats.supersteps <= 9


class TestComponentsProgram:
    def test_matches_union_find(self):
        g = watts_strogatz(120, 4, 0.02, seed=5)
        labels = pregel_components(g)
        assert np.array_equal(labels, union_find_components(g))

    def test_disconnected(self, two_component_graph):
        labels = pregel_components(two_component_graph)
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == labels[4] == 3

    def test_partitioned_invariant(self):
        g = watts_strogatz(80, 4, 0.05, seed=6)
        single = pregel_components(g)
        owner = np.arange(80) % 4
        multi = pregel_components(g, owner_of=owner)
        assert np.array_equal(single, multi)
