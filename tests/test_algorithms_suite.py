"""Tests for the remaining algorithm suite: PageRank, CC, BC, TC, k-core,
coloring, SpMV, HITS, MST — each against a baseline or oracle."""

import numpy as np
import pytest

from repro.algorithms import (
    betweenness_centrality,
    boruvka_mst,
    connected_components,
    graph_coloring,
    hits,
    kcore_decomposition,
    pagerank,
    power_iteration,
    spmv,
    triangle_count,
)
from repro.algorithms.color import verify_coloring
from repro.baselines import (
    kruskal_mst_weight,
    nx_betweenness,
    nx_components,
    nx_core_numbers,
    nx_pagerank,
    nx_triangles,
    sequential_pagerank,
    union_find_components,
)
from repro.errors import GraphFormatError
from repro.execution import par, par_vector, seq
from repro.graph import from_edge_list
from repro.graph.generators import (
    chain,
    complete,
    erdos_renyi_gnp,
    grid_2d,
    rmat,
    star,
    watts_strogatz,
)


class TestPageRank:
    def test_matches_networkx(self, small_rmat):
        r = pagerank(small_rmat, tolerance=1e-10)
        ref = nx_pagerank(small_rmat, tol=1e-12)
        assert np.allclose(r.ranks, ref, atol=1e-6)
        assert r.converged

    def test_matches_independent_baseline(self, small_grid):
        r = pagerank(small_grid, tolerance=1e-10)
        ref = sequential_pagerank(small_grid, tolerance=1e-10)
        assert np.allclose(r.ranks, ref, atol=1e-8)

    @pytest.mark.parametrize("pol", [seq, par, par_vector], ids=lambda p: p.name)
    def test_policy_invariance(self, small_grid, pol):
        a = pagerank(small_grid, policy=pol, tolerance=1e-10)
        b = pagerank(small_grid, policy=par_vector, tolerance=1e-10)
        assert np.allclose(a.ranks, b.ranks, atol=1e-10)

    def test_ranks_sum_to_one(self, small_rmat):
        r = pagerank(small_rmat)
        assert r.ranks.sum() == pytest.approx(1.0, abs=1e-6)

    def test_dangling_vertices_handled(self):
        g = from_edge_list([(0, 1), (0, 2)], n_vertices=3)  # 1, 2 dangle
        r = pagerank(g, tolerance=1e-12)
        ref = nx_pagerank(g)
        assert np.allclose(r.ranks, ref, atol=1e-6)

    def test_iteration_cap_respected(self, small_rmat):
        r = pagerank(small_rmat, max_iterations=3, tolerance=0.0)
        assert r.iterations <= 3
        assert not r.converged

    def test_damping_zero_is_uniform(self, small_rmat):
        r = pagerank(small_rmat, damping=0.0)
        assert np.allclose(r.ranks, 1.0 / small_rmat.n_vertices)

    def test_invalid_damping_rejected(self, small_rmat):
        with pytest.raises(ValueError):
            pagerank(small_rmat, damping=1.5)

    def test_empty_graph(self):
        g = from_edge_list([], n_vertices=0)
        assert pagerank(g).converged


class TestConnectedComponents:
    @pytest.mark.parametrize("method", ["label_propagation", "hooking"])
    def test_component_count(self, method):
        g = erdos_renyi_gnp(200, 0.01, seed=1, directed=False)
        r = connected_components(g, method=method)
        assert r.n_components == nx_components(g)

    @pytest.mark.parametrize("method", ["label_propagation", "hooking"])
    def test_labels_match_union_find(self, method, small_ws):
        r = connected_components(small_ws, method=method)
        assert np.array_equal(r.labels, union_find_components(small_ws))

    def test_directed_weak_components(self):
        g = from_edge_list([(0, 1), (2, 1)], n_vertices=4)  # 3 isolated
        for method in ("label_propagation", "hooking"):
            r = connected_components(g, method=method)
            assert r.n_components == 2
            assert r.labels[0] == r.labels[1] == r.labels[2]

    def test_component_sizes(self, two_component_graph):
        r = connected_components(two_component_graph)
        assert sorted(r.component_sizes().tolist()) == [2, 3]

    def test_unknown_method_rejected(self, small_grid):
        with pytest.raises(ValueError):
            connected_components(small_grid, method="magic")

    def test_singleton_graph(self):
        g = from_edge_list([], n_vertices=5)
        r = connected_components(g)
        assert r.n_components == 5


class TestBetweenness:
    def test_matches_networkx_exact(self, small_ws):
        r = betweenness_centrality(small_ws)
        assert np.allclose(r.centrality, nx_betweenness(small_ws), atol=1e-6)

    def test_directed_graph(self):
        g = rmat(6, 4, seed=3)
        r = betweenness_centrality(g)
        assert np.allclose(r.centrality, nx_betweenness(g), atol=1e-6)

    def test_star_center_dominates(self):
        g = star(20)
        r = betweenness_centrality(g)
        assert r.centrality[0] > 0
        assert np.all(r.centrality[1:] == 0)

    def test_chain_interior_maximal(self):
        g = chain(9)
        r = betweenness_centrality(g)
        assert np.argmax(r.centrality) == 4  # middle vertex

    def test_normalized(self, small_ws):
        r = betweenness_centrality(small_ws, normalize=True)
        ref = nx_betweenness(small_ws, normalized=True)
        assert np.allclose(r.centrality, ref, atol=1e-6)

    def test_sampled_sources_approximation(self, small_ws):
        exact = betweenness_centrality(small_ws).centrality
        approx = betweenness_centrality(
            small_ws, sources=range(0, small_ws.n_vertices, 2)
        ).centrality
        # Sampling half the sources keeps the top vertex in the top decile.
        top = int(np.argmax(exact))
        assert approx[top] >= np.quantile(approx, 0.9)


class TestTriangleCount:
    @pytest.mark.parametrize(
        "make_graph,expected_fn",
        [
            (lambda: complete(6), lambda g: 20),  # C(6,3)
            (lambda: chain(10), lambda g: 0),
            (lambda: watts_strogatz(150, 6, 0.1, seed=2), nx_triangles),
            (lambda: erdos_renyi_gnp(80, 0.15, seed=4, directed=False), nx_triangles),
        ],
        ids=["complete", "chain", "smallworld", "er"],
    )
    def test_counts(self, make_graph, expected_fn):
        g = make_graph()
        assert triangle_count(g).total == expected_fn(g)

    def test_directed_input_counts_underlying(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], n_vertices=3)
        assert triangle_count(g).total == 1

    @pytest.mark.parametrize("pol", [seq, par, par_vector], ids=lambda p: p.name)
    def test_policy_invariance(self, small_ws, pol):
        assert triangle_count(small_ws, policy=pol).total == nx_triangles(small_ws)

    def test_per_edge_counts_sum(self, small_ws):
        r = triangle_count(small_ws)
        assert r.per_edge.sum() == r.total


class TestKCore:
    def test_matches_networkx(self, small_ws):
        r = kcore_decomposition(small_ws)
        assert np.array_equal(r.core_numbers, nx_core_numbers(small_ws))

    def test_er_graph(self):
        g = erdos_renyi_gnp(120, 0.08, seed=5, directed=False)
        r = kcore_decomposition(g)
        assert np.array_equal(r.core_numbers, nx_core_numbers(g))

    def test_complete_graph_core(self):
        r = kcore_decomposition(complete(6))
        assert np.all(r.core_numbers == 5)
        assert r.max_core == 5

    def test_chain_core_is_one(self):
        r = kcore_decomposition(chain(10))
        assert np.all(r.core_numbers == 1)

    def test_core_subgraph_vertices(self, small_ws):
        r = kcore_decomposition(small_ws)
        k = r.max_core
        members = r.core_subgraph_vertices(k)
        assert members.size > 0
        assert np.all(r.core_numbers[members] >= k)

    def test_isolated_vertices_core_zero(self):
        g = from_edge_list([(0, 1)], n_vertices=4, directed=False)
        r = kcore_decomposition(g)
        assert r.core_numbers.tolist() == [1, 1, 0, 0]


class TestColoring:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: complete(8),
            lambda: star(30),
            lambda: grid_2d(10, 10),
            lambda: rmat(8, 8, seed=6, directed=False),
        ],
        ids=["complete", "star", "grid", "rmat"],
    )
    def test_proper_coloring(self, make_graph):
        g = make_graph()
        r = graph_coloring(g)
        assert verify_coloring(g, r.colors)
        assert np.all(r.colors >= 0)

    def test_complete_needs_n_colors(self):
        assert graph_coloring(complete(7)).n_colors == 7

    def test_star_needs_two(self):
        assert graph_coloring(star(30)).n_colors == 2

    def test_grid_at_most_delta_plus_one(self):
        r = graph_coloring(grid_2d(12, 12))
        assert r.n_colors <= 5  # Δ = 4

    def test_deterministic_given_seed(self, small_ws):
        a = graph_coloring(small_ws, seed=3)
        b = graph_coloring(small_ws, seed=3)
        assert np.array_equal(a.colors, b.colors)


class TestSpMV:
    @pytest.mark.parametrize("pol", [seq, par, par_vector], ids=lambda p: p.name)
    def test_matches_scipy(self, small_rmat, pol, rng):
        x = rng.random(small_rmat.n_vertices)
        y = spmv(small_rmat, x, policy=pol)
        ref = small_rmat.csr().to_scipy().astype(np.float64) @ x
        assert np.allclose(y, ref, atol=1e-4)

    def test_wrong_length_rejected(self, small_rmat):
        with pytest.raises(ValueError):
            spmv(small_rmat, np.ones(3))

    def test_power_iteration_finds_dominant_eig(self):
        g = complete(10)  # adjacency J - I: dominant eigenvalue n-1 = 9
        vec, val, iters = power_iteration(g, tolerance=1e-12)
        assert val == pytest.approx(9.0, abs=1e-6)
        assert np.allclose(np.abs(vec), 1.0 / np.sqrt(10), atol=1e-6)

    def test_power_iteration_empty(self):
        g = from_edge_list([], n_vertices=0)
        vec, val, iters = power_iteration(g)
        assert val == 0.0


class TestHITS:
    def test_matches_networkx(self, small_rmat):
        import networkx as nx

        from repro.baselines import nx_graph_of

        r = hits(small_rmat, tolerance=1e-12, max_iterations=2000)
        hub_ref, auth_ref = nx.hits(nx_graph_of(small_rmat), max_iter=5000, tol=1e-14)
        hr = np.array([hub_ref[v] for v in range(small_rmat.n_vertices)])
        ar = np.array([auth_ref[v] for v in range(small_rmat.n_vertices)])
        hr /= np.linalg.norm(hr)
        ar /= np.linalg.norm(ar)
        assert np.allclose(r.hubs, hr, atol=1e-6)
        assert np.allclose(r.authorities, ar, atol=1e-6)

    def test_bipartite_hub_authority_split(self):
        # All edges left -> right: left are pure hubs, right pure authorities.
        g = from_edge_list([(0, 2), (0, 3), (1, 3)], n_vertices=4)
        r = hits(g)
        assert np.all(r.hubs[[0, 1]] > 0) and np.allclose(r.hubs[[2, 3]], 0)
        assert np.all(r.authorities[[2, 3]] > 0)
        assert np.allclose(r.authorities[[0, 1]], 0)

    def test_empty_graph(self):
        g = from_edge_list([], n_vertices=0)
        assert hits(g).converged


class TestMST:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: grid_2d(8, 8, weighted=True, seed=1),
            lambda: watts_strogatz(100, 6, 0.2, seed=2),
            lambda: erdos_renyi_gnp(80, 0.1, seed=3, directed=False, weighted=True),
        ],
        ids=["grid", "smallworld", "er"],
    )
    def test_weight_matches_kruskal(self, make_graph):
        g = make_graph()
        r = boruvka_mst(g)
        assert r.total_weight == pytest.approx(kruskal_mst_weight(g), rel=1e-5)

    def test_spanning_tree_edge_count(self, weighted_grid):
        r = boruvka_mst(weighted_grid)
        assert r.n_edges == weighted_grid.n_vertices - r.n_components
        assert r.n_components == 1

    def test_forest_on_disconnected(self, two_component_graph):
        r = boruvka_mst(two_component_graph)
        assert r.n_components == 2
        assert r.n_edges == 3  # (3-1) + (2-1)

    def test_matches_networkx_weight(self, weighted_grid):
        import networkx as nx

        from repro.baselines import nx_graph_of

        ref = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_tree(
                nx_graph_of(weighted_grid)
            ).edges(data=True)
        )
        assert boruvka_mst(weighted_grid).total_weight == pytest.approx(
            ref, rel=1e-5
        )

    def test_directed_rejected(self, small_rmat):
        with pytest.raises(GraphFormatError):
            boruvka_mst(small_rmat)

    def test_log_rounds(self):
        g = chain(64)
        r = boruvka_mst(g)
        assert r.stats.num_iterations <= 7  # ~log2(64) + 1
