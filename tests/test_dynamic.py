"""Dynamic-graph tests: overlay/epoch mechanics, property-based
build→mutate→compact round-trips, incremental == full metamorphic
checks, the stream driver, and the service mutate/cache interaction.

The hypothesis section is the adversarial counterpart of the fixed
``repro verify --dynamic`` oracle: arbitrary small graphs (self-loops,
parallel edges, isolated vertices) with arbitrary mutation batches,
shrunk to minimal counterexamples on failure.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from strategies import graphs

from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.sssp import sssp
from repro.dynamic import (
    DynamicGraph,
    EdgeStream,
    StreamDriver,
    incremental_bfs,
    incremental_cc,
    incremental_sssp,
)
from repro.errors import GraphFormatError
from repro.graph import from_edge_list
from repro.graph.adjacency import AdjacencyList
from repro.graph.validate import validate_graph, validate_overlay
from repro.service import GraphCatalog, QueryService, ServiceConfig
from repro.types import INF

SUPPRESS = [HealthCheck.too_slow]


def edge_triples(graph):
    """Sorted (src, dst, weight) triples — an order-free edge multiset."""
    coo = graph.coo()
    return sorted(
        zip(coo.rows.tolist(), coo.cols.tolist(), coo.vals.tolist())
    )


@st.composite
def mutated_dynamic_graphs(draw):
    """A (DynamicGraph, MutationBatch) pair: an arbitrary base graph
    plus one arbitrary-but-valid mutation batch already applied.

    Removals are drawn from the live edge set (distinct pairs — the
    batch API rejects double-removal by design); insertions are
    arbitrary pairs, so re-inserts of removed edges and weight updates
    of surviving ones are generated too.
    """
    base = draw(graphs(n_vertices=12, max_edges=40))
    dyn = DynamicGraph(base)
    coo = base.coo()
    live = sorted({(int(s), int(d)) for s, d in zip(coo.rows, coo.cols)})
    removes = []
    if live:
        n_rm = draw(st.integers(0, len(live)))
        picks = draw(st.permutations(range(len(live))))
        removes = [live[i] for i in picks[:n_rm]]
    n_ins = draw(st.integers(0, 10))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, base.n_vertices - 1),
                st.integers(0, base.n_vertices - 1),
            ),
            min_size=n_ins,
            max_size=n_ins,
            unique=True,
        )
    )
    inserts = [
        (s, d, float(draw(st.integers(1, 9)))) for s, d in pairs
    ]
    batch = dyn.apply(insert=inserts, remove=removes)
    return dyn, batch


@st.composite
def multi_batch_dynamic_graphs(draw):
    """A DynamicGraph with several sequential mutation batches applied.

    Exercises the cross-epoch fold: arcs inserted in one batch and
    removed in a later one, chained weight updates, and re-inserts of
    deleted edges all show up here, so ``mutations_since(0)`` must net
    opposing events for the repairs to stay exact.
    """
    base = draw(graphs(n_vertices=10, max_edges=25))
    dyn = DynamicGraph(base, compact_threshold=None)
    for _ in range(draw(st.integers(2, 4))):
        live = sorted({(s, d) for s, d, _ in dyn.iter_edges()})
        removes = []
        if live:
            n_rm = draw(st.integers(0, min(5, len(live))))
            picks = draw(st.permutations(range(len(live))))
            removes = [live[i] for i in picks[:n_rm]]
        pairs = draw(
            st.lists(
                st.tuples(
                    st.integers(0, base.n_vertices - 1),
                    st.integers(0, base.n_vertices - 1),
                ),
                max_size=5,
                unique=True,
            )
        )
        inserts = [
            (s, d, float(draw(st.integers(1, 9)))) for s, d in pairs
        ]
        dyn.apply(insert=inserts, remove=removes)
    return dyn


# -- DynamicGraph mechanics ------------------------------------------------------------


class TestDynamicGraphMechanics:
    def base(self):
        return from_edge_list(
            [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 5.0)],
            n_vertices=5,
            directed=True,
        )

    def test_epoch_bumps_per_batch(self):
        dyn = DynamicGraph(self.base())
        assert dyn.epoch == 0
        dyn.insert_edge(3, 4, 1.5)
        dyn.remove_edge(0, 3)
        assert dyn.epoch == 2
        assert dyn.log_length() == 2

    def test_mutations_since_folds_batches(self):
        dyn = DynamicGraph(self.base())
        dyn.insert_edge(3, 4, 1.5)
        mark = dyn.epoch
        dyn.remove_edge(0, 3)
        dyn.insert_edge(4, 0, 2.0)
        folded = dyn.mutations_since(mark)
        assert folded.n_inserted == 1
        assert folded.n_removed == 1

    def test_remove_missing_edge_rejected_atomically(self):
        dyn = DynamicGraph(self.base())
        with pytest.raises(GraphFormatError):
            dyn.apply(insert=[(3, 4, 1.0)], remove=[(4, 0)])
        # Nothing from the failed batch leaked in.
        assert dyn.epoch == 0
        assert dyn.n_edges == 4

    def test_double_removal_in_one_batch_rejected(self):
        dyn = DynamicGraph(self.base())
        with pytest.raises(GraphFormatError):
            dyn.apply(remove=[(0, 3), (0, 3)])

    def test_double_removal_leaves_batch_unapplied(self):
        # The duplicate is detected mid-list; the earlier (0, 1) delete
        # must not have been staged — batches are all-or-nothing.
        dyn = DynamicGraph(self.base())
        with pytest.raises(GraphFormatError):
            dyn.remove_edges([(0, 1), (0, 3), (0, 3)])
        assert dyn.has_edge(0, 1)
        assert dyn.has_edge(0, 3)
        assert dyn.epoch == 0
        assert dyn.log_length() == 0
        assert dyn.n_edges == 4

    def test_nonfinite_weight_leaves_batch_unapplied(self):
        dyn = DynamicGraph(self.base())
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(GraphFormatError):
                dyn.insert_edges([(3, 4, 1.0), (0, 4, bad)])
            assert not dyn.has_edge(3, 4)
        # Mixed batches roll back too: the staged delete must not
        # survive an insert that fails validation.
        with pytest.raises(GraphFormatError):
            dyn.apply(insert=[(0, 4, float("nan"))], remove=[(0, 3)])
        assert dyn.has_edge(0, 3)
        assert dyn.epoch == 0
        assert dyn.n_edges == 4

    def test_fold_cancels_insert_then_delete(self):
        # An arc inserted at one epoch and deleted at a later one must
        # vanish from the fold: repairs would otherwise relax/merge an
        # edge that is not live in the merged graph.
        dyn = DynamicGraph(self.base())
        dyn.insert_edge(3, 4, 1.5)
        dyn.remove_edge(3, 4)
        folded = dyn.mutations_since(0)
        assert folded.size == 0

    def test_fold_keeps_reinsert_after_remove(self):
        dyn = DynamicGraph(self.base())
        dyn.remove_edge(0, 3)
        dyn.insert_edge(0, 3, 7.0)
        folded = dyn.mutations_since(0)
        assert folded.n_removed == 1
        assert float(folded.removed_w[0]) == 5.0  # the pre-fold weight
        assert folded.n_inserted == 1
        assert float(folded.inserted_w[0]) == 7.0

    def test_fold_chained_weight_updates_net_to_endpoints(self):
        # 5.0 -> 9.0 -> 2.0 across two epochs nets to one removal of
        # the original weight plus one insertion of the final one.
        dyn = DynamicGraph(self.base())
        dyn.update_weight(0, 3, 9.0)
        dyn.update_weight(0, 3, 2.0)
        folded = dyn.mutations_since(0)
        assert folded.n_removed == 1
        assert float(folded.removed_w[0]) == 5.0
        assert folded.n_inserted == 1
        assert float(folded.inserted_w[0]) == 2.0
        # Folding from the middle epoch sees only the second update.
        mid = dyn.mutations_since(1)
        assert float(mid.removed_w[0]) == 9.0
        assert float(mid.inserted_w[0]) == 2.0

    def test_weight_update_logged_as_remove_plus_insert(self):
        dyn = DynamicGraph(self.base())
        batch = dyn.update_weight(0, 3, 9.0)
        assert batch.n_removed == 1
        assert batch.n_inserted == 1
        assert float(batch.removed_w[0]) == 5.0
        assert float(batch.inserted_w[0]) == 9.0

    def test_merged_snapshot_reflects_mutations(self):
        dyn = DynamicGraph(self.base())
        dyn.apply(insert=[(3, 4, 1.5)], remove=[(0, 3)])
        trip = edge_triples(dyn.graph())
        assert (3, 4, 1.5) in trip
        assert all((s, d) != (0, 3) for s, d, _ in trip)

    def test_adjacency_remove_edge_returns_weight(self):
        adj = AdjacencyList(3)
        adj.add_edge(0, 1, 4.0)
        adj.add_edge(1, 2, 2.0)
        assert adj.remove_edge(0, 1) == 4.0
        with pytest.raises(GraphFormatError):
            adj.remove_edge(0, 1)


# -- property-based round-trips --------------------------------------------------------


class TestDynamicProperties:
    @settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
    @given(mutated_dynamic_graphs())
    def test_compact_preserves_edges_and_epoch(self, pair):
        dyn, _ = pair
        epoch = dyn.epoch
        before = edge_triples(dyn.graph())
        compacted = dyn.compact()
        assert edge_triples(compacted) == before
        assert dyn.epoch == epoch  # representation change, not a mutation
        assert dyn.overlay.size == 0
        assert edge_triples(dyn.graph()) == before

    @settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
    @given(mutated_dynamic_graphs())
    def test_overlay_and_merged_graph_invariants_hold(self, pair):
        dyn, _ = pair
        validate_overlay(dyn.overlay)
        validate_graph(dyn.graph())
        validate_graph(dyn.compact())

    @settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
    @given(mutated_dynamic_graphs())
    def test_incremental_repair_equals_full_recompute(self, pair):
        dyn, batch = pair
        base = dyn.base_graph
        merged = dyn.graph()
        cold_bfs = bfs(base, 0, policy="par_vector")
        cold_sssp = sssp(base, 0, policy="par_vector")
        cold_cc = connected_components(base, policy="par_vector")

        rb = incremental_bfs(dyn, cold_bfs, batch=batch)
        fb = bfs(merged, 0, policy="par_vector")
        assert np.array_equal(rb.levels, fb.levels)

        rs = incremental_sssp(dyn, cold_sssp, batch=batch)
        fs = sssp(merged, 0, policy="par_vector")
        assert np.array_equal(rs.distances, fs.distances)

        rc = incremental_cc(dyn, cold_cc, batch=batch)
        fc = connected_components(merged, policy="par_vector")
        assert np.array_equal(rc.labels, fc.labels)
        assert rc.n_components == fc.n_components

    @settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
    @given(multi_batch_dynamic_graphs())
    def test_incremental_over_folded_epochs_equals_full(self, dyn):
        # Same metamorphic check as above, but the batch comes from
        # folding the whole mutation log — the path the service and
        # stream driver use.
        base = dyn.base_graph
        merged = dyn.graph()
        rb = incremental_bfs(dyn, bfs(base, 0), since_epoch=0)
        assert np.array_equal(rb.levels, bfs(merged, 0).levels)
        rs = incremental_sssp(dyn, sssp(base, 0), since_epoch=0)
        assert np.array_equal(rs.distances, sssp(merged, 0).distances)
        rc = incremental_cc(dyn, connected_components(base), since_epoch=0)
        fc = connected_components(merged)
        assert np.array_equal(rc.labels, fc.labels)
        assert rc.n_components == fc.n_components

    @settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
    @given(mutated_dynamic_graphs())
    def test_repair_after_compact_uses_the_log(self, pair):
        # compact() must not strand incremental consumers: the log
        # survives, so a repair against mutations_since still works.
        dyn, batch = pair
        cold = bfs(dyn.base_graph, 0, policy="par_vector")
        dyn.compact()
        rb = incremental_bfs(dyn, cold, batch=batch)
        fb = bfs(dyn.graph(), 0, policy="par_vector")
        assert np.array_equal(rb.levels, fb.levels)


# -- targeted repair cases -------------------------------------------------------------


class TestIncrementalRepairEdgeCases:
    def test_bridge_deletion_disconnects_suffix(self, policy):
        path = from_edge_list(
            [(i, i + 1, 1.0) for i in range(7)], directed=True
        )
        dyn = DynamicGraph(path)
        batch = dyn.apply(remove=[(3, 4)])
        cold = bfs(path, 0, policy=policy)
        repaired = incremental_bfs(dyn, cold, batch=batch, policy=policy)
        full = bfs(dyn.graph(), 0, policy=policy)
        assert np.array_equal(repaired.levels, full.levels)
        assert repaired.levels[4] == -1

    def test_split_then_rescue_via_insert(self, policy):
        path = from_edge_list(
            [(i, i + 1, 1.0) for i in range(7)], directed=True
        )
        dyn = DynamicGraph(path)
        batch = dyn.apply(remove=[(3, 4)], insert=[(1, 4, 1.0)])
        cold_cc = connected_components(path, policy=policy)
        repaired = incremental_cc(dyn, cold_cc, batch=batch, policy=policy)
        full = connected_components(dyn.graph(), policy=policy)
        assert np.array_equal(repaired.labels, full.labels)
        assert repaired.n_components == full.n_components == 1

    def test_sssp_insert_then_delete_across_epochs_stays_unreachable(
        self, policy
    ):
        # The transient edge (0, 1) existed only between epochs 1 and
        # 2; folding the log must not present it as live, or vertex 1
        # gets distance 1.0 despite being unreachable in the merged
        # graph.
        g = from_edge_list([(1, 2, 1.0)], n_vertices=3, directed=True)
        dyn = DynamicGraph(g)
        cold = sssp(g, 0, policy=policy)
        dyn.insert_edge(0, 1, 1.0)
        dyn.remove_edge(0, 1)
        repaired = incremental_sssp(dyn, cold, since_epoch=0, policy=policy)
        full = sssp(dyn.graph(), 0, policy=policy)
        assert np.array_equal(repaired.distances, full.distances)
        assert repaired.distances[1] == INF

    def test_cc_transient_bridge_does_not_merge_components(self, policy):
        g = from_edge_list(
            [(0, 1, 1.0), (2, 3, 1.0)], n_vertices=4, directed=False
        )
        dyn = DynamicGraph(g)
        cold = connected_components(g, policy=policy)
        dyn.insert_edge(1, 2, 1.0)  # bridges the two components...
        dyn.remove_edge(1, 2)  # ...but only until the next epoch
        repaired = incremental_cc(dyn, cold, since_epoch=0, policy=policy)
        full = connected_components(dyn.graph(), policy=policy)
        assert np.array_equal(repaired.labels, full.labels)
        assert repaired.n_components == full.n_components == 2

    def test_sssp_shortcut_insert_then_widen(self, policy):
        g = from_edge_list(
            [(0, 1, 5.0), (1, 2, 5.0), (0, 2, 20.0)],
            n_vertices=3,
            directed=True,
        )
        dyn = DynamicGraph(g)
        cold = sssp(g, 0, policy=policy)
        batch = dyn.insert_edge(0, 2, 1.0)  # weight update 20 -> 1
        repaired = incremental_sssp(dyn, cold, batch=batch, policy=policy)
        assert repaired.distances[2] == 1.0
        batch2 = dyn.update_weight(0, 2, 50.0)  # widen: must re-raise
        repaired2 = incremental_sssp(dyn, repaired, batch=batch2, policy=policy)
        assert repaired2.distances[2] == 10.0


# -- stream driver ---------------------------------------------------------------------


class TestStreamDriver:
    def test_windowed_run_matches_full_recompute(self):
        stream = EdgeStream.rmat(
            scale=7, edge_factor=4, delete_fraction=0.2, seed=3
        )
        driver = StreamDriver(
            stream,
            algorithms=("bfs", "cc"),
            window_events=100,
            verify=True,
        )
        report = driver.run()
        summary = report.summary()
        assert summary["n_windows"] == -(-stream.n_events // 100)
        assert summary["n_events"] == stream.n_events
        for name in ("bfs", "cc"):
            entry = summary["algorithms"][name]
            # verify=True compares every window against a recompute.
            assert entry["mismatched_windows"] == 0
            assert entry["incremental_seconds"] > 0


# -- service: mutate invalidates the cache ---------------------------------------------


class TestServiceMutateCache:
    @pytest.fixture
    def service(self, tmp_path):
        cat = GraphCatalog()
        cat.add({"name": "g", "generator": "grid", "scale": 8, "seed": 0})
        return QueryService(
            cat,
            data_dir=str(tmp_path / "svc"),
            config=ServiceConfig(cache_ttl_s=60.0, record_ledger=False),
        )

    def test_mutate_then_query_misses_stale_epoch(self, service):
        req = {
            "op": "query",
            "graph": "g",
            "algorithm": "cc",
            "params": {},
        }
        first = service.handle(req)
        assert first["code"] == 200
        hit = service.handle(req)
        assert hit["server"]["cached"] is True

        mutated = service.handle(
            {"op": "mutate", "graph": "g", "insert": [[0, 17, 1.0]]}
        )
        assert mutated["code"] == 200
        assert mutated["result"]["epoch"] == 1

        # A fresh-path hit at the old epoch would serve yesterday's
        # components; the epoch tag must force a recompute.
        after = service.handle(req)
        assert after["code"] == 200
        assert not after["server"].get("cached")
        assert after["result"] != first["result"]

    def test_mutate_unknown_graph_404(self, service):
        resp = service.handle(
            {"op": "mutate", "graph": "nope", "insert": [[0, 1, 1.0]]}
        )
        assert resp["code"] == 404

    def test_mutate_nan_weight_rejected_without_side_effects(self, service):
        # JSON happily decodes NaN, so the weight check must happen
        # before any staging: the valid first insert must not leak in.
        resp = service.handle(
            {
                "op": "mutate",
                "graph": "g",
                "insert": [[0, 18, 1.0], [0, 17, float("nan")]],
            }
        )
        assert resp["code"] == 400
        assert service.catalog.epoch_of("g") == 0

    def test_mutate_racing_query_tags_result_conservatively(self, service):
        # Simulate the worst interleaving: a mutate lands between the
        # query's epoch read and its catalog snapshot.  The query then
        # computes on the pre-mutation graph, so its cache entry must
        # carry the *old* epoch — the follow-up query at the new epoch
        # has to be a miss, never a fresh hit on the old result.
        req = {"op": "query", "graph": "g", "algorithm": "cc", "params": {}}
        orig_get = service.catalog.get
        fired = []

        def racing_get(name):
            graph = orig_get(name)
            if not fired:
                fired.append(True)
                mutated = service.handle(
                    {"op": "mutate", "graph": name, "insert": [[0, 17, 1.0]]}
                )
                assert mutated["code"] == 200
            return graph

        service.catalog.get = racing_get
        try:
            first = service.handle(req)
        finally:
            service.catalog.get = orig_get
        assert first["code"] == 200
        after = service.handle(req)
        assert after["code"] == 200
        assert not after["server"].get("cached")


class TestCatalogConcurrency:
    def test_concurrent_mutates_and_snapshots_stay_consistent(self):
        import threading

        cat = GraphCatalog()
        cat.add({"name": "g", "generator": "grid", "scale": 6, "seed": 0})
        n_vertices = cat.get("g").n_vertices
        n_threads, per_thread = 4, 10
        errors = []

        def mutator(k):
            try:
                for i in range(per_thread):
                    target = (k * per_thread + i + 1) % n_vertices
                    cat.mutate("g", insert=[(0, target, 2.0)])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    validate_graph(cat.get("g"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [
            threading.Thread(target=mutator, args=(k,))
            for k in range(n_threads)
        ]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert errors == []
        assert cat.epoch_of("g") == n_threads * per_thread
        merged = cat.get("g")
        validate_graph(merged)
        coo = merged.coo()
        arcs = set(zip(coo.rows.tolist(), coo.cols.tolist()))
        for k in range(n_threads):
            for i in range(per_thread):
                assert (0, (k * per_thread + i + 1) % n_vertices) in arcs
