"""Dynamic-graph tests: overlay/epoch mechanics, property-based
build→mutate→compact round-trips, incremental == full metamorphic
checks, the stream driver, and the service mutate/cache interaction.

The hypothesis section is the adversarial counterpart of the fixed
``repro verify --dynamic`` oracle: arbitrary small graphs (self-loops,
parallel edges, isolated vertices) with arbitrary mutation batches,
shrunk to minimal counterexamples on failure.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from strategies import graphs

from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.sssp import sssp
from repro.dynamic import (
    DynamicGraph,
    EdgeStream,
    StreamDriver,
    incremental_bfs,
    incremental_cc,
    incremental_sssp,
)
from repro.errors import GraphFormatError
from repro.graph import from_edge_list
from repro.graph.adjacency import AdjacencyList
from repro.graph.validate import validate_graph, validate_overlay
from repro.service import GraphCatalog, QueryService, ServiceConfig

SUPPRESS = [HealthCheck.too_slow]


def edge_triples(graph):
    """Sorted (src, dst, weight) triples — an order-free edge multiset."""
    coo = graph.coo()
    return sorted(
        zip(coo.rows.tolist(), coo.cols.tolist(), coo.vals.tolist())
    )


@st.composite
def mutated_dynamic_graphs(draw):
    """A (DynamicGraph, MutationBatch) pair: an arbitrary base graph
    plus one arbitrary-but-valid mutation batch already applied.

    Removals are drawn from the live edge set (distinct pairs — the
    batch API rejects double-removal by design); insertions are
    arbitrary pairs, so re-inserts of removed edges and weight updates
    of surviving ones are generated too.
    """
    base = draw(graphs(n_vertices=12, max_edges=40))
    dyn = DynamicGraph(base)
    coo = base.coo()
    live = sorted({(int(s), int(d)) for s, d in zip(coo.rows, coo.cols)})
    removes = []
    if live:
        n_rm = draw(st.integers(0, len(live)))
        picks = draw(st.permutations(range(len(live))))
        removes = [live[i] for i in picks[:n_rm]]
    n_ins = draw(st.integers(0, 10))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, base.n_vertices - 1),
                st.integers(0, base.n_vertices - 1),
            ),
            min_size=n_ins,
            max_size=n_ins,
            unique=True,
        )
    )
    inserts = [
        (s, d, float(draw(st.integers(1, 9)))) for s, d in pairs
    ]
    batch = dyn.apply(insert=inserts, remove=removes)
    return dyn, batch


# -- DynamicGraph mechanics ------------------------------------------------------------


class TestDynamicGraphMechanics:
    def base(self):
        return from_edge_list(
            [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 5.0)],
            n_vertices=5,
            directed=True,
        )

    def test_epoch_bumps_per_batch(self):
        dyn = DynamicGraph(self.base())
        assert dyn.epoch == 0
        dyn.insert_edge(3, 4, 1.5)
        dyn.remove_edge(0, 3)
        assert dyn.epoch == 2
        assert dyn.log_length() == 2

    def test_mutations_since_folds_batches(self):
        dyn = DynamicGraph(self.base())
        dyn.insert_edge(3, 4, 1.5)
        mark = dyn.epoch
        dyn.remove_edge(0, 3)
        dyn.insert_edge(4, 0, 2.0)
        folded = dyn.mutations_since(mark)
        assert folded.n_inserted == 1
        assert folded.n_removed == 1

    def test_remove_missing_edge_rejected_atomically(self):
        dyn = DynamicGraph(self.base())
        with pytest.raises(GraphFormatError):
            dyn.apply(insert=[(3, 4, 1.0)], remove=[(4, 0)])
        # Nothing from the failed batch leaked in.
        assert dyn.epoch == 0
        assert dyn.n_edges == 4

    def test_double_removal_in_one_batch_rejected(self):
        dyn = DynamicGraph(self.base())
        with pytest.raises(GraphFormatError):
            dyn.apply(remove=[(0, 3), (0, 3)])

    def test_weight_update_logged_as_remove_plus_insert(self):
        dyn = DynamicGraph(self.base())
        batch = dyn.update_weight(0, 3, 9.0)
        assert batch.n_removed == 1
        assert batch.n_inserted == 1
        assert float(batch.removed_w[0]) == 5.0
        assert float(batch.inserted_w[0]) == 9.0

    def test_merged_snapshot_reflects_mutations(self):
        dyn = DynamicGraph(self.base())
        dyn.apply(insert=[(3, 4, 1.5)], remove=[(0, 3)])
        trip = edge_triples(dyn.graph())
        assert (3, 4, 1.5) in trip
        assert all((s, d) != (0, 3) for s, d, _ in trip)

    def test_adjacency_remove_edge_returns_weight(self):
        adj = AdjacencyList(3)
        adj.add_edge(0, 1, 4.0)
        adj.add_edge(1, 2, 2.0)
        assert adj.remove_edge(0, 1) == 4.0
        with pytest.raises(GraphFormatError):
            adj.remove_edge(0, 1)


# -- property-based round-trips --------------------------------------------------------


class TestDynamicProperties:
    @settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
    @given(mutated_dynamic_graphs())
    def test_compact_preserves_edges_and_epoch(self, pair):
        dyn, _ = pair
        epoch = dyn.epoch
        before = edge_triples(dyn.graph())
        compacted = dyn.compact()
        assert edge_triples(compacted) == before
        assert dyn.epoch == epoch  # representation change, not a mutation
        assert dyn.overlay.size == 0
        assert edge_triples(dyn.graph()) == before

    @settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
    @given(mutated_dynamic_graphs())
    def test_overlay_and_merged_graph_invariants_hold(self, pair):
        dyn, _ = pair
        validate_overlay(dyn.overlay)
        validate_graph(dyn.graph())
        validate_graph(dyn.compact())

    @settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
    @given(mutated_dynamic_graphs())
    def test_incremental_repair_equals_full_recompute(self, pair):
        dyn, batch = pair
        base = dyn.base_graph
        merged = dyn.graph()
        cold_bfs = bfs(base, 0, policy="par_vector")
        cold_sssp = sssp(base, 0, policy="par_vector")
        cold_cc = connected_components(base, policy="par_vector")

        rb = incremental_bfs(dyn, cold_bfs, batch=batch)
        fb = bfs(merged, 0, policy="par_vector")
        assert np.array_equal(rb.levels, fb.levels)

        rs = incremental_sssp(dyn, cold_sssp, batch=batch)
        fs = sssp(merged, 0, policy="par_vector")
        assert np.array_equal(rs.distances, fs.distances)

        rc = incremental_cc(dyn, cold_cc, batch=batch)
        fc = connected_components(merged, policy="par_vector")
        assert np.array_equal(rc.labels, fc.labels)
        assert rc.n_components == fc.n_components

    @settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
    @given(mutated_dynamic_graphs())
    def test_repair_after_compact_uses_the_log(self, pair):
        # compact() must not strand incremental consumers: the log
        # survives, so a repair against mutations_since still works.
        dyn, batch = pair
        cold = bfs(dyn.base_graph, 0, policy="par_vector")
        dyn.compact()
        rb = incremental_bfs(dyn, cold, batch=batch)
        fb = bfs(dyn.graph(), 0, policy="par_vector")
        assert np.array_equal(rb.levels, fb.levels)


# -- targeted repair cases -------------------------------------------------------------


class TestIncrementalRepairEdgeCases:
    def test_bridge_deletion_disconnects_suffix(self, policy):
        path = from_edge_list(
            [(i, i + 1, 1.0) for i in range(7)], directed=True
        )
        dyn = DynamicGraph(path)
        batch = dyn.apply(remove=[(3, 4)])
        cold = bfs(path, 0, policy=policy)
        repaired = incremental_bfs(dyn, cold, batch=batch, policy=policy)
        full = bfs(dyn.graph(), 0, policy=policy)
        assert np.array_equal(repaired.levels, full.levels)
        assert repaired.levels[4] == -1

    def test_split_then_rescue_via_insert(self, policy):
        path = from_edge_list(
            [(i, i + 1, 1.0) for i in range(7)], directed=True
        )
        dyn = DynamicGraph(path)
        batch = dyn.apply(remove=[(3, 4)], insert=[(1, 4, 1.0)])
        cold_cc = connected_components(path, policy=policy)
        repaired = incremental_cc(dyn, cold_cc, batch=batch, policy=policy)
        full = connected_components(dyn.graph(), policy=policy)
        assert np.array_equal(repaired.labels, full.labels)
        assert repaired.n_components == full.n_components == 1

    def test_sssp_shortcut_insert_then_widen(self, policy):
        g = from_edge_list(
            [(0, 1, 5.0), (1, 2, 5.0), (0, 2, 20.0)],
            n_vertices=3,
            directed=True,
        )
        dyn = DynamicGraph(g)
        cold = sssp(g, 0, policy=policy)
        batch = dyn.insert_edge(0, 2, 1.0)  # weight update 20 -> 1
        repaired = incremental_sssp(dyn, cold, batch=batch, policy=policy)
        assert repaired.distances[2] == 1.0
        batch2 = dyn.update_weight(0, 2, 50.0)  # widen: must re-raise
        repaired2 = incremental_sssp(dyn, repaired, batch=batch2, policy=policy)
        assert repaired2.distances[2] == 10.0


# -- stream driver ---------------------------------------------------------------------


class TestStreamDriver:
    def test_windowed_run_matches_full_recompute(self):
        stream = EdgeStream.rmat(
            scale=7, edge_factor=4, delete_fraction=0.2, seed=3
        )
        driver = StreamDriver(
            stream,
            algorithms=("bfs", "cc"),
            window_events=100,
            verify=True,
        )
        report = driver.run()
        summary = report.summary()
        assert summary["n_windows"] == -(-stream.n_events // 100)
        assert summary["n_events"] == stream.n_events
        for name in ("bfs", "cc"):
            entry = summary["algorithms"][name]
            # verify=True compares every window against a recompute.
            assert entry["mismatched_windows"] == 0
            assert entry["incremental_seconds"] > 0


# -- service: mutate invalidates the cache ---------------------------------------------


class TestServiceMutateCache:
    @pytest.fixture
    def service(self, tmp_path):
        cat = GraphCatalog()
        cat.add({"name": "g", "generator": "grid", "scale": 8, "seed": 0})
        return QueryService(
            cat,
            data_dir=str(tmp_path / "svc"),
            config=ServiceConfig(cache_ttl_s=60.0, record_ledger=False),
        )

    def test_mutate_then_query_misses_stale_epoch(self, service):
        req = {
            "op": "query",
            "graph": "g",
            "algorithm": "cc",
            "params": {},
        }
        first = service.handle(req)
        assert first["code"] == 200
        hit = service.handle(req)
        assert hit["server"]["cached"] is True

        mutated = service.handle(
            {"op": "mutate", "graph": "g", "insert": [[0, 17, 1.0]]}
        )
        assert mutated["code"] == 200
        assert mutated["result"]["epoch"] == 1

        # A fresh-path hit at the old epoch would serve yesterday's
        # components; the epoch tag must force a recompute.
        after = service.handle(req)
        assert after["code"] == 200
        assert not after["server"].get("cached")
        assert after["result"] != first["result"]

    def test_mutate_unknown_graph_404(self, service):
        resp = service.handle(
            {"op": "mutate", "graph": "nope", "insert": [[0, 1, 1.0]]}
        )
        assert resp["code"] == 404
