"""The conformance matrix: clean on the real library, loud on a bug.

The load-bearing test here is the *injected-bug* one: a deliberately
broken SSSP relaxation must be caught by the quick matrix with a
replayable one-line repro command.  A conformance harness that cannot
detect a planted bug is just a slow no-op.
"""

import shlex

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.execution.atomics import AtomicArray
from repro.verify import (
    MatrixRunner,
    get_spec,
    repro_command,
    run_matrix,
    spec_names,
)
from repro.verify.graph_pool import GraphPool


def test_registry_covers_every_algorithm():
    """ISSUE acceptance: >= 15 oracle-registered algorithms."""
    names = spec_names()
    assert len(names) >= 15
    for required in [
        "sssp", "bfs", "cc", "scc", "pagerank", "bc", "tc",
        "kcore", "ktruss", "mst", "color", "mis", "astar", "spmv",
    ]:
        assert required in names


def test_every_spec_accepts_some_quick_graph():
    pool = GraphPool(seed=0, quick=True)
    for name in spec_names():
        spec = get_spec(name)
        assert any(
            spec.accepts(c) for c in pool.cases()
        ), f"{name} matches no quick pool graph"


def test_quick_matrix_is_clean():
    report = run_matrix(seed=0, quick=True)
    details = [
        f"{m.cell.label()}: {m.detail} | replay: {m.repro}"
        for m in report.mismatches
    ]
    assert report.ok, "\n".join(details)
    assert report.cells_run > 300
    # Every registered algorithm ran at least one cell.
    assert sorted(report.per_algo) == spec_names()


def test_matrix_filters_narrow_to_one_cell():
    runner = MatrixRunner(seed=0, quick=True)
    cells = runner.cells_for(
        get_spec("sssp"),
        graphs=["star16"],
        policies=["par_nosync"],
    )
    assert len(cells) == 1
    assert cells[0].graph == "star16"
    assert cells[0].variant.policy == "par_nosync"


def test_repro_command_round_trips_through_cli(tmp_path, monkeypatch):
    """The printed one-liner must actually re-run its cell."""
    runner = MatrixRunner(seed=0, quick=True)
    cell = runner.cells_for(
        get_spec("sssp"), graphs=["star16"], policies=["par_nosync"]
    )[0]
    command = repro_command(cell)
    assert command.startswith("repro verify ")
    argv = shlex.split(command)[1:] + ["--no-ledger"]
    assert cli_main(argv) == 0


def test_unknown_algorithm_is_an_error():
    with pytest.raises(KeyError):
        run_matrix(seed=0, quick=True, algos=["definitely_not_an_algo"])


def _broken_min_at(original):
    """A planted SSSP relaxation bug: once a vertex has any finite
    distance, later (better) relaxations are dropped — the classic
    'first write wins / forgot to re-relax' defect."""

    def min_at(self, index, value):
        current = self.array[index].item()
        if current < 1e38:
            return current  # drop the (possibly genuine) improvement
        return original(self, index, value)

    return min_at


def test_injected_relaxation_bug_is_caught(monkeypatch):
    """ISSUE acceptance: a planted sssp bug produces mismatches, each
    with a replayable one-line repro command."""
    original = AtomicArray.min_at
    monkeypatch.setattr(
        AtomicArray, "min_at", _broken_min_at(original), raising=True
    )
    report = run_matrix(
        seed=0,
        quick=True,
        algos=["sssp"],
        policies=["seq", "par", "par_nosync"],
    )
    assert not report.ok, "the planted relaxation bug went undetected"
    for mismatch in report.mismatches:
        assert mismatch.repro.startswith("repro verify --algo sssp")
        assert "--graph" in mismatch.repro
        assert "--seed" in mismatch.repro


def test_injected_bug_repro_command_replays(monkeypatch):
    """The repro command printed for a planted bug must fail the same
    way when replayed through the CLI (and pass once the bug is gone)."""
    original = AtomicArray.min_at
    monkeypatch.setattr(
        AtomicArray, "min_at", _broken_min_at(original), raising=True
    )
    report = run_matrix(
        seed=0, quick=True, algos=["sssp"], policies=["par"]
    )
    assert not report.ok
    command = report.mismatches[0].repro
    argv = shlex.split(command)[1:] + ["--no-ledger"]
    assert cli_main(argv) == 1, f"replay did not reproduce: {command}"
    # Un-patch: the same command must now pass.
    monkeypatch.setattr(AtomicArray, "min_at", original, raising=True)
    assert cli_main(argv) == 0


def test_full_mode_repro_commands_carry_full_flag():
    runner = MatrixRunner(seed=0, quick=False)
    cells = runner.cells_for(
        get_spec("sssp"), graphs=["multiedge4"], policies=["seq"],
        directions=["pull"],
    )
    assert cells, "full mode should expose the pull direction"
    assert "--full" in repro_command(cells[0])


def test_matrix_report_record_is_ledger_shaped():
    report = run_matrix(seed=0, quick=True, algos=["bfs"])
    record = report.to_record()
    assert record["mode"] == "quick"
    assert record["cells_run"] == report.cells_run
    assert record["n_mismatches"] == 0
    assert record["algorithms"] == ["bfs"]
