"""Tests for the workload-characterization statistics."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.graph.generators import chain, complete, grid_2d, rmat, star
from repro.graph.stats import (
    degree_histogram,
    degree_statistics,
    estimate_diameter,
    global_clustering_coefficient,
    summarize,
)


class TestDegreeStatistics:
    def test_uniform_grid(self):
        g = grid_2d(10, 10)
        s = degree_statistics(g)
        assert s.minimum == 2 and s.maximum == 4
        assert s.skew < 2
        assert s.gini < 0.2

    def test_star_maximal_skew(self):
        g = star(100, directed=True)
        s = degree_statistics(g)
        assert s.maximum == 100
        assert s.skew == pytest.approx(101.0, rel=0.01)
        assert s.gini > 0.9

    def test_rmat_skewed(self):
        s = degree_statistics(rmat(9, 16, seed=1))
        assert s.skew > 5
        assert 0 < s.gini < 1

    def test_empty_graph(self):
        g = from_edge_list([], n_vertices=0)
        s = degree_statistics(g)
        assert s.mean == 0.0 and s.gini == 0.0

    def test_regular_graph_gini_zero(self):
        s = degree_statistics(complete(8))
        assert s.gini == pytest.approx(0.0, abs=1e-9)


class TestDegreeHistogram:
    def test_exact_bins(self):
        g = star(3, directed=True)  # degrees: [3, 0, 0, 0]
        h = degree_histogram(g)
        assert h == {0: 3, 3: 1}

    def test_log_bins_cover_all_vertices(self):
        g = rmat(8, 8, seed=2)
        h = degree_histogram(g, log_bins=True)
        assert sum(h.values()) == g.n_vertices


class TestDiameterEstimate:
    def test_chain_exact(self):
        assert estimate_diameter(chain(30), n_probes=4, seed=0) == 29

    def test_complete_is_one(self):
        assert estimate_diameter(complete(10), seed=0) == 1

    def test_grid_close_to_truth(self):
        # 8x8 grid diameter = 14; double sweep should find it.
        assert estimate_diameter(grid_2d(8, 8), n_probes=6, seed=0) == 14

    def test_empty(self):
        g = from_edge_list([], n_vertices=0)
        assert estimate_diameter(g) == 0

    def test_lower_bound_property(self):
        g = rmat(8, 8, seed=3, directed=False)
        from repro.baselines import sequential_bfs

        est = estimate_diameter(g, n_probes=4, seed=1)
        # The estimate can never exceed any true eccentricity bound:
        # verify it is achievable by some BFS.
        best = 0
        for v in range(0, g.n_vertices, 37):
            levels = sequential_bfs(g, v)
            best = max(best, int(levels.max(initial=0)))
        assert est <= best + est  # sanity: est is a valid lower bound shape
        assert est >= 1


class TestClustering:
    def test_complete_graph_is_one(self):
        assert global_clustering_coefficient(complete(6)) == pytest.approx(1.0)

    def test_tree_is_zero(self):
        from repro.graph.generators import binary_tree

        assert global_clustering_coefficient(binary_tree(4)) == 0.0

    def test_triangle(self, triangle_graph):
        assert global_clustering_coefficient(triangle_graph) == pytest.approx(1.0)


class TestSummarize:
    def test_hints_high_diameter(self):
        out = summarize(grid_2d(30, 30), diameter_probes=2, seed=0)
        assert any("high diameter" in h for h in out["hints"])

    def test_hints_hub_skewed(self):
        out = summarize(star(500), diameter_probes=1, seed=0)
        assert any("hub-skewed" in h for h in out["hints"])

    def test_hints_well_conditioned(self):
        out = summarize(complete(12), diameter_probes=1, seed=0)
        assert any("well-conditioned" in h for h in out["hints"])
