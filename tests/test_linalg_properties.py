"""Property-based kernel tests (hypothesis): SpMSpV and masked SpMV
against brute-force references over arbitrary small graphs.

The two laws the ISSUE pins down:

* **SpMSpV == dense matvec restricted to the frontier** — over (+, ×),
  the push kernel's output is exactly ``Aᵀ · x̂`` where ``x̂`` zeros
  everything outside the frontier and ``A`` is the dense adjacency
  (parallel edges folded by ⊕, which for + is the dense sum).  For
  (min, +), where a dense matrix cannot represent parallel edges, the
  reference is a per-edge loop — the fold happens edge by edge.
* **Masked SpMV == the pull-advance it replaces** — the transposed
  product restricted to masked rows equals the enactor's in-direction
  segmented fold on those rows and holds the ⊕ identity off them.

The graph strategy (tests/strategies.py) generates — and shrinks to —
empty graphs, empty frontiers, isolated vertices, self-loops, and
parallel edges, the same pathology classes as the conformance pool.
"""

import numpy as np
from hypothesis import given, settings

from strategies import graphs, graphs_with_frontier

from repro.linalg import (
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    force_numpy,
    spmspv,
    spmv,
)
from repro.operators.segmented import segmented_neighbor_reduce

N = 16


def edge_arrays(graph):
    coo = graph.coo()
    return (
        coo.rows.astype(np.int64),
        coo.cols.astype(np.int64),
        coo.vals.astype(np.float64),
    )


def dense_adjacency(graph):
    """Dense A with parallel edges folded by summation (the + fold)."""
    a = np.zeros((graph.n_vertices, graph.n_vertices))
    srcs, dsts, wts = edge_arrays(graph)
    np.add.at(a, (srcs, dsts), wts)
    return a


@given(graphs_with_frontier(n_vertices=N))
@settings(max_examples=60, deadline=None)
def test_spmspv_equals_dense_matvec_restricted_to_frontier(gf):
    graph, frontier_ids = gf
    frontier = np.unique(np.asarray(frontier_ids, dtype=np.int64))
    x = np.linspace(0.5, 2.0, N)
    restricted = np.zeros(N)
    restricted[frontier] = x[frontier]
    want = dense_adjacency(graph).T @ restricted
    y, touched = spmspv(graph, frontier, x)
    np.testing.assert_allclose(y, want, rtol=1e-9, atol=1e-12)
    # `touched` is the output's structural pattern: destinations with at
    # least one in-edge from the frontier (even a zero-valued fold).
    srcs, dsts, _ = edge_arrays(graph)
    from_frontier = np.isin(srcs, frontier)
    np.testing.assert_array_equal(touched, np.unique(dsts[from_frontier]))


@given(graphs_with_frontier(n_vertices=N))
@settings(max_examples=60, deadline=None)
def test_spmspv_min_plus_matches_edge_loop(gf):
    """(min, +) folds per edge — parallel edges pick the lighter one."""
    graph, frontier_ids = gf
    frontier = np.unique(np.asarray(frontier_ids, dtype=np.int64))
    x = np.linspace(0.0, 3.0, N)
    want = MIN_PLUS.zeros(N)
    in_frontier = np.zeros(N, dtype=bool)
    in_frontier[frontier] = True
    for s, d, w in zip(*edge_arrays(graph)):
        if in_frontier[s]:
            want[d] = min(want[d], x[s] + w)
    y, _ = spmspv(graph, frontier, x, semiring=MIN_PLUS)
    np.testing.assert_allclose(y, want, rtol=1e-12)


@given(graphs_with_frontier(n_vertices=N))
@settings(max_examples=60, deadline=None)
def test_spmspv_mask_partitions_the_output(gf):
    """Mask and complement split one unmasked product structurally."""
    graph, frontier_ids = gf
    frontier = np.unique(np.asarray(frontier_ids, dtype=np.int64))
    x = np.linspace(0.5, 2.0, N)
    mask = np.zeros(N, dtype=bool)
    mask[::3] = True
    y_all, touched_all = spmspv(graph, frontier, x)
    y_in, touched_in = spmspv(graph, frontier, x, mask=mask)
    y_out, touched_out = spmspv(
        graph, frontier, x, mask=mask, complement=True
    )
    np.testing.assert_allclose(y_in + y_out, y_all, rtol=1e-12)
    assert np.intersect1d(touched_in, touched_out).size == 0
    np.testing.assert_array_equal(
        np.union1d(touched_in, touched_out), touched_all
    )


@given(graphs(n_vertices=N))
@settings(max_examples=60, deadline=None)
def test_masked_spmv_equals_pull_advance(graph):
    """The pull form: masked rows get the enactor's in-fold, unmasked
    rows keep the ⊕ identity (their edges are never read)."""
    x = np.linspace(0.0, 3.0, N)
    mask = np.zeros(N, dtype=bool)
    mask[1::2] = True
    pull = segmented_neighbor_reduce(
        "par_vector",
        graph,
        x,
        op="min",
        direction="in",
        edge_transform=lambda vals, w: vals + w,
    )
    with force_numpy():
        got = spmv(graph, x, semiring=MIN_PLUS, transpose=True, mask=mask)
    want = np.where(mask, pull, MIN_PLUS.add_identity)
    np.testing.assert_allclose(got, want, rtol=1e-12)


@given(graphs(n_vertices=N))
@settings(max_examples=60, deadline=None)
def test_or_and_spmv_is_reachability(graph):
    """Boolean pull: y[v] == "some in-neighbor holds the bit"."""
    indicator = np.zeros(N, dtype=bool)
    indicator[:4] = True
    got = spmv(graph, indicator, semiring=OR_AND, transpose=True)
    want = np.zeros(N, dtype=bool)
    srcs, dsts, _ = edge_arrays(graph)
    for s, d in zip(srcs, dsts):
        if indicator[s]:
            want[d] = True
    np.testing.assert_array_equal(got, want)


@given(graphs(n_vertices=N))
@settings(max_examples=60, deadline=None)
def test_scipy_and_numpy_paths_agree(graph):
    """The opportunistic fast path is an implementation detail: same
    numbers as the always-on NumPy reference, to float tolerance."""
    x = np.linspace(0.5, 2.0, N)
    fast = spmv(graph, x)  # scipy when available, else numpy anyway
    with force_numpy():
        reference = spmv(graph, x, semiring=PLUS_TIMES)
    np.testing.assert_allclose(fast, reference, rtol=1e-9)


@given(graphs(n_vertices=N))
@settings(max_examples=60, deadline=None)
def test_isolated_vertices_hold_the_identity(graph):
    """No in-edge → ⊕ identity, under every semiring (the load-bearing
    identity contract the planted-bug test breaks on purpose)."""
    x = np.linspace(0.5, 2.0, N)
    _, dsts, _ = edge_arrays(graph)
    no_in = np.setdiff1d(np.arange(N), dsts)
    with force_numpy():
        y_sum = spmv(graph, x, transpose=True)
        y_min = spmv(graph, x, semiring=MIN_PLUS, transpose=True)
    assert np.all(y_sum[no_in] == PLUS_TIMES.add_identity)
    assert np.all(y_min[no_in] == MIN_PLUS.add_identity)
