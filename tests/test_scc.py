"""Tests for strongly connected components (FW-BW-Trim + Tarjan)."""

import numpy as np
import pytest

from repro.algorithms import strongly_connected_components, tarjan_scc
from repro.graph import from_edge_list
from repro.graph.generators import chain, complete, erdos_renyi_gnp, rmat


def nx_scc_count(graph):
    import networkx as nx

    from repro.baselines import nx_graph_of

    return nx.number_strongly_connected_components(nx_graph_of(graph))


class TestKnownShapes:
    def test_directed_cycle_is_one_scc(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], n_vertices=3)
        r = strongly_connected_components(g)
        assert r.n_components == 1
        assert np.all(r.labels == 0)

    def test_cycle_with_tail(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3)], n_vertices=4)
        r = strongly_connected_components(g)
        assert r.labels.tolist() == [0, 0, 0, 3]

    def test_dag_all_singletons(self):
        g = chain(8, directed=True)
        r = strongly_connected_components(g)
        assert r.n_components == 8
        assert np.array_equal(r.labels, np.arange(8))

    def test_two_cycles_bridge(self):
        edges = [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]
        g = from_edge_list(edges, n_vertices=4)
        r = strongly_connected_components(g)
        assert r.n_components == 2
        assert r.labels[0] == r.labels[1]
        assert r.labels[2] == r.labels[3]
        assert r.labels[0] != r.labels[2]

    def test_complete_directed(self):
        g = complete(6, directed=True)
        assert strongly_connected_components(g).n_components == 1

    def test_isolated_vertices(self):
        g = from_edge_list([(0, 1)], n_vertices=4)
        r = strongly_connected_components(g)
        assert r.n_components == 4

    def test_self_loop_singleton(self):
        g = from_edge_list([(0, 0), (0, 1)], n_vertices=2)
        r = strongly_connected_components(g)
        assert r.n_components == 2

    def test_component_sizes(self):
        g = from_edge_list([(0, 1), (1, 0), (2, 3)], n_vertices=4)
        r = strongly_connected_components(g)
        assert sorted(r.component_sizes().tolist()) == [1, 1, 2]


class TestAgainstOracles:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: rmat(8, 8, seed=1),
            lambda: rmat(8, 2, seed=2),
            lambda: erdos_renyi_gnp(200, 0.015, seed=3),
            lambda: erdos_renyi_gnp(120, 0.05, seed=4),
        ],
        ids=["rmat-dense", "rmat-sparse", "er-sparse", "er-dense"],
    )
    def test_matches_tarjan_and_networkx(self, make_graph):
        g = make_graph()
        r = strongly_connected_components(g)
        assert np.array_equal(r.labels, tarjan_scc(g))
        assert r.n_components == nx_scc_count(g)

    def test_labels_are_canonical_minimum(self):
        g = erdos_renyi_gnp(100, 0.05, seed=5)
        r = strongly_connected_components(g)
        for label in np.unique(r.labels):
            members = np.nonzero(r.labels == label)[0]
            assert int(members.min()) == label

    def test_labels_idempotent(self):
        g = rmat(7, 8, seed=6)
        r = strongly_connected_components(g)
        assert np.array_equal(r.labels[r.labels], r.labels)

    def test_empty_graph(self):
        g = from_edge_list([], n_vertices=0)
        r = strongly_connected_components(g)
        assert r.n_components == 0
        assert tarjan_scc(g).shape == (0,)

    def test_scc_refines_weak_components(self):
        """Every SCC lies within one weakly connected component."""
        from repro.algorithms import connected_components

        g = rmat(8, 4, seed=7)
        scc = strongly_connected_components(g).labels
        wcc = connected_components(g).labels
        for label in np.unique(scc):
            members = np.nonzero(scc == label)[0]
            assert np.unique(wcc[members]).shape[0] == 1
