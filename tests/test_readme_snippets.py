"""The README's code blocks, executed — documentation that cannot rot."""

import numpy as np


def test_quickstart_block():
    from repro import generators, sssp, par_vector

    g = generators.rmat(12, 16, weighted=True, seed=7)
    result = sssp(g, source=0, policy=par_vector)
    assert result.distances.shape == (g.n_vertices,)
    assert result.stats.num_iterations > 0
    assert result.stats.mteps >= 0


def test_raw_components_block():
    from repro import SparseFrontier, neighbors_expand, par, generators
    from repro.execution.atomics import AtomicArray
    from repro.types import INF

    g = generators.rmat(8, 8, weighted=True, seed=7)
    dist = np.full(g.n_vertices, INF, dtype=np.float32)
    dist[0] = 0.0
    atomic_dist = AtomicArray(dist)

    f = SparseFrontier(g.n_vertices)
    f.add_vertex(0)
    while f.size() != 0:

        def relax(src, dst, edge, weight):
            new_d = dist[src] + weight
            curr_d = atomic_dist.min_at(dst, new_d)
            return new_d < curr_d

        f = neighbors_expand(par, g, f, relax)

    # Matches the packaged implementation.
    from repro import sssp

    assert np.allclose(dist, sssp(g, 0).distances, atol=1e-3)


def test_observability_block(tmp_path):
    import json

    from repro import generators, sssp
    from repro.observability.export import (
        render_summary,
        validate_chrome_trace,
        write_chrome_trace,
    )
    from repro.observability.probe import Probe

    g = generators.rmat(8, 8, weighted=True, seed=7)
    with Probe() as probe:
        sssp(g, 0)
    assert "superstep" in render_summary(probe)
    path = tmp_path / "trace.json"
    write_chrome_trace(probe, str(path))
    assert validate_chrome_trace(json.loads(path.read_text())) == []
