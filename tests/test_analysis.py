"""Tests for the trace analysis engine, run ledger, and regression gate.

Covers the three PR-4 deliverables end to end: span-tree reconstruction
and attribution (live probe, events JSONL, Chrome trace), the diagnosis
naming an artificially slowed layer, ledger append/query semantics, the
regression gate's exit codes, and the ``repro explain`` / ``repro
diff`` / ``repro ledger`` CLI surface.
"""

from __future__ import annotations

import json
import subprocess
import sys
import os

import pytest

from repro.graph.generators import grid_2d
from repro.observability.analysis import (
    SpanNode,
    analyze_file,
    analyze_probe,
    analyze_spans,
    build_tree,
    layer_of,
    nodes_from_chrome_trace,
)
from repro.observability.export import to_chrome_trace, write_events_jsonl
from repro.observability.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    ledger_enabled,
    make_record,
)
from repro.observability.probe import Probe
from repro.observability.profile import profile_algorithm
from repro.observability.regression import compare

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# -- synthetic span helpers -----------------------------------------------------------


def _span(sid, name, start, dur, parent=None, tid=1, **attrs):
    return SpanNode(
        span_id=sid,
        name=name,
        start=start,
        duration=dur,
        parent_id=parent,
        thread_id=tid,
        thread_name=f"t{tid}",
        attrs=attrs,
    )


def _synthetic_run(frontier_scale=1.0):
    """Three supersteps on a driver thread: each holds one advance and
    one frontier conversion; ``frontier_scale`` inflates the frontier
    layer's share (the artificial-slowdown knob)."""
    nodes = []
    sid = 0
    t = 0.0
    f = 0.010 * frontier_scale
    for i in range(3):
        step_dur = 0.002 + 0.020 + f
        root = _span(sid, "superstep", t, step_dur,
                     iteration=i, frontier_size=10 * (i + 1),
                     edges_expanded=40 * (i + 1),
                     output_frontier_size=10 * (i + 2))
        nodes.append(root)
        root_id, sid = sid, sid + 1
        nodes.append(_span(sid, "operator:advance", t + 0.001, 0.020,
                           parent=root_id, direction="push", fused=True,
                           representation="sparse"))
        sid += 1
        nodes.append(_span(sid, "frontier:convert", t + 0.0215, f,
                           parent=root_id, source="SparseFrontier",
                           target="DenseFrontier"))
        sid += 1
        t += step_dur + 0.001  # 1 ms of untraced bookkeeping between steps
    return nodes


# -- tree + attribution ---------------------------------------------------------------


def test_layer_of_maps_span_vocabulary():
    assert layer_of("graph:view") == "graph"
    assert layer_of("frontier:convert") == "frontier"
    assert layer_of("operator:advance") == "operator"
    assert layer_of("superstep") == "loop"
    assert layer_of("scheduler:task") == "loop"
    assert layer_of("mailbox:deliver") == "comm"
    assert layer_of("checkpoint:save") == "resilience"
    assert layer_of("somebody:else") == "other"


def test_build_tree_links_children_and_orphans():
    a = _span(1, "superstep", 0.0, 1.0)
    b = _span(2, "operator:advance", 0.1, 0.5, parent=1)
    c = _span(3, "operator:filter", 0.7, 0.1, parent=99)  # dropped parent
    roots = build_tree([a, b, c])
    assert [r.span_id for r in roots] == [1, 3]
    assert [ch.span_id for ch in a.children] == [2]
    assert a.self_time == pytest.approx(0.5)
    assert b.self_time == pytest.approx(0.5)


def test_attribution_self_time_no_double_counting():
    report = analyze_spans(_synthetic_run())
    # Layer totals + nothing double counted: attributed == wall (the
    # inter-step gaps are attributed to loop as bookkeeping).
    assert report.attributed_seconds == pytest.approx(
        report.wall_seconds, rel=1e-6
    )
    assert report.coverage == pytest.approx(1.0)
    assert report.layers["operator"] == pytest.approx(0.060, rel=1e-6)
    assert report.layers["frontier"] == pytest.approx(0.030, rel=1e-6)
    assert report.untraced_seconds == pytest.approx(0.002, rel=1e-6)


def test_critical_path_descends_heaviest_child():
    report = analyze_spans(_synthetic_run())
    names = [e.name for e in report.critical_path]
    assert names[0] == "operator:advance"  # the heaviest chain member
    assert "superstep" in names
    assert report.critical_path_seconds > 0
    assert report.critical_path_seconds <= report.wall_seconds * 1.001


def test_frontier_timeline_rows_and_direction():
    report = analyze_spans(_synthetic_run(), n_vertices=100)
    assert len(report.supersteps) == 3
    row = report.supersteps[1]
    assert row.iteration == 1
    assert row.frontier_size == 20
    assert row.output_size == 30
    assert row.edges_expanded == 80
    assert row.density == pytest.approx(0.2)
    assert row.direction == "push" and row.fused is True
    assert row.representation == "sparse"
    assert report.direction_flips == 0


def test_worker_imbalance_from_task_spans():
    nodes = [_span(0, "async:run", 0.0, 1.0, tid=1)]
    sid = 1
    # Worker 0 does 3x the busy time of the other three.
    for worker, busy in ((0, 0.9), (1, 0.3), (2, 0.3), (3, 0.3)):
        for j in range(3):
            nodes.append(
                _span(sid, "scheduler:task", 0.01 * j, busy / 3,
                      tid=10 + worker, worker=worker, stolen=(j == 2))
            )
            sid += 1
    report = analyze_spans(nodes)
    assert len(report.workers) == 4
    mean = (0.9 + 0.3 * 3) / 4
    assert report.imbalance_factor == pytest.approx(0.9 / mean)
    w0 = next(w for w in report.workers if w.worker == 0)
    assert w0.tasks == 3 and w0.steals == 1
    assert "imbalance" in report.diagnosis()


def test_diagnosis_names_artificially_slowed_layer():
    """A 3x slowdown injected into one layer moves the diagnosis."""
    baseline = analyze_spans(_synthetic_run(frontier_scale=1.0))
    assert baseline.bottleneck_layer() == "operator"
    slowed = analyze_spans(_synthetic_run(frontier_scale=7.0))
    assert slowed.bottleneck_layer() == "frontier"
    assert "frontier" in slowed.diagnosis()
    assert "frontier:convert" in slowed.diagnosis()


def test_empty_input_produces_empty_report():
    report = analyze_spans([])
    assert report.span_count == 0
    assert "no spans" in report.diagnosis()
    assert report.render()  # renders without raising


# -- real traces ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def sssp_report():
    graph = grid_2d(32, 32, weighted=True, seed=0)
    return profile_algorithm(graph, "sssp")


def test_probe_attribution_covers_95_percent_of_wall(sssp_report):
    report = analyze_probe(sssp_report.probe)
    assert report.span_count > 0
    assert report.coverage >= 0.95
    # Per-superstep rows track the run's actual iterations.
    assert len(report.supersteps) == sssp_report.stats.num_iterations
    sizes = [r.frontier_size for r in report.supersteps]
    assert sizes == [it.frontier_size for it in sssp_report.stats.iterations]
    assert report.n_vertices == 1024  # from the profile gauge
    assert any(r.density is not None for r in report.supersteps)
    assert report.bottleneck_layer() in ("operator", "loop")


def test_chrome_trace_roundtrip_matches_probe_analysis(sssp_report, tmp_path):
    """Containment-based parent reconstruction recovers the same tree
    shape the probe recorded (same span count, same layer ranking)."""
    direct = analyze_probe(sssp_report.probe)
    path = tmp_path / "trace.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(sssp_report.probe), fh)
    from_file = analyze_file(str(path))
    assert from_file.span_count == direct.span_count
    assert from_file.bottleneck_layer() == direct.bottleneck_layer()
    assert from_file.wall_seconds == pytest.approx(
        direct.wall_seconds, rel=1e-3
    )
    assert len(from_file.supersteps) == len(direct.supersteps)


def test_events_jsonl_analysis_includes_density(sssp_report, tmp_path):
    path = tmp_path / "events.jsonl"
    write_events_jsonl(sssp_report.probe, str(path))
    report = analyze_file(str(path))
    assert report.n_vertices == 1024  # metrics line carries the gauge
    assert any(r.density is not None for r in report.supersteps)
    assert report.coverage >= 0.95


def test_chrome_parent_reconstruction_orders_equal_timestamps():
    obj = {
        "traceEvents": [
            {"name": "child", "ph": "X", "ts": 0.0, "dur": 50.0,
             "pid": 0, "tid": 1, "args": {}},
            {"name": "parent", "ph": "X", "ts": 0.0, "dur": 100.0,
             "pid": 0, "tid": 1, "args": {}},
        ]
    }
    nodes = nodes_from_chrome_trace(obj)
    by_name = {n.name: n for n in nodes}
    assert by_name["child"].parent_id == by_name["parent"].span_id
    assert by_name["parent"].parent_id is None


# -- ledger ---------------------------------------------------------------------------


def test_ledger_append_get_tail_and_prefix(tmp_path):
    ledger = RunLedger(str(tmp_path / "runs"))
    ids = []
    for i in range(3):
        record = make_record(
            kind="run", algorithm="sssp", metrics={"seconds": 0.01 * (i + 1)}
        )
        ids.append(ledger.append(record))
    assert len(ledger) == 3
    assert ledger.get(ids[1])["metrics"]["seconds"] == pytest.approx(0.02)
    # Unique prefix resolves; the shared prefix of all three does not.
    assert ledger.get(ids[2][:-1]) is not None or ledger.get(ids[2]) is not None
    assert ledger.get("r") is None  # ambiguous
    tail = ledger.tail(2)
    assert [r["run_id"] for r in tail] == ids[1:]
    assert ledger.latest("run")["run_id"] == ids[2]
    assert ledger.latest("benchmark") is None


def test_ledger_skips_corrupt_lines(tmp_path):
    ledger = RunLedger(str(tmp_path / "runs"))
    rid = ledger.append(make_record(kind="run", algorithm="bfs"))
    with open(ledger.path, "a", encoding="utf-8") as fh:
        fh.write("{not json\n")
        fh.write(json.dumps({"schema": LEDGER_SCHEMA}) + "\n")  # no run_id
    assert [r["run_id"] for r in ledger.records()] == [rid]


def test_ledger_rejects_wrong_schema(tmp_path):
    ledger = RunLedger(str(tmp_path / "runs"))
    with pytest.raises(ValueError):
        ledger.append({"schema": "other/v9", "run_id": "x"})


def test_ledger_env_disable(monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", "0")
    assert not ledger_enabled()
    monkeypatch.setenv("REPRO_LEDGER", "1")
    assert ledger_enabled()


def test_record_embeds_bounded_supersteps(sssp_report):
    record = make_record(
        kind="profile", algorithm="sssp", stats=sssp_report.stats
    )
    assert record["schema"] == LEDGER_SCHEMA
    assert len(record["supersteps"]) == sssp_report.stats.num_iterations
    assert record["environment"]["python"]
    assert record["created_at"].endswith("Z")


# -- regression gate ------------------------------------------------------------------


def _entry(**seconds):
    return {
        "schema": "repro-bench-trajectory/v1",
        "workloads": [
            {"name": name, "algorithm": name, "seconds": s,
             "n_vertices": 1, "n_edges": 1, "trials": 5}
            for name, s in seconds.items()
        ],
    }


def test_gate_passes_within_threshold():
    report = compare(_entry(sssp=0.100), _entry(sssp=0.110), threshold=0.25)
    assert report.exit_code() == 0
    assert not report.regressions
    assert "gate passed" in report.render()


def test_gate_flags_3x_regression_nonzero_exit():
    report = compare(_entry(sssp=0.100), _entry(sssp=0.300), threshold=0.25)
    assert report.exit_code() == 1
    (bad,) = report.regressions
    assert bad.name == "sssp" and bad.ratio == pytest.approx(3.0)
    assert "REGRESSED" in report.render()


def test_gate_improvement_never_fails():
    report = compare(_entry(sssp=0.300), _entry(sssp=0.100), threshold=0.25)
    assert report.exit_code() == 0
    assert report.improvements and "improved" in report.render()


def test_gate_absolute_noise_floor():
    # 3x slower but only 60 us absolute: below the floor, not a regression.
    report = compare(
        _entry(tiny=0.00003), _entry(tiny=0.00009), threshold=0.25
    )
    assert report.exit_code() == 0


def test_gate_ledger_records_and_missing_workloads():
    base = make_record(kind="run", algorithm="sssp", metrics={"seconds": 0.1})
    cand = make_record(kind="run", algorithm="sssp", metrics={"seconds": 0.5})
    report = compare(base, cand)
    assert report.exit_code() == 1
    both = compare(_entry(a=0.1, b=0.1), _entry(a=0.1, c=0.1))
    assert both.missing == ["b", "c"]
    with pytest.raises(ValueError):
        compare({"schema": "nope"}, _entry(a=0.1))


@pytest.mark.slow
def test_report_py_compare_subprocess_gate(tmp_path):
    """The CI entry point: nonzero exit on a 3x regression."""
    base, cand = tmp_path / "a.json", tmp_path / "b.json"
    base.write_text(json.dumps(_entry(sssp_grid=0.100)))
    cand.write_text(json.dumps(_entry(sssp_grid=0.300)))
    script = os.path.join(REPO_ROOT, "benchmarks", "report.py")
    ok = subprocess.run(
        [sys.executable, script, "--compare", str(base), str(base)],
        capture_output=True, text=True,
    )
    assert ok.returncode == 0, ok.stderr
    bad = subprocess.run(
        [sys.executable, script, "--compare", str(base), str(cand)],
        capture_output=True, text=True,
    )
    assert bad.returncode == 1
    assert "REGRESSED" in bad.stdout


# -- CLI surface ----------------------------------------------------------------------


def test_cli_explain_trace_file(tmp_path, capsys, sssp_report):
    from repro.cli import main

    path = tmp_path / "trace.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(sssp_report.probe), fh)
    assert main(["explain", str(path)]) == 0
    out = capsys.readouterr().out
    assert "per-layer attribution" in out
    assert "critical path" in out
    assert "frontier timeline" in out
    assert "diagnosis:" in out


def test_cli_explain_json_mode(tmp_path, capsys, sssp_report):
    from repro.cli import main

    path = tmp_path / "events.jsonl"
    write_events_jsonl(sssp_report.probe, str(path))
    assert main(["explain", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["coverage"] >= 0.95
    assert payload["bottleneck_layer"] in ("operator", "loop")
    assert payload["supersteps"]


def test_cli_profile_records_ledger_then_explain_and_diff(tmp_path, capsys):
    """The full loop: profile -> ledger record -> explain by run id ->
    diff two runs of the same workload."""
    from repro.cli import main

    ids = []
    for _ in range(2):
        assert main(["profile", "sssp", "--scale", "8"]) == 0
        err = capsys.readouterr().err
        line = next(l for l in err.splitlines() if l.startswith("ledger: "))
        ids.append(line.split("ledger: ", 1)[1].strip())

    assert main(["ledger"]) == 0
    out = capsys.readouterr().out
    assert ids[0] in out and ids[1] in out

    assert main(["explain", ids[0]]) == 0
    out = capsys.readouterr().out
    assert "diagnosis:" in out and "critical path" in out

    code = main(["diff", ids[0], ids[1], "--threshold", "10.0"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "sssp" in out


def test_cli_diff_flags_regression_between_entries(tmp_path, capsys):
    from repro.cli import main

    base, cand = tmp_path / "a.json", tmp_path / "b.json"
    base.write_text(json.dumps(_entry(sssp_grid=0.100)))
    cand.write_text(json.dumps(_entry(sssp_grid=0.300)))
    assert main(["diff", str(base), str(cand)]) == 1
    assert "REGRESSED" in capsys.readouterr().out
    assert main(["diff", str(base), str(base)]) == 0


def test_cli_explain_unknown_target_errors(capsys):
    from repro.cli import main

    assert main(["explain", "no-such-run-id"]) == 1
    assert "neither" in capsys.readouterr().err


def test_cli_run_no_ledger_flag(tmp_path, capsys):
    from repro.cli import main
    from repro.graph.io import save_graph_npz

    g = grid_2d(8, 8, weighted=True, seed=0)
    gpath = tmp_path / "g.npz"
    save_graph_npz(g, str(gpath))
    assert main(["run", "sssp", str(gpath), "--no-ledger"]) == 0
    assert "ledger:" not in capsys.readouterr().err
    assert main(["run", "sssp", str(gpath)]) == 0
    assert "ledger:" in capsys.readouterr().err
