"""Concurrency stress tests: the threaded paths under adversarial load.

These are probabilistic race detectors — many workers, shared state,
repeated rounds — asserting the linearizability and quiescence
contracts that the unit tests check only once.  Kept small enough to
run in seconds.
"""

import threading

import numpy as np
import pytest

from repro.algorithms.sssp import sssp, sssp_async
from repro.baselines import dijkstra
from repro.execution import AsyncScheduler, AtomicArray, par, par_nosync
from repro.frontier import AsyncQueueFrontier, SparseFrontier
from repro.graph.generators import rmat, star
from repro.operators import neighbors_expand


class TestAtomicsUnderContention:
    def test_single_slot_min_hammer(self):
        """All workers race min_at on one index (worst-case stripe
        contention)."""
        arr = AtomicArray(np.array([np.inf]), n_stripes=1)
        samples = np.random.default_rng(0).random((6, 500))

        def worker(tid):
            for x in samples[tid]:
                arr.min_at(0, float(x))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert arr.array[0] == samples.min()

    def test_mixed_ops_conserve_invariants(self):
        """Concurrent add_at on disjoint slots + CAS loops."""
        arr = AtomicArray(np.zeros(4))

        def adder(slot):
            for _ in range(2000):
                arr.add_at(slot, 1.0)

        def caser():
            for _ in range(500):
                ok, seen = arr.compare_exchange(3, arr.load(3), arr.load(3))

        threads = [threading.Thread(target=adder, args=(i,)) for i in range(3)]
        threads.append(threading.Thread(target=caser))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert arr.array[:3].tolist() == [2000.0, 2000.0, 2000.0]


class TestQueueFrontierUnderContention:
    def test_producers_and_consumers_conserve_items(self):
        q = AsyncQueueFrontier(100_000)
        consumed = []
        lock = threading.Lock()
        stop = threading.Event()

        def producer(base):
            for i in range(2000):
                q.add(base + i)

        def consumer():
            while not stop.is_set() or q.size():
                chunk = q.pop_chunk(64)
                if chunk:
                    with lock:
                        consumed.extend(chunk)

        producers = [
            threading.Thread(target=producer, args=(b,))
            for b in (0, 2000, 4000)
        ]
        consumers = [threading.Thread(target=consumer) for _ in range(3)]
        for t in consumers:
            t.start()
        for t in producers:
            t.start()
        for t in producers:
            t.join()
        stop.set()
        for t in consumers:
            t.join()
        assert sorted(consumed) == list(range(6000))


class TestSchedulerStress:
    def test_fanout_tree_quiesces_exactly_once_per_node(self):
        """Each task spawns 2 children to depth 10: the scheduler must
        process exactly 2^11 - 1 tasks, no drops, no duplicates."""
        sched = AsyncScheduler(6)
        seen = []
        lock = threading.Lock()

        def process(item, push):
            with lock:
                seen.append(item)
            if item < (1 << 10):
                push(2 * item)
                push(2 * item + 1)

        total = sched.run(process, [1], 1 << 12, timeout=30)
        assert total == (1 << 11) - 1
        assert sorted(seen) == list(range(1, 1 << 11))

    def test_repeated_runs_are_independent(self):
        sched = AsyncScheduler(4)
        for _ in range(5):
            count = sched.run(lambda i, push: None, range(50), 100, timeout=10)
            assert count == 50


class TestThreadedOperatorsStress:
    def test_par_advance_repeated_equivalence(self, small_rmat):
        """20 repetitions of the threaded advance must all equal seq —
        catches schedule-dependent races."""
        from repro.execution import seq

        f = SparseFrontier.from_indices(
            np.arange(small_rmat.n_vertices, dtype=np.int32),
            small_rmat.n_vertices,
        )
        cond = lambda s, d, e, w: w < 5.0
        expected = np.sort(
            neighbors_expand(seq, small_rmat, f, cond).to_indices()
        )
        for pol in (par.with_workers(7), par_nosync.with_workers(5)):
            for _ in range(10):
                got = np.sort(
                    neighbors_expand(pol, small_rmat, f, cond).to_indices()
                )
                assert np.array_equal(got, expected)

    def test_async_sssp_star_hammer(self):
        """A directed star from the hub: every worker relaxes a disjoint
        leaf, but all read the hub concurrently."""
        g = star(2000, directed=True)
        r = sssp_async(g, 0, num_workers=6, timeout=60)
        assert np.all(r.distances[1:] == 1.0)

    def test_threaded_sssp_repeated(self, weighted_grid):
        ref = dijkstra(weighted_grid, 0)
        for _ in range(3):
            r = sssp(weighted_grid, 0, policy=par.with_workers(6))
            assert np.allclose(r.distances, ref, atol=1e-2)
