"""Tests for partitioning: assignment container, metrics, heuristics."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.generators import grid_2d, rmat, watts_strogatz
from repro.partition import (
    PartitionAssignment,
    communication_volume,
    contiguous_partition,
    edge_cut,
    fennel_partition,
    ldg_partition,
    load_balance,
    metis_like_partition,
    random_partition,
    round_robin_partition,
)

ALL_PARTITIONERS = [
    ("random", lambda g, k: random_partition(g, k, seed=0)),
    ("contiguous", contiguous_partition),
    ("round_robin", round_robin_partition),
    ("ldg", lambda g, k: ldg_partition(g, k, seed=0)),
    ("fennel", lambda g, k: fennel_partition(g, k, seed=0)),
    ("metis_like", lambda g, k: metis_like_partition(g, k, seed=0)),
]


class TestAssignment:
    def test_basic_queries(self):
        p = PartitionAssignment(np.array([0, 1, 0, 1, 2]), 3)
        assert p.n_vertices == 5
        assert p.part_of(3) == 1
        assert p.vertices_of(0).tolist() == [0, 2]
        assert p.part_sizes().tolist() == [2, 2, 1]

    def test_out_of_range_rejected(self):
        with pytest.raises(PartitionError):
            PartitionAssignment(np.array([0, 3]), 2)
        with pytest.raises(PartitionError):
            PartitionAssignment(np.array([-1]), 2)
        with pytest.raises(PartitionError):
            PartitionAssignment(np.array([0]), 0)

    def test_vertices_of_bad_part(self):
        p = PartitionAssignment(np.array([0]), 1)
        with pytest.raises(PartitionError):
            p.vertices_of(1)

    def test_subgraphs(self, small_grid):
        p = contiguous_partition(small_grid, 4)
        subs = p.subgraphs(small_grid)
        assert len(subs) == 4
        assert sum(sub.n_vertices for sub, _ in subs) == small_grid.n_vertices


class TestMetrics:
    def test_edge_cut_extremes(self, small_grid):
        n = small_grid.n_vertices
        all_one = PartitionAssignment(np.zeros(n, dtype=int), 1)
        assert edge_cut(small_grid, all_one) == 0
        each_own = PartitionAssignment(np.arange(n), n)
        assert edge_cut(small_grid, each_own) == small_grid.n_edges

    def test_load_balance_perfect(self):
        p = PartitionAssignment(np.array([0, 0, 1, 1]), 2)
        assert load_balance(p) == 1.0

    def test_load_balance_skewed(self):
        p = PartitionAssignment(np.array([0, 0, 0, 1]), 2)
        assert load_balance(p) == pytest.approx(1.5)

    def test_communication_volume_counts_distinct_parts(self):
        # Star: hub 0 with 4 leaves split across 2 remote parts.
        from repro.graph.generators import star

        g = star(4)
        assignment = np.array([0, 1, 1, 2, 2])
        p = PartitionAssignment(assignment, 3)
        # Hub sends to parts {1, 2} -> volume 2 from the hub, plus each
        # leaf sends to part 0 -> 4, total 6.
        assert communication_volume(g, p) == 6

    def test_communication_volume_zero_single_part(self, small_grid):
        p = PartitionAssignment(np.zeros(small_grid.n_vertices, dtype=int), 1)
        assert communication_volume(small_grid, p) == 0


class TestPartitioners:
    @pytest.mark.parametrize("name,fn", ALL_PARTITIONERS)
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_valid_assignment(self, name, fn, k, small_grid):
        p = fn(small_grid, k)
        assert p.n_vertices == small_grid.n_vertices
        assert p.assignment.min() >= 0
        assert p.assignment.max() < k

    @pytest.mark.parametrize("name,fn", ALL_PARTITIONERS)
    def test_reasonable_balance(self, name, fn, small_grid):
        p = fn(small_grid, 4)
        assert load_balance(p) <= 1.5, f"{name} badly unbalanced"

    def test_random_balanced_exact(self, small_grid):
        p = random_partition(small_grid, 4, seed=1)
        sizes = p.part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_random_unbalanced_mode(self, small_grid):
        p = random_partition(small_grid, 4, balanced=False, seed=1)
        assert p.n_parts == 4  # still valid, only statistically balanced

    def test_random_deterministic(self, small_grid):
        a = random_partition(small_grid, 4, seed=5)
        b = random_partition(small_grid, 4, seed=5)
        assert np.array_equal(a.assignment, b.assignment)

    def test_contiguous_ranges(self, small_grid):
        p = contiguous_partition(small_grid, 4)
        diffs = np.diff(p.assignment)
        assert np.all(diffs >= 0)  # monotone part ids

    def test_round_robin_pattern(self, small_grid):
        p = round_robin_partition(small_grid, 3)
        assert np.array_equal(
            p.assignment, np.arange(small_grid.n_vertices) % 3
        )


class TestQualityOrdering:
    """The Table I claim in measurable form: informed heuristics beat
    random on structured graphs."""

    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: grid_2d(24, 24),
            lambda: watts_strogatz(800, 8, 0.05, seed=3),
        ],
        ids=["grid", "smallworld"],
    )
    def test_metis_like_beats_random(self, make_graph):
        g = make_graph()
        cut_random = edge_cut(g, random_partition(g, 4, seed=0))
        cut_metis = edge_cut(g, metis_like_partition(g, 4, seed=0))
        assert cut_metis < cut_random / 2

    def test_streaming_between_random_and_metis(self):
        g = grid_2d(24, 24)
        cut_random = edge_cut(g, random_partition(g, 4, seed=0))
        cut_ldg = edge_cut(g, ldg_partition(g, 4, seed=0))
        assert cut_ldg < cut_random

    def test_metis_like_respects_balance_cap(self):
        g = rmat(9, 8, seed=1, directed=False)
        p = metis_like_partition(g, 4, balance_factor=1.1, seed=0)
        assert load_balance(p) <= 1.1 + 1e-9


class TestMetisInternals:
    def test_single_part_trivial(self, small_grid):
        p = metis_like_partition(small_grid, 1)
        assert np.all(p.assignment == 0)

    def test_deterministic_given_seed(self, small_grid):
        a = metis_like_partition(small_grid, 4, seed=2)
        b = metis_like_partition(small_grid, 4, seed=2)
        assert np.array_equal(a.assignment, b.assignment)

    def test_zero_parts_rejected(self, small_grid):
        with pytest.raises(ValueError):
            metis_like_partition(small_grid, 0)

    def test_more_parts_than_vertices_is_valid(self):
        g = grid_2d(2, 2)
        p = metis_like_partition(g, 4, seed=0)
        assert p.n_parts == 4


class TestStreamingInternals:
    def test_natural_vs_random_order(self, small_grid):
        a = ldg_partition(small_grid, 4, order="natural", seed=0)
        b = ldg_partition(small_grid, 4, order="random", seed=0)
        assert a.n_parts == b.n_parts == 4

    def test_bad_order_rejected(self, small_grid):
        with pytest.raises(ValueError):
            ldg_partition(small_grid, 2, order="sorted")

    def test_fennel_custom_alpha(self, small_grid):
        p = fennel_partition(small_grid, 4, alpha=0.5, seed=0)
        assert p.n_parts == 4
