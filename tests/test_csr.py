"""Tests for the CSR representation and its bulk queries."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRMatrix
from repro.types import EDGE_DTYPE


@pytest.fixture
def csr():
    # 0 -> 1(w1), 0 -> 2(w2), 1 -> 2(w3), 2 -> (none), 3 -> 0(w4)
    return CSRMatrix(
        4,
        4,
        np.array([0, 2, 3, 3, 4]),
        np.array([1, 2, 2, 0]),
        np.array([1.0, 2.0, 3.0, 4.0]),
    )


class TestConstruction:
    def test_counts(self, csr):
        assert csr.get_num_vertices() == 4
        assert csr.get_num_edges() == 4

    def test_wrong_offsets_length(self):
        with pytest.raises(GraphFormatError, match="row_offsets"):
            CSRMatrix(3, 3, np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_mismatched_columns(self):
        with pytest.raises(GraphFormatError, match="column_indices"):
            CSRMatrix(2, 2, np.array([0, 1, 2]), np.array([0]), np.array([1.0]))

    def test_mismatched_values(self):
        with pytest.raises(GraphFormatError, match="values"):
            CSRMatrix(
                2, 2, np.array([0, 1, 2]), np.array([0, 1]), np.array([1.0])
            )

    def test_empty_graph(self):
        csr = CSRMatrix(0, 0, np.array([0]), np.array([]), np.array([]))
        assert csr.get_num_edges() == 0

    def test_dtype_coercion(self, csr):
        assert csr.row_offsets.dtype == np.int64
        assert csr.column_indices.dtype == np.int32
        assert csr.values.dtype == np.float32


class TestListing1API:
    """Listing 1's native-graph queries on the sparse-matrix storage."""

    def test_get_edges_range(self, csr):
        assert list(csr.get_edges(0)) == [0, 1]
        assert list(csr.get_edges(2)) == []
        assert list(csr.get_edges(3)) == [3]

    def test_get_dest_vertex(self, csr):
        assert csr.get_dest_vertex(0) == 1
        assert csr.get_dest_vertex(3) == 0

    def test_get_edge_weight(self, csr):
        assert csr.get_edge_weight(2) == 3.0

    def test_get_num_neighbors(self, csr):
        assert [csr.get_num_neighbors(v) for v in range(4)] == [2, 1, 0, 1]

    def test_get_neighbors_view_no_copy(self, csr):
        nbrs = csr.get_neighbors(0)
        assert nbrs.base is csr.column_indices

    def test_get_neighbor_weights(self, csr):
        assert csr.get_neighbor_weights(0).tolist() == [1.0, 2.0]

    def test_iter_edges(self, csr):
        edges = list(csr.iter_edges())
        assert edges == [
            (0, 1, 0, 1.0),
            (0, 2, 1, 2.0),
            (1, 2, 2, 3.0),
            (3, 0, 3, 4.0),
        ]


class TestBulkQueries:
    def test_degrees(self, csr):
        assert csr.degrees().tolist() == [2, 1, 0, 1]

    def test_degrees_of_subset(self, csr):
        assert csr.degrees_of(np.array([3, 0])).tolist() == [1, 2]

    def test_source_of_edges(self, csr):
        srcs = csr.source_of_edges(np.arange(4, dtype=EDGE_DTYPE))
        assert srcs.tolist() == [0, 0, 1, 3]

    def test_expand_vertices_full(self, csr):
        s, d, e, w = csr.expand_vertices(np.array([0, 1, 2, 3]))
        assert s.tolist() == [0, 0, 1, 3]
        assert d.tolist() == [1, 2, 2, 0]
        assert e.tolist() == [0, 1, 2, 3]
        assert w.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_expand_vertices_subset_order(self, csr):
        s, d, e, w = csr.expand_vertices(np.array([3, 0]))
        assert s.tolist() == [3, 0, 0]
        assert e.tolist() == [3, 0, 1]

    def test_expand_empty(self, csr):
        s, d, e, w = csr.expand_vertices(np.array([], dtype=np.int32))
        assert s.size == d.size == e.size == w.size == 0

    def test_expand_isolated_vertex(self, csr):
        s, d, e, w = csr.expand_vertices(np.array([2]))
        assert s.size == 0

    def test_expand_duplicate_input(self, csr):
        s, d, e, w = csr.expand_vertices(np.array([1, 1]))
        assert s.tolist() == [1, 1]
        assert e.tolist() == [2, 2]

    def test_neighbor_segments(self, csr):
        starts, counts = csr.neighbor_segments(np.array([0, 2]))
        assert starts.tolist() == [0, 3]
        assert counts.tolist() == [2, 0]


class TestEdgeQueries:
    def test_has_edge(self, csr):
        assert csr.has_edge(0, 1)
        assert not csr.has_edge(1, 0)

    def test_has_edge_sorted_path(self, csr):
        sorted_csr = csr.sort_neighbors()
        assert sorted_csr.has_edge(0, 2, assume_sorted=True)
        assert not sorted_csr.has_edge(0, 3, assume_sorted=True)

    def test_sort_neighbors_permutes_weights(self):
        csr = CSRMatrix(
            2,
            2,
            np.array([0, 2, 2]),
            np.array([1, 0]),
            np.array([10.0, 20.0]),
        )
        s = csr.sort_neighbors()
        assert s.get_neighbors(0).tolist() == [0, 1]
        assert s.get_neighbor_weights(0).tolist() == [20.0, 10.0]

    def test_sort_preserves_original(self, csr):
        before = csr.column_indices.copy()
        csr.sort_neighbors()
        assert np.array_equal(csr.column_indices, before)


class TestConversions:
    def test_to_scipy_roundtrip(self, csr):
        sp = csr.to_scipy()
        assert sp.shape == (4, 4)
        dense = sp.toarray()
        assert dense[0, 1] == 1.0
        assert dense[3, 0] == 4.0
        assert dense[2].sum() == 0.0

    def test_copy_independent(self, csr):
        c = csr.copy()
        c.values[0] = 99.0
        assert csr.values[0] == 1.0

    def test_repr(self, csr):
        assert "n_edges=4" in repr(csr)
