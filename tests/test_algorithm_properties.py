"""Property-based tests (hypothesis) on algorithm invariants over random
graphs — beyond fixed oracles, these pin the *structural* contracts:
triangle inequality of SSSP outputs, BFS level consistency, CC label
idempotence, coloring properness, PageRank stochasticity.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    bfs,
    connected_components,
    graph_coloring,
    kcore_decomposition,
    pagerank,
    sssp,
)
from repro.algorithms.color import verify_coloring
from repro.graph import from_edge_array
from repro.types import INF, VERTEX_DTYPE, WEIGHT_DTYPE

N = 24


@st.composite
def random_graphs(draw, weighted=False, directed=True):
    """Small random digraphs as raw edge arrays (hypothesis-shrinkable)."""
    n_edges = draw(st.integers(min_value=0, max_value=80))
    srcs = draw(
        st.lists(
            st.integers(0, N - 1), min_size=n_edges, max_size=n_edges
        )
    )
    dsts = draw(
        st.lists(
            st.integers(0, N - 1), min_size=n_edges, max_size=n_edges
        )
    )
    weights = None
    if weighted:
        weights = np.asarray(
            draw(
                st.lists(
                    st.floats(0.1, 10.0, allow_nan=False),
                    min_size=n_edges,
                    max_size=n_edges,
                )
            ),
            dtype=WEIGHT_DTYPE,
        )
    return from_edge_array(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        weights,
        n_vertices=N,
        directed=directed,
        remove_self_loops=True,
        deduplicate=True,
    )


@given(random_graphs(weighted=True))
@settings(max_examples=40, deadline=None)
def test_sssp_edge_relaxation_fixed_point(g):
    """At convergence no edge can relax: d[v] <= d[u] + w(u,v)."""
    dist = sssp(g, 0).distances
    for u, v, _, w in g.iter_edges():
        if dist[u] < INF:
            assert dist[v] <= dist[u] + w + 1e-3


@given(random_graphs(weighted=True))
@settings(max_examples=40, deadline=None)
def test_sssp_source_zero_and_nonnegative(g):
    dist = sssp(g, 0).distances
    assert dist[0] == 0.0
    assert np.all(dist >= 0)


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_bfs_level_consistency(g):
    """Levels of adjacent reached vertices differ by at most 1 along
    forward edges, and parents sit exactly one level up."""
    r = bfs(g, 0)
    for u, v, _, _ in g.iter_edges():
        if r.levels[u] >= 0:
            assert r.levels[v] != -1
            assert r.levels[v] <= r.levels[u] + 1


@given(random_graphs(directed=False))
@settings(max_examples=40, deadline=None)
def test_cc_labels_are_class_representatives(g):
    """Labels are idempotent (label[label] == label) and edges never
    cross labels."""
    r = connected_components(g)
    assert np.array_equal(r.labels[r.labels], r.labels)
    for u, v, _, _ in g.iter_edges():
        assert r.labels[u] == r.labels[v]
    assert r.n_components == np.unique(r.labels).shape[0]


@given(random_graphs(directed=False))
@settings(max_examples=40, deadline=None)
def test_cc_methods_agree(g):
    a = connected_components(g, method="label_propagation")
    b = connected_components(g, method="hooking")
    assert np.array_equal(a.labels, b.labels)


@given(random_graphs(directed=False))
@settings(max_examples=30, deadline=None)
def test_coloring_always_proper(g):
    r = graph_coloring(g, seed=0)
    assert verify_coloring(g, r.colors)
    assert r.n_colors <= int(g.out_degrees().max(initial=0)) + 1


@given(random_graphs(directed=False))
@settings(max_examples=30, deadline=None)
def test_kcore_definition_holds(g):
    """Every vertex of core number k has >= k neighbors with core >= k."""
    r = kcore_decomposition(g)
    csr = g.csr()
    for v in range(g.n_vertices):
        k = r.core_numbers[v]
        if k > 0:
            nbrs = csr.get_neighbors(v)
            assert np.count_nonzero(r.core_numbers[nbrs] >= k) >= k


@given(random_graphs())
@settings(max_examples=30, deadline=None)
def test_pagerank_is_distribution(g):
    r = pagerank(g)
    assert np.all(r.ranks >= 0)
    assert r.ranks.sum() == np.float64(1.0).__class__(1.0) or abs(
        r.ranks.sum() - 1.0
    ) < 1e-6


@given(random_graphs(weighted=True), st.sampled_from(["seq", "par_vector"]))
@settings(max_examples=25, deadline=None)
def test_sssp_policy_equivalence_property(g, policy_name):
    base = sssp(g, 0, policy="par_vector").distances
    other = sssp(g, 0, policy=policy_name).distances
    assert np.allclose(base, other, atol=1e-3)
