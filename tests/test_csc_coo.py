"""Tests for CSC and COO representations and transposition."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.csc import CSCMatrix
from repro.graph.csr import CSRMatrix
from repro.graph.transpose import csc_to_csr, transpose_csr


@pytest.fixture
def csr():
    return CSRMatrix(
        4,
        4,
        np.array([0, 2, 3, 3, 4]),
        np.array([1, 2, 2, 0]),
        np.array([1.0, 2.0, 3.0, 4.0]),
    )


class TestTranspose:
    def test_in_degrees(self, csr):
        csc = transpose_csr(csr)
        assert csc.in_degrees().tolist() == [1, 1, 2, 0]

    def test_in_neighbors_and_weights(self, csr):
        csc = transpose_csr(csr)
        assert csc.get_in_neighbors(2).tolist() == [0, 1]
        assert csc.get_in_neighbor_weights(2).tolist() == [2.0, 3.0]
        assert csc.get_in_neighbors(0).tolist() == [3]

    def test_roundtrip(self, csr):
        back = csc_to_csr(transpose_csr(csr))
        assert np.array_equal(back.row_offsets, csr.row_offsets)
        assert np.array_equal(back.column_indices, csr.column_indices)
        assert np.allclose(back.values, csr.values)

    def test_transpose_matches_scipy(self, csr):
        csc = transpose_csr(csr)
        assert np.allclose(
            csc.to_scipy().toarray(), csr.to_scipy().toarray()
        )

    def test_empty(self):
        empty = CSRMatrix(3, 3, np.zeros(4, dtype=int), np.array([]), np.array([]))
        csc = transpose_csr(empty)
        assert csc.get_num_edges() == 0


class TestCSCQueries:
    def test_scalar_api(self, csr):
        csc = transpose_csr(csr)
        assert csc.get_num_vertices() == 4
        assert csc.get_num_edges() == 4
        e = list(csc.get_in_edges(2))
        assert len(e) == 2
        assert {csc.get_source_vertex(k) for k in e} == {0, 1}

    def test_gather_in_edges(self, csr):
        csc = transpose_csr(csr)
        srcs, dsts, eids, wts = csc.gather_in_edges(np.array([2, 0]))
        assert dsts.tolist() == [2, 2, 0]
        assert srcs.tolist() == [0, 1, 3]
        assert wts.tolist() == [2.0, 3.0, 4.0]

    def test_gather_empty(self, csr):
        csc = transpose_csr(csr)
        srcs, _, _, _ = csc.gather_in_edges(np.array([], dtype=np.int32))
        assert srcs.size == 0

    def test_bad_offsets_rejected(self):
        with pytest.raises(GraphFormatError):
            CSCMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))


class TestCOO:
    def test_construction_and_access(self):
        coo = COOMatrix(
            3, 3, np.array([0, 1]), np.array([1, 2]), np.array([5.0, 6.0])
        )
        assert coo.get_num_edges() == 2
        assert coo.get_edge(1) == (1, 2, 6.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix(2, 2, np.array([0, 2]), np.array([1, 1]), np.ones(2))
        with pytest.raises(GraphFormatError):
            COOMatrix(2, 2, np.array([-1]), np.array([0]), np.ones(1))

    def test_unequal_lengths_rejected(self):
        with pytest.raises(GraphFormatError):
            COOMatrix(2, 2, np.array([0]), np.array([0, 1]), np.ones(2))

    def test_sorted_by_row(self):
        coo = COOMatrix(
            3, 3, np.array([2, 0, 1]), np.array([0, 1, 2]), np.arange(3.0)
        )
        s = coo.sorted_by_row()
        assert s.rows.tolist() == [0, 1, 2]
        assert s.vals.tolist() == [1.0, 2.0, 0.0]

    @pytest.mark.parametrize(
        "combine,expected", [("first", 1.0), ("sum", 4.0), ("min", 1.0), ("max", 3.0)]
    )
    def test_deduplicate_combines(self, combine, expected):
        coo = COOMatrix(
            2,
            2,
            np.array([0, 0]),
            np.array([1, 1]),
            np.array([1.0, 3.0]),
        )
        d = coo.deduplicated(combine=combine)
        assert d.get_num_edges() == 1
        assert d.vals[0] == expected

    def test_deduplicate_bad_combine(self):
        coo = COOMatrix(1, 1, np.array([0]), np.array([0]), np.ones(1))
        with pytest.raises(ValueError):
            coo.deduplicated(combine="avg")

    def test_without_self_loops(self):
        coo = COOMatrix(
            2, 2, np.array([0, 1]), np.array([0, 0]), np.ones(2)
        )
        assert coo.without_self_loops().get_num_edges() == 1

    def test_symmetrized_doubles(self):
        coo = COOMatrix(2, 2, np.array([0]), np.array([1]), np.array([2.0]))
        s = coo.symmetrized()
        assert s.get_num_edges() == 2
        assert sorted(zip(s.rows.tolist(), s.cols.tolist())) == [(0, 1), (1, 0)]

    def test_to_csr_arrays_counting_sort(self):
        coo = COOMatrix(
            3,
            3,
            np.array([2, 0, 2]),
            np.array([1, 2, 0]),
            np.array([1.0, 2.0, 3.0]),
        )
        ro, ci, vals = coo.to_csr_arrays()
        assert ro.tolist() == [0, 1, 1, 3]
        assert ci.tolist() == [2, 1, 0]  # stable within row 2
        assert vals.tolist() == [2.0, 1.0, 3.0]

    def test_transposed(self):
        coo = COOMatrix(2, 3, np.array([0]), np.array([2]), np.ones(1))
        t = coo.transposed()
        assert (t.n_rows, t.n_cols) == (3, 2)
        assert t.rows.tolist() == [2]
