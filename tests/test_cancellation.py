"""Cooperative cancellation tests: deadlines, tokens, and the guarantee
that a killed query leaves every execution engine reusable.

The service story rests on two properties exercised here:

* **Propagation** — an ambient :class:`CancelToken` stops the BSP
  enactor, the priority enactor, both async schedulers, and the Pregel
  engine at their next superstep/bucket/quiescence boundary, surfacing
  :class:`DeadlineExceeded` / :class:`QueryCancelled` (never a bare
  ``TimeoutError``, which retry policies would treat as transient).
* **Reusability** — after a cancelled run, thread pools, schedulers,
  and workspaces still work: the same algorithm runs to completion
  immediately afterwards and no worker threads are left behind.
"""

import threading
import time

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.algorithms.ppr import personalized_pagerank, ppr_forward_push
from repro.algorithms.sssp import sssp, sssp_async
from repro.loop.priority_enactor import sssp_bucketed
from repro.comm.pregel import PregelEngine, VertexProgram
from repro.errors import (
    CancellationError,
    DeadlineExceeded,
    QueryCancelled,
)
from repro.execution.scheduler import AsyncScheduler
from repro.execution.stealing import WorkStealingScheduler
from repro.graph.generators import grid_2d, with_random_weights
from repro.resilience import (
    CancelToken,
    Deadline,
    RetryPolicy,
    SupervisionConfig,
    active_token,
    check_cancelled,
    clamp_timeout,
    run_with_fallback,
)


@pytest.fixture(scope="module")
def grid():
    return with_random_weights(grid_2d(24, 24), seed=3)


def expired_token(**kwargs):
    return CancelToken.after(0.0, **kwargs)


def settle_threads(baseline, *, timeout=5.0):
    """Wait for transient worker threads to exit; return the final count."""
    deadline = time.monotonic() + timeout
    while (
        threading.active_count() > baseline and time.monotonic() < deadline
    ):
        time.sleep(0.02)
    return threading.active_count()


class TestDeadline:
    def test_after_and_remaining(self):
        d = Deadline.after(10.0)
        assert 9.0 < d.remaining() <= 10.0
        assert not d.expired()

    def test_check_raises_once_expired(self):
        d = Deadline.after(0.0)
        assert d.expired()
        with pytest.raises(DeadlineExceeded, match="over by"):
            d.check("unit")

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


class TestCancelToken:
    def test_ambient_installation_and_nesting(self):
        assert active_token() is None
        outer = CancelToken.after(60.0, label="outer")
        inner = CancelToken.after(60.0, label="inner")
        with outer:
            assert active_token() is outer
            with inner:
                assert active_token() is inner
            assert active_token() is outer
        assert active_token() is None

    def test_explicit_cancel_raises_query_cancelled(self):
        token = CancelToken()
        token.cancel("client went away")
        with pytest.raises(QueryCancelled, match="client went away"):
            token.check("unit")

    def test_expired_deadline_raises_deadline_exceeded(self):
        with pytest.raises(DeadlineExceeded):
            expired_token().check("unit")

    def test_cancel_is_idempotent_first_reason_wins(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"

    def test_should_stop_never_raises(self):
        token = CancelToken()
        assert not token.should_stop()
        token.cancel()
        assert token.should_stop()

    def test_check_cancelled_helper_noop_without_token(self):
        check_cancelled("nowhere")  # must not raise

    def test_clamp_timeout_folds_ambient_budget(self):
        assert clamp_timeout(5.0) == 5.0
        assert clamp_timeout(None) is None
        with CancelToken.after(1.0):
            clamped = clamp_timeout(100.0)
            assert clamped is not None and clamped <= 1.0
            assert clamp_timeout(None) is not None

    def test_ambient_is_thread_local(self):
        seen = []
        with CancelToken.after(60.0):
            t = threading.Thread(target=lambda: seen.append(active_token()))
            t.start()
            t.join()
        assert seen == [None]


class TestRetryInteraction:
    def test_cancellation_is_not_retried(self):
        """DeadlineExceeded must pass straight through a retry policy —
        it is not an OSError/TimeoutError, so DEFAULT_RETRYABLE misses
        it by construction."""
        calls = []

        def fail():
            calls.append(1)
            raise DeadlineExceeded("budget gone")

        policy = RetryPolicy(max_attempts=5, base_delay=0.0, max_delay=0.0)
        with pytest.raises(DeadlineExceeded):
            policy.execute(fail, site="unit")
        assert len(calls) == 1

    def test_fallback_does_not_degrade_on_cancellation(self):
        """Degrading a cancelled parallel run to sequential would
        overshoot the deadline by design; it must re-raise instead."""
        attempts = []

        def parallel():
            attempts.append(1)
            raise QueryCancelled("cancelled mid-run")

        def sequential():  # pragma: no cover - must not be reached
            raise AssertionError("degraded despite cancellation")

        with pytest.raises(QueryCancelled):
            run_with_fallback(
                parallel,
                sequential,
                config=SupervisionConfig(max_parallel_failures=3),
            )
        assert len(attempts) == 1


class TestEnactorCancellation:
    """Every engine stops at its next boundary under a fired token."""

    def test_bsp_enactor_deadline(self, grid):
        with expired_token():
            with pytest.raises(DeadlineExceeded, match="superstep"):
                sssp(grid, 0, policy="par_vector")

    def test_bsp_enactor_explicit_cancel(self, grid):
        token = CancelToken()
        token.cancel("test cancel")
        with token:
            with pytest.raises(QueryCancelled):
                bfs(grid, 0)

    def test_priority_enactor_deadline(self, grid):
        with expired_token():
            with pytest.raises(DeadlineExceeded, match="bucket"):
                sssp_bucketed(grid, 0)

    def test_async_enactor_deadline(self, grid):
        baseline = threading.active_count()
        with expired_token():
            with pytest.raises(CancellationError):
                sssp_async(grid, 0, num_workers=4)
        assert settle_threads(baseline) <= baseline

    def test_pregel_deadline(self, grid):
        class Noop(VertexProgram):
            def compute(self, ctx):
                ctx.vote_to_halt()

        engine = PregelEngine(grid)
        with expired_token():
            with pytest.raises(DeadlineExceeded, match="pregel:superstep"):
                engine.run(Noop(), np.zeros(grid.n_vertices))


class TestSchedulerCancellation:
    """The quiescence engines abort their wait, drain, and join."""

    def _endless(self, capacity):
        def process(item, push):
            time.sleep(0.001)
            push((item + 1) % capacity)

        return process

    def test_async_scheduler_explicit_cancel_aborts(self):
        baseline = threading.active_count()
        scheduler = AsyncScheduler(num_workers=3, poll_timeout=0.005)
        token = CancelToken(label="abort-test")
        token.cancel("test abort")
        with token:
            with pytest.raises(QueryCancelled):
                scheduler.run(self._endless(64), range(8), 64)
        assert settle_threads(baseline) <= baseline

    def test_async_scheduler_deadline_aborts(self):
        scheduler = AsyncScheduler(num_workers=3, poll_timeout=0.005)
        with CancelToken.after(0.1):
            with pytest.raises(DeadlineExceeded):
                scheduler.run(self._endless(64), range(8), 64)

    def test_stealing_scheduler_explicit_cancel_aborts(self):
        baseline = threading.active_count()
        scheduler = WorkStealingScheduler(num_workers=3, poll_timeout=0.005)
        token = CancelToken(label="steal-abort")
        token.cancel("test abort")
        with token:
            with pytest.raises(QueryCancelled):
                scheduler.run(self._endless(64), range(8), 64)
        assert settle_threads(baseline) <= baseline

    def test_stealing_scheduler_deadline_aborts(self):
        scheduler = WorkStealingScheduler(num_workers=3, poll_timeout=0.005)
        with CancelToken.after(0.1):
            with pytest.raises(DeadlineExceeded):
                scheduler.run(self._endless(64), range(8), 64)


class TestReusabilityAfterCancellation:
    """The acceptance property: kill a query, the engines still work."""

    @pytest.mark.parametrize("policy", ["seq", "par", "par_nosync", "par_vector"])
    def test_sssp_pool_reusable_after_kill(self, grid, policy):
        baseline = threading.active_count()
        with expired_token():
            with pytest.raises(CancellationError):
                sssp(grid, 0, policy=policy)
        # Same policy, no token: must produce the full correct result.
        result = sssp(grid, 0, policy=policy)
        oracle = sssp(grid, 0, policy="seq")
        np.testing.assert_allclose(result.distances, oracle.distances)
        assert settle_threads(baseline + 8) <= baseline + 8

    def test_async_engine_reusable_after_kill(self, grid):
        with expired_token():
            with pytest.raises(CancellationError):
                sssp_async(grid, 0, num_workers=4)
        result = sssp_async(grid, 0, num_workers=4)
        oracle = sssp(grid, 0, policy="seq")
        np.testing.assert_allclose(result.distances, oracle.distances)

    def test_scheduler_object_reusable_after_cancel(self):
        scheduler = AsyncScheduler(num_workers=2, poll_timeout=0.005)
        token = CancelToken()
        token.cancel()
        with token:
            with pytest.raises(QueryCancelled):
                scheduler.run(
                    lambda i, push: time.sleep(0.001) or push((i + 1) % 32),
                    range(4),
                    32,
                )
        done = []
        processed = scheduler.run(
            lambda i, push: done.append(i), range(10), 32
        )
        assert processed == 10 and len(done) == 10


class TestPartialResults:
    """Anytime algorithms return their last iterate, flagged unconverged."""

    def test_pagerank_partial_under_deadline(self, grid):
        with CancelToken.after(0.03):
            partial = pagerank(
                grid, tolerance=0.0, max_iterations=100_000
            )
        assert partial.converged is False
        assert partial.iterations < 100_000
        assert partial.ranks.shape == (grid.n_vertices,)
        assert np.all(np.isfinite(partial.ranks))

    def test_pagerank_partial_ranks_are_last_iterate(self, grid):
        """The partial after k supersteps equals an honest k-iteration
        run — deterministic via a deadline that fires on the (k+1)-th
        cooperative check instead of a wall-clock race."""

        class CountdownDeadline(Deadline):
            __slots__ = ("left",)

            def __init__(self, checks):
                super().__init__(float("inf"))
                self.left = checks

            def expired(self):
                return self.left < 0

            def remaining(self):
                return float("inf") if self.left >= 0 else -1.0

            def check(self, site=""):
                self.left -= 1
                if self.left < 0:
                    raise DeadlineExceeded(f"countdown fired at {site}")

        with CancelToken(CountdownDeadline(3)):
            partial = pagerank(grid, tolerance=0.0, max_iterations=1000)
        assert partial.converged is False
        assert partial.iterations == 3
        capped = pagerank(grid, tolerance=0.0, max_iterations=3)
        np.testing.assert_allclose(partial.ranks, capped.ranks)

    def test_ppr_power_iteration_partial(self, grid):
        token = CancelToken()
        token.cancel("budget")
        with token:
            result = personalized_pagerank(grid, 0, max_iterations=50)
        assert result.converged is False
        assert result.iterations == 0

    def test_ppr_forward_push_partial(self, grid):
        token = CancelToken()
        token.cancel("budget")
        with token:
            result = ppr_forward_push(grid, 0)
        assert result.converged is False

    def test_pagerank_unaffected_without_token(self, grid):
        full = pagerank(grid)
        assert full.converged is True
