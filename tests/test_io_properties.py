"""Property-based I/O tests: every text format round-trips arbitrary
graphs losslessly (hypothesis fuzz over edge lists)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_array
from repro.graph.io import (
    load_graph_npz,
    read_dimacs,
    read_edgelist,
    read_matrix_market,
    save_graph_npz,
    write_dimacs,
    write_edgelist,
    write_matrix_market,
)
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

N = 12


@st.composite
def graphs(draw):
    n_edges = draw(st.integers(0, 40))
    srcs = draw(st.lists(st.integers(0, N - 1), min_size=n_edges, max_size=n_edges))
    dsts = draw(st.lists(st.integers(0, N - 1), min_size=n_edges, max_size=n_edges))
    # Weights that survive a %g text round-trip exactly enough.
    weights = draw(
        st.lists(
            st.integers(1, 1000).map(lambda x: x / 4.0),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    return from_edge_array(
        np.asarray(srcs, dtype=VERTEX_DTYPE),
        np.asarray(dsts, dtype=VERTEX_DTYPE),
        np.asarray(weights, dtype=WEIGHT_DTYPE),
        n_vertices=N,
        directed=True,
        deduplicate=True,
    )


def edge_multiset(graph):
    coo = graph.coo()
    return sorted(
        zip(coo.rows.tolist(), coo.cols.tolist(), np.round(coo.vals, 4).tolist())
    )


SUPPRESS = [HealthCheck.function_scoped_fixture]


@given(graphs())
@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
def test_edgelist_roundtrip(tmp_path, g):
    path = tmp_path / "g.txt"
    write_edgelist(g, path)
    back = read_edgelist(path, n_vertices=N)
    assert edge_multiset(back) == edge_multiset(g)


@given(graphs())
@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
def test_matrix_market_roundtrip(tmp_path, g):
    path = tmp_path / "g.mtx"
    write_matrix_market(g, path)
    back = read_matrix_market(path)
    assert back.n_vertices == N
    assert edge_multiset(back) == edge_multiset(g)


@given(graphs())
@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
def test_dimacs_roundtrip(tmp_path, g):
    path = tmp_path / "g.gr"
    write_dimacs(g, path)
    back = read_dimacs(path)
    assert edge_multiset(back) == edge_multiset(g)


@given(graphs())
@settings(max_examples=30, deadline=None, suppress_health_check=SUPPRESS)
def test_npz_roundtrip_bit_exact(tmp_path, g):
    path = tmp_path / "g.npz"
    save_graph_npz(g, path)
    back = load_graph_npz(path)
    assert np.array_equal(back.csr().row_offsets, g.csr().row_offsets)
    assert np.array_equal(back.csr().column_indices, g.csr().column_indices)
    assert np.array_equal(back.csr().values, g.csr().values)
