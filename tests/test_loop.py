"""Tests for the loop structure: convergence conditions and enactors."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.frontier import SparseFrontier
from repro.loop import (
    AllOf,
    AnyOf,
    AsyncEnactor,
    EmptyFrontier,
    Enactor,
    HaltFlag,
    LoopState,
    MaxIterations,
    ValuesConverged,
)


class TestConvergenceConditions:
    def test_empty_frontier(self):
        cond = EmptyFrontier()
        assert cond(LoopState(frontier=SparseFrontier(5)))
        assert not cond(LoopState(frontier=SparseFrontier.from_indices([1], 5)))
        assert cond(LoopState(frontier=None))

    def test_max_iterations(self):
        cond = MaxIterations(3)
        assert not cond(LoopState(iteration=2))
        assert cond(LoopState(iteration=3))
        with pytest.raises(ValueError):
            MaxIterations(-1)

    def test_values_converged_l1(self):
        box = {"v": np.array([1.0, 2.0])}
        cond = ValuesConverged(lambda s: box["v"], tolerance=0.05, norm="l1")
        assert not cond(LoopState())  # first call primes history
        box["v"] = box["v"] + 0.01
        assert cond(LoopState())  # moved 0.02 <= 0.05

    def test_values_converged_linf(self):
        box = {"v": np.zeros(3)}
        cond = ValuesConverged(lambda s: box["v"], tolerance=0.5, norm="linf")
        cond(LoopState())
        box["v"] = np.array([0.0, 0.0, 1.0])
        assert not cond(LoopState())

    def test_values_converged_records_delta(self):
        box = {"v": np.zeros(2)}
        cond = ValuesConverged(lambda s: box["v"], tolerance=0.0)
        state = LoopState()
        cond(state)
        box["v"] = np.array([1.0, 1.0])
        cond(state)
        assert state.context["delta"] == pytest.approx(2.0)

    def test_values_converged_reset(self):
        box = {"v": np.zeros(2)}
        cond = ValuesConverged(lambda s: box["v"], tolerance=1.0)
        cond(LoopState())
        cond.reset()
        assert not cond(LoopState())  # history cleared -> priming again

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ValuesConverged(lambda s: None, tolerance=-1)
        with pytest.raises(ValueError):
            ValuesConverged(lambda s: None, norm="l2")

    def test_halt_flag(self):
        cond = HaltFlag()
        assert not cond(LoopState())
        cond.halt()
        assert cond(LoopState())
        cond.reset()
        assert not cond(LoopState())

    def test_any_of_no_short_circuit(self):
        """Stateful sub-conditions must see every superstep."""
        box = {"v": np.zeros(2)}
        values_cond = ValuesConverged(lambda s: box["v"], tolerance=0.1)
        halt = HaltFlag()
        halt.halt()
        combined = AnyOf([halt, values_cond])
        combined(LoopState())  # halts, but values_cond must still prime
        assert values_cond._previous is not None

    def test_operator_composition(self):
        a, b = HaltFlag(), HaltFlag()
        both = a & b
        either = a | b
        a.halt()
        assert either(LoopState())
        assert not both(LoopState())
        b.halt()
        assert both(LoopState())

    def test_empty_composites_rejected(self):
        with pytest.raises(ValueError):
            AnyOf([])
        with pytest.raises(ValueError):
            AllOf([])


class TestEnactor:
    def test_listing4_loop_shape(self, diamond_graph):
        """A trivial shrink-by-one step converges via EmptyFrontier and
        records one IterationStats per superstep."""
        n = diamond_graph.n_vertices

        def step(frontier, state):
            idx = frontier.to_indices()
            return SparseFrontier.from_indices(idx[1:], n)

        enactor = Enactor(diamond_graph)
        stats = enactor.run(SparseFrontier.from_indices([0, 1, 2], n), step)
        assert stats.converged
        assert stats.num_iterations == 3
        assert [s.frontier_size for s in stats.iterations] == [3, 2, 1]

    def test_preconverged_runs_zero_steps(self, diamond_graph):
        calls = []

        def step(frontier, state):
            calls.append(1)
            return frontier

        stats = Enactor(diamond_graph).run(
            SparseFrontier(diamond_graph.n_vertices), step
        )
        assert stats.converged and not calls

    def test_max_iterations_guard_raises(self, diamond_graph):
        def step(frontier, state):
            return frontier  # never converges

        enactor = Enactor(diamond_graph, max_iterations=5)
        with pytest.raises(ConvergenceError, match="max_iterations"):
            enactor.run(
                SparseFrontier.from_indices([0], diamond_graph.n_vertices), step
            )

    def test_custom_convergence(self, diamond_graph):
        enactor = Enactor(diamond_graph, convergence=MaxIterations(2))
        stats = enactor.run(
            SparseFrontier.from_indices([0], diamond_graph.n_vertices),
            lambda f, s: f,
        )
        assert stats.num_iterations == 2

    def test_edges_touched_accounting(self, diamond_graph):
        def step(frontier, state):
            return SparseFrontier(diamond_graph.n_vertices)

        stats = Enactor(diamond_graph).run(
            SparseFrontier.from_indices([0], diamond_graph.n_vertices), step
        )
        assert stats.iterations[0].edges_touched == 2  # deg(0) == 2

    def test_collect_stats_off(self, diamond_graph):
        enactor = Enactor(diamond_graph, collect_stats=False)
        stats = enactor.run(
            SparseFrontier.from_indices([0], diamond_graph.n_vertices),
            lambda f, s: SparseFrontier(diamond_graph.n_vertices),
        )
        assert stats.converged and stats.num_iterations == 0

    def test_context_passes_through(self, diamond_graph):
        seen = {}

        def step(frontier, state):
            seen.update(state.context)
            return SparseFrontier(diamond_graph.n_vertices)

        Enactor(diamond_graph).run(
            SparseFrontier.from_indices([0], diamond_graph.n_vertices),
            step,
            context={"tag": "hello"},
        )
        assert seen["tag"] == "hello"

    def test_state_iteration_advances(self, diamond_graph):
        iterations = []

        def step(frontier, state):
            iterations.append(state.iteration)
            idx = frontier.to_indices()
            return SparseFrontier.from_indices(
                idx[1:], diamond_graph.n_vertices
            )

        Enactor(diamond_graph).run(
            SparseFrontier.from_indices([0, 1], diamond_graph.n_vertices), step
        )
        assert iterations == [0, 1]


class TestAsyncEnactor:
    def test_quiescence(self, diamond_graph):
        import threading

        seen = []
        lock = threading.Lock()

        def process(v, push):
            with lock:
                seen.append(v)
            if v == 0:
                push(1)
                push(2)

        enactor = AsyncEnactor(diamond_graph, num_workers=2, timeout=10)
        total = enactor.run([0], process)
        assert total == 3
        assert sorted(seen) == [0, 1, 2]

    def test_accepts_frontier_input(self, diamond_graph):
        enactor = AsyncEnactor(diamond_graph, num_workers=2, timeout=10)
        total = enactor.run(
            SparseFrontier.from_indices([0, 1], diamond_graph.n_vertices),
            lambda v, push: None,
        )
        assert total == 2

    def test_timeout_enforced(self, diamond_graph):
        def process(v, push):
            push(v)  # livelock: every task re-enqueues itself

        enactor = AsyncEnactor(diamond_graph, num_workers=1, timeout=0.2)
        with pytest.raises(TimeoutError):
            enactor.run([0], process)
