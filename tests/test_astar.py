"""Tests for A*: optimality, admissible-heuristic speedup, path validity."""

import numpy as np
import pytest

from repro.algorithms.astar import astar, euclidean_heuristic, grid_heuristic
from repro.baselines import dijkstra
from repro.graph import from_edge_list
from repro.graph.generators import chain, grid_2d
from repro.types import INF


class TestOptimality:
    def test_matches_dijkstra_no_heuristic(self, weighted_grid):
        ref = dijkstra(weighted_grid, 0)
        for target in (5, 37, 99):
            r = astar(weighted_grid, 0, target)
            assert r.distance == pytest.approx(float(ref[target]), abs=1e-3)

    def test_matches_dijkstra_with_grid_heuristic(self):
        side = 12
        g = grid_2d(side, side, weighted=True, seed=3)
        ref = dijkstra(g, 0)
        # Admissible scale: minimum edge weight lower-bounds per-hop cost.
        min_w = float(g.csr().values.min())
        for target in (side * side - 1, side * side // 2, 17):
            r = astar(
                g, 0, target,
                heuristic=grid_heuristic(side, target, min_edge_weight=min_w),
            )
            assert r.distance == pytest.approx(float(ref[target]), abs=1e-3)

    def test_euclidean_heuristic_optimal(self):
        side = 10
        g = grid_2d(side, side, weighted=True, seed=4)
        ids = np.arange(side * side)
        xs, ys = (ids % side).astype(float), (ids // side).astype(float)
        min_w = float(g.csr().values.min())
        target = side * side - 1
        r = astar(
            g, 0, target,
            heuristic=euclidean_heuristic(xs, ys, target, scale=min_w),
        )
        assert r.distance == pytest.approx(float(dijkstra(g, 0)[target]), abs=1e-3)


class TestSearchEffort:
    def test_heuristic_settles_fewer_vertices(self):
        """Goal-directed search on a unit grid must expand a corridor,
        not the whole Dijkstra ball.

        Note the target choice: for *opposite corners* every grid vertex
        lies on some monotone shortest path (f = g + h is constant), so
        A* legitimately prunes nothing — the informative case is a
        target along one edge, where off-row vertices cost extra."""
        side = 30
        g = grid_2d(side, side)  # unit weights: Manhattan h is exact
        target = side - 1  # same row as the source, far end
        plain = astar(g, 0, target)
        guided = astar(g, 0, target, heuristic=grid_heuristic(side, target))
        assert guided.distance == plain.distance
        assert guided.settled < plain.settled / 2

    def test_early_exit_at_target(self):
        g = chain(100, directed=True)
        r = astar(g, 0, 5)
        assert r.settled <= 7  # never explores past the target


class TestPath:
    def test_path_is_connected_and_costed(self, weighted_grid):
        r = astar(weighted_grid, 3, 77)
        assert r.path[0] == 3 and r.path[-1] == 77
        csr = weighted_grid.csr()
        total = 0.0
        for a, b in zip(r.path, r.path[1:]):
            assert weighted_grid.has_edge(a, b)
            idx = csr.get_neighbors(a).tolist().index(b)
            total += float(csr.get_neighbor_weights(a)[idx])
        assert total == pytest.approx(r.distance, abs=1e-3)

    def test_source_equals_target(self, weighted_grid):
        r = astar(weighted_grid, 9, 9)
        assert r.distance == 0.0
        assert r.path == [9]

    def test_unreachable(self, two_component_graph):
        r = astar(two_component_graph, 0, 4)
        assert not r.found
        assert r.distance == INF
        assert r.path == []

    def test_directed_one_way(self):
        g = from_edge_list([(0, 1, 2.0)], n_vertices=2)
        assert astar(g, 0, 1).distance == 2.0
        assert not astar(g, 1, 0).found
