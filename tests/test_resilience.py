"""Resilience layer tests: chaos equivalence, checkpoint/resume,
retry/backoff, worker supervision, and the fault-injection machinery.

The headline property (deliverable c): running SSSP / BFS / CC under a
seeded fault injector **with retry enabled** produces results identical
to the fault-free baselines — the monotone-task contract plus
inject-before-mutate means a retried operation replays exactly.  The
``chaos`` marker lets CI sweep extra seeds via ``REPRO_CHAOS_SEED``.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.sssp import sssp, sssp_async
from repro.comm.mailbox import MailboxRouter
from repro.errors import (
    AggregateWorkerError,
    CheckpointError,
    FaultInjected,
    RetryExhausted,
    StallDetected,
)
from repro.execution.scheduler import AsyncScheduler
from repro.frontier.sparse import SparseFrontier
from repro.graph.generators import grid_2d, rmat, with_random_weights
from repro.graph.io import read_edgelist
from repro.loop.enactor import Enactor
from repro.loop.priority_enactor import PriorityEnactor, sssp_bucketed
from repro.resilience import (
    Checkpoint,
    CheckpointStore,
    FaultInjector,
    ResiliencePolicy,
    RetryPolicy,
    SupervisionConfig,
    active_injector,
    run_with_fallback,
    snapshot_arrays,
)
from repro.utils.counters import ResilienceCounters

#: CI sweeps additional chaos seeds by exporting REPRO_CHAOS_SEED.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Rate the issue pins for the equivalence guarantee.
CHAOS_RATE = 0.1

#: Attempts such that the chance of a single operation exhausting retry
#: is rate**attempts ~ 1e-12 — with the pinned seeds it never happens.
ATTEMPTS = 12


def _fast_retry(max_attempts=ATTEMPTS):
    return RetryPolicy(max_attempts=max_attempts, base_delay=0.0, max_delay=0.0)


def _chaos_policy(seed, rate=CHAOS_RATE, **kwargs):
    return ResiliencePolicy(
        chaos=FaultInjector.uniform(seed=seed, rate=rate),
        retry=_fast_retry(),
        **kwargs,
    )


@pytest.fixture
def weighted_rmat():
    return with_random_weights(rmat(8, 8, seed=3), seed=3)


@pytest.fixture
def weighted_grid():
    return with_random_weights(grid_2d(12, 12), seed=1)


# -- fault injector ------------------------------------------------------------------


class TestFaultInjector:
    def test_rates_validated(self):
        with pytest.raises(Exception):
            FaultInjector(task_rate=1.5)
        with pytest.raises(Exception):
            FaultInjector(max_faults=-1)

    def test_decisions_deterministic_per_seed(self):
        a = FaultInjector.uniform(seed=7, rate=0.3)
        b = FaultInjector.uniform(seed=7, rate=0.3)
        seq_a = [a.decide("task") for _ in range(100)]
        seq_b = [b.decide("task") for _ in range(100)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_streams_independent_across_kinds(self):
        # Interleaving decisions of other kinds must not perturb a
        # kind's stream: the k-th task decision depends only on
        # (seed, "task", k).
        a = FaultInjector.uniform(seed=11, rate=0.3)
        b = FaultInjector.uniform(seed=11, rate=0.3)
        seq_a = [a.decide("task") for _ in range(50)]
        seq_b = []
        for _ in range(50):
            b.decide("io")
            seq_b.append(b.decide("task"))
            b.decide("message_drop")
        assert seq_a == seq_b

    def test_decide_many_matches_scalar_stream(self):
        a = FaultInjector(seed=5, message_drop_rate=0.4)
        b = FaultInjector(seed=5, message_drop_rate=0.4)
        bulk = a.decide_many("message_drop", 64)
        scalar = np.array([b.decide("message_drop") for _ in range(64)])
        assert np.array_equal(bulk, scalar)

    def test_max_faults_budget(self):
        inj = FaultInjector(seed=0, task_rate=1.0, max_faults=3)
        hits = sum(inj.decide("task") for _ in range(10))
        assert hits == 3
        assert inj.total_faults == 3

    def test_ambient_installation_nests(self):
        assert active_injector() is None
        outer = FaultInjector(seed=1)
        inner = FaultInjector(seed=2)
        with outer:
            assert active_injector() is outer
            with inner:
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None

    def test_split_messages_partitions_batch(self):
        inj = FaultInjector(
            seed=3, message_drop_rate=0.5, message_duplicate_rate=0.3
        )
        d = np.arange(200)
        v = np.arange(200, dtype=float)
        kept_d, kept_v, drop_d, drop_v, n_dup = inj.split_messages(d, v)
        assert kept_d.shape == kept_v.shape
        assert drop_d.shape == drop_v.shape
        # every original message is either kept or dropped exactly once
        assert kept_d.size - n_dup + drop_d.size == d.size
        assert 0 < drop_d.size < d.size
        assert n_dup > 0


# -- retry policy --------------------------------------------------------------------


class TestRetryPolicy:
    def test_succeeds_after_transient_faults(self):
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] < 3:
                raise FaultInjected("transient")
            return "ok"

        counters = ResilienceCounters()
        policy = _fast_retry(max_attempts=5)
        assert policy.execute(flaky, counters=counters) == "ok"
        assert calls[0] == 3
        assert counters["tasks_retried"] == 2

    def test_exhaustion_raises_with_attempt_count(self):
        policy = _fast_retry(max_attempts=4)
        counters = ResilienceCounters()
        with pytest.raises(RetryExhausted) as ei:
            policy.execute(
                lambda: (_ for _ in ()).throw(FaultInjected("always")),
                counters=counters,
            )
        assert ei.value.attempts == 4
        assert counters["retries_exhausted"] == 1

    def test_non_retryable_errors_pass_through(self):
        policy = _fast_retry()

        def boom():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.execute(boom)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10,
            base_delay=0.01,
            multiplier=2.0,
            max_delay=0.05,
            jitter=0.0,
        )
        delays = [policy.delay_for(i) for i in range(6)]
        assert delays[0] == pytest.approx(0.01)
        assert delays[1] == pytest.approx(0.02)
        assert max(delays) == pytest.approx(0.05)

    def test_deadline_stops_retrying(self):
        policy = RetryPolicy(
            max_attempts=1000, base_delay=0.01, max_delay=0.01, deadline=0.05
        )
        t0 = time.monotonic()
        with pytest.raises(RetryExhausted):
            policy.execute(
                lambda: (_ for _ in ()).throw(FaultInjected("always"))
            )
        assert time.monotonic() - t0 < 2.0


# -- chaos equivalence (the headline property) ---------------------------------------


@pytest.mark.chaos
class TestChaosEquivalence:
    @pytest.mark.parametrize("seed_offset", [0, 1, 2])
    def test_sssp_identical_under_chaos(self, weighted_rmat, seed_offset):
        base = sssp(weighted_rmat, 0).distances
        pol = _chaos_policy(CHAOS_SEED + seed_offset)
        out = sssp(weighted_rmat, 0, resilience=pol)
        assert np.array_equal(base, out.distances)
        assert pol.chaos.decisions["task"] > 0

    @pytest.mark.parametrize("seed_offset", [0, 1, 2])
    def test_bfs_identical_under_chaos(self, weighted_rmat, seed_offset):
        base = bfs(weighted_rmat, 0)
        pol = _chaos_policy(CHAOS_SEED + seed_offset)
        out = bfs(weighted_rmat, 0, resilience=pol)
        assert np.array_equal(base.levels, out.levels)

    @pytest.mark.parametrize("seed_offset", [0, 1, 2])
    def test_cc_identical_under_chaos(self, weighted_rmat, seed_offset):
        base = connected_components(weighted_rmat).labels
        pol = _chaos_policy(CHAOS_SEED + seed_offset)
        out = connected_components(weighted_rmat, resilience=pol)
        assert np.array_equal(base, out.labels)

    def test_priority_enactor_identical_under_chaos(self, weighted_grid):
        base = sssp(weighted_grid, 0).distances
        pol = _chaos_policy(CHAOS_SEED)
        out = sssp_bucketed(weighted_grid, 0, resilience=pol)
        assert np.allclose(base, out.distances)

    def test_async_identical_under_task_chaos(self, weighted_rmat):
        base = sssp(weighted_rmat, 0).distances
        pol = ResiliencePolicy(
            chaos=FaultInjector(seed=CHAOS_SEED, task_rate=CHAOS_RATE),
            retry=_fast_retry(),
        )
        out = sssp_async(
            weighted_rmat, 0, num_workers=4, timeout=60.0, resilience=pol
        )
        assert np.array_equal(base, out.distances)
        assert pol.counters["tasks_retried"] > 0

    def test_unprotected_chaos_aborts_the_run(self, weighted_rmat):
        # Without retry, the same injector is fatal — the protection is
        # doing real work in the equivalence tests above.
        inj = FaultInjector(seed=CHAOS_SEED, task_rate=1.0)
        with inj:
            with pytest.raises(FaultInjected):
                sssp(weighted_rmat, 0)

    def test_io_fault_point_retries_reads(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        inj = FaultInjector(seed=CHAOS_SEED, io_rate=0.5, max_faults=5)
        retry = _fast_retry()
        with inj:
            g = retry.execute(lambda: read_edgelist(str(path)))
        assert g.n_edges == 3


# -- message chaos on the mailbox router ---------------------------------------------


class TestMessageChaos:
    def _router(self, policy, n=32):
        return MailboxRouter(
            np.zeros(n, dtype=np.int64), 1, resilience=policy
        )

    def test_drop_without_retry_loses_messages(self):
        inj = FaultInjector(seed=1, message_drop_rate=1.0, max_faults=5)
        router = MailboxRouter(np.zeros(8, dtype=np.int64), 1)
        with inj:
            router.send(np.arange(5), np.ones(5))
        router.flush_barrier()
        d, _ = router.receive(0)
        assert d.size == 0

    def test_drop_with_retry_is_at_least_once(self):
        pol = ResiliencePolicy(
            chaos=FaultInjector(seed=1, message_drop_rate=0.5),
            retry=_fast_retry(),
        )
        router = self._router(pol)
        router.send(np.arange(32), np.ones(32))
        router.flush_barrier()
        d, _ = router.receive(0)
        # at-least-once: everything arrives, possibly more than once
        assert set(np.arange(32)) <= set(d.tolist())
        assert pol.counters["messages_redelivered"] > 0

    def test_redelivery_exhaustion_raises(self):
        pol = ResiliencePolicy(
            chaos=FaultInjector(seed=2, message_drop_rate=1.0),
            retry=_fast_retry(max_attempts=3),
        )
        router = self._router(pol)
        with pytest.raises(RetryExhausted):
            router.send(np.arange(4), np.ones(4))

    def test_delayed_messages_arrive_and_keep_run_alive(self):
        pol = ResiliencePolicy(
            chaos=FaultInjector(seed=3, message_delay_rate=0.5)
        )
        router = self._router(pol)
        router.send(np.arange(32), np.ones(32))
        router.flush_barrier()
        d, _ = router.receive(0)
        received = d.size
        assert received < 32
        # the engine's termination check sees the held-back messages
        assert router.has_messages()
        for _ in range(64):
            if not router.has_messages():
                break
            router.flush_barrier()
            d, _ = router.receive(0)
            received += d.size
        assert received == 32

    def test_duplicates_tolerated_by_min_combiner(self):
        from repro.comm.messages import MinCombiner

        pol = ResiliencePolicy(
            chaos=FaultInjector(seed=4, message_duplicate_rate=0.5)
        )
        router = self._router(pol)
        router.send(np.arange(32), np.arange(32, dtype=float))
        router.flush_barrier()
        d, v = router.receive(0, combiner=MinCombiner())
        assert np.array_equal(d, np.arange(32))
        assert np.array_equal(v, np.arange(32, dtype=float))


# -- checkpoint / resume -------------------------------------------------------------


def _sssp_pieces(graph):
    """The BSP SSSP loop unrolled so tests can crash and resume it."""
    from repro.execution.atomics import bulk_min_relax
    from repro.execution.policy import resolve_policy
    from repro.operators.advance import neighbors_expand
    from repro.operators.conditions import bulk_condition
    from repro.operators.uniquify import uniquify
    from repro.types import INF, VALUE_DTYPE

    policy = resolve_policy("par_vector")
    n = graph.n_vertices
    dist = np.full(n, INF, dtype=VALUE_DTYPE)
    dist[0] = 0.0

    @bulk_condition
    def condition(srcs, dsts, edges, weights):
        return bulk_min_relax(dist, dsts, dist[srcs] + weights)

    def step(f, state):
        return uniquify(policy, neighbors_expand(policy, graph, f, condition))

    return dist, step, SparseFrontier.from_indices([0], n)


class TestCheckpointResume:
    def test_checkpointed_run_matches_plain_run(self, weighted_grid):
        base = sssp(weighted_grid, 0).distances
        pol = ResiliencePolicy(checkpoint_every=2)
        out = sssp(weighted_grid, 0, resilience=pol)
        assert np.array_equal(base, out.distances)
        assert pol.counters["checkpoints_saved"] > 0
        assert len(pol.store) > 0

    def test_mid_run_kill_then_resume(self, weighted_grid):
        base = sssp(weighted_grid, 0).distances
        dist, step, frontier = _sssp_pieces(weighted_grid)

        class Bomb(RuntimeError):
            pass

        calls = [0]

        def bomb_step(f, state):
            calls[0] += 1
            if calls[0] == 5:
                raise Bomb("killed mid-loop")
            return step(f, state)

        pol = ResiliencePolicy(checkpoint_every=2)
        enactor = Enactor(weighted_grid)
        with pytest.raises(Bomb):
            enactor.run(
                frontier, bomb_step, resilience=pol, state_arrays={"dist": dist}
            )
        assert len(pol.store) > 0
        # trash the live state to prove the snapshot is what restores it
        dist[:] = -1.0
        stats = enactor.resume_from_checkpoint(
            step, resilience=pol, state_arrays={"dist": dist}
        )
        assert stats.converged
        assert np.array_equal(base, dist)
        assert pol.counters["checkpoints_restored"] == 1
        # resumed portion restarts at the snapshot, not superstep 0
        assert stats.iterations[0].iteration >= 4

    def test_resume_without_checkpoint_raises(self, weighted_grid):
        dist, step, _ = _sssp_pieces(weighted_grid)
        pol = ResiliencePolicy(checkpoint_every=2)
        with pytest.raises(CheckpointError):
            Enactor(weighted_grid).resume_from_checkpoint(
                step, resilience=pol, state_arrays={"dist": dist}
            )

    def test_priority_enactor_kill_then_resume(self, weighted_grid):
        base = sssp(weighted_grid, 0).distances
        from repro.execution.atomics import bulk_min_relax
        from repro.frontier.bucketed import BucketedFrontier
        from repro.types import INF, VALUE_DTYPE

        csr = weighted_grid.csr()
        n = weighted_grid.n_vertices
        delta = float(csr.values.mean())
        dist = np.full(n, INF, dtype=VALUE_DTYPE)
        dist[0] = 0.0

        def step(ids, bucket_index):
            srcs, dsts, _, weights = csr.expand_vertices(ids)
            if srcs.size == 0:
                return np.empty(0, dtype=np.int64), np.empty(0)
            improved = bulk_min_relax(dist, dsts, dist[srcs] + weights)
            winners = dsts[improved]
            return winners.astype(np.int64), dist[winners].astype(np.float64)

        class Bomb(RuntimeError):
            pass

        calls = [0]

        def bomb_step(ids, bucket_index):
            calls[0] += 1
            if calls[0] == 8:
                raise Bomb("killed mid-bucket")
            return step(ids, bucket_index)

        frontier = BucketedFrontier(n, delta)
        frontier.add_with_priority(0, 0.0)
        pol = ResiliencePolicy(checkpoint_every=1)
        enactor = PriorityEnactor(weighted_grid)
        with pytest.raises(Bomb):
            enactor.run(
                frontier,
                bomb_step,
                resilience=pol,
                state_arrays={"dist": dist},
            )
        assert len(pol.store) > 0
        dist[:] = -1.0
        stats = enactor.resume_from_checkpoint(
            step, resilience=pol, state_arrays={"dist": dist}
        )
        assert stats.converged
        assert np.allclose(base, dist)

    def test_store_keep_last_bounds_memory(self):
        store = CheckpointStore(keep_last=2)
        for i in range(5):
            store.save(
                Checkpoint(
                    superstep=i,
                    frontier_indices=np.arange(i),
                    capacity=10,
                    arrays={"x": np.full(4, float(i))},
                )
            )
        assert len(store) == 2
        assert store.latest().superstep == 4

    def test_store_dump_and_load_roundtrip(self, tmp_path):
        store = CheckpointStore()
        ckpt = Checkpoint(
            superstep=7,
            frontier_indices=np.array([1, 3, 5]),
            capacity=16,
            arrays={"dist": np.arange(16, dtype=np.float32)},
            context={"alpha": 0.85},
        )
        store.save(ckpt)
        path = str(tmp_path / "snap.npz")
        store.dump(path)
        loaded = CheckpointStore.load(path)
        assert loaded.superstep == 7
        assert loaded.capacity == 16
        assert np.array_equal(loaded.frontier_indices, ckpt.frontier_indices)
        assert np.array_equal(loaded.arrays["dist"], ckpt.arrays["dist"])
        assert loaded.context == {"alpha": 0.85}

    def test_snapshot_arrays_shares_unchanged_buffers(self):
        a = {"x": np.arange(8.0), "y": np.zeros(4)}
        first = Checkpoint(
            superstep=0,
            frontier_indices=np.empty(0, dtype=np.int64),
            capacity=8,
            arrays=snapshot_arrays(a, None),
        )
        a["y"][0] = 9.0
        second = snapshot_arrays(a, first)
        # x unchanged -> buffer shared copy-on-write; y changed -> fresh
        assert second["x"] is first.arrays["x"]
        assert second["y"] is not first.arrays["y"]
        # snapshots are decoupled from live mutation either way
        a["x"][0] = -1.0
        assert first.arrays["x"][0] == 0.0

    def test_restore_rejects_mismatched_arrays(self):
        ckpt = Checkpoint(
            superstep=0,
            frontier_indices=np.empty(0, dtype=np.int64),
            capacity=4,
            arrays={"x": np.zeros(4)},
        )
        with pytest.raises(CheckpointError):
            ckpt.restore_arrays({"x": np.zeros(5)})
        with pytest.raises(CheckpointError):
            ckpt.restore_arrays({"wrong_name": np.zeros(4)})


# -- scheduler failure semantics (satellites a, b) -----------------------------------


class TestSchedulerFailures:
    def test_all_worker_errors_aggregated(self):
        def bad(item, push):
            raise RuntimeError(f"boom {item}")

        with pytest.raises((AggregateWorkerError, RuntimeError)) as ei:
            AsyncScheduler(4, poll_timeout=0.005).run(
                bad, list(range(16)), 100, timeout=10.0
            )
        if isinstance(ei.value, AggregateWorkerError):
            assert len(ei.value.failures) >= 2
            for worker_id, exc in ei.value.failures:
                assert isinstance(worker_id, int)
                assert "boom" in str(exc)
            assert "worker" in str(ei.value)

    def test_single_error_reraised_verbatim(self):
        fired = threading.Event()

        def bad_once(item, push):
            if item == 0 and not fired.is_set():
                fired.set()
                raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            AsyncScheduler(2).run(bad_once, [0], 10, timeout=10.0)

    @pytest.mark.slow
    def test_timeout_shuts_workers_down(self):
        release = threading.Event()
        before = threading.active_count()

        def stuck(item, push):
            release.wait(timeout=30.0)

        sched = AsyncScheduler(2, poll_timeout=0.005)
        t0 = time.monotonic()
        with pytest.raises(TimeoutError):
            sched.run(stuck, [1, 2], 10, timeout=0.2)
        # the scheduler must give up promptly, not block on stuck joins
        assert time.monotonic() - t0 < 5.0
        release.set()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if threading.active_count() <= before:
                break
            time.sleep(0.01)
        assert threading.active_count() <= before, (
            "worker threads left running after TimeoutError"
        )

    @pytest.mark.slow
    def test_worker_death_without_supervision_times_out(self):
        inj = FaultInjector(seed=0, worker_death_rate=1.0)
        pol = ResiliencePolicy(chaos=inj)
        sched = AsyncScheduler(2, poll_timeout=0.005, resilience=pol)
        with pytest.raises(TimeoutError):
            sched.run(lambda i, push: None, [1, 2, 3], 10, timeout=0.3)


# -- supervision ---------------------------------------------------------------------


class TestSupervision:
    def test_dead_workers_restarted_and_run_completes(self, weighted_rmat):
        base = sssp(weighted_rmat, 0).distances
        pol = ResiliencePolicy(
            chaos=FaultInjector(
                seed=5, worker_death_rate=0.2, max_faults=6
            ),
            retry=_fast_retry(),
            supervision=SupervisionConfig(max_restarts=16),
        )
        out = sssp_async(
            weighted_rmat, 0, num_workers=4, timeout=60.0, resilience=pol
        )
        assert np.array_equal(base, out.distances)
        assert pol.counters["workers_restarted"] > 0

    @pytest.mark.slow
    def test_stall_detected_and_degrades_to_sequential(self, weighted_rmat):
        base = sssp(weighted_rmat, 0).distances
        pol = ResiliencePolicy(
            chaos=FaultInjector(seed=7, worker_death_rate=1.0),
            supervision=SupervisionConfig(
                restart_workers=False,
                max_parallel_failures=1,
                degrade_to_sequential=True,
                stall_timeout=0.5,
            ),
        )
        t0 = time.monotonic()
        out = sssp_async(
            weighted_rmat, 0, num_workers=4, timeout=60.0, resilience=pol
        )
        assert np.array_equal(base, out.distances)
        assert pol.counters["stalls_detected"] >= 1
        assert pol.counters["degraded_runs"] == 1
        # the stall watchdog aborts the parallel attempt long before the
        # 60s quiescence timeout
        assert time.monotonic() - t0 < 30.0

    def test_degradation_disabled_reraises(self):
        cfg = SupervisionConfig(
            degrade_to_sequential=False, max_parallel_failures=2
        )
        calls = [0]

        def parallel():
            calls[0] += 1
            raise StallDetected("wedged")

        with pytest.raises(StallDetected):
            run_with_fallback(parallel, lambda: 42, config=cfg)
        assert calls[0] == 2

    def test_fallback_returns_sequential_result(self):
        cfg = SupervisionConfig(max_parallel_failures=2)
        counters = ResilienceCounters()

        def parallel():
            raise StallDetected("wedged")

        assert (
            run_with_fallback(
                parallel, lambda: 42, config=cfg, counters=counters
            )
            == 42
        )
        assert counters["parallel_failures"] == 2
        assert counters["degraded_runs"] == 1


class TestRetryAbsoluteDeadline:
    """Regression coverage for ``deadline_at`` (absolute monotonic) and
    its interaction with ambient cancel tokens — the service-path
    guarantee that nested retry scopes cannot overshoot a shared
    deadline the way stacked *relative* deadlines can."""

    def _policy(self, **kwargs):
        return RetryPolicy(
            max_attempts=50, base_delay=0.01, max_delay=0.01, jitter=0.0,
            **kwargs,
        )

    def test_deadline_at_stops_attempts(self):
        calls = [0]

        def fail():
            calls[0] += 1
            raise FaultInjected("transient")

        policy = self._policy().with_deadline_at(time.monotonic() + 0.05)
        t0 = time.monotonic()
        with pytest.raises(RetryExhausted):
            policy.execute(fail, site="unit")
        # Stopped by the budget, far short of the 50-attempt ceiling,
        # and promptly (sleeps are clamped to the budget's edge).
        assert calls[0] < 50
        assert time.monotonic() - t0 < 1.0

    def test_with_deadline_at_only_tightens(self):
        soon = time.monotonic() + 1.0
        later = time.monotonic() + 100.0
        policy = self._policy().with_deadline_at(soon)
        assert policy.with_deadline_at(later).deadline_at == soon
        assert policy.with_deadline_at(soon - 0.5).deadline_at == soon - 0.5

    def test_nested_scopes_share_the_instant(self):
        """Two sequential execute() calls under one ``deadline_at``
        consume ONE budget — the second starts already exhausted.  The
        same pattern with relative deadlines would grant a fresh budget
        to each call (the overshoot bug this field exists to fix)."""
        at = time.monotonic() + 0.05
        policy = self._policy().with_deadline_at(at)

        def fail():
            raise FaultInjected("transient")

        with pytest.raises(RetryExhausted):
            policy.execute(fail, site="first")
        time.sleep(max(0.0, at - time.monotonic()) + 0.01)
        t0 = time.monotonic()
        with pytest.raises(RetryExhausted) as info:
            policy.execute(fail, site="second")
        # Second scope: one attempt, no sleeping — budget already spent.
        assert info.value.attempts == 1
        assert time.monotonic() - t0 < 0.05

        # Relative-deadline contrast: the same second call under
        # deadline=0.05 happily retries on its own fresh budget.
        relative = self._policy(deadline=0.05)
        with pytest.raises(RetryExhausted) as info2:
            relative.execute(fail, site="relative")
        assert info2.value.attempts > 1

    def test_ambient_token_bounds_retries(self):
        from repro.resilience import CancelToken

        calls = [0]

        def fail():
            calls[0] += 1
            raise FaultInjected("transient")

        with CancelToken.after(0.05):
            with pytest.raises(RetryExhausted):
                self._policy().execute(fail, site="unit")
        assert calls[0] < 50

    def test_explicit_cancel_stops_next_attempt(self):
        from repro.resilience import CancelToken

        token = CancelToken()
        calls = [0]

        def fail():
            calls[0] += 1
            token.cancel("caller gave up")
            raise FaultInjected("transient")

        with token:
            with pytest.raises(RetryExhausted):
                self._policy().execute(fail, site="unit")
        assert calls[0] == 1
