"""Tests for the second extension wave: SBM generator, Luby MIS,
k-truss decomposition, and the work-stealing scheduler."""

import threading

import numpy as np
import pytest

from repro.algorithms import (
    ktruss_decomposition,
    label_propagation_communities,
    maximal_independent_set,
    verify_mis,
)
from repro.errors import ExecutionPolicyError
from repro.execution import AsyncScheduler, WorkStealingScheduler
from repro.graph import from_edge_list
from repro.graph.generators import (
    chain,
    complete,
    grid_2d,
    stochastic_block_model,
    watts_strogatz,
)
from repro.partition import PartitionAssignment, edge_cut


class TestStochasticBlockModel:
    def test_ground_truth_shape(self):
        g, blocks = stochastic_block_model([40, 60], 0.3, 0.01, seed=1)
        assert g.n_vertices == 100
        assert blocks.tolist() == [0] * 40 + [1] * 60

    def test_assortativity(self):
        """Intra-block edges must dominate at p_in >> p_out."""
        g, blocks = stochastic_block_model([80, 80], 0.2, 0.005, seed=2)
        coo = g.coo()
        intra = int(np.count_nonzero(blocks[coo.rows] == blocks[coo.cols]))
        assert intra > 0.8 * g.n_edges

    def test_edge_density_near_expectation(self):
        g, _ = stochastic_block_model([100, 100], 0.1, 0.02, seed=3)
        # E[undirected edges] = 2*C(100,2)*0.1 + 100*100*0.02
        expected = 2 * (2 * 4950 * 0.1 + 10000 * 0.02)  # both arcs
        assert abs(g.n_edges - expected) < 0.15 * expected

    def test_lpa_recovers_planted_blocks(self):
        g, blocks = stochastic_block_model([60, 60, 60], 0.5, 0.005, seed=4)
        r = label_propagation_communities(g, seed=0)
        # Majority label within each block covers most of the block (LPA
        # fragments sparse blocks, so recovery is strong, not perfect).
        recovered = sum(
            int(np.bincount(r.labels[blocks == b]).max()) for b in range(3)
        )
        assert recovered > 0.8 * g.n_vertices

    def test_planted_partition_is_good_cut(self):
        g, blocks = stochastic_block_model([70, 70], 0.25, 0.01, seed=5)
        planted = PartitionAssignment(blocks, 2)
        from repro.partition import random_partition

        assert edge_cut(g, planted) < edge_cut(
            g, random_partition(g, 2, seed=0)
        ) / 3

    def test_zero_probabilities(self):
        g, _ = stochastic_block_model([10, 10], 0.0, 0.0, seed=6)
        assert g.n_edges == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            stochastic_block_model([10], 1.5, 0.1)
        with pytest.raises(ValueError):
            stochastic_block_model([-1], 0.1, 0.1)

    def test_deterministic(self):
        a, _ = stochastic_block_model([30, 30], 0.2, 0.02, seed=7)
        b, _ = stochastic_block_model([30, 30], 0.2, 0.02, seed=7)
        assert np.array_equal(a.csr().column_indices, b.csr().column_indices)


class TestMaximalIndependentSet:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: complete(12),
            lambda: chain(25),
            lambda: grid_2d(9, 9),
            lambda: watts_strogatz(200, 6, 0.1, seed=1),
        ],
        ids=["complete", "chain", "grid", "smallworld"],
    )
    def test_valid_mis(self, make_graph):
        g = make_graph()
        r = maximal_independent_set(g, seed=0)
        assert verify_mis(g, r.in_set)
        assert r.size == int(r.in_set.sum())

    def test_complete_graph_picks_one(self):
        assert maximal_independent_set(complete(15), seed=0).size == 1

    def test_chain_at_least_half_rounded(self):
        # A path of n vertices has MIS size >= ceil(n/3) for any maximal
        # set; Luby typically gets close to n/2.
        r = maximal_independent_set(chain(30), seed=0)
        assert r.size >= 10

    def test_isolated_vertices_always_in(self):
        g = from_edge_list([(0, 1)], n_vertices=4, directed=False)
        r = maximal_independent_set(g, seed=0)
        assert r.in_set[2] and r.in_set[3]

    def test_log_rounds(self):
        g = watts_strogatz(500, 8, 0.1, seed=2)
        r = maximal_independent_set(g, seed=0)
        assert r.rounds <= 12  # ~O(log n) w.h.p.

    def test_deterministic(self):
        g = watts_strogatz(100, 4, 0.1, seed=3)
        a = maximal_independent_set(g, seed=5)
        b = maximal_independent_set(g, seed=5)
        assert np.array_equal(a.in_set, b.in_set)


class TestKTruss:
    def test_complete_graph(self):
        r = ktruss_decomposition(complete(6))
        assert np.all(r.truss_numbers == 6)

    def test_triangle_free_graph(self):
        r = ktruss_decomposition(grid_2d(5, 5))
        assert np.all(r.truss_numbers == 2)

    def test_matches_networkx(self):
        import networkx as nx

        from repro.baselines import nx_graph_of

        g = watts_strogatz(120, 6, 0.05, seed=4)
        r = ktruss_decomposition(g)
        G = nx_graph_of(g)
        for k in range(3, r.max_truss + 1):
            ref = {
                (min(u, v), max(u, v)) for u, v in nx.k_truss(G, k).edges()
            }
            ours = set(zip(*[a.tolist() for a in r.truss_subgraph_edges(k)]))
            assert ours == ref, f"k={k} mismatch"

    def test_directed_input_uses_underlying(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)], n_vertices=3)
        r = ktruss_decomposition(g)
        assert np.all(r.truss_numbers == 3)

    def test_nested_trusses(self):
        """A K5 glued to a path: the clique is a 5-truss, the tail is 2."""
        edges = [
            (i, j) for i in range(5) for j in range(i + 1, 5)
        ] + [(4, 5), (5, 6)]
        g = from_edge_list(edges, directed=False)
        r = ktruss_decomposition(g)
        by_pair = {
            (int(u), int(v)): int(t)
            for u, v, t in zip(r.edge_u, r.edge_v, r.truss_numbers)
        }
        assert by_pair[(0, 1)] == 5
        assert by_pair[(4, 5)] == 2
        assert by_pair[(5, 6)] == 2


class TestWorkStealingScheduler:
    def test_processes_everything(self):
        sched = WorkStealingScheduler(4, seed=0)
        seen = []
        lock = threading.Lock()

        def process(item, push):
            with lock:
                seen.append(item)
            if item < 64:
                push(2 * item)
                push(2 * item + 1)

        total = sched.run(process, [1], 1 << 10, timeout=15)
        assert total == 127
        assert sorted(seen) == list(range(1, 128))

    def test_agrees_with_shared_queue_scheduler(self):
        def make_process(store, lock):
            def process(item, push):
                with lock:
                    store.append(item)
                if item % 3 == 0 and item < 300:
                    push(item + 7)

            return process

        seeds = list(range(0, 60, 2))
        results = []
        for sched in (AsyncScheduler(3), WorkStealingScheduler(3, seed=1)):
            store: list = []
            lock = threading.Lock()
            sched.run(make_process(store, lock), seeds, 1000, timeout=15)
            results.append(sorted(store))
        assert results[0] == results[1]

    def test_stealing_happens_under_imbalance(self):
        """All work seeded on one worker's deque as a wide tree: the
        other workers must steal.  Tasks carry a tiny delay so the tree
        stays live long enough for thieves to arrive (instant tasks can
        legitimately drain before any steal lands)."""
        import time

        sched = WorkStealingScheduler(4, seed=3)

        def wide(item, push):
            if item < 1000:
                push(2 * item)
                push(2 * item + 1)
            time.sleep(0.0001)

        total = sched.run(wide, [1], 1 << 12, timeout=30)
        assert total == 1999
        assert sched.steals > 0

    def test_exception_propagates(self):
        sched = WorkStealingScheduler(2, seed=4)

        def process(item, push):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            sched.run(process, [1], 10, timeout=10)

    def test_empty_initial(self):
        assert (
            WorkStealingScheduler(2).run(lambda i, p: None, [], 10, timeout=5)
            == 0
        )

    def test_invalid_workers(self):
        with pytest.raises(ExecutionPolicyError):
            WorkStealingScheduler(0)

    def test_sssp_on_stealing_scheduler(self, weighted_grid):
        """The async SSSP task body runs unchanged on the stealing engine
        — engines are interchangeable behind the ProcessFn contract."""
        from repro.baselines import dijkstra
        from repro.execution.atomics import AtomicArray
        from repro.types import INF, VALUE_DTYPE

        n = weighted_grid.n_vertices
        dist = np.full(n, INF, dtype=VALUE_DTYPE)
        dist[0] = 0.0
        atomic = AtomicArray(dist)
        csr = weighted_grid.csr()

        def process(v, push):
            base = atomic.load(v)
            nbrs = csr.get_neighbors(v)
            wts = csr.get_neighbor_weights(v)
            for k in range(nbrs.shape[0]):
                u = int(nbrs[k])
                nd = base + float(wts[k])
                if nd < atomic.min_at(u, nd):
                    push(u)

        WorkStealingScheduler(4, seed=5).run(process, [0], n, timeout=60)
        assert np.allclose(dist, dijkstra(weighted_grid, 0), atol=1e-2)
