"""Cross-model equivalence: the paper's thesis, end to end.

One abstraction, many TLAV configurations — so the *same problem* solved
under different timing models (BSP vs async), communication models
(shared-memory vs message-passing/Pregel), traversal directions
(push vs pull), and partition counts must produce the same answers.
These tests run each axis against the shared-memory BSP reference.
"""

import numpy as np
import pytest

from repro.algorithms import bfs, connected_components, pagerank, sssp, sssp_async
from repro.algorithms.pregel_programs import (
    pregel_components,
    pregel_pagerank,
    pregel_sssp,
)
from repro.graph.generators import erdos_renyi_gnp, grid_2d, rmat, watts_strogatz
from repro.partition import metis_like_partition, random_partition
from repro.types import INF


@pytest.fixture(scope="module")
def road_like():
    return grid_2d(10, 10, weighted=True, seed=21)


@pytest.fixture(scope="module")
def scale_free():
    return rmat(8, 8, weighted=True, seed=22)


class TestTimingAxis:
    """BSP vs asynchronous — same distances."""

    def test_sssp_bsp_vs_async(self, road_like, scale_free):
        for g in (road_like, scale_free):
            bsp = sssp(g, 0).distances
            asynchronous = sssp_async(g, 0, num_workers=4, timeout=60).distances
            assert np.allclose(bsp, asynchronous, atol=1e-3)


class TestCommunicationAxis:
    """Shared-memory operators vs Pregel message passing — same answers."""

    def test_sssp_shared_vs_pregel(self, road_like):
        shared = sssp(road_like, 0).distances
        messaged = pregel_sssp(road_like, 0)
        finite = shared < INF
        assert np.allclose(shared[finite], messaged[finite], atol=1e-3)
        assert np.all(messaged[~finite] >= INF)

    def test_pagerank_shared_vs_pregel(self):
        g = erdos_renyi_gnp(80, 0.06, seed=23)  # unweighted: same update rule
        shared = pagerank(g, tolerance=0.0, max_iterations=40).ranks
        messaged = pregel_pagerank(g, rounds=40)
        assert np.allclose(shared, messaged, atol=1e-6)

    def test_components_shared_vs_pregel(self):
        g = watts_strogatz(120, 4, 0.02, seed=24)
        shared = connected_components(g).labels
        messaged = pregel_components(g)
        assert np.array_equal(shared, messaged)


class TestPartitioningAxis:
    """Message-passing results are partition-invariant; only traffic
    (remote vs local) changes."""

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_pregel_sssp_partition_invariant(self, road_like, k):
        reference = pregel_sssp(road_like, 0)
        owner = random_partition(road_like, k, seed=k).assignment
        partitioned = pregel_sssp(road_like, 0, owner_of=owner)
        assert np.allclose(reference, partitioned, atol=1e-6)

    def test_metis_partition_reduces_remote_traffic(self, road_like):
        from repro.comm.pregel import PregelEngine
        from repro.algorithms.pregel_programs import SSSPProgram

        n = road_like.n_vertices
        runs = {}
        for name, p in (
            ("random", random_partition(road_like, 4, seed=1)),
            ("metis", metis_like_partition(road_like, 4, seed=1)),
        ):
            engine = PregelEngine(road_like, owner_of=p.assignment)
            engine.run(SSSPProgram(0), np.full(n, float(INF)))
            runs[name] = engine.stats.remote_messages
        assert runs["metis"] < runs["random"]

    def test_parallel_ranks_match_serial(self, road_like):
        owner = random_partition(road_like, 4, seed=2).assignment
        serial = pregel_sssp(road_like, 0, owner_of=owner)
        parallel = pregel_sssp(
            road_like, 0, owner_of=owner, parallel_ranks=True
        )
        assert np.allclose(serial, parallel, atol=1e-9)


class TestDirectionAxis:
    """Push, pull, and direction-optimized traversal — same levels."""

    def test_bfs_directions_agree(self, scale_free):
        push = bfs(scale_free, 0, direction="push").levels
        pull = bfs(scale_free, 0, direction="pull").levels
        auto = bfs(scale_free, 0, direction="auto").levels
        assert np.array_equal(push, pull)
        assert np.array_equal(push, auto)


class TestPipelineEndToEnd:
    """Generate → save → load → partition → analyze, through the public
    API only (what a downstream user actually does)."""

    def test_full_pipeline(self, tmp_path):
        from repro.graph.io import load_graph_npz, save_graph_npz

        g = watts_strogatz(200, 6, 0.1, seed=31)
        path = tmp_path / "graph.npz"
        save_graph_npz(g, path)
        loaded = load_graph_npz(path)

        partition = metis_like_partition(loaded, 4, seed=0)
        assert partition.n_parts == 4

        cc = connected_components(loaded)
        pr = pagerank(loaded)
        r = bfs(loaded, 0)
        assert cc.n_components >= 1
        assert pr.ranks.sum() == pytest.approx(1.0, abs=1e-6)
        # Every vertex reachable from 0 got a level within one component.
        assert np.all(r.levels[cc.labels == cc.labels[0]] >= 0)
