"""Tests for graph file I/O: edge lists, Matrix Market, DIMACS, npz."""

import numpy as np
import pytest

from repro.errors import GraphIOError
from repro.graph.generators import grid_2d, rmat
from repro.graph.io import (
    load_graph_npz,
    read_dimacs,
    read_edgelist,
    read_matrix_market,
    save_graph_npz,
    write_dimacs,
    write_edgelist,
    write_matrix_market,
)


class TestEdgeList:
    def test_roundtrip_weighted(self, tmp_path, small_rmat):
        path = tmp_path / "g.txt"
        write_edgelist(small_rmat, path)
        g = read_edgelist(path, n_vertices=small_rmat.n_vertices)
        assert g.n_edges == small_rmat.n_edges
        a, b = small_rmat.coo(), g.coo()
        oa = np.lexsort((a.cols, a.rows))
        ob = np.lexsort((b.cols, b.rows))
        assert np.array_equal(a.rows[oa], b.rows[ob])
        assert np.allclose(np.sort(a.vals), np.sort(b.vals), rtol=1e-5)

    def test_parse_comments_and_unweighted(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n% alt comment\n0 1\n1 2\n\n")
        g = read_edgelist(path)
        assert g.n_edges == 2
        assert not g.properties.weighted

    def test_parse_weighted_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.5\n")
        g = read_edgelist(path)
        assert g.properties.weighted
        assert g.get_edge_weight(0) == 2.5

    def test_malformed_line_reports_lineno(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\nbroken\n")
        with pytest.raises(GraphIOError, match=":2"):
            read_edgelist(path)

    def test_negative_id_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 -1\n")
        with pytest.raises(GraphIOError, match="non-negative"):
            read_edgelist(path)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path, small_rmat):
        path = tmp_path / "g.mtx"
        write_matrix_market(small_rmat, path)
        g = read_matrix_market(path)
        assert g.n_vertices == small_rmat.n_vertices
        assert g.n_edges == small_rmat.n_edges

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 2 7.0\n"
        )
        g = read_matrix_market(path)
        assert g.n_edges == 4  # both directions
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n"
            "1 2\n"
        )
        g = read_matrix_market(path)
        assert not g.properties.weighted
        assert g.get_edge_weight(0) == 1.0

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("1 1 0\n")
        with pytest.raises(GraphIOError, match="header"):
            read_matrix_market(path)

    def test_nonsquare_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 3 0\n"
        )
        with pytest.raises(GraphIOError, match="square"):
            read_matrix_market(path)

    def test_wrong_entry_count_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.0\n"
        )
        with pytest.raises(GraphIOError, match="declared 2"):
            read_matrix_market(path)

    def test_unsupported_field_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"
        )
        with pytest.raises(GraphIOError, match="field"):
            read_matrix_market(path)


class TestDimacs:
    def test_roundtrip(self, tmp_path, weighted_grid):
        path = tmp_path / "g.gr"
        write_dimacs(weighted_grid, path)
        g = read_dimacs(path)
        assert g.n_vertices == weighted_grid.n_vertices
        assert g.n_edges == weighted_grid.n_edges
        # Shortest paths agree — the property DIMACS files exist for.
        from repro.baselines import dijkstra

        assert np.allclose(dijkstra(g, 0), dijkstra(weighted_grid, 0), atol=1e-4)

    def test_parse_minimal(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("c comment\np sp 3 2\na 1 2 5\na 2 3 7\n")
        g = read_dimacs(path)
        assert g.n_vertices == 3
        assert g.get_edge_weight(0) == 5.0

    def test_arc_before_problem_rejected(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("a 1 2 5\n")
        with pytest.raises(GraphIOError, match="before problem"):
            read_dimacs(path)

    def test_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 3 5\na 1 2 5\n")
        with pytest.raises(GraphIOError, match="declares 5"):
            read_dimacs(path)

    def test_out_of_range_vertex_rejected(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\na 1 9 5\n")
        with pytest.raises(GraphIOError, match="out of"):
            read_dimacs(path)

    def test_no_problem_line_rejected(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("c only comments\n")
        with pytest.raises(GraphIOError, match="no problem line"):
            read_dimacs(path)


class TestBinarySnapshot:
    def test_roundtrip_exact(self, tmp_path, small_rmat):
        path = tmp_path / "g.npz"
        save_graph_npz(small_rmat, path)
        g = load_graph_npz(path)
        assert np.array_equal(g.csr().row_offsets, small_rmat.csr().row_offsets)
        assert np.array_equal(
            g.csr().column_indices, small_rmat.csr().column_indices
        )
        assert np.array_equal(g.csr().values, small_rmat.csr().values)
        assert g.properties == small_rmat.properties

    def test_properties_preserved(self, tmp_path):
        g0 = grid_2d(3, 3).with_sorted_neighbors()
        path = tmp_path / "g.npz"
        save_graph_npz(g0, path)
        g = load_graph_npz(path)
        assert g.properties.sorted_neighbors
        assert not g.properties.directed

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, unrelated=np.ones(3))
        with pytest.raises(GraphIOError):
            load_graph_npz(path)
