"""Property-based tests: the frontier interface is uniform across
representations — the §III-B design claim, verified by hypothesis.

For any sequence of vertex insertions, every representation must agree
on the *active set* (sparse preserves multiplicity, dense collapses it,
queue preserves order — but the set of active ids is identical), and
conversions must be lossless at set level.
"""

from hypothesis import given, settings

from strategies import vertex_lists as make_vertex_lists

from repro.frontier import (
    AsyncQueueFrontier,
    DenseFrontier,
    SparseFrontier,
    convert,
)

CAPACITY = 64

#: Shared in-range vertex-list strategy (tests/strategies.py).
vertex_lists = make_vertex_lists(CAPACITY, max_size=200)


@given(vertex_lists)
def test_active_set_agrees_across_representations(vertices):
    sparse = SparseFrontier.from_indices(vertices, CAPACITY)
    dense = DenseFrontier.from_indices(vertices, CAPACITY)
    queue = AsyncQueueFrontier.from_indices(vertices, CAPACITY)
    expected = sorted(set(vertices))
    assert sorted(set(sparse.to_indices().tolist())) == expected
    assert dense.to_indices().tolist() == expected
    assert sorted(set(queue.to_indices().tolist())) == expected


@given(vertex_lists)
def test_sparse_preserves_multiplicity_and_order(vertices):
    f = SparseFrontier.from_indices(vertices, CAPACITY)
    assert f.to_indices().tolist() == vertices


@given(vertex_lists)
def test_queue_preserves_fifo_order(vertices):
    f = AsyncQueueFrontier.from_indices(vertices, CAPACITY)
    popped = [f.pop(timeout=0) for _ in range(len(vertices))]
    assert popped == vertices
    assert f.pop(timeout=0) is None


@given(vertex_lists)
def test_dense_size_is_cardinality(vertices):
    f = DenseFrontier.from_indices(vertices, CAPACITY)
    assert f.size() == len(set(vertices))
    assert f.active_fraction() == len(set(vertices)) / CAPACITY


@given(vertex_lists)
def test_conversion_roundtrip_is_set_lossless(vertices):
    sparse = SparseFrontier.from_indices(vertices, CAPACITY)
    roundtrip = convert(convert(sparse, "dense"), "sparse")
    assert set(roundtrip.to_indices().tolist()) == set(vertices)


@given(vertex_lists)
def test_membership_matches_all_representations(vertices):
    sparse = SparseFrontier.from_indices(vertices, CAPACITY)
    dense = DenseFrontier.from_indices(vertices, CAPACITY)
    members = set(vertices)
    for probe in range(0, CAPACITY, 7):
        assert (probe in sparse) == (probe in members)
        assert (probe in dense) == (probe in members)


@given(vertex_lists, vertex_lists)
def test_dense_union_matches_set_union(a, b):
    fa = DenseFrontier.from_indices(a, CAPACITY)
    fb = DenseFrontier.from_indices(b, CAPACITY)
    fa.union_(fb)
    assert set(fa.to_indices().tolist()) == set(a) | set(b)


@given(vertex_lists, vertex_lists)
def test_dense_difference_matches_set_difference(a, b):
    fa = DenseFrontier.from_indices(a, CAPACITY)
    fb = DenseFrontier.from_indices(b, CAPACITY)
    fa.difference_(fb)
    assert set(fa.to_indices().tolist()) == set(a) - set(b)


@given(vertex_lists)
@settings(max_examples=50)
def test_uniquify_is_sorted_set(vertices):
    f = SparseFrontier.from_indices(vertices, CAPACITY)
    f.uniquify()
    out = f.to_indices().tolist()
    assert out == sorted(set(vertices))
