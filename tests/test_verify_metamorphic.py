"""Metamorphic oracles: the relations hold on the real library, and a
deliberately broken implementation violates them loudly."""

import numpy as np
import pytest

import repro.verify.metamorphic as meta
from repro.graph import from_edge_list
from repro.verify import (
    MetamorphicFailure,
    add_isolated_vertices,
    check_isolated_vertices,
    check_weight_scaling,
    permute_vertices,
    run_metamorphic,
    scale_weights,
)


@pytest.fixture
def diamond():
    """Weighted diamond 0→{1,2}→3 with distinct path lengths."""
    return from_edge_list(
        [(0, 1, 1.0), (0, 2, 4.0), (1, 3, 2.0), (2, 3, 0.5)],
        n_vertices=4,
        directed=True,
    )


# -- the input transformations themselves -------------------------------------


def test_scale_weights_scales_every_edge(diamond):
    scaled = scale_weights(diamond, 3.0)
    assert np.allclose(
        np.sort(scaled.coo().vals), np.sort(diamond.coo().vals) * 3.0
    )
    assert scaled.n_vertices == diamond.n_vertices
    assert scaled.n_edges == diamond.n_edges


def test_add_isolated_vertices_appends_degree_zero_tail(diamond):
    grown = add_isolated_vertices(diamond, 3)
    assert grown.n_vertices == diamond.n_vertices + 3
    assert grown.n_edges == diamond.n_edges
    assert np.all(grown.out_degrees()[diamond.n_vertices :] == 0)


def test_permute_vertices_preserves_structure(diamond):
    perm = np.array([2, 0, 3, 1])
    permuted = permute_vertices(diamond, perm)
    assert permuted.n_edges == diamond.n_edges
    # Degree multiset is relabel-invariant.
    assert sorted(permuted.out_degrees().tolist()) == sorted(
        diamond.out_degrees().tolist()
    )
    # Edge (0, 1, w=1.0) must appear as (perm[0], perm[1]) = (2, 0).
    coo = permuted.coo()
    pairs = set(zip(coo.rows.tolist(), coo.cols.tolist()))
    assert (2, 0) in pairs


# -- the sweep ----------------------------------------------------------------


def test_quick_sweep_is_clean():
    report = run_metamorphic(seed=0, quick=True)
    details = [f"{f.relation}/{f.algo}@{f.graph}: {f.detail}" for f in report.failures]
    assert report.ok, "\n".join(details)
    assert report.checks_run >= 15
    assert report.checks_passed == report.checks_run


def test_relation_filter_and_unknown_relation():
    report = run_metamorphic(seed=0, quick=True, relations=["permutation"])
    assert report.ok and report.checks_run > 0
    with pytest.raises(KeyError):
        run_metamorphic(seed=0, quick=True, relations=["vibes"])


def test_failure_repro_command_shape():
    failure = MetamorphicFailure(
        relation="weight-scaling",
        algo="sssp",
        graph="star16",
        seed=7,
        detail="x",
    )
    assert (
        failure.repro
        == "repro verify --metamorphic --algo sssp --graph star16 --seed 7"
    )


def test_report_record_is_ledger_shaped():
    report = run_metamorphic(seed=0, quick=True, relations=["permutation"])
    record = report.to_record()
    assert record["checks_run"] == report.checks_run
    assert record["n_failures"] == 0


# -- a planted bug must be caught ---------------------------------------------


def _offset_sssp(original):
    """A planted bug: every finite distance is off by a constant — the
    classic 'added the source weight twice' defect.  Scale-invariance
    breaks because the offset does not scale with the weights."""

    def sssp(graph, source, **kwargs):
        result = original(graph, source, **kwargs)
        d = result.distances
        d[np.isfinite(d) & (d > 0)] += 1.0
        return result

    return sssp


def test_weight_scaling_catches_offset_bug(monkeypatch, diamond):
    monkeypatch.setattr(meta, "sssp", _offset_sssp(meta.sssp))
    failure = check_weight_scaling(diamond, "diamond", source=0, seed=0)
    assert failure is not None
    assert failure.relation == "weight-scaling"
    assert "sssp" in failure.repro


def test_isolated_vertices_catches_reachable_tail(monkeypatch, diamond):
    original = meta.sssp

    def leaky_sssp(graph, source, **kwargs):
        # A planted bug: appended vertices come out reachable.
        result = original(graph, source, **kwargs)
        result.distances[diamond.n_vertices :] = 0.0
        return result

    monkeypatch.setattr(meta, "sssp", leaky_sssp)
    failure = check_isolated_vertices(diamond, "diamond", source=0, seed=0)
    assert failure is not None
    assert failure.relation == "isolated-vertices"
