"""Tests for the utils subpackage: rng, timing, counters, validation."""

import threading
import time

import numpy as np
import pytest

from repro.errors import FrontierError
from repro.utils.counters import IterationStats, RunStats, WorkCounter
from repro.utils.rng import resolve_rng, spawn_rngs
from repro.utils.timing import Timer, WallClock
from repro.utils.validation import (
    check_nonnegative_int,
    check_probability,
    check_vertex_in_range,
    check_vertices_in_range,
)


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, 10)
        b = resolve_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert resolve_rng(gen) is gen

    def test_different_seeds_differ(self):
        a = resolve_rng(1).integers(0, 2**30, 20)
        b = resolve_rng(2).integers(0, 2**30, 20)
        assert not np.array_equal(a, b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(
            a.integers(0, 2**30, 50), b.integers(0, 2**30, 50)
        )

    def test_deterministic_given_seed(self):
        x = [g.integers(0, 1000) for g in spawn_rngs(7, 3)]
        y = [g.integers(0, 1000) for g in spawn_rngs(7, 3)]
        assert x == y

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestWallClock:
    def test_accumulates(self):
        clock = WallClock()
        clock.start()
        time.sleep(0.01)
        elapsed = clock.stop()
        assert elapsed >= 0.01
        assert not clock.running

    def test_double_start_rejected(self):
        clock = WallClock().start()
        with pytest.raises(RuntimeError):
            clock.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            WallClock().stop()

    def test_reset(self):
        clock = WallClock().start()
        clock.stop()
        clock.reset()
        assert clock.elapsed == 0.0


class TestTimer:
    def test_laps_recorded(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert len(t.laps) == 2
        assert t.total == pytest.approx(sum(t.laps))
        assert t.last == t.laps[-1]

    def test_mean(self):
        t = Timer(laps=[1.0, 3.0])
        assert t.mean == 2.0

    def test_empty_timer_raises(self):
        with pytest.raises(RuntimeError):
            Timer().last


class TestWorkCounter:
    def test_quiescence_immediate_when_zero(self):
        assert WorkCounter().wait_for_quiescence(timeout=0.1)

    def test_add_done_cycle(self):
        wc = WorkCounter()
        wc.add(3)
        assert wc.outstanding == 3
        wc.done(3)
        assert wc.outstanding == 0

    def test_negative_done_raises(self):
        wc = WorkCounter()
        with pytest.raises(RuntimeError):
            wc.done()

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            WorkCounter().add(-1)

    def test_cross_thread_quiescence(self):
        wc = WorkCounter()
        wc.add(1)

        def finish():
            time.sleep(0.02)
            wc.done()

        threading.Thread(target=finish).start()
        assert wc.wait_for_quiescence(timeout=2.0)

    def test_timeout_returns_false(self):
        wc = WorkCounter()
        wc.add(1)
        assert not wc.wait_for_quiescence(timeout=0.02)


class TestRunStats:
    def test_aggregation(self):
        rs = RunStats()
        rs.record(IterationStats(0, 10, 100, 0.5))
        rs.record(IterationStats(1, 20, 300, 0.5))
        assert rs.num_iterations == 2
        assert rs.total_edges_touched == 400
        assert rs.total_seconds == pytest.approx(1.0)
        assert rs.mteps == pytest.approx(400 / 1.0 / 1e6)
        assert rs.frontier_profile() == {0: 10, 1: 20}

    def test_mteps_zero_when_untimed(self):
        rs = RunStats()
        rs.record(IterationStats(0, 1, 10, 0.0))
        assert rs.mteps == 0.0


class TestValidation:
    def test_nonnegative_int_accepts(self):
        assert check_nonnegative_int(5, "x") == 5
        assert check_nonnegative_int(np.int64(3), "x") == 3

    def test_nonnegative_int_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")

    def test_nonnegative_int_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_nonnegative_int(True, "x")
        with pytest.raises(TypeError):
            check_nonnegative_int(1.5, "x")

    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.01, "p")
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")

    def test_vertex_in_range(self):
        assert check_vertex_in_range(np.int32(3), 5) == 3
        with pytest.raises(FrontierError):
            check_vertex_in_range(5, 5)
        with pytest.raises(TypeError):
            check_vertex_in_range(1.5, 5)

    def test_vertices_in_range_bulk(self):
        check_vertices_in_range(np.array([0, 4]), 5)
        with pytest.raises(FrontierError):
            check_vertices_in_range(np.array([0, 5]), 5)
        with pytest.raises(FrontierError):
            check_vertices_in_range(np.array([-1]), 5)
        check_vertices_in_range(np.empty(0, dtype=np.int32), 5)
