"""Tests for segmented neighborhood reduce, pull SSSP, and LPA
community detection."""

import numpy as np
import pytest

from repro.algorithms import (
    label_propagation_communities,
    modularity,
    sssp,
    sssp_pull,
)
from repro.baselines import dijkstra
from repro.errors import ConvergenceError
from repro.graph import from_edge_list
from repro.graph.generators import chain, complete, grid_2d, rmat, watts_strogatz
from repro.operators import segmented_neighbor_reduce
from repro.execution import par, par_vector, seq
from repro.types import INF


class TestSegmentedReduce:
    @pytest.fixture
    def reference(self, small_rmat, rng):
        vals = rng.random(small_rmat.n_vertices)
        csr = small_rmat.csr()
        ref = {
            "sum": np.zeros(small_rmat.n_vertices),
            "min": np.full(small_rmat.n_vertices, np.inf),
            "max": np.full(small_rmat.n_vertices, -np.inf),
        }
        for v in range(small_rmat.n_vertices):
            nbrs = csr.get_neighbors(v)
            if nbrs.size:
                ref["sum"][v] = vals[nbrs].sum()
                ref["min"][v] = vals[nbrs].min()
                ref["max"][v] = vals[nbrs].max()
        return vals, ref

    @pytest.mark.parametrize("op", ["sum", "min", "max"])
    @pytest.mark.parametrize("pol", [seq, par, par_vector], ids=lambda p: p.name)
    def test_out_direction_all_policies(self, small_rmat, reference, op, pol):
        vals, ref = reference
        out = segmented_neighbor_reduce(pol, small_rmat, vals, op=op)
        assert np.allclose(out, ref[op], atol=1e-9)

    def test_in_direction_is_transpose(self, diamond_graph):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        out = segmented_neighbor_reduce(
            par_vector, diamond_graph, vals, op="sum", direction="in"
        )
        # in-neighbors: 0:{} 1:{0} 2:{0} 3:{1,2}
        assert out.tolist() == [0.0, 1.0, 1.0, 5.0]

    def test_edge_transform(self, diamond_graph):
        vals = np.zeros(4)
        out = segmented_neighbor_reduce(
            par_vector,
            diamond_graph,
            vals,
            op="min",
            direction="in",
            edge_transform=lambda v, w: v + w,
        )
        # min over in-edges of (0 + weight): vertex 3 gets min(2, 1) = 1.
        assert out[3] == 1.0
        assert out[0] == np.inf  # no in-edges

    def test_isolated_vertices_hold_identity(self):
        g = from_edge_list([(0, 1)], n_vertices=3)
        out = segmented_neighbor_reduce(seq, g, np.ones(3), op="sum")
        assert out.tolist() == [1.0, 0.0, 0.0]

    def test_validation(self, diamond_graph):
        with pytest.raises(ValueError, match="op"):
            segmented_neighbor_reduce(seq, diamond_graph, np.zeros(4), op="avg")
        with pytest.raises(ValueError, match="direction"):
            segmented_neighbor_reduce(
                seq, diamond_graph, np.zeros(4), direction="up"
            )
        with pytest.raises(ValueError, match="one entry"):
            segmented_neighbor_reduce(seq, diamond_graph, np.zeros(3))


class TestPullSSSP:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: grid_2d(10, 10, weighted=True, seed=1),
            lambda: rmat(8, 8, weighted=True, seed=2),
        ],
        ids=["grid", "rmat"],
    )
    def test_matches_dijkstra(self, make_graph):
        g = make_graph()
        r = sssp_pull(g, 0)
        ref = dijkstra(g, 0)
        finite = ref < 1e37
        assert np.allclose(r.distances[finite], ref[finite], atol=1e-2)
        assert np.all(r.distances[~finite] >= 1e37)

    def test_matches_push(self, weighted_grid):
        push = sssp(weighted_grid, 0).distances
        pull = sssp_pull(weighted_grid, 0).distances
        finite = push < INF
        assert np.allclose(push[finite], pull[finite], atol=1e-2)

    def test_rounds_bounded_by_diameter_plus_one(self):
        g = chain(20, directed=True, weighted=True)
        r = sssp_pull(g, 0)
        assert r.stats.num_iterations <= 21

    def test_touches_all_edges_every_round(self, weighted_grid):
        r = sssp_pull(weighted_grid, 0)
        assert all(
            s.edges_touched == weighted_grid.n_edges for s in r.stats.iterations
        )

    def test_iteration_guard(self, weighted_grid):
        with pytest.raises(ConvergenceError):
            sssp_pull(weighted_grid, 0, max_iterations=2)


class TestLabelPropagation:
    def test_two_cliques_with_bridge(self):
        edges = (
            [(i, j) for i in range(6) for j in range(i + 1, 6)]
            + [(i, j) for i in range(6, 12) for j in range(i + 1, 12)]
            + [(0, 6)]
        )
        g = from_edge_list(edges, directed=False)
        r = label_propagation_communities(g)
        assert r.n_communities == 2
        # Each clique is one community.
        assert len(set(r.labels[:6].tolist())) == 1
        assert len(set(r.labels[6:].tolist())) == 1

    def test_complete_graph_single_community(self):
        r = label_propagation_communities(complete(8))
        assert r.n_communities == 1

    def test_disconnected_components_separate(self, two_component_graph):
        r = label_propagation_communities(two_component_graph)
        assert r.labels[0] == r.labels[1] == r.labels[2]
        assert r.labels[3] == r.labels[4]
        assert r.labels[0] != r.labels[3]

    def test_modularity_positive_on_community_structure(self):
        g = watts_strogatz(300, 8, 0.02, seed=3)
        r = label_propagation_communities(g)
        assert modularity(g, r.labels) > 0.3

    def test_modularity_extremes(self):
        g = complete(6)
        # All one community: Q = 0 for complete graph partitioned trivially
        # minus degree term -> Q = 1 - 1 = 0 when single community.
        assert modularity(g, np.zeros(6, dtype=int)) == pytest.approx(0.0)
        # Every vertex its own community: strictly negative.
        assert modularity(g, np.arange(6)) < 0

    def test_deterministic(self):
        g = watts_strogatz(120, 6, 0.05, seed=4)
        a = label_propagation_communities(g, seed=7)
        b = label_propagation_communities(g, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_community_sizes_sum(self):
        g = watts_strogatz(90, 4, 0.1, seed=5)
        r = label_propagation_communities(g)
        assert r.community_sizes().sum() == 90
