"""Tests for operators: advance, filter, for-each, reduce, uniquify,
intersection, conditions, load balancing.

The central property — an operator's semantics are identical under every
execution policy (Listing 3's overloads) — is asserted for each
operator directly.
"""

import numpy as np
import pytest

from repro.errors import ExecutionPolicyError, FrontierError, GraphFormatError
from repro.frontier import DenseFrontier, EdgeFrontier, SparseFrontier
from repro.graph import from_edge_list
from repro.operators import (
    filter_frontier,
    for_each,
    neighbors_expand,
    reduce_values,
    segmented_intersection_counts,
    uniquify,
)
from repro.operators.advance import expand_to_edges
from repro.operators.conditions import (
    apply_edge_condition,
    apply_vertex_predicate,
    bulk_condition,
    bulk_predicate,
    scalar_condition,
)
from repro.operators.load_balance import (
    chunk_imbalance,
    edge_balanced_chunks,
    make_chunks,
    vertex_balanced_chunks,
)
from repro.operators.reduce import argreduce
from repro.execution import par, par_vector, seq


class TestNeighborsExpand:
    def test_listing3_semantics(self, diamond_graph, policy):
        """Expand with a weight threshold matches the hand-computed set."""
        f = SparseFrontier.from_indices([0], 4)
        out = neighbors_expand(policy, diamond_graph, f, lambda s, d, e, w: w < 2.0)
        assert sorted(out.to_indices().tolist()) == [1]

    def test_all_pass_condition(self, diamond_graph, policy):
        f = SparseFrontier.from_indices([0, 1, 2], 4)
        out = neighbors_expand(
            policy, diamond_graph, f, lambda s, d, e, w: True
        )
        assert sorted(out.to_indices().tolist()) == [1, 2, 3, 3]

    def test_policy_equivalence_on_random_graph(self, small_rmat):
        f = SparseFrontier.from_indices(
            np.arange(0, small_rmat.n_vertices, 17), small_rmat.n_vertices
        )
        cond = lambda s, d, e, w: w < 5.0
        results = {}
        from repro.execution import par_nosync

        for pol in (seq, par, par_nosync, par_vector):
            out = neighbors_expand(pol, small_rmat, f, cond)
            results[pol.name] = np.sort(out.to_indices())
        base = results["seq"]
        for name, arr in results.items():
            assert np.array_equal(arr, base), f"{name} diverged from seq"

    def test_empty_frontier(self, diamond_graph, policy):
        out = neighbors_expand(
            policy, diamond_graph, SparseFrontier(4), lambda *a: True
        )
        assert out.is_empty()

    def test_dense_output(self, diamond_graph):
        f = SparseFrontier.from_indices([0, 1, 2], 4)
        out = neighbors_expand(
            par_vector,
            diamond_graph,
            f,
            lambda s, d, e, w: True,
            output_representation="dense",
        )
        assert isinstance(out, DenseFrontier)
        assert out.to_indices().tolist() == [1, 2, 3]  # bitmap dedups

    def test_queue_output(self, diamond_graph):
        f = SparseFrontier.from_indices([0], 4)
        out = neighbors_expand(
            par_vector,
            diamond_graph,
            f,
            lambda s, d, e, w: True,
            output_representation="queue",
        )
        assert sorted(out.drain().tolist()) == [1, 2]

    def test_nosync_defaults_to_queue(self, diamond_graph):
        from repro.execution import par_nosync
        from repro.frontier import AsyncQueueFrontier

        f = SparseFrontier.from_indices([0], 4)
        out = neighbors_expand(
            par_nosync, diamond_graph, f, lambda s, d, e, w: True
        )
        assert isinstance(out, AsyncQueueFrontier)

    def test_condition_receives_edge_tuple(self, diamond_graph):
        """The lambda gets the full {src, dst, edge, weight} tuple (§III-C)."""
        seen = []

        def cond(s, d, e, w):
            seen.append((s, d, e, w))
            return False

        f = SparseFrontier.from_indices([0], 4)
        neighbors_expand(seq, diamond_graph, f, cond)
        assert seen == [(0, 1, 0, 1.0), (0, 2, 1, 4.0)]

    def test_pull_direction(self, diamond_graph, policy):
        f = DenseFrontier.from_indices([1, 2], 4)
        out = neighbors_expand(
            policy, diamond_graph, f, lambda s, d, e, w: True, direction="pull"
        )
        # 3 has in-edges from active 1 and 2; 1/2's in-edges come from
        # inactive 0.
        assert sorted(set(out.to_indices().tolist())) == [3]

    def test_pull_with_candidates(self, diamond_graph):
        f = DenseFrontier.from_indices([0], 4)
        out = neighbors_expand(
            par_vector,
            diamond_graph,
            f,
            lambda s, d, e, w: True,
            direction="pull",
            candidates=np.array([1]),
        )
        assert out.to_indices().tolist() == [1]

    def test_pull_condition_filters(self, diamond_graph):
        f = DenseFrontier.from_indices([0], 4)
        out = neighbors_expand(
            par_vector,
            diamond_graph,
            f,
            lambda s, d, e, w: w > 2.0,
            direction="pull",
        )
        assert out.to_indices().tolist() == [2]  # only the weight-4 edge

    def test_bad_direction_rejected(self, diamond_graph):
        with pytest.raises(ValueError, match="direction"):
            neighbors_expand(
                seq, diamond_graph, SparseFrontier(4), lambda *a: True,
                direction="sideways",
            )

    def test_edge_frontier_input_rejected(self, diamond_graph):
        f = EdgeFrontier.from_indices([0], 4)
        with pytest.raises(FrontierError):
            neighbors_expand(seq, diamond_graph, f, lambda *a: True)

    def test_edge_balanced_par_matches(self, small_rmat):
        f = SparseFrontier.from_indices(
            np.arange(small_rmat.n_vertices), small_rmat.n_vertices
        )
        cond = lambda s, d, e, w: w < 5.0
        a = neighbors_expand(par.with_load_balance("edge"), small_rmat, f, cond)
        b = neighbors_expand(seq, small_rmat, f, cond)
        assert np.array_equal(np.sort(a.to_indices()), np.sort(b.to_indices()))


class TestExpandToEdges:
    def test_edge_ids_out(self, diamond_graph, policy):
        f = SparseFrontier.from_indices([0], 4)
        out = expand_to_edges(policy, diamond_graph, f, lambda s, d, e, w: w >= 2.0)
        assert out.to_indices().tolist() == [1]  # edge 0->2 has id 1

    def test_resolves_back(self, diamond_graph):
        f = SparseFrontier.from_indices([0, 1, 2], 4)
        out = expand_to_edges(par_vector, diamond_graph, f, lambda *a: True)
        srcs, dsts, _ = out.resolve(diamond_graph)
        assert sorted(zip(srcs.tolist(), dsts.tolist())) == [
            (0, 1), (0, 2), (1, 3), (2, 3),
        ]


class TestFilter:
    def test_scalar_predicate(self, policy):
        f = SparseFrontier.from_indices([1, 2, 3, 4], 10)
        out = filter_frontier(policy, f, lambda v: v % 2 == 0)
        assert sorted(out.to_indices().tolist()) == [2, 4]

    def test_bulk_predicate(self):
        f = SparseFrontier.from_indices([1, 2, 3, 4], 10)
        out = filter_frontier(
            par_vector, f, bulk_predicate(lambda vs: vs > 2)
        )
        assert sorted(out.to_indices().tolist()) == [3, 4]

    def test_multiplicity_preserved(self):
        f = SparseFrontier.from_indices([2, 2, 3], 10)
        out = filter_frontier(seq, f, lambda v: v == 2)
        assert out.to_indices().tolist() == [2, 2]

    def test_dense_output(self):
        f = SparseFrontier.from_indices([2, 2, 3], 10)
        out = filter_frontier(
            par_vector, f, lambda v: True, output_representation="dense"
        )
        assert isinstance(out, DenseFrontier)
        assert out.size() == 2

    def test_empty(self, policy):
        out = filter_frontier(policy, SparseFrontier(5), lambda v: True)
        assert out.is_empty()

    def test_edge_frontier_rejected(self):
        with pytest.raises(FrontierError):
            filter_frontier(seq, EdgeFrontier(5), lambda v: True)


class TestForEach:
    def test_over_frontier(self, policy):
        acc = np.zeros(10)
        f = SparseFrontier.from_indices([1, 3], 10)
        if policy is par_vector:
            for_each(policy, f, lambda idx: acc.__setitem__(idx, 1))
        else:
            for_each(policy, f, lambda v: acc.__setitem__(v, 1))
        assert np.nonzero(acc)[0].tolist() == [1, 3]

    def test_over_integer_range(self):
        acc = []
        for_each(seq, 4, acc.append)
        assert acc == [0, 1, 2, 3]

    def test_over_array(self):
        acc = []
        for_each(seq, np.array([5, 7]), acc.append)
        assert acc == [5, 7]

    def test_vector_gets_single_call(self):
        calls = []
        for_each(par_vector, np.arange(100), lambda idx: calls.append(len(idx)))
        assert calls == [100]

    def test_par_covers_all(self):
        import threading

        acc = np.zeros(1000)
        for_each(par.with_workers(4), 1000, lambda v: acc.__setitem__(v, v))
        assert np.array_equal(acc, np.arange(1000.0))


class TestReduce:
    @pytest.mark.parametrize("op,expected", [("sum", 45.0), ("min", 0.0), ("max", 9.0)])
    def test_ops_all_policies(self, policy, op, expected):
        assert reduce_values(policy, np.arange(10.0), op=op) == expected

    def test_frontier_restriction(self):
        f = SparseFrontier.from_indices([1, 3], 10)
        assert reduce_values(seq, np.arange(10.0), frontier=f, op="sum") == 4.0

    def test_empty_returns_identity(self, policy):
        f = SparseFrontier(10)
        assert reduce_values(policy, np.arange(10.0), frontier=f, op="sum") == 0.0
        assert reduce_values(policy, np.arange(10.0), frontier=f, op="min") == np.inf

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            reduce_values(seq, np.arange(3.0), op="median")

    def test_argreduce(self):
        vals = np.array([5.0, 1.0, 3.0])
        assert argreduce(seq, vals, op="min") == (1, 1.0)
        assert argreduce(seq, vals, op="max") == (0, 5.0)

    def test_argreduce_frontier_returns_vertex_id(self):
        vals = np.array([5.0, 1.0, 3.0, 0.5])
        f = SparseFrontier.from_indices([0, 2], 4)
        assert argreduce(seq, vals, frontier=f, op="min") == (2, 3.0)

    def test_argreduce_empty_rejected(self):
        with pytest.raises(ValueError):
            argreduce(seq, np.array([]))


class TestUniquify:
    @pytest.mark.parametrize("strategy", ["sort", "bitmap", "auto"])
    def test_strategies_agree(self, strategy):
        f = SparseFrontier.from_indices([5, 1, 5, 3, 1], 10)
        out = uniquify(seq, f, strategy=strategy)
        assert out.to_indices().tolist() == [1, 3, 5]

    def test_dense_passthrough(self):
        f = DenseFrontier.from_indices([1, 2], 5)
        assert uniquify(seq, f) is f

    def test_unknown_strategy_rejected(self):
        f = SparseFrontier.from_indices([1], 5)
        with pytest.raises(ValueError):
            uniquify(seq, f, strategy="hash")

    def test_empty(self):
        assert uniquify(seq, SparseFrontier(5)).is_empty()


class TestIntersection:
    def test_triangle(self, triangle_graph, policy):
        g = triangle_graph.with_sorted_neighbors()
        counts = segmented_intersection_counts(
            policy, g, np.array([0]), np.array([1])
        )
        assert counts.tolist() == [1]  # common neighbor: 2

    def test_requires_sorted(self, triangle_graph):
        with pytest.raises(GraphFormatError, match="sorted"):
            segmented_intersection_counts(
                seq, triangle_graph, np.array([0]), np.array([1])
            )

    def test_disjoint_neighborhoods(self):
        g = from_edge_list(
            [(0, 1), (2, 3)], n_vertices=4, directed=True
        ).with_sorted_neighbors()
        counts = segmented_intersection_counts(
            seq, g, np.array([0]), np.array([2])
        )
        assert counts.tolist() == [0]

    def test_mismatched_pairs_rejected(self, triangle_graph):
        g = triangle_graph.with_sorted_neighbors()
        with pytest.raises(ValueError):
            segmented_intersection_counts(seq, g, np.array([0, 1]), np.array([0]))


class TestConditionDispatch:
    def test_bulk_marked_never_looped(self):
        calls = []

        @bulk_condition
        def cond(s, d, e, w):
            calls.append(len(np.atleast_1d(s)))
            return np.ones(len(s), dtype=bool)

        mask = apply_edge_condition(
            cond, np.arange(5), np.arange(5), np.arange(5), np.ones(5)
        )
        assert mask.all() and calls == [5]

    def test_scalar_marked_always_looped(self):
        @scalar_condition
        def cond(s, d, e, w):
            return s == 2

        mask = apply_edge_condition(
            cond, np.arange(5), np.arange(5), np.arange(5), np.ones(5)
        )
        assert mask.tolist() == [False, False, True, False, False]

    def test_probe_detects_broadcastable(self):
        mask = apply_edge_condition(
            lambda s, d, e, w: w > 0.5,
            np.arange(3),
            np.arange(3),
            np.arange(3),
            np.array([0.1, 0.9, 0.6]),
        )
        assert mask.tolist() == [False, True, True]

    def test_probe_falls_back_on_scalar_only(self):
        def cond(s, d, e, w):
            if s > 1:  # `if` on an array raises -> fallback loop
                return True
            return False

        mask = apply_edge_condition(
            cond, np.arange(3), np.arange(3), np.arange(3), np.ones(3)
        )
        assert mask.tolist() == [False, False, True]

    def test_bulk_marked_bad_shape_raises(self):
        @bulk_condition
        def cond(s, d, e, w):
            return np.ones(1, dtype=bool)

        with pytest.raises(ValueError, match="shape"):
            apply_edge_condition(
                cond, np.arange(3), np.arange(3), np.arange(3), np.ones(3)
            )

    def test_vertex_predicate_probe(self):
        mask = apply_vertex_predicate(lambda vs: vs % 2 == 0, np.arange(4))
        assert mask.tolist() == [True, False, True, False]

    def test_empty_batch(self):
        out = apply_edge_condition(
            lambda *a: True,
            np.empty(0),
            np.empty(0),
            np.empty(0),
            np.empty(0),
        )
        assert out.size == 0


class TestLoadBalance:
    def test_vertex_chunks(self):
        assert vertex_balanced_chunks(10, 2) == [(0, 5), (5, 10)]

    def test_edge_chunks_equalize_work(self):
        # One hub of degree 1000 then 999 degree-1 vertices.
        degrees = np.concatenate([[1000], np.ones(999, dtype=int)])
        chunks = edge_balanced_chunks(degrees, 4)
        imb_edge = chunk_imbalance(degrees, chunks)
        imb_vertex = chunk_imbalance(degrees, vertex_balanced_chunks(1000, 4))
        assert imb_edge < imb_vertex
        assert imb_edge < 2.1  # hub alone is ~half the work -> bounded

    def test_edge_chunks_cover_everything(self):
        degrees = np.random.default_rng(0).integers(0, 50, size=137)
        chunks = edge_balanced_chunks(degrees, 8)
        covered = sorted((s, e) for s, e in chunks)
        assert covered[0][0] == 0 and covered[-1][1] == 137
        for (s1, e1), (s2, e2) in zip(covered, covered[1:]):
            assert e1 == s2

    def test_all_zero_degrees_fall_back(self):
        chunks = edge_balanced_chunks(np.zeros(10, dtype=int), 3)
        assert chunks[0][0] == 0 and chunks[-1][1] == 10

    def test_make_chunks_dispatch(self):
        degrees = np.ones(10, dtype=int)
        assert make_chunks(degrees, 2, "vertex") == [(0, 5), (5, 10)]
        assert make_chunks(degrees, 2, "edge")
        with pytest.raises(ValueError):
            make_chunks(degrees, 2, "magic")

    def test_empty_input(self):
        assert edge_balanced_chunks(np.empty(0, dtype=int), 4) == []
        assert chunk_imbalance(np.empty(0), []) == 1.0
