"""The docs/writing_algorithms.md walkthrough, executed.

Implements widest path (maximum bottleneck) exactly as the document
describes and validates it — if the tutorial drifts from the API, this
file fails.
"""

import numpy as np
import pytest

from repro.execution import par, par_vector, seq
from repro.execution.atomics import bulk_max_relax
from repro.frontier import SparseFrontier
from repro.graph import from_edge_list
from repro.graph.generators import chain, grid_2d
from repro.loop import Enactor
from repro.operators import bulk_condition, neighbors_expand, uniquify
from repro.operators.segmented import segmented_neighbor_reduce
from repro.types import INF


def widest_path(graph, source, policy=par_vector):
    """The walkthrough's algorithm, verbatim."""
    width = np.full(graph.n_vertices, -INF, dtype=np.float32)
    width[source] = INF

    @bulk_condition
    def widen(srcs, dsts, edges, weights):
        candidate = np.minimum(width[srcs], weights)
        return bulk_max_relax(width, dsts, candidate)

    def step(frontier, state):
        out = neighbors_expand(policy, graph, frontier, widen)
        return uniquify(policy, out)

    enactor = Enactor(graph)
    enactor.run(
        SparseFrontier.from_indices([source], graph.n_vertices), step
    )
    return width


def oracle_widest_path(graph, source):
    """10-line textbook comparator: Dijkstra-style with max-min order."""
    import heapq

    n = graph.n_vertices
    csr = graph.csr()
    best = np.full(n, -INF, dtype=np.float64)
    best[source] = INF
    heap = [(-INF, source)]
    while heap:
        neg_w, v = heapq.heappop(heap)
        if -neg_w < best[v]:
            continue
        for e in csr.get_edges(v):
            u = csr.get_dest_vertex(e)
            cand = min(best[v], csr.get_edge_weight(e))
            if cand > best[u]:
                best[u] = cand
                heapq.heappush(heap, (-cand, u))
    return best.astype(np.float32)


class TestWalkthrough:
    def test_chain_closed_form(self):
        """A chain's widest path to the end is its minimum edge weight."""
        g = chain(6, directed=True, weighted=True)  # weights 1..5
        width = widest_path(g, 0)
        assert width[5] == 1.0  # bottleneck = first edge
        assert width[1] == 1.0

    def test_parallel_paths_pick_the_wider(self):
        g = from_edge_list(
            [(0, 1, 10.0), (1, 3, 2.0), (0, 2, 5.0), (2, 3, 5.0)],
            n_vertices=4,
        )
        width = widest_path(g, 0)
        assert width[3] == 5.0  # via 2, not the 10-then-2 path

    @pytest.mark.parametrize("pol", [seq, par, par_vector], ids=lambda p: p.name)
    def test_policy_invariance(self, pol):
        g = grid_2d(8, 8, weighted=True, seed=9)
        assert np.allclose(
            widest_path(g, 0, policy=pol), widest_path(g, 0), atol=1e-4
        )

    def test_matches_oracle(self):
        g = grid_2d(9, 9, weighted=True, seed=10)
        assert np.allclose(
            widest_path(g, 0), oracle_widest_path(g, 0), atol=1e-4
        )

    def test_fold_fixed_point_property(self):
        """width[v] >= min(width[u], w) for every edge at convergence."""
        g = grid_2d(7, 7, weighted=True, seed=11)
        width = widest_path(g, 0)
        for u, v, _, w in g.iter_edges():
            assert width[v] >= min(width[u], w) - 1e-4

    def test_pull_variant_from_walkthrough(self):
        """The doc's closing note: pull form via segmented max-reduce."""
        g = grid_2d(6, 6, weighted=True, seed=12)
        push_answer = widest_path(g, 0)

        n = g.n_vertices
        width = np.full(n, float(-INF))
        width[0] = float(INF)
        while True:
            gathered = segmented_neighbor_reduce(
                par_vector,
                g,
                width,
                op="max",
                direction="in",
                edge_transform=lambda vals, w: np.minimum(vals, w),
            )
            new = np.maximum(width, gathered)
            new[0] = float(INF)
            if np.array_equal(new, width):
                break
            width = new
        assert np.allclose(width, push_answer, atol=1e-4)
