"""Tests for all frontier representations and their uniform interface."""

import threading

import numpy as np
import pytest

from repro.errors import FrontierError
from repro.frontier import (
    AsyncQueueFrontier,
    DenseFrontier,
    EdgeFrontier,
    Frontier,
    FrontierKind,
    SparseFrontier,
    auto_select,
    convert,
    make_frontier,
)


class TestSparseFrontier:
    def test_listing2_interface(self):
        """Listing 2's exact surface: size / get_active_vertex / add_vertex."""
        f = SparseFrontier(10)
        f.add_vertex(3)
        f.add_vertex(7)
        assert f.size() == 2
        assert f.get_active_vertex(0) == 3
        assert f.get_active_vertex(1) == 7

    def test_duplicates_allowed(self):
        f = SparseFrontier.from_indices([1, 1, 2], 5)
        assert f.size() == 3

    def test_uniquify_in_place(self):
        f = SparseFrontier.from_indices([3, 1, 3, 2], 5)
        f.uniquify()
        assert f.to_indices().tolist() == [1, 2, 3]

    def test_growth_beyond_initial_room(self):
        f = SparseFrontier(1000)
        for v in range(500):
            f.add(v)
        assert f.size() == 500
        assert f.to_indices().tolist() == list(range(500))

    def test_bulk_add(self):
        f = SparseFrontier(100)
        f.add_many(np.arange(50))
        f.add_many(range(50, 60))
        assert f.size() == 60

    def test_out_of_range_rejected(self):
        f = SparseFrontier(5)
        with pytest.raises(FrontierError):
            f.add(5)
        with pytest.raises(FrontierError):
            f.add_many([0, 9])

    def test_positional_query_out_of_range(self):
        f = SparseFrontier.from_indices([1], 5)
        with pytest.raises(FrontierError):
            f.get_active_vertex(1)

    def test_indices_view_zero_copy(self):
        f = SparseFrontier.from_indices([1, 2], 5)
        view = f.indices_view()
        assert view.base is not None

    def test_clear_and_copy(self):
        f = SparseFrontier.from_indices([1, 2], 5)
        c = f.copy()
        f.clear()
        assert f.is_empty() and c.size() == 2

    def test_contains(self):
        f = SparseFrontier.from_indices([1, 3], 5)
        assert 3 in f and 2 not in f


class TestDenseFrontier:
    def test_bitmap_dedups(self):
        f = DenseFrontier.from_indices([1, 1, 2], 5)
        assert f.size() == 2

    def test_flags_view(self):
        f = DenseFrontier.from_indices([0, 4], 5)
        assert f.flags_view().tolist() == [True, False, False, False, True]

    def test_remove(self):
        f = DenseFrontier.from_indices([1, 2], 5)
        f.remove(1)
        f.remove(1)  # no-op
        assert f.to_indices().tolist() == [2]

    def test_union_difference(self):
        a = DenseFrontier.from_indices([0, 1], 5)
        b = DenseFrontier.from_indices([1, 2], 5)
        a.union_(b)
        assert a.to_indices().tolist() == [0, 1, 2]
        a.difference_(DenseFrontier.from_indices([1], 5))
        assert a.to_indices().tolist() == [0, 2]

    def test_capacity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DenseFrontier(3).union_(DenseFrontier(4))

    def test_from_flags_copies(self):
        flags = np.array([True, False])
        f = DenseFrontier.from_flags(flags)
        flags[1] = True
        assert f.size() == 1

    def test_contains_out_of_range_false(self):
        assert 99 not in DenseFrontier(5)

    def test_count_stays_exact(self):
        f = DenseFrontier(10)
        f.add(1)
        f.add(1)
        f.add_many([1, 2, 3])
        f.remove(2)
        assert f.size() == len(f.to_indices()) == 2


class TestAsyncQueueFrontier:
    def test_fifo_order(self):
        f = AsyncQueueFrontier.from_indices([4, 2, 7], 10)
        assert [f.pop(timeout=0) for _ in range(3)] == [4, 2, 7]

    def test_pop_empty_nonblocking(self):
        assert AsyncQueueFrontier(5).pop(timeout=0) is None

    def test_pop_chunk(self):
        f = AsyncQueueFrontier.from_indices(range(10), 10)
        chunk = f.pop_chunk(4)
        assert chunk == [0, 1, 2, 3]
        assert f.size() == 6

    def test_pop_chunk_validates(self):
        with pytest.raises(FrontierError):
            AsyncQueueFrontier(5).pop_chunk(0)

    def test_drain(self):
        f = AsyncQueueFrontier.from_indices([1, 2], 5)
        assert f.drain().tolist() == [1, 2]
        assert f.is_empty()

    def test_snapshot_does_not_consume(self):
        f = AsyncQueueFrontier.from_indices([1, 2], 5)
        assert f.to_indices().tolist() == [1, 2]
        assert f.size() == 2

    def test_blocking_pop_wakes_on_push(self):
        f = AsyncQueueFrontier(5)
        result = []

        def consumer():
            result.append(f.pop(timeout=2.0))

        t = threading.Thread(target=consumer)
        t.start()
        f.add(3)
        t.join()
        assert result == [3]

    def test_concurrent_producers(self):
        f = AsyncQueueFrontier(1000)

        def produce(base):
            for i in range(100):
                f.add(base + i)

        threads = [
            threading.Thread(target=produce, args=(b,)) for b in (0, 100, 200)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert f.size() == 300
        assert sorted(f.drain().tolist()) == list(range(300))


class TestEdgeFrontier:
    def test_kind(self):
        assert EdgeFrontier(5).kind is FrontierKind.EDGE

    def test_all_edges(self, diamond_graph):
        f = EdgeFrontier.all_edges(diamond_graph)
        assert f.size() == diamond_graph.n_edges

    def test_resolve(self, diamond_graph):
        f = EdgeFrontier.from_indices([0, 3], diamond_graph.n_edges)
        srcs, dsts, wts = f.resolve(diamond_graph)
        assert srcs.tolist() == [0, 2]
        assert dsts.tolist() == [1, 3]

    def test_out_of_range_rejected(self):
        f = EdgeFrontier(3)
        with pytest.raises(FrontierError):
            f.add(3)
        with pytest.raises(FrontierError):
            f.add_many([0, 5])


class TestConvert:
    def test_sparse_to_dense_dedups(self):
        f = SparseFrontier.from_indices([1, 1, 3], 5)
        d = convert(f, "dense")
        assert d.size() == 2

    def test_dense_to_queue(self):
        d = DenseFrontier.from_indices([2, 4], 5)
        q = convert(d, AsyncQueueFrontier)
        assert sorted(q.to_indices().tolist()) == [2, 4]

    def test_vertex_to_edge_rejected(self):
        f = SparseFrontier.from_indices([1], 5)
        with pytest.raises(FrontierError, match="not comparable"):
            convert(f, EdgeFrontier)

    def test_unknown_name_rejected(self):
        with pytest.raises(FrontierError, match="unknown"):
            make_frontier("bitmapx", 5)

    def test_bad_class_rejected(self):
        with pytest.raises(FrontierError):
            make_frontier(int, 5)


class TestAutoSelect:
    def test_small_fraction_stays_sparse(self):
        f = SparseFrontier.from_indices([1], 1000)
        assert auto_select(f) is f

    def test_large_fraction_goes_dense(self):
        f = SparseFrontier.from_indices(range(500), 1000)
        assert isinstance(auto_select(f), DenseFrontier)

    def test_small_dense_goes_sparse(self):
        f = DenseFrontier.from_indices([1], 1000)
        assert isinstance(auto_select(f), SparseFrontier)

    def test_queue_untouched(self):
        f = AsyncQueueFrontier.from_indices(range(500), 1000)
        assert auto_select(f) is f

    def test_edge_untouched(self):
        f = EdgeFrontier.from_indices(range(500), 1000)
        assert auto_select(f) is f

    def test_custom_threshold(self):
        f = SparseFrontier.from_indices(range(10), 1000)
        assert isinstance(auto_select(f, threshold=0.005), DenseFrontier)
