"""Tests for the extension features: near-far SSSP, PPR (power + push),
SpGEMM, random walks, bucketed frontier, async message-passing engines.

These cover the paper's "look ahead" direction — more of TLAV's design
space under the same abstraction — and the extra algorithms of the
companion essentials library (ppr, spgemm).
"""

import numpy as np
import pytest

from repro.algorithms import (
    count_two_hop_paths,
    personalized_pagerank,
    ppr_forward_push,
    random_walks,
    spgemm,
    sssp,
    sssp_near_far,
    visit_frequencies,
)
from repro.algorithms.random_walk import INVALID
from repro.baselines import dijkstra, union_find_components
from repro.comm import (
    AsyncFoldEngine,
    async_components_messages,
    async_sssp_messages,
)
from repro.errors import CommunicationError, FrontierError, GraphFormatError
from repro.frontier.bucketed import BucketedFrontier
from repro.graph import from_edge_list
from repro.graph.generators import chain, grid_2d, rmat, star, watts_strogatz
from repro.types import INF


class TestNearFarSSSP:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: grid_2d(10, 10, weighted=True, seed=1),
            lambda: rmat(8, 8, weighted=True, seed=2),
            lambda: watts_strogatz(150, 6, 0.1, seed=3),
        ],
        ids=["grid", "rmat", "ws"],
    )
    def test_matches_dijkstra(self, make_graph):
        g = make_graph()
        r = sssp_near_far(g, 0)
        ref = dijkstra(g, 0)
        finite = ref < 1e37
        assert np.allclose(r.distances[finite], ref[finite], atol=1e-2)
        assert np.all(r.distances[~finite] >= 1e37)

    @pytest.mark.parametrize("delta", [0.5, 5.0, 1000.0])
    def test_any_delta_correct(self, weighted_grid, delta):
        r = sssp_near_far(weighted_grid, 0, delta=delta)
        assert np.allclose(
            r.distances, dijkstra(weighted_grid, 0), atol=1e-2
        )

    def test_fewer_rounds_than_plain_bsp_on_grid(self, weighted_grid):
        plain = sssp(weighted_grid, 0).stats.num_iterations
        nf = sssp_near_far(weighted_grid, 0).stats.num_iterations
        assert nf <= plain

    def test_invalid_delta(self, weighted_grid):
        with pytest.raises(ValueError):
            sssp_near_far(weighted_grid, 0, delta=-1)

    def test_disconnected(self, two_component_graph):
        r = sssp_near_far(two_component_graph, 0)
        assert r.distances[3] == INF


class TestPersonalizedPageRank:
    def test_power_matches_networkx(self, small_ws):
        import networkx as nx

        from repro.baselines import nx_graph_of

        r = personalized_pagerank(small_ws, 5, tolerance=1e-12)
        ref = nx.pagerank(
            nx_graph_of(small_ws),
            alpha=0.85,
            personalization={5: 1.0},
            tol=1e-12,
            max_iter=1000,
        )
        refv = np.array([ref[v] for v in range(small_ws.n_vertices)])
        assert np.allclose(r.ranks, refv, atol=1e-8)

    def test_push_matches_power(self, small_ws):
        power = personalized_pagerank(small_ws, 3, tolerance=1e-12)
        push = ppr_forward_push(small_ws, 3, epsilon=1e-10)
        assert np.allclose(power.ranks, push.ranks, atol=1e-6)

    def test_multi_seed(self, small_ws):
        r = personalized_pagerank(small_ws, [0, 1, 2])
        assert r.ranks.sum() == pytest.approx(1.0, abs=1e-6)
        # Mass concentrates near the seeds.
        assert r.ranks[[0, 1, 2]].sum() > 3.0 / small_ws.n_vertices

    def test_push_is_local(self, small_ws):
        """Coarse epsilon must leave most of a big graph untouched."""
        r = ppr_forward_push(small_ws, 0, epsilon=1e-3)
        assert np.count_nonzero(r.ranks) < small_ws.n_vertices

    def test_bad_seeds_rejected(self, small_ws):
        with pytest.raises(ValueError):
            personalized_pagerank(small_ws, [])
        with pytest.raises(ValueError):
            personalized_pagerank(small_ws, small_ws.n_vertices)
        with pytest.raises(ValueError):
            ppr_forward_push(small_ws, 0, epsilon=0)


class TestSpGEMM:
    def test_square_matches_scipy(self, small_ws):
        product = spgemm(small_ws, small_ws)
        ref = (
            small_ws.csr().to_scipy().astype(np.float64)
            @ small_ws.csr().to_scipy().astype(np.float64)
        ).toarray()
        assert np.allclose(
            product.csr().to_scipy().toarray(), ref, atol=1e-3
        )

    def test_rectangular_chain_power(self):
        """A path's adjacency squared connects vertices 2 hops apart."""
        g = chain(6, directed=True)
        sq = spgemm(g, g)
        pairs = set(
            zip(sq.coo().rows.tolist(), sq.coo().cols.tolist())
        )
        assert pairs == {(i, i + 2) for i in range(4)}

    def test_mismatched_sizes_rejected(self):
        a = chain(4, directed=True)
        b = chain(5, directed=True)
        with pytest.raises(GraphFormatError):
            spgemm(a, b)

    def test_empty_product(self):
        # star leaves have no out-edges (directed): A@A of a directed star
        # is empty.
        g = star(4, directed=True)
        sq = spgemm(g, g)
        assert sq.n_edges == 0

    def test_row_blocking_invariant(self, small_ws):
        a = spgemm(small_ws, small_ws, row_block=7)
        b = spgemm(small_ws, small_ws, row_block=4096)
        assert np.allclose(
            a.csr().to_scipy().toarray(),
            b.csr().to_scipy().toarray(),
            atol=1e-3,
        )

    def test_two_hop_count(self):
        g = chain(5, directed=True)
        assert count_two_hop_paths(g) == 3  # 0->2, 1->3, 2->4


class TestRandomWalks:
    def test_walks_follow_edges(self, small_ws):
        r = random_walks(small_ws, [0, 7, 12], 15, seed=1)
        for row in r.walks:
            for a, b in zip(row, row[1:]):
                if b == INVALID:
                    break
                assert small_ws.has_edge(int(a), int(b))

    def test_deterministic(self, small_ws):
        a = random_walks(small_ws, [0], 20, seed=5)
        b = random_walks(small_ws, [0], 20, seed=5)
        assert np.array_equal(a.walks, b.walks)

    def test_sink_terminates_walk(self):
        g = chain(4, directed=True)
        r = random_walks(g, [0], 10, seed=0)
        assert r.walks[0].tolist()[:4] == [0, 1, 2, 3]
        assert np.all(r.walks[0][4:] == INVALID)
        assert r.terminated_early[0]

    def test_weighted_bias(self):
        """A 2-out-neighbor vertex with weights 100:1 should step to the
        heavy neighbor most of the time."""
        g = from_edge_list(
            [(0, 1, 100.0), (0, 2, 1.0)], n_vertices=3, directed=True
        )
        r = random_walks(g, [0] * 500, 1, seed=2, weighted=True)
        heavy = int((r.walks[:, 1] == 1).sum())
        assert heavy > 450

    def test_visit_frequencies(self):
        g = chain(3, directed=True)
        r = random_walks(g, [0, 0], 2, seed=3)
        freq = visit_frequencies(r, 3)
        assert freq.tolist() == [2, 2, 2]

    def test_bad_starts_rejected(self, small_ws):
        with pytest.raises(ValueError):
            random_walks(small_ws, [small_ws.n_vertices], 3)


class TestBucketedFrontier:
    def test_priority_placement(self):
        f = BucketedFrontier(10, delta=2.0)
        f.add_with_priority(1, 0.5)   # bucket 0
        f.add_with_priority(2, 3.0)   # bucket 1
        f.add_with_priority(3, 10.0)  # bucket 5
        assert f.size() == 1
        assert f.total_size() == 3
        assert f.to_indices().tolist() == [1]

    def test_bucket_rotation(self):
        f = BucketedFrontier.from_priorities(
            [1, 2, 3], [0.5, 2.5, 7.0], 10, delta=1.0
        )
        assert f.take_current().tolist() == [1]
        assert f.advance_bucket()
        assert f.current_bucket == 2
        assert f.take_current().tolist() == [2]
        assert f.advance_bucket()
        assert f.take_current().tolist() == [3]
        assert not f.advance_bucket()
        assert f.is_exhausted()

    def test_late_arrivals_clamp_to_current(self):
        f = BucketedFrontier(10, delta=1.0)
        f.current_bucket = 5
        f.add_with_priority(2, 0.1)  # earlier band -> clamped
        assert f.size() == 1

    def test_interface_add_lands_current(self):
        f = BucketedFrontier(10, delta=1.0)
        f.add(4)
        f.add_many([5, 6])
        assert sorted(f.to_indices().tolist()) == [4, 5, 6]

    def test_validation(self):
        with pytest.raises(FrontierError):
            BucketedFrontier(10, delta=0)
        f = BucketedFrontier(10, delta=1.0)
        with pytest.raises(FrontierError):
            f.add_with_priority(10, 1.0)
        with pytest.raises(FrontierError):
            f.add_with_priorities([1, 2], [1.0])

    def test_copy_independent(self):
        f = BucketedFrontier.from_priorities([1], [0.5], 10, 1.0)
        c = f.copy()
        f.clear()
        assert c.total_size() == 1


class TestAsyncMessageEngines:
    def test_async_sssp_matches_bsp(self, weighted_grid):
        bsp = sssp(weighted_grid, 0).distances
        messaged, tasks = async_sssp_messages(weighted_grid, 0, timeout=120)
        assert np.allclose(bsp, messaged, atol=1e-3)
        assert tasks >= np.count_nonzero(bsp < INF) - 1

    def test_async_components_match_union_find(self, small_ws):
        labels = async_components_messages(small_ws, timeout=120)
        assert np.array_equal(labels, union_find_components(small_ws))

    def test_max_fold(self):
        g = chain(6)
        engine = AsyncFoldEngine(
            g,
            fold="max",
            emit=lambda v, val, u, w: val,
            timeout=60,
        )
        out = engine.run(np.arange(6, dtype=np.float64), range(6))
        assert np.all(out == 5.0)

    def test_bad_fold_rejected(self, small_grid):
        with pytest.raises(CommunicationError):
            AsyncFoldEngine(small_grid, fold="sum", emit=lambda *a: None)

    def test_bad_values_shape_rejected(self, small_grid):
        engine = AsyncFoldEngine(
            small_grid, fold="min", emit=lambda *a: None, timeout=30
        )
        with pytest.raises(CommunicationError):
            engine.run(np.zeros(2), [0])

    def test_emit_none_sends_nothing(self, small_grid):
        engine = AsyncFoldEngine(
            small_grid, fold="min", emit=lambda *a: None, timeout=30
        )
        out = engine.run(
            np.arange(small_grid.n_vertices, dtype=np.float64), [0]
        )
        # Nothing ever sent: values unchanged, only the seed processed.
        assert np.array_equal(
            out, np.arange(small_grid.n_vertices, dtype=np.float64)
        )
        assert engine.tasks_processed == 1
