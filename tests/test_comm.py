"""Tests for the message-passing substrate: channels, combiners,
mailboxes, and the Pregel engine."""

import threading

import numpy as np
import pytest

from repro.errors import CommunicationError, ConvergenceError
from repro.comm import (
    Channel,
    MailboxRouter,
    MaxCombiner,
    MinCombiner,
    PregelEngine,
    SumCombiner,
    VertexProgram,
    collect_messages,
)
from repro.graph.generators import chain, grid_2d


class TestChannel:
    def test_fifo(self):
        ch = Channel("test")
        ch.send(1)
        ch.send_many([2, 3])
        assert [ch.recv(timeout=0.1) for _ in range(3)] == [1, 2, 3]

    def test_recv_timeout_none_result(self):
        assert Channel().recv(timeout=0.01) is None

    def test_closed_send_rejected(self):
        ch = Channel("c")
        ch.close()
        with pytest.raises(CommunicationError):
            ch.send(1)
        with pytest.raises(CommunicationError):
            ch.send_many([1])

    def test_close_drains_then_none(self):
        ch = Channel()
        ch.send(7)
        ch.close()
        assert ch.recv() == 7
        assert ch.recv() is None

    def test_close_wakes_blocked_receiver(self):
        ch = Channel()
        got = []

        def consumer():
            got.append(ch.recv(timeout=5))

        t = threading.Thread(target=consumer)
        t.start()
        ch.close()
        t.join()
        assert got == [None]

    def test_drain_and_len(self):
        ch = Channel()
        ch.send_many([1, 2, 3])
        assert len(ch) == 3
        assert ch.drain() == [1, 2, 3]
        assert len(ch) == 0


class TestCombiners:
    @pytest.mark.parametrize(
        "combiner,expected",
        [
            (MinCombiner(), [1.0, 5.0]),
            (MaxCombiner(), [3.0, 5.0]),
            (SumCombiner(), [4.0, 5.0]),
        ],
    )
    def test_combine_bulk(self, combiner, expected):
        dsts = np.array([0, 0, 2])
        vals = np.array([3.0, 1.0, 5.0])
        out_d, out_v = combiner.combine_bulk(dsts, vals)
        assert out_d.tolist() == [0, 2]
        assert out_v.tolist() == expected

    def test_scalar_fold(self):
        assert MinCombiner().combine(2.0, 3.0) == 2.0
        assert MaxCombiner().combine(2.0, 3.0) == 3.0
        assert SumCombiner().combine(2.0, 3.0) == 5.0

    def test_empty_bulk(self):
        d, v = SumCombiner().combine_bulk(np.empty(0, int), np.empty(0))
        assert d.size == 0 and v.size == 0

    def test_default_combine_bulk_fallback(self):
        """The base-class sort+fold path must agree with the ufunc path."""
        from repro.comm.messages import Combiner

        class ProductCombiner(Combiner):
            identity = 1.0

            def combine(self, a, b):
                return a * b

        d, v = ProductCombiner().combine_bulk(
            np.array([1, 0, 1]), np.array([2.0, 3.0, 4.0])
        )
        assert d.tolist() == [0, 1]
        assert v.tolist() == [3.0, 8.0]

    def test_collect_messages(self):
        inbox = collect_messages(np.array([1, 1, 2]), np.array([4.0, 5.0, 6.0]))
        assert inbox == {1: [4.0, 5.0], 2: [6.0]}


class TestMailboxRouter:
    def test_superstep_delivery_is_barriered(self):
        owner = np.zeros(4, dtype=int)
        router = MailboxRouter(owner, 1, delivery="superstep")
        router.send(np.array([1]), np.array([9.0]))
        d, v = router.receive(0)
        assert d.size == 0  # not yet flushed
        router.flush_barrier()
        d, v = router.receive(0)
        assert d.tolist() == [1] and v.tolist() == [9.0]

    def test_immediate_delivery(self):
        router = MailboxRouter(np.zeros(4, dtype=int), 1, delivery="immediate")
        router.send(np.array([1]), np.array([9.0]))
        d, _ = router.receive(0)
        assert d.tolist() == [1]

    def test_routing_to_owner(self):
        owner = np.array([0, 1, 0, 1])
        router = MailboxRouter(owner, 2)
        router.send(np.array([0, 1, 2, 3]), np.arange(4.0))
        router.flush_barrier()
        d0, _ = router.receive(0)
        d1, _ = router.receive(1)
        assert sorted(d0.tolist()) == [0, 2]
        assert sorted(d1.tolist()) == [1, 3]

    def test_combiner_at_delivery(self):
        router = MailboxRouter(np.zeros(3, dtype=int), 1)
        router.send(np.array([1, 1]), np.array([5.0, 2.0]))
        router.flush_barrier()
        d, v = router.receive(0, MinCombiner())
        assert d.tolist() == [1] and v.tolist() == [2.0]

    def test_traffic_accounting(self):
        owner = np.array([0, 1])
        router = MailboxRouter(owner, 2)
        router.send(np.array([0, 1]), np.zeros(2), from_rank=0)
        assert router.remote_messages == 1
        assert router.local_messages == 1

    def test_invalid_destination_rejected(self):
        router = MailboxRouter(np.zeros(2, dtype=int), 1)
        with pytest.raises(CommunicationError):
            router.send(np.array([5]), np.array([1.0]))

    def test_mismatched_lengths_rejected(self):
        router = MailboxRouter(np.zeros(2, dtype=int), 1)
        with pytest.raises(CommunicationError):
            router.send(np.array([0, 1]), np.array([1.0]))

    def test_invalid_rank_rejected(self):
        router = MailboxRouter(np.zeros(2, dtype=int), 1)
        with pytest.raises(CommunicationError):
            router.receive(3)

    def test_has_messages(self):
        router = MailboxRouter(np.zeros(2, dtype=int), 1)
        assert not router.has_messages()
        router.send(np.array([0]), np.array([1.0]))
        assert router.has_messages()  # pending counts

    def test_vertices_of_rank(self):
        router = MailboxRouter(np.array([0, 1, 0]), 2)
        assert router.vertices_of_rank(0).tolist() == [0, 2]

    def test_bad_delivery_rejected(self):
        with pytest.raises(CommunicationError):
            MailboxRouter(np.zeros(2, dtype=int), 1, delivery="eventually")


class _MaxValue(VertexProgram):
    combiner = MaxCombiner()

    def compute(self, ctx):
        old = ctx.value
        if ctx.messages:
            best = max(ctx.messages)
            if best > ctx.value:
                ctx.value = best
        if ctx.superstep == 0 or ctx.value > old:
            ctx.send_to_neighbors(ctx.value)
        ctx.vote_to_halt()


class TestPregelEngine:
    def test_max_value_floods_chain(self):
        g = chain(8)
        engine = PregelEngine(g)
        vals = engine.run(_MaxValue(), np.arange(8, dtype=float))
        assert np.all(vals == 7.0)
        # Value must travel the diameter: supersteps >= 7.
        assert engine.stats.supersteps >= 7

    def test_partitioned_matches_single_rank(self):
        g = grid_2d(4, 4)
        single = PregelEngine(g).run(_MaxValue(), np.arange(16, dtype=float))
        owner = np.arange(16) % 4
        multi = PregelEngine(g, owner_of=owner).run(
            _MaxValue(), np.arange(16, dtype=float)
        )
        assert np.array_equal(single, multi)

    def test_parallel_ranks_match(self):
        g = grid_2d(4, 4)
        owner = np.arange(16) % 3
        serial = PregelEngine(g, owner_of=owner).run(
            _MaxValue(), np.arange(16.0)
        )
        parallel = PregelEngine(g, owner_of=owner, parallel_ranks=True).run(
            _MaxValue(), np.arange(16.0)
        )
        assert np.array_equal(serial, parallel)

    def test_remote_traffic_counted_for_partitions(self):
        g = chain(8)
        owner = (np.arange(8) >= 4).astype(int)  # two halves
        engine = PregelEngine(g, owner_of=owner)
        engine.run(_MaxValue(), np.arange(8, dtype=float))
        assert engine.stats.remote_messages > 0
        assert engine.stats.local_messages > engine.stats.remote_messages

    def test_vote_to_halt_terminates_immediately_when_silent(self):
        class HaltNow(VertexProgram):
            def compute(self, ctx):
                ctx.vote_to_halt()

        g = chain(4)
        engine = PregelEngine(g)
        engine.run(HaltNow(), np.zeros(4))
        assert engine.stats.supersteps == 1

    def test_nonterminating_program_raises(self):
        class Chatty(VertexProgram):
            def compute(self, ctx):
                ctx.send_to_neighbors(0.0)  # never halts

        g = chain(4)
        engine = PregelEngine(g, max_supersteps=5)
        with pytest.raises(ConvergenceError):
            engine.run(Chatty(), np.zeros(4))

    def test_initially_active_restricts_superstep0(self):
        class Recorder(VertexProgram):
            def __init__(self):
                self.seen = []

            def compute(self, ctx):
                self.seen.append((ctx.superstep, ctx.vertex))
                ctx.vote_to_halt()

        g = chain(4)
        prog = Recorder()
        PregelEngine(g).run(prog, np.zeros(4), initially_active=[2])
        assert prog.seen == [(0, 2)]

    def test_bad_shapes_rejected(self):
        g = chain(4)
        with pytest.raises(CommunicationError):
            PregelEngine(g, owner_of=np.zeros(2, dtype=int))
        with pytest.raises(CommunicationError):
            PregelEngine(g).run(_MaxValue(), np.zeros(2))

    def test_context_out_edges(self):
        g = chain(3, directed=True, weighted=True)

        class Probe(VertexProgram):
            def __init__(self):
                self.edges = {}

            def compute(self, ctx):
                nbrs, wts = ctx.out_edges()
                self.edges[ctx.vertex] = (nbrs.tolist(), wts.tolist())
                ctx.vote_to_halt()

        prog = Probe()
        PregelEngine(g).run(prog, np.zeros(3))
        assert prog.edges[0] == ([1], [1.0])
        assert prog.edges[1] == ([2], [2.0])
        assert prog.edges[2] == ([], [])


class TestAggregators:
    """The Pregel paper's aggregator mechanism: global sums folded per
    superstep, visible to every vertex the next superstep."""

    def test_sum_visible_next_superstep(self):
        from repro.comm import VertexProgram

        observed = []

        class Agg(VertexProgram):
            def compute(self, ctx):
                if ctx.superstep == 0:
                    ctx.aggregate("mass", float(ctx.vertex))
                    ctx.send(ctx.vertex, 0.0)  # keep self alive one round
                elif ctx.superstep == 1:
                    observed.append(ctx.aggregated("mass"))
                ctx.vote_to_halt()

        g = chain(4)
        PregelEngine(g).run(Agg(), np.zeros(4))
        assert observed == [0.0 + 1 + 2 + 3] * 4

    def test_default_when_absent(self):
        from repro.comm import VertexProgram

        seen = []

        class NoAgg(VertexProgram):
            def compute(self, ctx):
                seen.append(ctx.aggregated("missing", default=-1.0))
                ctx.vote_to_halt()

        PregelEngine(chain(3)).run(NoAgg(), np.zeros(3))
        assert seen == [-1.0, -1.0, -1.0]

    def test_aggregator_folds_across_ranks(self):
        from repro.comm import VertexProgram

        observed = []

        class Agg(VertexProgram):
            def compute(self, ctx):
                if ctx.superstep == 0:
                    ctx.aggregate("count", 1.0)
                    ctx.send(ctx.vertex, 0.0)
                elif ctx.superstep == 1:
                    observed.append(ctx.aggregated("count"))
                ctx.vote_to_halt()

        g = chain(6)
        owner = np.arange(6) % 3
        PregelEngine(g, owner_of=owner).run(Agg(), np.zeros(6))
        assert observed == [6.0] * 6

    def test_dangling_pagerank_mass_conserved(self):
        """The motivating use: with aggregator redistribution, Pregel
        PageRank sums to 1 even with dangling vertices."""
        from repro.algorithms.pregel_programs import pregel_pagerank
        from repro.graph import from_edge_list

        g = from_edge_list([(0, 1), (0, 2), (3, 0)], n_vertices=4)
        out = pregel_pagerank(g, rounds=40)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)
