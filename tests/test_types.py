"""Tests for shared dtypes, sentinels, and array coercions."""

import numpy as np
import pytest

from repro.types import (
    EDGE_DTYPE,
    INF,
    INVALID_EDGE,
    INVALID_VERTEX,
    VERTEX_DTYPE,
    WEIGHT_DTYPE,
    as_vertex_array,
    as_weight_array,
)


class TestConstants:
    def test_inf_is_float32_max(self):
        assert INF == float(np.finfo(np.float32).max)

    def test_inf_representable_in_weight_dtype(self):
        arr = np.array([INF], dtype=WEIGHT_DTYPE)
        assert arr[0] == INF
        assert np.isfinite(arr[0])

    def test_invalid_sentinels_negative(self):
        assert INVALID_VERTEX < 0
        assert INVALID_EDGE < 0

    def test_dtypes(self):
        assert VERTEX_DTYPE == np.int32
        assert EDGE_DTYPE == np.int64
        assert WEIGHT_DTYPE == np.float32


class TestAsVertexArray:
    def test_list_input(self):
        arr = as_vertex_array([1, 2, 3])
        assert arr.dtype == VERTEX_DTYPE
        assert arr.tolist() == [1, 2, 3]

    def test_scalar_becomes_length_one(self):
        arr = as_vertex_array(5)
        assert arr.shape == (1,)
        assert arr[0] == 5

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            as_vertex_array([[1, 2], [3, 4]])

    def test_no_copy_by_default(self):
        src = np.array([1, 2], dtype=VERTEX_DTYPE)
        out = as_vertex_array(src)
        out[0] = 99
        assert src[0] == 99  # view preserved

    def test_copy_requested(self):
        src = np.array([1, 2], dtype=VERTEX_DTYPE)
        out = as_vertex_array(src, copy=True)
        out[0] = 99
        assert src[0] == 1

    def test_dtype_conversion_copies(self):
        src = np.array([1, 2], dtype=np.int64)
        out = as_vertex_array(src)
        assert out.dtype == VERTEX_DTYPE

    def test_contiguous_output(self):
        src = np.arange(10, dtype=VERTEX_DTYPE)[::2]
        out = as_vertex_array(src)
        assert out.flags["C_CONTIGUOUS"]


class TestAsWeightArray:
    def test_float_conversion(self):
        arr = as_weight_array([1, 2, 3])
        assert arr.dtype == WEIGHT_DTYPE

    def test_scalar(self):
        assert as_weight_array(2.5).shape == (1,)

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            as_weight_array(np.ones((2, 2)))
