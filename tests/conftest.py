"""Shared fixtures: canonical small graphs, policy parametrization, and
per-test RNG pinning so any failure replays deterministically."""

from __future__ import annotations

import os
import random
import zlib

import numpy as np
import pytest

from repro.utils.rng import set_default_seed

from repro.execution import par, par_nosync, par_vector, seq
from repro.graph import from_edge_list
from repro.graph.generators import (
    erdos_renyi_gnp,
    grid_2d,
    rmat,
    watts_strogatz,
)

ALL_POLICIES = [seq, par, par_nosync, par_vector]
POLICY_IDS = [p.name for p in ALL_POLICIES]


@pytest.fixture(params=ALL_POLICIES, ids=POLICY_IDS)
def policy(request):
    """Every execution policy; tests using this assert policy-invariance."""
    return request.param


@pytest.fixture
def diamond_graph():
    """The 4-vertex weighted diamond: two paths 0→3, lengths 3 and 5.

    ::

          0
        1/ \\4
        1    2
        2\\ /1
          3
    """
    return from_edge_list(
        [(0, 1, 1.0), (0, 2, 4.0), (1, 3, 2.0), (2, 3, 1.0)],
        n_vertices=4,
        directed=True,
    )


@pytest.fixture
def triangle_graph():
    """Undirected triangle with unit weights."""
    return from_edge_list(
        [(0, 1), (1, 2), (0, 2)], n_vertices=3, directed=False
    )


@pytest.fixture
def two_component_graph():
    """Two disjoint undirected paths: {0,1,2} and {3,4}."""
    return from_edge_list(
        [(0, 1), (1, 2), (3, 4)], n_vertices=5, directed=False
    )


@pytest.fixture
def small_grid():
    """8x8 unweighted grid, undirected."""
    return grid_2d(8, 8)


@pytest.fixture
def weighted_grid():
    """10x10 grid with symmetric random weights, seed-pinned."""
    return grid_2d(10, 10, weighted=True, seed=42)


@pytest.fixture
def small_rmat():
    """Scale-8 weighted R-MAT, directed, seed-pinned."""
    return rmat(8, 8, weighted=True, seed=7)


@pytest.fixture
def small_er():
    """Sparse directed weighted G(n, p), seed-pinned."""
    return erdos_renyi_gnp(200, 0.03, weighted=True, seed=11)


@pytest.fixture
def small_ws():
    """Small-world graph with triangles, undirected, seed-pinned."""
    return watts_strogatz(150, 6, 0.1, seed=13)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _seeded_rngs(request, monkeypatch):
    """Pin every RNG entry point per-test, derived from the test's id.

    The seed is ``REPRO_TEST_SEED`` (default 0) mixed with a hash of the
    test's nodeid, so each test gets a distinct but fully reproducible
    stream through: the ``random`` module, NumPy's legacy global state,
    the library's ambient default seed (``resolve_rng(None)``), and the
    chaos harness (``REPRO_CHAOS_SEED``).  Re-running one failing test
    therefore replays the exact randomness of the full-suite run — set
    ``REPRO_TEST_SEED`` to explore other universes.
    """
    base = int(os.environ.get("REPRO_TEST_SEED", "0"))
    node_hash = zlib.crc32(request.node.nodeid.encode("utf-8"))
    seed = (base * 0x9E3779B1 + node_hash) % (2**31 - 1)
    random.seed(seed)
    np.random.seed(seed)
    set_default_seed(seed)
    monkeypatch.setenv("REPRO_CHAOS_SEED", str(seed))
    yield
    set_default_seed(None)


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """CLI invocations inside tests must not write a ledger into the
    developer's working directory; each test gets its own."""
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
