"""Deep conformance coverage for the historically undertested
algorithms — astar, mst, ktruss, kcore, scc — driven through the
matrix runner's fixtures (oracle + adversarial graph pool) so every
non-default execution policy is exercised against the same baseline the
``repro verify`` harness uses.
"""

import numpy as np
import pytest

from repro.algorithms import (
    astar,
    boruvka_mst,
    kcore_decomposition,
    ktruss_decomposition,
    sssp,
    strongly_connected_components,
)
from repro.types import INF
from repro.verify import MatrixRunner, get_spec

#: Policies beyond each algorithm's default, straight from the specs.
NON_DEFAULT_POLICIES = ["seq", "par_nosync", "par_vector"]


@pytest.fixture(scope="module")
def runner():
    """One matrix runner (pool + cached baselines) for the module."""
    return MatrixRunner(seed=0, quick=True)


def _conform_all(runner, algo, **filters):
    """Run every matching cell; return the mismatches (want: none)."""
    cells = runner.cells_for(get_spec(algo), **filters)
    assert cells, f"no {algo} cells matched {filters}"
    return [m for m in map(runner.run_cell, cells) if m is not None]


# -- policy sweeps through the oracle fixtures --------------------------------


@pytest.mark.parametrize("policy", NON_DEFAULT_POLICIES)
@pytest.mark.parametrize("algo", ["mst", "ktruss", "kcore"])
def test_non_default_policies_conform(runner, algo, policy):
    mismatches = _conform_all(runner, algo, policies=[policy])
    assert not mismatches, "\n".join(
        f"{m.cell.label()}: {m.detail} | replay: {m.repro}"
        for m in mismatches
    )


@pytest.mark.parametrize("algo", ["astar", "scc"])
def test_single_policy_algorithms_conform_on_whole_pool(runner, algo):
    mismatches = _conform_all(runner, algo)
    assert not mismatches, "\n".join(
        f"{m.cell.label()}: {m.detail} | replay: {m.repro}"
        for m in mismatches
    )


# -- cross-policy agreement on pool graphs ------------------------------------


def test_mst_total_weight_is_policy_invariant(runner):
    graph = runner.pool.graph("disconnected8")
    weights = {
        p: boruvka_mst(graph, policy=p).total_weight
        for p in ["seq", "par", "par_nosync", "par_vector"]
    }
    reference = weights.pop("seq")
    for policy, total in weights.items():
        assert total == pytest.approx(reference), policy


def test_kcore_and_ktruss_agree_across_policies(runner):
    graph = runner.pool.graph("star16")
    cores = [
        kcore_decomposition(graph, policy=p).core_numbers
        for p in ["seq", "par", "par_nosync", "par_vector"]
    ]
    for got in cores[1:]:
        assert np.array_equal(got, cores[0])
    trusses = [
        ktruss_decomposition(graph, policy=p).truss_numbers
        for p in ["seq", "par", "par_nosync", "par_vector"]
    ]
    for got in trusses[1:]:
        assert np.array_equal(np.sort(got), np.sort(trusses[0]))


# -- astar: optimality and heuristic-independence -----------------------------


def test_astar_matches_sssp_at_every_target(runner):
    graph = runner.pool.graph("chain32")
    dist = sssp(graph, 0).distances
    for target in range(graph.n_vertices):
        res = astar(graph, 0, target)
        if dist[target] >= INF:
            assert res.distance >= INF
            assert res.path == []
        else:
            assert res.distance == pytest.approx(float(dist[target]))


def test_astar_admissible_heuristic_preserves_optimality(runner):
    """Any admissible heuristic (here 0.9× the true remaining distance)
    must return the same optimal distance as the zero heuristic, while
    settling no more vertices."""
    graph = runner.pool.graph("chain32")
    target = graph.n_vertices - 1
    # True remaining distances via sssp on the reversed graph.
    coo = graph.coo()
    from repro.graph import from_edge_array

    reverse = from_edge_array(
        coo.cols.copy(),
        coo.rows.copy(),
        coo.vals.copy(),
        n_vertices=graph.n_vertices,
        directed=True,
    )
    remaining = sssp(reverse, target).distances

    def heuristic(v):
        r = float(remaining[v])
        return 0.0 if r >= INF else 0.9 * r

    plain = astar(graph, 0, target)
    guided = astar(graph, 0, target, heuristic=heuristic)
    assert guided.distance == pytest.approx(plain.distance)
    assert guided.settled <= plain.settled


# -- scc: cross-checked against an independent implementation -----------------


def test_scc_agrees_with_networkx(runner):
    networkx = pytest.importorskip("networkx")
    for name in ["chain32", "disconnected8", "multiedge4", "selfloops4"]:
        graph = runner.pool.graph(name)
        labels = strongly_connected_components(graph).labels
        coo = graph.coo()
        nxg = networkx.DiGraph()
        nxg.add_nodes_from(range(graph.n_vertices))
        nxg.add_edges_from(zip(coo.rows.tolist(), coo.cols.tolist()))
        expected = {
            v: i
            for i, comp in enumerate(
                networkx.strongly_connected_components(nxg)
            )
            for v in comp
        }
        # Same partition, up to label names.
        ours = {}
        for v in range(graph.n_vertices):
            ours.setdefault(int(labels[v]), set()).add(v)
        theirs = {}
        for v, c in expected.items():
            theirs.setdefault(c, set()).add(v)
        assert sorted(map(sorted, ours.values())) == sorted(
            map(sorted, theirs.values())
        ), name


def test_scc_condensation_is_acyclic(runner):
    graph = runner.pool.graph("multiedge4")
    labels = strongly_connected_components(graph).labels
    coo = graph.coo()
    # Cross-component edges must form a DAG: topological order exists.
    edges = {
        (int(labels[u]), int(labels[v]))
        for u, v in zip(coo.rows.tolist(), coo.cols.tolist())
        if labels[u] != labels[v]
    }
    comps = set(labels.tolist())
    indeg = {c: 0 for c in comps}
    for _, d in edges:
        indeg[d] += 1
    ready = [c for c, k in indeg.items() if k == 0]
    seen = 0
    while ready:
        c = ready.pop()
        seen += 1
        for s, d in edges:
            if s == c:
                indeg[d] -= 1
                if indeg[d] == 0:
                    ready.append(d)
    assert seen == len(comps), "condensation graph has a cycle"
