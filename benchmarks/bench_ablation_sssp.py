"""Ablation — SSSP formulation choices the abstraction admits.

DESIGN.md calls out the operator/frontier design choices SSSP can make
without changing the algorithm's text: frontier dedup on/off, output
representation, priority frontiers (delta-stepping, near-far), and the
asynchronous message-passing engine.  Each row is the same query on the
same graphs; the shape tests at the bottom pin the relationships the
ablation is expected to show.
"""

import numpy as np
import pytest

from repro.algorithms.nearfar import sssp_near_far
from repro.algorithms.sssp import sssp, sssp_delta_stepping
from repro.comm.async_pregel import async_sssp_messages
from repro.execution import par_vector


@pytest.mark.benchmark(group="ablation-sssp-grid")
class TestGridAblation:
    def test_plain_dedup_on(self, benchmark, bench_grid):
        r = benchmark(sssp, bench_grid, 0, deduplicate_frontier=True)
        assert r.stats.converged

    # NOTE: no dedup-off arm on the grid — without between-superstep
    # dedup, duplicate frontier entries compound multiplicatively across
    # the grid's ~2·side supersteps and exhaust memory.  That blowup is
    # itself a finding (recorded in EXPERIMENTS.md); the measurable
    # dedup-off arm runs on the low-diameter R-MAT below.

    def test_dense_output(self, benchmark, bench_grid):
        r = benchmark(sssp, bench_grid, 0, output_representation="dense")
        assert r.stats.converged

    def test_delta_stepping(self, benchmark, bench_grid):
        r = benchmark(sssp_delta_stepping, bench_grid, 0)
        assert r.stats.converged

    def test_near_far(self, benchmark, bench_grid):
        r = benchmark(sssp_near_far, bench_grid, 0)
        assert r.stats.converged

    def test_async_messages(self, benchmark, bench_grid):
        d, _ = benchmark(async_sssp_messages, bench_grid, 0, timeout=600)
        assert d[0] == 0.0


@pytest.mark.benchmark(group="ablation-sssp-rmat")
class TestRmatAblation:
    def test_plain_dedup_on(self, benchmark, bench_rmat_directed):
        r = benchmark(sssp, bench_rmat_directed, 0, deduplicate_frontier=True)
        assert r.stats.converged

    def test_plain_dedup_off(self, benchmark, bench_rmat_directed):
        r = benchmark(sssp, bench_rmat_directed, 0, deduplicate_frontier=False)
        assert r.stats.converged

    def test_delta_stepping(self, benchmark, bench_rmat_directed):
        r = benchmark(sssp_delta_stepping, bench_rmat_directed, 0)
        assert r.stats.converged

    def test_near_far(self, benchmark, bench_rmat_directed):
        r = benchmark(sssp_near_far, bench_rmat_directed, 0)
        assert r.stats.converged


class TestAblationShapes:
    def test_all_variants_same_answer(self, bench_grid):
        base = sssp(bench_grid, 0).distances
        for dist in (
            sssp(bench_grid, 0, output_representation="dense").distances,
            sssp_delta_stepping(bench_grid, 0).distances,
            sssp_near_far(bench_grid, 0).distances,
            async_sssp_messages(bench_grid, 0, timeout=600)[0],
        ):
            assert np.allclose(base, dist, atol=1e-2)

    def test_dedup_reduces_edge_work_on_dense_graphs(self, bench_rmat_directed):
        on = sssp(
            bench_rmat_directed, 0, deduplicate_frontier=True
        ).stats.total_edges_touched
        off = sssp(
            bench_rmat_directed, 0, deduplicate_frontier=False
        ).stats.total_edges_touched
        assert on <= off

    def test_priority_frontiers_cut_rounds_on_grid(self, bench_grid):
        plain = sssp(bench_grid, 0).stats.num_iterations
        delta = sssp_delta_stepping(bench_grid, 0).stats.num_iterations
        nf = sssp_near_far(bench_grid, 0).stats.num_iterations
        assert delta < plain
        assert nf <= plain
