"""Experiment L3 — Listing 3: neighbor-expand under every policy.

The operator's semantics are fixed; the policy selects the engine.
This bench quantifies each overload on the same frontier and graph —
in Python the vectorized bulk overload is the performance path and the
scalar-loop policies document the abstraction cost, mirroring how the
paper's ``std::for_each(par)`` version stands in for device kernels.
"""

import numpy as np
import pytest

from repro.execution import par, par_nosync, par_vector, seq
from repro.frontier import SparseFrontier
from repro.operators import neighbors_expand
from repro.operators.conditions import bulk_condition

POLICIES = [seq, par, par_nosync, par_vector]


@bulk_condition
def _weight_filter(srcs, dsts, edges, weights):
    return weights < 5.0


def _scalar_filter(s, d, e, w):
    return w < 5.0


def _frontier_for(graph, fraction=0.1):
    n = graph.n_vertices
    step = max(1, int(1 / fraction))
    return SparseFrontier.from_indices(
        np.arange(0, n, step, dtype=np.int32), n
    )


@pytest.mark.parametrize("policy", POLICIES, ids=[p.name for p in POLICIES])
@pytest.mark.benchmark(group="L3-expand-rmat")
def test_expand_rmat(benchmark, bench_rmat, policy):
    f = _frontier_for(bench_rmat)
    cond = _weight_filter if policy is par_vector else _scalar_filter

    out = benchmark(neighbors_expand, policy, bench_rmat, f, cond)
    assert out.size() > 0


@pytest.mark.parametrize("policy", POLICIES, ids=[p.name for p in POLICIES])
@pytest.mark.benchmark(group="L3-expand-grid")
def test_expand_grid(benchmark, bench_grid, policy):
    f = _frontier_for(bench_grid)
    cond = _weight_filter if policy is par_vector else _scalar_filter
    out = benchmark(neighbors_expand, policy, bench_grid, f, cond)
    assert out.size() > 0


@pytest.mark.benchmark(group="L3-expand-direction")
@pytest.mark.parametrize("direction", ["push", "pull"])
def test_expand_direction(benchmark, bench_rmat, direction):
    from repro.frontier import DenseFrontier

    n = bench_rmat.n_vertices
    f = DenseFrontier.from_indices(np.arange(0, n, 2, dtype=np.int32), n)
    bench_rmat.csc()  # pre-materialize so the bench times traversal only
    out = benchmark(
        neighbors_expand,
        par_vector,
        bench_rmat,
        f,
        _weight_filter,
        direction=direction,
    )
    assert out.size() > 0


def test_expand_semantics_identical_across_policies(bench_rmat):
    """The claim under the numbers: every overload, same output set."""
    f = _frontier_for(bench_rmat)
    outs = [
        np.sort(
            neighbors_expand(p, bench_rmat, f, _scalar_filter).to_indices()
        )
        for p in POLICIES
    ]
    for arr in outs[1:]:
        assert np.array_equal(arr, outs[0])
