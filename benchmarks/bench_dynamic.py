#!/usr/bin/env python
"""Incremental repair vs. full recompute on a mutating R-MAT graph.

The dynamic-graph value proposition in one number: after a small batch
of edge mutations, repairing yesterday's answer should beat recomputing
it from scratch.  This harness measures that ratio per algorithm at
three mutation rates (1%, 5%, 20% of the edge count, half deletions and
half insertions) on a scale-14 weighted R-MAT graph.

Timing is deliberately fair to *both* sides:

* The merged snapshot is materialized **before** either timer starts —
  overlay merge cost is a property of mutation ingestion, not of the
  recompute strategy, and both paths query the same snapshot.
* The incremental side is timed end-to-end over
  :func:`repro.dynamic.incremental_*` including invalidation, seed
  discovery, and the repair fixpoint.
* The full side runs the same algorithm, policy, and parameters on the
  same snapshot.
* Every repaired result is verified equal to the full recompute before
  its time is accepted — a fast wrong answer scores zero.

Emits a ``repro-bench-trajectory/v1`` entry (``--json BENCH_PR7.json``)
with one ``*_inc`` / ``*_full`` workload pair per (algorithm, rate),
plus the speedup stored on the ``_inc`` entry, comparable across PRs by
``benchmarks/report.py --compare`` and ``repro diff``.

The acceptance gate (skipped under ``--smoke``): BFS, SSSP, and CC each
repair >= 3x faster than full recompute at the 1% mutation rate.
PageRank's warm restart is reported but not gated — its win is bounded
by iterations saved, not by locality.

Usage::

    python benchmarks/bench_dynamic.py --smoke          # CI, scale 10
    python benchmarks/bench_dynamic.py                  # scale 14 gate
    python benchmarks/bench_dynamic.py --json BENCH_PR7.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp
from repro.dynamic import (
    DynamicGraph,
    incremental_bfs,
    incremental_cc,
    incremental_pagerank,
    incremental_sssp,
)
from repro.execution.policy import par_vector
from repro.graph import generators as gen

BENCH_SCHEMA = "repro-bench-trajectory/v1"

#: (algorithm, mutation-rate) pairs measured; rates are fractions of
#: the base edge count, split evenly between deletions and insertions.
RATES = (0.01, 0.05, 0.20)
ALGORITHMS = ("bfs", "sssp", "cc", "pagerank")

#: The acceptance bar: locality-repairing algorithms at the 1% rate.
GATED = ("bfs", "sssp", "cc")
GATE_SPEEDUP = 3.0


def mutation_plan(graph, rate: float, rng: np.random.Generator):
    """(remove_pairs, insert_triples) touching ``rate * n_edges`` arcs."""
    coo = graph.coo()
    n_mut = max(2, int(graph.n_edges * rate))
    n_remove = n_mut // 2
    n_insert = n_mut - n_remove
    # Deletions: distinct live (src, dst) pairs sampled from the edge list.
    live = {(int(s), int(d)) for s, d in zip(coo.rows, coo.cols)}
    order = rng.permutation(len(coo.rows))
    removes, seen = [], set()
    for e in order:
        pair = (int(coo.rows[e]), int(coo.cols[e]))
        if pair in seen:
            continue
        seen.add(pair)
        removes.append(pair)
        if len(removes) == n_remove:
            break
    # Insertions: fresh pairs, avoiding live edges and our own picks.
    inserts, taken = [], set()
    n = graph.n_vertices
    while len(inserts) < n_insert:
        s = int(rng.integers(0, n))
        d = int(rng.integers(0, n))
        if s == d or (s, d) in live or (s, d) in taken:
            continue
        taken.add((s, d))
        inserts.append((s, d, float(rng.uniform(1.0, 10.0))))
    return removes, inserts


def best_of(fn, trials: int) -> tuple:
    """(best_seconds, last_result) over ``trials`` runs of ``fn``."""
    best, result = float("inf"), None
    for _ in range(trials):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def check_equal(algorithm: str, repaired, full) -> None:
    if algorithm == "bfs":
        assert np.array_equal(repaired.levels, full.levels), "bfs diverged"
    elif algorithm == "sssp":
        assert np.array_equal(
            repaired.distances, full.distances
        ), "sssp diverged"
    elif algorithm == "cc":
        assert np.array_equal(repaired.labels, full.labels), "cc diverged"
    else:  # pagerank: same fixed point within solver tolerance
        assert np.allclose(
            repaired.ranks, full.ranks, atol=1e-5
        ), "pagerank diverged"


def measure(scale: int, edge_factor: int, seed: int, trials: int, log):
    """All (algorithm, rate) measurements on one base graph."""
    base = gen.rmat(scale, edge_factor, weighted=True, seed=seed)
    rng = np.random.default_rng(seed + 1)
    source = 0
    log(
        f"base: scale-{scale} R-MAT, {base.n_vertices} vertices, "
        f"{base.n_edges} edges"
    )
    meta = {"n_vertices": int(base.n_vertices), "n_edges": int(base.n_edges)}
    policy = par_vector

    cold = {
        "bfs": bfs(base, source, policy=policy),
        "sssp": sssp(base, source, policy=policy),
        "cc": connected_components(base, policy=policy),
        "pagerank": pagerank(base, policy=policy),
    }

    workloads = []
    speedups = {}
    for rate in RATES:
        removes, inserts = mutation_plan(base, rate, rng)
        dyn = DynamicGraph(base)
        batch = dyn.apply(insert=inserts, remove=removes)
        merged = dyn.graph()  # materialize: neither timer pays the merge
        tag = f"{int(rate * 100)}pct"
        log(
            f"rate {tag}: -{batch.n_removed} +{batch.n_inserted} edges, "
            f"merged {merged.n_edges} edges"
        )

        runners = {
            "bfs": (
                lambda: incremental_bfs(
                    dyn, cold["bfs"], batch=batch, policy=policy
                ),
                lambda: bfs(merged, source, policy=policy),
            ),
            "sssp": (
                lambda: incremental_sssp(
                    dyn, cold["sssp"], batch=batch, policy=policy
                ),
                lambda: sssp(merged, source, policy=policy),
            ),
            "cc": (
                lambda: incremental_cc(
                    dyn, cold["cc"], batch=batch, policy=policy
                ),
                lambda: connected_components(merged, policy=policy),
            ),
            "pagerank": (
                lambda: incremental_pagerank(
                    dyn, cold["pagerank"], policy=policy
                ),
                lambda: pagerank(merged, policy=policy),
            ),
        }
        for algorithm in ALGORITHMS:
            inc_fn, full_fn = runners[algorithm]
            full_s, full_result = best_of(full_fn, trials)
            inc_s, inc_result = best_of(inc_fn, trials)
            check_equal(algorithm, inc_result, full_result)
            speedup = full_s / inc_s if inc_s > 0 else float("inf")
            speedups[(algorithm, rate)] = speedup
            log(
                f"  {algorithm:9s} inc {inc_s * 1e3:8.2f} ms   "
                f"full {full_s * 1e3:8.2f} ms   {speedup:6.2f}x"
            )
            workloads.append(
                {
                    "name": f"dynamic_{algorithm}_inc_{tag}",
                    "algorithm": algorithm,
                    "seconds": inc_s,
                    "speedup": round(speedup, 3),
                    **meta,
                }
            )
            workloads.append(
                {
                    "name": f"dynamic_{algorithm}_full_{tag}",
                    "algorithm": algorithm,
                    "seconds": full_s,
                    **meta,
                }
            )
    return workloads, speedups


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=14)
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small graph, one trial, no speedup gate (CI)",
    )
    parser.add_argument("--json", metavar="PATH", help="write trajectory JSON")
    parser.add_argument("--label", default="BENCH_PR7")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 10)
        args.trials = 1

    def log(msg: str) -> None:
        print(f"[dynamic] {msg}")
        sys.stdout.flush()

    workloads, speedups = measure(
        args.scale, args.edge_factor, args.seed, args.trials, log
    )

    entry = {
        "schema": BENCH_SCHEMA,
        "label": args.label,
        "generated_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "workloads": workloads,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log(f"wrote {args.json}")

    if not args.smoke:
        failures = [
            f"{algorithm}: {speedups[(algorithm, 0.01)]:.2f}x < "
            f"{GATE_SPEEDUP}x"
            for algorithm in GATED
            if speedups[(algorithm, 0.01)] < GATE_SPEEDUP
        ]
        if failures:
            log("FAIL: 1% mutation-rate gate: " + "; ".join(failures))
            return 1
        log(
            "PASS: "
            + ", ".join(
                f"{a} {speedups[(a, 0.01)]:.1f}x" for a in GATED
            )
            + f" at 1% (gate {GATE_SPEEDUP}x)"
        )
    else:
        log("smoke: measurements complete (gate skipped at this scale)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
