"""Experiment P4 — Partitioning pillar: heuristic quality and cost.

Table I row 4: random partitioning and METIS.  Rows: edge cut, balance,
and communication volume for every implemented heuristic at
k ∈ {2, 4, 8, 16}, on the three workload classes, plus partitioner
runtime.

Shape expectations (EXPERIMENTS.md): on spatially structured graphs
(grid, small-world) the multilevel heuristic cuts 5-20x fewer edges
than random at comparable balance; streaming lands between; on
scale-free R-MAT everything degrades toward random (the known
power-law-partitioning wall, cf. PowerGraph's motivation).
"""

import pytest

from repro.partition import (
    edge_cut,
    fennel_partition,
    ldg_partition,
    load_balance,
    metis_like_partition,
    random_partition,
)

HEURISTICS = [
    ("random", lambda g, k: random_partition(g, k, seed=0)),
    ("ldg", lambda g, k: ldg_partition(g, k, seed=0)),
    ("fennel", lambda g, k: fennel_partition(g, k, seed=0)),
    ("metis_like", lambda g, k: metis_like_partition(g, k, seed=0)),
]
IDS = [h[0] for h in HEURISTICS]


@pytest.mark.parametrize("name,fn", HEURISTICS, ids=IDS)
@pytest.mark.benchmark(group="P4-partition-grid-k4")
def test_partition_grid(benchmark, bench_grid, name, fn):
    p = benchmark(fn, bench_grid, 4)
    assert load_balance(p) < 1.6


@pytest.mark.parametrize("name,fn", HEURISTICS, ids=IDS)
@pytest.mark.benchmark(group="P4-partition-ws-k4")
def test_partition_smallworld(benchmark, bench_ws, name, fn):
    p = benchmark(fn, bench_ws, 4)
    assert load_balance(p) < 1.6


@pytest.mark.parametrize("name,fn", HEURISTICS, ids=IDS)
@pytest.mark.benchmark(group="P4-partition-rmat-k4")
def test_partition_rmat(benchmark, bench_rmat, name, fn):
    p = benchmark(fn, bench_rmat, 4)
    assert p.n_parts == 4


class TestPartitioningShapes:
    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_metis_beats_random_on_grid(self, bench_grid, k):
        cut_rand = edge_cut(bench_grid, random_partition(bench_grid, k, seed=1))
        cut_metis = edge_cut(
            bench_grid, metis_like_partition(bench_grid, k, seed=1)
        )
        assert cut_metis < cut_rand / 4

    def test_streaming_lands_between(self, bench_ws):
        cut_rand = edge_cut(bench_ws, random_partition(bench_ws, 4, seed=2))
        cut_ldg = edge_cut(bench_ws, ldg_partition(bench_ws, 4, seed=2))
        cut_metis = edge_cut(
            bench_ws, metis_like_partition(bench_ws, 4, seed=2)
        )
        assert cut_metis < cut_ldg < cut_rand

    def test_random_cut_fraction_matches_theory(self, bench_grid):
        """Random k-way cuts ~ (k-1)/k of edges."""
        k = 4
        cut = edge_cut(bench_grid, random_partition(bench_grid, k, seed=3))
        expected = bench_grid.n_edges * (k - 1) / k
        assert abs(cut - expected) / expected < 0.1

    def test_rmat_resists_partitioning(self, bench_rmat, bench_grid):
        """Power-law graphs partition far worse than lattices: the best
        heuristic's relative cut on RMAT stays a large fraction of the
        random cut, while on the grid it is a small fraction."""

        def best_rel_cut(g):
            rand = edge_cut(g, random_partition(g, 4, seed=4))
            best = min(
                edge_cut(g, fn(g, 4)) for _, fn in HEURISTICS[1:]
            )
            return best / max(rand, 1)

        assert best_rel_cut(bench_rmat) > 3 * best_rel_cut(bench_grid)
