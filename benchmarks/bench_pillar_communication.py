"""Experiment P2 — Communication pillar: shared memory vs message passing.

§III-B: a frontier backed by shared memory exposes elements to everyone;
backed by a queue, elements travel as messages.  Rows: SSSP through (a)
shared-memory operators, (b) the Pregel engine at k ∈ {1, 2, 4, 8}
ranks with random and METIS-like placement; plus the message-combiner
ablation (fold at delivery vs raw inboxes).

Shape expectations (EXPERIMENTS.md): answers identical everywhere;
remote-message volume grows with k under random placement and drops
2-5x under METIS-like; combiners shrink delivered messages on hubs.
"""

import numpy as np
import pytest

from repro.algorithms.pregel_programs import SSSPProgram, pregel_sssp
from repro.algorithms.sssp import sssp
from repro.comm.messages import MinCombiner, collect_messages
from repro.comm.pregel import PregelEngine
from repro.partition import metis_like_partition, random_partition
from repro.types import INF


@pytest.fixture(scope="module")
def comm_graph(bench_ws):
    from repro.graph.generators import with_random_weights

    return with_random_weights(bench_ws, seed=11)


@pytest.mark.benchmark(group="P2-sssp-models")
class TestCommunicationModels:
    def test_shared_memory_operators(self, benchmark, comm_graph):
        r = benchmark(sssp, comm_graph, 0)
        assert r.stats.converged

    def test_message_passing_single_rank(self, benchmark, comm_graph):
        out = benchmark(pregel_sssp, comm_graph, 0)
        assert out[0] == 0.0

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_message_passing_partitioned(self, benchmark, comm_graph, k):
        owner = random_partition(comm_graph, k, seed=k).assignment
        out = benchmark(pregel_sssp, comm_graph, 0, owner_of=owner)
        assert out[0] == 0.0


@pytest.mark.benchmark(group="P2-combiner")
class TestCombinerAblation:
    def test_fold_with_combiner(self, benchmark):
        rng = np.random.default_rng(0)
        dsts = rng.integers(0, 1024, size=100_000).astype(np.int32)
        vals = rng.random(100_000)
        combiner = MinCombiner()
        d, v = benchmark(combiner.combine_bulk, dsts, vals)
        assert d.shape[0] <= 1024

    def test_raw_inboxes_no_combiner(self, benchmark):
        rng = np.random.default_rng(0)
        dsts = rng.integers(0, 1024, size=100_000).astype(np.int32)
        vals = rng.random(100_000)
        inbox = benchmark(collect_messages, dsts, vals)
        assert len(inbox) <= 1024


class TestCommunicationShapes:
    def test_answers_identical_across_models(self, comm_graph):
        shared = sssp(comm_graph, 0).distances
        finite = shared < INF
        for k in (1, 4):
            owner = (
                None
                if k == 1
                else random_partition(comm_graph, k, seed=1).assignment
            )
            messaged = pregel_sssp(comm_graph, 0, owner_of=owner)
            assert np.allclose(shared[finite], messaged[finite], atol=1e-3)

    def test_remote_traffic_grows_with_k_under_random(self, comm_graph):
        volumes = []
        for k in (2, 4, 8):
            owner = random_partition(comm_graph, k, seed=2).assignment
            engine = PregelEngine(comm_graph, owner_of=owner)
            engine.run(
                SSSPProgram(0), np.full(comm_graph.n_vertices, float(INF))
            )
            volumes.append(engine.stats.remote_messages)
        assert volumes[0] < volumes[-1]

    def test_metis_placement_cuts_remote_traffic(self, comm_graph):
        traffic = {}
        for name, part in (
            ("random", random_partition(comm_graph, 4, seed=3)),
            ("metis", metis_like_partition(comm_graph, 4, seed=3)),
        ):
            engine = PregelEngine(comm_graph, owner_of=part.assignment)
            engine.run(
                SSSPProgram(0), np.full(comm_graph.n_vertices, float(INF))
            )
            traffic[name] = engine.stats.remote_messages
        assert traffic["metis"] < traffic["random"] / 2
