"""Experiment A1 — the full algorithm suite throughput table.

One row per (algorithm, workload): the MTEPS-style table a graph
framework's evaluation section prints.  The suite mirrors
gunrock/essentials' algorithm set; absolute numbers are Python-bound
(DESIGN.md), the per-algorithm relative ordering across workloads is
the reproducible shape.
"""

import numpy as np
import pytest

from repro.algorithms import (
    betweenness_centrality,
    boruvka_mst,
    connected_components,
    graph_coloring,
    hits,
    kcore_decomposition,
    pagerank,
    spmv,
    sssp,
    triangle_count,
)
from repro.algorithms.bfs import bfs


@pytest.mark.benchmark(group="A1-traversal")
class TestTraversal:
    def test_bfs_rmat(self, benchmark, bench_rmat):
        r = benchmark(bfs, bench_rmat, 0, direction="auto")
        assert r.stats.converged

    def test_bfs_grid(self, benchmark, bench_grid):
        r = benchmark(bfs, bench_grid, 0, direction="auto")
        assert r.stats.converged

    def test_sssp_rmat(self, benchmark, bench_rmat):
        r = benchmark(sssp, bench_rmat, 0)
        assert r.stats.converged

    def test_sssp_grid(self, benchmark, bench_grid):
        r = benchmark(sssp, bench_grid, 0)
        assert r.stats.converged

    def test_astar_single_pair_grid(self, benchmark, bench_grid):
        import numpy as np

        from repro.algorithms import astar, grid_heuristic
        from benchmarks.conftest import GRID_SIDE

        side = GRID_SIDE
        target = side - 1
        min_w = float(bench_grid.csr().values.min())
        r = benchmark(
            astar, bench_grid, 0, target,
            heuristic=grid_heuristic(side, target, min_edge_weight=min_w),
        )
        assert r.found


@pytest.mark.benchmark(group="A1-iterative")
class TestIterative:
    def test_pagerank_rmat(self, benchmark, bench_rmat):
        r = benchmark(pagerank, bench_rmat, tolerance=1e-6)
        assert r.converged

    def test_pagerank_er(self, benchmark, bench_er):
        r = benchmark(pagerank, bench_er, tolerance=1e-6)
        assert r.converged

    def test_hits_rmat(self, benchmark, bench_rmat_directed):
        r = benchmark(hits, bench_rmat_directed)
        assert r.iterations > 0

    def test_spmv_rmat(self, benchmark, bench_rmat):
        x = np.random.default_rng(0).random(bench_rmat.n_vertices)
        y = benchmark(spmv, bench_rmat, x)
        assert y.shape[0] == bench_rmat.n_vertices


@pytest.mark.benchmark(group="A1-structure")
class TestStructure:
    def test_cc_rmat(self, benchmark, bench_rmat):
        r = benchmark(connected_components, bench_rmat)
        assert r.n_components >= 1

    def test_cc_hooking_rmat(self, benchmark, bench_rmat):
        r = benchmark(connected_components, bench_rmat, method="hooking")
        assert r.n_components >= 1

    def test_scc_rmat(self, benchmark, bench_rmat_directed):
        from repro.algorithms import strongly_connected_components

        r = benchmark(strongly_connected_components, bench_rmat_directed)
        assert r.n_components >= 1

    def test_tc_ws(self, benchmark, bench_ws):
        r = benchmark(triangle_count, bench_ws)
        assert r.total > 0

    def test_kcore_rmat(self, benchmark, bench_rmat):
        r = benchmark(kcore_decomposition, bench_rmat)
        assert r.max_core >= 1

    def test_coloring_rmat(self, benchmark, bench_rmat):
        r = benchmark(graph_coloring, bench_rmat, seed=0)
        assert r.n_colors >= 1

    def test_mst_grid(self, benchmark, bench_grid):
        r = benchmark(boruvka_mst, bench_grid)
        assert r.n_components == 1

    def test_bc_sampled_ws(self, benchmark, bench_ws):
        sources = range(0, bench_ws.n_vertices, bench_ws.n_vertices // 16)
        r = benchmark(betweenness_centrality, bench_ws, sources=sources)
        assert r.centrality.max() > 0


def test_suite_mteps_report(capsys, bench_rmat, bench_grid):
    """Print the MTEPS-style summary rows the paper-style table shows."""
    rows = []
    for name, g in (("rmat", bench_rmat), ("grid", bench_grid)):
        for alg, run in (
            ("bfs", lambda g=g: bfs(g, 0).stats),
            ("sssp", lambda g=g: sssp(g, 0).stats),
        ):
            stats = run()
            rows.append(
                (alg, name, stats.num_iterations, stats.total_edges_touched,
                 f"{stats.mteps:.2f}")
            )
    with capsys.disabled():
        print("\n\nA1 summary (algorithm, workload, supersteps, edges, MTEPS)")
        for row in rows:
            print("  " + "  ".join(str(c).ljust(10) for c in row))
    assert all(r[3] > 0 for r in rows)
