"""Experiment P3 — Execution-model pillar: push vs pull vs
direction-optimized BFS, and vertex- vs edge-centric advance.

§III-C: CSR serves push, CSC serves pull, and the frontier's active
fraction decides which wins — wide frontiers amortize the pull scan,
narrow frontiers make push's work proportional to the frontier.

Shape expectations (EXPERIMENTS.md): on scale-free graphs the
direction-optimized run matches the better fixed direction per level
and switches at the frontier bulge; on the grid (never-wide frontiers)
push wins throughout and auto stays push.
"""

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.execution import par_vector
from repro.frontier import DenseFrontier, SparseFrontier
from repro.operators import neighbors_expand
from repro.operators.advance import expand_to_edges
from repro.operators.conditions import bulk_condition

DIRECTIONS = ["push", "pull", "auto"]


@pytest.mark.parametrize("direction", DIRECTIONS)
@pytest.mark.benchmark(group="P3-bfs-rmat")
def test_bfs_rmat(benchmark, bench_rmat, direction):
    bench_rmat.csc()
    r = benchmark(bfs, bench_rmat, 0, direction=direction)
    assert r.stats.converged


@pytest.mark.parametrize("direction", DIRECTIONS)
@pytest.mark.benchmark(group="P3-bfs-grid")
def test_bfs_grid(benchmark, bench_grid, direction):
    bench_grid.csc()
    r = benchmark(bfs, bench_grid, 0, direction=direction)
    assert r.stats.converged


@bulk_condition
def _always(srcs, dsts, edges, weights):
    return np.ones(srcs.shape[0], dtype=bool)


@pytest.mark.benchmark(group="P3-advance-frontier-width")
@pytest.mark.parametrize("fraction", [0.001, 0.01, 0.1, 0.5])
def test_push_advance_by_frontier_width(benchmark, bench_rmat, fraction):
    """Push cost scales with frontier size — the narrow-frontier win."""
    n = bench_rmat.n_vertices
    step = max(1, int(1 / fraction))
    f = SparseFrontier.from_indices(np.arange(0, n, step, dtype=np.int32), n)
    out = benchmark(neighbors_expand, par_vector, bench_rmat, f, _always)
    assert out is not None


@pytest.mark.benchmark(group="P3-advance-frontier-width")
@pytest.mark.parametrize("fraction", [0.001, 0.5])
def test_pull_advance_by_frontier_width(benchmark, bench_rmat, fraction):
    """Pull cost is ~flat in frontier size (scans all candidates) —
    cheap only when the frontier is wide."""
    n = bench_rmat.n_vertices
    step = max(1, int(1 / fraction))
    f = DenseFrontier.from_indices(np.arange(0, n, step, dtype=np.int32), n)
    bench_rmat.csc()
    out = benchmark(
        neighbors_expand, par_vector, bench_rmat, f, _always, direction="pull"
    )
    assert out is not None


@pytest.mark.benchmark(group="P3-vertex-vs-edge-centric")
def test_vertex_centric_advance(benchmark, bench_rmat):
    n = bench_rmat.n_vertices
    f = SparseFrontier.from_indices(np.arange(0, n, 10, dtype=np.int32), n)
    benchmark(neighbors_expand, par_vector, bench_rmat, f, _always)


@pytest.mark.benchmark(group="P3-vertex-vs-edge-centric")
def test_edge_centric_advance(benchmark, bench_rmat):
    n = bench_rmat.n_vertices
    f = SparseFrontier.from_indices(np.arange(0, n, 10, dtype=np.int32), n)
    out = benchmark(expand_to_edges, par_vector, bench_rmat, f, _always)
    assert out.kind.value == "edge"


class TestDirectionShapes:
    def test_auto_switches_on_rmat(self, bench_rmat):
        r = bfs(bench_rmat, 0, direction="auto")
        assert "pull" in r.directions and "push" in r.directions

    def test_auto_stays_push_on_grid(self, bench_grid):
        r = bfs(bench_grid, 0, direction="auto")
        assert all(d == "push" for d in r.directions)

    def test_all_directions_same_levels(self, bench_rmat):
        levels = [
            bfs(bench_rmat, 0, direction=d).levels for d in DIRECTIONS
        ]
        assert np.array_equal(levels[0], levels[1])
        assert np.array_equal(levels[0], levels[2])
