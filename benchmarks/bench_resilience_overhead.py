"""Experiments R1/R2 — resilience overhead.

R1 (checkpointing): SSSP with superstep snapshots at intervals 1/4/8/16
versus the unprotected run.  The documented guarantee (docs/resilience.md)
is < 25% mean overhead at interval 8 on these workloads — copy-on-write
snapshots keep the cost near one array copy per interval.

R2 (retry wrapping): the retry/chaos plumbing with a *quiet* injector
(rate 0) versus the unprotected run — the price of the protective
scaffolding itself, separate from any fault handling.
"""

import pytest

from repro.algorithms.sssp import sssp
from repro.resilience import FaultInjector, ResiliencePolicy, RetryPolicy


def _policy(checkpoint_every=0, quiet_chaos=False):
    return ResiliencePolicy(
        chaos=FaultInjector.uniform(seed=0, rate=0.0) if quiet_chaos else None,
        retry=RetryPolicy(max_attempts=8, base_delay=0.0, max_delay=0.0)
        if quiet_chaos
        else None,
        checkpoint_every=checkpoint_every,
    )


@pytest.mark.benchmark(group="R1-checkpoint-overhead-rmat")
class TestCheckpointOverheadRmat:
    def test_unprotected(self, benchmark, bench_rmat_directed):
        r = benchmark(sssp, bench_rmat_directed, 0)
        assert r.stats.converged

    @pytest.mark.parametrize("interval", [1, 4, 8, 16])
    def test_checkpoint_interval(self, benchmark, bench_rmat_directed, interval):
        def run():
            return sssp(
                bench_rmat_directed, 0, resilience=_policy(interval)
            )

        r = benchmark(run)
        assert r.stats.converged


@pytest.mark.benchmark(group="R1-checkpoint-overhead-grid")
class TestCheckpointOverheadGrid:
    def test_unprotected(self, benchmark, bench_grid):
        r = benchmark(sssp, bench_grid, 0)
        assert r.stats.converged

    @pytest.mark.parametrize("interval", [1, 4, 8, 16])
    def test_checkpoint_interval(self, benchmark, bench_grid, interval):
        def run():
            return sssp(bench_grid, 0, resilience=_policy(interval))

        r = benchmark(run)
        assert r.stats.converged


@pytest.mark.benchmark(group="R2-retry-scaffolding")
class TestRetryScaffolding:
    def test_unprotected(self, benchmark, bench_rmat_directed):
        r = benchmark(sssp, bench_rmat_directed, 0)
        assert r.stats.converged

    def test_quiet_chaos_with_retry(self, benchmark, bench_rmat_directed):
        def run():
            return sssp(
                bench_rmat_directed, 0, resilience=_policy(quiet_chaos=True)
            )

        r = benchmark(run)
        assert r.stats.converged
