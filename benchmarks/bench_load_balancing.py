"""Experiment F2 — load-balancing schedules on skewed vs uniform degrees.

§IV-C: load balancing is "where the bulk of optimizations can be
introduced".  Rows: the vertex-balanced and edge-balanced chunkers on
(a) the R-MAT degree sequence (hub-skewed) and (b) the grid (uniform),
reporting schedule-construction cost here and the imbalance ratio in
the shape tests.

Shape expectations (EXPERIMENTS.md): on R-MAT the vertex-balanced
schedule leaves a chunk holding a hub with many-x the mean work while
the edge-balanced split stays near 1.0; on the grid both are ~1.0 and
the cheaper vertex split is the right default.
"""

import numpy as np
import pytest

from repro.execution import par
from repro.frontier import SparseFrontier
from repro.operators import neighbors_expand
from repro.operators.load_balance import (
    chunk_imbalance,
    edge_balanced_chunks,
    vertex_balanced_chunks,
)

N_CHUNKS = 8


@pytest.mark.benchmark(group="F2-schedule-cost")
def test_vertex_schedule_cost(benchmark, bench_rmat):
    degrees = bench_rmat.out_degrees()
    benchmark(vertex_balanced_chunks, degrees.shape[0], N_CHUNKS)


@pytest.mark.benchmark(group="F2-schedule-cost")
def test_edge_schedule_cost(benchmark, bench_rmat):
    degrees = bench_rmat.out_degrees()
    benchmark(edge_balanced_chunks, degrees, N_CHUNKS)


@pytest.mark.parametrize("mode", ["vertex", "edge"])
@pytest.mark.benchmark(group="F2-threaded-advance")
def test_threaded_advance_by_schedule(benchmark, bench_rmat, mode):
    n = bench_rmat.n_vertices
    f = SparseFrontier.from_indices(np.arange(n, dtype=np.int32), n)
    policy = par.with_load_balance(mode).with_workers(4)
    out = benchmark(
        neighbors_expand, policy, bench_rmat, f, lambda s, d, e, w: w < 5.0
    )
    assert out.size() > 0


class TestLoadBalanceShapes:
    def test_skewed_degrees_need_edge_balance(self, bench_rmat):
        degrees = bench_rmat.out_degrees()
        # Order the frontier by vertex id (natural advance order).
        imb_vertex = chunk_imbalance(
            degrees, vertex_balanced_chunks(degrees.shape[0], N_CHUNKS)
        )
        imb_edge = chunk_imbalance(
            degrees, edge_balanced_chunks(degrees, N_CHUNKS)
        )
        assert imb_edge < imb_vertex
        assert imb_edge < 1.6

    def test_uniform_degrees_already_balanced(self, bench_grid):
        degrees = bench_grid.out_degrees()
        imb_vertex = chunk_imbalance(
            degrees, vertex_balanced_chunks(degrees.shape[0], N_CHUNKS)
        )
        assert imb_vertex < 1.1

    def test_star_pathology(self):
        """One hub owning every edge: vertex balance is maximally wrong,
        edge balance gives the hub its own chunk."""
        from repro.graph.generators import star

        g = star(10_000, directed=True)
        degrees = g.out_degrees()
        imb_vertex = chunk_imbalance(
            degrees, vertex_balanced_chunks(degrees.shape[0], N_CHUNKS)
        )
        imb_edge = chunk_imbalance(
            degrees, edge_balanced_chunks(degrees, N_CHUNKS)
        )
        assert imb_vertex >= N_CHUNKS * 0.9  # one chunk has ~all the work
        assert imb_edge <= 1.01 * N_CHUNKS / 1  # hub is unsplittable...
        assert imb_edge <= imb_vertex
