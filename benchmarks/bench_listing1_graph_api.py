"""Experiment L1 — Listing 1: graph-API queries over sparse formats.

Microbenchmarks of the native-graph query surface: scalar queries
(the listing's ``get_edge_weight``), bulk vectorized queries (what the
operators actually use), and view derivation (the CSR->CSC transpose
that enables pull traversal).  The scalar-vs-bulk gap is the quantified
argument for why the Python reproduction routes the hot path through
bulk kernels (DESIGN.md substitution table).
"""

import numpy as np
import pytest


@pytest.mark.benchmark(group="L1-scalar-queries")
def test_scalar_get_edge_weight(benchmark, bench_rmat):
    csr = bench_rmat.csr()
    n_edges = bench_rmat.n_edges

    def scan_1k():
        total = 0.0
        for e in range(0, n_edges, max(1, n_edges // 1000)):
            total += csr.get_edge_weight(e)
        return total

    assert benchmark(scan_1k) > 0


@pytest.mark.benchmark(group="L1-scalar-queries")
def test_scalar_get_neighbors(benchmark, bench_rmat):
    csr = bench_rmat.csr()
    n = bench_rmat.n_vertices

    def scan():
        total = 0
        for v in range(0, n, max(1, n // 1000)):
            total += csr.get_neighbors(v).shape[0]
        return total

    benchmark(scan)


@pytest.mark.benchmark(group="L1-bulk-queries")
def test_bulk_degrees(benchmark, bench_rmat):
    csr = bench_rmat.csr()
    out = benchmark(csr.degrees)
    assert out.sum() == bench_rmat.n_edges


@pytest.mark.benchmark(group="L1-bulk-queries")
def test_bulk_expand_vertices(benchmark, bench_rmat):
    csr = bench_rmat.csr()
    vertices = np.arange(bench_rmat.n_vertices, dtype=np.int32)

    def expand():
        s, d, e, w = csr.expand_vertices(vertices)
        return s.shape[0]

    assert benchmark(expand) == bench_rmat.n_edges


@pytest.mark.benchmark(group="L1-view-derivation")
def test_transpose_csr_to_csc(benchmark, bench_rmat):
    from repro.graph.transpose import transpose_csr

    csc = benchmark(transpose_csr, bench_rmat.csr())
    assert csc.get_num_edges() == bench_rmat.n_edges


@pytest.mark.benchmark(group="L1-view-derivation")
def test_coo_to_csr_build(benchmark, bench_rmat):
    coo = bench_rmat.coo()

    def build():
        ro, ci, vals = coo.to_csr_arrays()
        return ro[-1]

    assert benchmark(build) == bench_rmat.n_edges
