"""Experiment O1 — observability overhead.

Three configurations of the same grid-SSSP workload:

* ``disabled`` — no probe installed (the null-object path every normal
  run takes; the issue bounds this at < 2% versus an uninstrumented
  build, which ``tests/test_observability.py`` verifies compositionally);
* ``metrics_only`` — an ambient ``Probe(trace=False)``: counters and
  histograms, no span buffering;
* ``full_trace`` — spans and metrics both collected.

The gap between ``disabled`` and ``metrics_only``/``full_trace`` is the
price of *turning the telemetry on* — what a profiling session costs,
not what every run pays.
"""

import pytest

from repro.algorithms.sssp import sssp
from repro.observability.probe import Probe


@pytest.mark.benchmark(group="O1-observability-overhead-grid")
class TestObservabilityOverheadGrid:
    def test_disabled(self, benchmark, bench_grid):
        r = benchmark(sssp, bench_grid, 0)
        assert r.stats.converged

    def test_metrics_only(self, benchmark, bench_grid):
        def run():
            with Probe(trace=False):
                return sssp(bench_grid, 0)

        r = benchmark(run)
        assert r.stats.converged

    def test_full_trace(self, benchmark, bench_grid):
        def run():
            with Probe():
                return sssp(bench_grid, 0)

        r = benchmark(run)
        assert r.stats.converged


@pytest.mark.benchmark(group="O1-observability-overhead-rmat")
class TestObservabilityOverheadRmat:
    def test_disabled(self, benchmark, bench_rmat_directed):
        r = benchmark(sssp, bench_rmat_directed, 0)
        assert r.stats.converged

    def test_full_trace(self, benchmark, bench_rmat_directed):
        def run():
            with Probe():
                return sssp(bench_rmat_directed, 0)

        r = benchmark(run)
        assert r.stats.converged
