"""Experiment E1 — the §V "look ahead" extensions, measured.

The paper closes by wanting "many of TLAV's design decisions under a
single framework".  These benches cover the features we implemented
beyond the paper's worked example: pull SSSP vs push, the segmented
neighborhood reduce that powers it, local (forward-push) vs global
(power-iteration) personalized PageRank, SpGEMM, batched random walks,
and LPA community detection.
"""

import numpy as np
import pytest

from repro.algorithms import (
    label_propagation_communities,
    personalized_pagerank,
    ppr_forward_push,
    random_walks,
    spgemm,
    sssp,
    sssp_pull,
)
from repro.operators import segmented_neighbor_reduce
from repro.execution import par, par_vector, seq


@pytest.mark.benchmark(group="E1-sssp-direction")
class TestPushVsPullSSSP:
    def test_push_grid(self, benchmark, bench_grid):
        r = benchmark(sssp, bench_grid, 0)
        assert r.stats.converged

    def test_pull_grid(self, benchmark, bench_grid):
        bench_grid.csc()
        r = benchmark(sssp_pull, bench_grid, 0)
        assert r.stats.converged

    def test_push_rmat(self, benchmark, bench_rmat):
        r = benchmark(sssp, bench_rmat, 0)
        assert r.stats.converged

    def test_pull_rmat(self, benchmark, bench_rmat):
        bench_rmat.csc()
        r = benchmark(sssp_pull, bench_rmat, 0)
        assert r.stats.converged


@pytest.mark.parametrize("pol", [seq, par, par_vector], ids=lambda p: p.name)
@pytest.mark.benchmark(group="E1-segmented-reduce")
def test_segmented_reduce_policies(benchmark, bench_rmat, pol):
    vals = np.random.default_rng(0).random(bench_rmat.n_vertices)
    out = benchmark(
        segmented_neighbor_reduce, pol, bench_rmat, vals, op="sum"
    )
    assert out.shape[0] == bench_rmat.n_vertices


@pytest.mark.benchmark(group="E1-ppr")
class TestPPR:
    def test_power_iteration_global(self, benchmark, bench_ws):
        r = benchmark(personalized_pagerank, bench_ws, 0, tolerance=1e-8)
        assert r.converged

    def test_forward_push_local(self, benchmark, bench_ws):
        r = benchmark(ppr_forward_push, bench_ws, 0, epsilon=1e-6)
        assert r.converged

    def test_forward_push_coarse(self, benchmark, bench_ws):
        r = benchmark(ppr_forward_push, bench_ws, 0, epsilon=1e-3)
        assert r.converged


@pytest.mark.benchmark(group="E1-spgemm")
def test_spgemm_square(benchmark, bench_ws):
    out = benchmark(spgemm, bench_ws, bench_ws)
    assert out.n_edges > 0


@pytest.mark.benchmark(group="E1-random-walks")
@pytest.mark.parametrize("n_walks", [64, 512])
def test_random_walks(benchmark, bench_rmat, n_walks):
    starts = np.arange(n_walks) % bench_rmat.n_vertices
    r = benchmark(random_walks, bench_rmat, starts, 16, seed=1)
    assert r.n_walks == n_walks


@pytest.mark.benchmark(group="E1-community")
def test_label_propagation(benchmark, bench_ws):
    r = benchmark(label_propagation_communities, bench_ws, seed=0)
    assert r.n_communities >= 1


class TestExtensionShapes:
    def test_push_beats_pull_on_narrow_frontiers(self, bench_grid):
        """Pull touches all edges each round, push only the frontier's;
        total edge work must be far lower for push on the grid."""
        push_work = sssp(bench_grid, 0).stats.total_edges_touched
        pull_work = sssp_pull(bench_grid, 0).stats.total_edges_touched
        assert push_work < pull_work / 2

    def test_coarse_push_ppr_touches_fraction_of_graph(self, bench_ws):
        r = ppr_forward_push(bench_ws, 0, epsilon=1e-3)
        touched = int(np.count_nonzero(r.ranks))
        assert touched < bench_ws.n_vertices / 2

    def test_ppr_variants_agree_at_tight_tolerance(self, bench_ws):
        power = personalized_pagerank(bench_ws, 0, tolerance=1e-12)
        push = ppr_forward_push(bench_ws, 0, epsilon=1e-10)
        assert np.allclose(power.ranks, push.ranks, atol=1e-6)

    def test_community_quality_positive(self, bench_ws):
        from repro.algorithms import modularity

        r = label_propagation_communities(bench_ws, seed=0)
        assert modularity(bench_ws, r.labels) > 0.2


@pytest.mark.benchmark(group="E1-cohesion")
class TestCohesion:
    def test_mis(self, benchmark, bench_ws):
        from repro.algorithms import maximal_independent_set

        r = benchmark(maximal_independent_set, bench_ws, seed=0)
        assert r.size > 0

    def test_ktruss(self, benchmark, bench_ws):
        from repro.algorithms import ktruss_decomposition

        r = benchmark(ktruss_decomposition, bench_ws)
        assert r.max_truss >= 2


@pytest.mark.benchmark(group="E1-schedulers")
class TestSchedulerComparison:
    """Shared-queue vs work-stealing async engines on the same SSSP."""

    @staticmethod
    def _run_with(scheduler_cls, graph, **kwargs):
        import numpy as np

        from repro.execution.atomics import AtomicArray
        from repro.types import INF, VALUE_DTYPE

        n = graph.n_vertices
        dist = np.full(n, INF, dtype=VALUE_DTYPE)
        dist[0] = 0.0
        atomic = AtomicArray(dist)
        csr = graph.csr()

        def process(v, push):
            base = atomic.load(v)
            nbrs = csr.get_neighbors(v)
            wts = csr.get_neighbor_weights(v)
            for k in range(nbrs.shape[0]):
                u = int(nbrs[k])
                nd = base + float(wts[k])
                if nd < atomic.min_at(u, nd):
                    push(u)

        scheduler_cls(4, **kwargs).run(process, [0], n, timeout=600)
        return dist

    def test_shared_queue_sssp(self, benchmark, bench_rmat):
        from repro.execution import AsyncScheduler

        dist = benchmark(self._run_with, AsyncScheduler, bench_rmat)
        assert dist[0] == 0.0

    def test_work_stealing_sssp(self, benchmark, bench_rmat):
        from repro.execution import WorkStealingScheduler

        dist = benchmark(self._run_with, WorkStealingScheduler, bench_rmat, seed=0)
        assert dist[0] == 0.0
