"""Shared benchmark fixtures: workload graphs built once per session.

Sizes are chosen so the whole harness finishes in minutes on a laptop
while still exhibiting the regime each experiment needs (skew for
load balancing, diameter for timing, density sweep for frontier
crossover).  Scale knobs are environment variables so a bigger machine
can rerun the same harness at larger scale:

    REPRO_BENCH_SCALE=12 pytest benchmarks/ --benchmark-only
"""

import os

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi_gnm, grid_2d, rmat, watts_strogatz

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "10"))
GRID_SIDE = int(os.environ.get("REPRO_BENCH_GRID", "48"))


@pytest.fixture(scope="session")
def bench_rmat():
    """Scale-free workload: degree skew stresses load balance and
    direction choice."""
    return rmat(SCALE, 16, weighted=True, seed=1, directed=False)


@pytest.fixture(scope="session")
def bench_rmat_directed():
    return rmat(SCALE, 16, weighted=True, seed=2)


@pytest.fixture(scope="session")
def bench_grid():
    """Road-like workload: high diameter, uniform degree."""
    return grid_2d(GRID_SIDE, GRID_SIDE, weighted=True, seed=3)


@pytest.fixture(scope="session")
def bench_er():
    """Uniform-degree control workload, edge count matched to the RMAT."""
    n = 1 << SCALE
    return erdos_renyi_gnm(n, n * 8, seed=4, weighted=True)


@pytest.fixture(scope="session")
def bench_ws():
    """Small-world workload with triangles (for TC and partitioning)."""
    return watts_strogatz(1 << SCALE, 8, 0.05, seed=5)


def fmt_row(*cells, widths=(26, 12, 12, 12, 12)):
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
