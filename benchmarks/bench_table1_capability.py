"""Experiment T1 — Table I reproduction.

The paper's only table is the TLAV capability matrix.  This bench
(a) prints the regenerated matrix, (b) asserts every captured model is
backed by importable code, and (c) times the registry verification so
the table shows up in benchmark output alongside everything else.
"""

from repro.capability import TABLE_I, format_table, verify_capabilities


def test_table1_prints_and_verifies(benchmark, capsys):
    failures = benchmark(verify_capabilities)
    assert failures == []
    with capsys.disabled():
        print("\n" + "=" * 100)
        print("TABLE I (regenerated from the capability registry)")
        print("=" * 100)
        print(format_table())
        total_models = sum(len(r.models_captured) for r in TABLE_I)
        total_impls = sum(len(r.implementations) for r in TABLE_I)
        print(
            f"\n{total_models} captured models across 4 pillars, backed by "
            f"{total_impls} verified implementations."
        )


def test_table1_row_count():
    assert len(TABLE_I) == 4  # exactly the paper's four pillars
