"""Experiment L2 — Listing 2: the frontier interface across
representations.

Times the three mutation/query paths of each representation at equal
workload, demonstrating the §III-B claim that the top-level interface is
uniform while costs differ by representation (sparse append vs bitmap
scatter vs locked queue).
"""

import numpy as np
import pytest

from repro.frontier import AsyncQueueFrontier, DenseFrontier, SparseFrontier

CAPACITY = 1 << 16
BATCH = np.random.default_rng(0).integers(0, CAPACITY, size=8192).astype(np.int32)

REPRS = [
    ("sparse", SparseFrontier),
    ("dense", DenseFrontier),
    ("queue", AsyncQueueFrontier),
]


@pytest.mark.parametrize("name,cls", REPRS, ids=[r[0] for r in REPRS])
@pytest.mark.benchmark(group="L2-bulk-insert")
def test_add_many(benchmark, name, cls):
    def insert():
        f = cls(CAPACITY)
        f.add_many(BATCH)
        return f.size()

    assert benchmark(insert) > 0


@pytest.mark.parametrize("name,cls", REPRS, ids=[r[0] for r in REPRS])
@pytest.mark.benchmark(group="L2-scalar-insert")
def test_scalar_add(benchmark, name, cls):
    items = BATCH[:512].tolist()

    def insert():
        f = cls(CAPACITY)
        for v in items:
            f.add(v)
        return f.size()

    assert benchmark(insert) > 0


@pytest.mark.parametrize("name,cls", REPRS, ids=[r[0] for r in REPRS])
@pytest.mark.benchmark(group="L2-read-back")
def test_to_indices(benchmark, name, cls):
    f = cls(CAPACITY)
    f.add_many(BATCH)
    out = benchmark(f.to_indices)
    assert out.shape[0] > 0


@pytest.mark.benchmark(group="L2-conversion")
def test_sparse_to_dense_conversion(benchmark):
    from repro.frontier import convert

    f = SparseFrontier.from_indices(BATCH, CAPACITY)
    out = benchmark(convert, f, "dense")
    assert out.size() == np.unique(BATCH).shape[0]
