"""Experiment F1 — fused kernels and frontier-adaptive dispatch.

Three sweeps, each across frontier densities on the grid (road-like)
and R-MAT (scale-free) workloads:

* **fused vs unfused** — the same min-relax advance through the fused
  single-pass kernel vs the generic gather → condition → scatter
  pipeline, both under ``par_vector``.  The gap is the Python glue the
  fusion removes (intermediate edge tuples, the condition protocol,
  frontier validation).
* **adaptive vs fixed direction** — ``direction="auto"`` (Beamer
  alpha/beta) against push-only and pull-only at each density, making
  the crossover the heuristic is built around a reproducible number
  rather than a magic constant.
* **workspace on vs off** — the same fused advance with and without
  pooled buffers, isolating the allocator's share of superstep cost.

Run with ``pytest benchmarks/bench_fused_kernels.py --benchmark-only``.
"""

import numpy as np
import pytest

from repro.frontier import SparseFrontier
from repro.operators import neighbors_expand
from repro.operators.conditions import bulk_condition
from repro.operators.fused import min_relax_condition
from repro.execution import par_vector
from repro.execution.atomics import bulk_min_relax
from repro.execution.workspace import Workspace
from repro.types import INF

#: Input-frontier densities swept: the fused win is largest on narrow
#: frontiers (fixed cost dominated); direction crossover lives at the
#: dense end.
DENSITIES = [0.01, 0.1, 0.5]


def _frontier_at(graph, density):
    n = graph.n_vertices
    k = max(1, int(n * density))
    rng = np.random.default_rng(17)
    ids = rng.choice(n, size=k, replace=False).astype(np.int32)
    return SparseFrontier.from_indices(np.sort(ids), n)


def _fresh_state(graph, frontier):
    """Distances seeded so every frontier vertex has work to push."""
    dist = np.full(graph.n_vertices, INF, dtype=np.float32)
    dist[frontier.indices_view()] = 0.0
    return dist


def _unfused_condition(dist):
    """The same relaxation without the fused-kernel attribute."""

    @bulk_condition
    def condition(srcs, dsts, edges, weights):
        return bulk_min_relax(dist, dsts, dist[srcs] + weights)

    return condition


def _advance(graph, frontier, condition, **kwargs):
    # State mutates monotonically; re-seeding per round would time the
    # seeding.  After the first relaxation further rounds relax nothing,
    # which is the same steady-state for every contender.
    return neighbors_expand(par_vector, graph, frontier, condition, **kwargs)


@pytest.mark.parametrize("density", DENSITIES, ids=lambda d: f"d{d}")
@pytest.mark.parametrize("fused", [True, False], ids=["fused", "unfused"])
@pytest.mark.benchmark(group="F1-fused-vs-unfused-grid")
def test_fused_vs_unfused_grid(benchmark, bench_grid, density, fused):
    f = _frontier_at(bench_grid, density)
    dist = _fresh_state(bench_grid, f)
    cond = min_relax_condition(dist) if fused else _unfused_condition(dist)
    ws = Workspace()
    benchmark(_advance, bench_grid, f, cond, workspace=ws)


@pytest.mark.parametrize("density", DENSITIES, ids=lambda d: f"d{d}")
@pytest.mark.parametrize("fused", [True, False], ids=["fused", "unfused"])
@pytest.mark.benchmark(group="F1-fused-vs-unfused-rmat")
def test_fused_vs_unfused_rmat(benchmark, bench_rmat, density, fused):
    f = _frontier_at(bench_rmat, density)
    dist = _fresh_state(bench_rmat, f)
    cond = min_relax_condition(dist) if fused else _unfused_condition(dist)
    ws = Workspace()
    benchmark(_advance, bench_rmat, f, cond, workspace=ws)


@pytest.mark.parametrize("density", DENSITIES, ids=lambda d: f"d{d}")
@pytest.mark.parametrize("direction", ["push", "pull", "auto"])
@pytest.mark.benchmark(group="F1-direction-grid")
def test_direction_sweep_grid(benchmark, bench_grid, density, direction):
    bench_grid.csc()  # pre-materialize: time traversal, not transpose
    f = _frontier_at(bench_grid, density)
    dist = _fresh_state(bench_grid, f)
    cond = min_relax_condition(dist)
    ws = Workspace()
    benchmark(_advance, bench_grid, f, cond, direction=direction, workspace=ws)


@pytest.mark.parametrize("density", DENSITIES, ids=lambda d: f"d{d}")
@pytest.mark.parametrize("direction", ["push", "pull", "auto"])
@pytest.mark.benchmark(group="F1-direction-rmat")
def test_direction_sweep_rmat(benchmark, bench_rmat, density, direction):
    bench_rmat.csc()
    f = _frontier_at(bench_rmat, density)
    dist = _fresh_state(bench_rmat, f)
    cond = min_relax_condition(dist)
    ws = Workspace()
    benchmark(_advance, bench_rmat, f, cond, direction=direction, workspace=ws)


@pytest.mark.parametrize("pooled", [True, False], ids=["workspace", "alloc"])
@pytest.mark.benchmark(group="F1-workspace")
def test_workspace_pooling(benchmark, bench_grid, pooled):
    f = _frontier_at(bench_grid, 0.01)
    dist = _fresh_state(bench_grid, f)
    cond = min_relax_condition(dist)
    ws = Workspace() if pooled else None
    benchmark(_advance, bench_grid, f, cond, workspace=ws)
    if pooled:
        assert ws.hits > 0  # the pool actually served repeat requests


def test_fused_semantics_identical(bench_grid):
    """The claim under the numbers: fused and unfused runs relax the
    same distances and emit the same output set."""
    f = _frontier_at(bench_grid, 0.1)
    dist_a = _fresh_state(bench_grid, f)
    dist_b = dist_a.copy()
    out_a = _advance(bench_grid, f, min_relax_condition(dist_a))
    out_b = _advance(bench_grid, f.copy(), _unfused_condition(dist_b))
    assert np.array_equal(dist_a, dist_b)
    assert np.array_equal(
        np.unique(out_a.to_indices()), np.unique(out_b.to_indices())
    )
