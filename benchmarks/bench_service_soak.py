#!/usr/bin/env python
"""Chaos soak for the query service (``repro serve``).

Drives a real :class:`GraphQueryServer` over TCP with a mixed client
fleet while injecting faults, and asserts the service's operational
contract instead of just timing it:

* **Deadline compliance** — every query that carried a ``timeout_s``
  is *answered* (with any code) within ``timeout_s + GRACE_S``; a 504
  that arrives late is a broken promise, not a degraded one.
* **Zero leaked threads** — after ``server.stop()`` the process is back
  to its pre-server thread count: connection threads joined, worker
  pools drained, no orphaned pollers.
* **Breaker cycle** — a hammered (graph, algorithm) pair trips its
  circuit breaker OPEN, degrades to stale/503 while open, and recovers
  to CLOSED after the cooldown probe succeeds.
* **Load shedding** — an admission-saturating burst sheds with 429
  rather than queueing without bound.
* **Crash recovery** — a ``repro serve`` subprocess SIGKILLed with a
  query in flight restarts on the same ``--data-dir``, marks the orphan
  aborted in the journal, and serves immediately.

The mixed-phase latencies become a ``repro-bench-trajectory/v1`` entry
(``--json BENCH_PR6.json``): p50/p95/p99 of successful round-trips plus
throughput, comparable across PRs by ``repro diff`` and
``benchmarks/report.py --compare``.

Usage::

    python benchmarks/bench_service_soak.py --smoke            # CI, ~15 s
    python benchmarks/bench_service_soak.py --seconds 30       # the soak
    python benchmarks/bench_service_soak.py --smoke --json BENCH_PR6.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import socket
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Answer-by grace on top of a query's own deadline (socket + superstep
#: boundary + bookkeeping).  The acceptance bound from the issue.
GRACE_S = 0.25

#: Response codes the mixed phase is allowed to see.  500 is reachable
#: when injected chaos outlives the server's retry budget and there is
#: no stale entry to degrade to — rare, legal, counted.
EXPECTED_CODES = {200, 206, 400, 404, 408, 429, 500, 503, 504}


def _bootstrap() -> None:
    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)


# -- workload mix ----------------------------------------------------------------------


def _pick_request(rng: random.Random) -> dict:
    """One request from the mixed distribution (good, tight-deadline,
    cacheable-repeat, bad-params, unknown-graph)."""
    roll = rng.random()
    if roll < 0.05:
        return {"graph": "nope", "algorithm": "bfs", "params": {}}  # 404
    if roll < 0.10:
        return {  # client mistake: 400, must not trip the breaker
            "graph": "grid",
            "algorithm": "sssp",
            "params": {"source": -1},
        }
    if roll < 0.25:
        return {  # induced timeout: tiny budget, huge pagerank -> 206/504
            "graph": "grid",
            "algorithm": "pagerank",
            "params": {"tolerance": 0.0, "max_iterations": 100000},
            "timeout_s": rng.choice([0.005, 0.02, 0.05]),
        }
    if roll < 0.40:
        return {  # cacheable repeat: identical params across the fleet
            "graph": "grid",
            "algorithm": "cc",
            "params": {},
            "timeout_s": 10.0,
        }
    algorithm = rng.choice(["bfs", "sssp", "pagerank", "ppr", "cc"])
    params: dict = {}
    if algorithm in ("bfs", "sssp", "ppr"):
        params["source"] = rng.randrange(0, 256)  # within both graphs
    return {
        "graph": rng.choice(["grid", "ring"]),
        "algorithm": algorithm,
        "params": params,
        "timeout_s": 10.0,
    }


# -- phases ----------------------------------------------------------------------------


def mixed_phase(address, seconds, clients, seed, log):
    """The client fleet: mixed queries against a live server."""
    from repro.service import ServiceClient

    stop_at = time.monotonic() + seconds
    lock = threading.Lock()
    samples = []  # (code, wall_s, timeout_s or None)
    errors = []

    def fleet(worker: int) -> None:
        rng = random.Random(seed * 1000 + worker)
        try:
            with ServiceClient(*address, timeout=60.0) as client:
                while time.monotonic() < stop_at:
                    req = _pick_request(rng)
                    t0 = time.monotonic()
                    resp = client.query(
                        req["graph"],
                        req["algorithm"],
                        req["params"],
                        timeout_s=req.get("timeout_s"),
                        tenant=f"tenant{worker % 3}",
                    )
                    wall = time.monotonic() - t0
                    with lock:
                        samples.append(
                            (resp["code"], wall, req.get("timeout_s"))
                        )
        except Exception as exc:  # noqa: BLE001 - a dead client is a finding
            with lock:
                errors.append(f"client {worker}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=fleet, args=(i,), name=f"soak-client-{i}")
        for i in range(clients)
    ]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - t0

    assert not errors, f"client fleet died: {errors}"
    assert samples, "mixed phase produced no samples"

    codes: dict = {}
    for code, _, _ in samples:
        codes[code] = codes.get(code, 0) + 1
    unexpected = set(codes) - EXPECTED_CODES
    assert not unexpected, f"unexpected response codes: {unexpected}"
    assert codes.get(200, 0) > 0, f"no successful queries at all: {codes}"

    late = [
        (code, wall, timeout)
        for code, wall, timeout in samples
        if timeout is not None and wall > timeout + GRACE_S
    ]
    assert not late, (
        f"{len(late)} responses broke the deadline+{GRACE_S}s bound "
        f"(worst: {max(w - t for _, w, t in late):.3f}s over): {late[:5]}"
    )

    ok_lat = sorted(w for c, w, _ in samples if c in (200, 206))
    log(
        f"mixed: {len(samples)} requests in {elapsed:.1f}s "
        f"({len(samples) / elapsed:.1f} qps), codes {codes}"
    )
    return {
        "requests": len(samples),
        "elapsed_s": elapsed,
        "qps": len(samples) / elapsed,
        "codes": {str(k): v for k, v in sorted(codes.items())},
        "p50_s": _percentile(ok_lat, 0.50),
        "p95_s": _percentile(ok_lat, 0.95),
        "p99_s": _percentile(ok_lat, 0.99),
    }


def breaker_phase(service, address, log):
    """Trip one breaker with induced timeouts; watch it recover."""
    from repro.service import ServiceClient
    from repro.service.breaker import CLOSED, OPEN

    threshold = service.config.breaker_threshold
    with ServiceClient(*address, timeout=60.0) as client:
        # sssp has no anytime prefix: a tiny budget is a guaranteed 504.
        for _ in range(threshold):
            resp = client.query(
                "grid", "sssp", {"source": 7}, timeout_s=1e-4
            )
            assert resp["code"] == 504, f"expected 504, got {resp}"
        breaker = service.breakers.of("grid", "sssp")
        assert breaker.state == OPEN, f"breaker not open: {breaker.stats()}"

        # While open: instant degradation, no execution.
        resp = client.query("grid", "sssp", {"source": 7}, timeout_s=5.0)
        assert resp["code"] == 503 or resp["server"].get("stale"), resp

        time.sleep(service.config.breaker_cooldown_s + 0.1)
        resp = client.query("grid", "sssp", {"source": 7}, timeout_s=10.0)
        assert resp["code"] == 200, f"probe after cooldown failed: {resp}"
        assert breaker.state == CLOSED, breaker.stats()
    log(
        f"breaker: opened after {threshold} induced timeouts, "
        f"recovered after {service.config.breaker_cooldown_s}s cooldown"
    )


def shedding_phase(service, address, log):
    """Saturate admission; the overflow must shed with 429."""
    from repro.service import ServiceClient

    burst = service.config.max_concurrent + service.config.max_queue_depth + 8
    codes = []
    lock = threading.Lock()

    def one(i: int) -> None:
        with ServiceClient(*address, timeout=60.0) as client:
            resp = client.query(
                "grid",
                "pagerank",
                {"tolerance": 0.0, "max_iterations": 2000, "damping": 0.85},
                timeout_s=10.0,
                tenant=f"burst{i}",
            )
            with lock:
                codes.append(resp["code"])

    threads = [threading.Thread(target=one, args=(i,)) for i in range(burst)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    shed = codes.count(429) + codes.count(408)
    served = codes.count(200) + codes.count(206)
    assert served > 0, f"burst starved everything: {codes}"
    assert shed > 0, (
        f"burst of {burst} against {service.config.max_concurrent} slots "
        f"shed nothing: {codes}"
    )
    log(f"shedding: burst {burst} -> {served} served, {shed} shed")


def crash_recovery_phase(log):
    """SIGKILL a serve subprocess mid-query; the restart must recover."""
    from repro.service import ServiceClient
    from repro.service.protocol import encode

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")

    def start_serve(data_dir, extra=()):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *extra,
             "--port", "0", "--data-dir", data_dir, "--no-ledger"],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        banner = proc.stdout.readline()
        match = re.search(r"on ([\d.]+):(\d+)", banner)
        assert match, f"no serve banner: {banner!r} (rc={proc.poll()})"
        return proc, (match.group(1), int(match.group(2)))

    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        data_dir = os.path.join(tmp, "svc")
        proc, (host, port) = start_serve(
            data_dir, ("--graph", "grid=grid:7")
        )
        sock = None
        try:
            # A long query, fired and abandoned: journal gets a begin.
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.sendall(encode({
                "op": "query", "graph": "grid", "algorithm": "pagerank",
                "params": {"tolerance": 0.0, "max_iterations": 10_000_000},
                "timeout_s": 120.0,
            }))
            journal = os.path.join(data_dir, "journal.jsonl")
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if os.path.exists(journal) and '"begin"' in open(journal).read():
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("query never reached the journal")
        finally:
            proc.kill()  # SIGKILL: no atexit, no journal end record
            proc.wait(timeout=30)
            if sock is not None:
                sock.close()

        # Restart on the same data dir: catalog comes back from the
        # manifest (no --graph), the orphaned query is marked aborted.
        proc, (host, port) = start_serve(data_dir)
        try:
            with ServiceClient(host, port, timeout=30.0) as client:
                stats = client.stats()
                assert stats["recovered_aborted"] >= 1, stats
                assert stats["catalog"] == ["grid"], stats
                resp = client.query("grid", "bfs", {"source": 0},
                                    timeout_s=10.0)
                assert resp["code"] == 200, resp
        finally:
            proc.terminate()
            rc = proc.wait(timeout=30)
        assert rc == 130, f"SIGTERM exit was {rc}, want 130"
        events = [json.loads(l) for l in open(journal)]
        assert any(e.get("event") == "aborted" for e in events), events
    log("crash recovery: SIGKILL mid-query -> restart aborted the "
        "orphan, restored the catalog, answered, exited 130 on TERM")


# -- entry assembly --------------------------------------------------------------------


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return float(sorted_values[idx])


def trajectory_entry(label, mixed, graph_meta) -> dict:
    """Shape the soak's latencies as a repro-bench-trajectory/v1 entry."""
    base = {
        "algorithm": "service",
        "n_vertices": graph_meta["n_vertices"],
        "n_edges": graph_meta["n_edges"],
        "trials": mixed["requests"],
        "qps": round(mixed["qps"], 3),
    }
    workloads = [
        dict(base, name="service_mixed_p50", seconds=mixed["p50_s"]),
        dict(base, name="service_mixed_p95", seconds=mixed["p95_s"]),
        dict(base, name="service_mixed_p99", seconds=mixed["p99_s"]),
        dict(
            base,
            name="service_mixed_throughput",
            seconds=1.0 / mixed["qps"] if mixed["qps"] else 0.0,
        ),
    ]
    return {
        "schema": "repro-bench-trajectory/v1",
        "label": label,
        "generated_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "workloads": workloads,
        "soak": {
            "requests": mixed["requests"],
            "elapsed_s": round(mixed["elapsed_s"], 3),
            "codes": mixed["codes"],
        },
    }


# -- main ------------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=30.0,
                        help="mixed-phase duration (default 30)")
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent client threads (default 6)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: short mixed phase, small fleet")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", help="write a trajectory entry here")
    parser.add_argument("--label", default="service_soak",
                        help="trajectory entry label")
    parser.add_argument("--observe", action="store_true",
                        help="soak with per-query tracing, latency "
                        "histograms, and the incident flight recorder on "
                        "(measures the observability layer under load)")
    parser.add_argument("--skip-subprocess", action="store_true",
                        help="skip the kill-and-restart phase")
    args = parser.parse_args(argv)
    if args.smoke:
        args.seconds = min(args.seconds, 5.0)
        args.clients = min(args.clients, 4)

    _bootstrap()
    from repro.resilience import FaultInjector, ResiliencePolicy, RetryPolicy
    from repro.service import (
        GraphCatalog,
        GraphQueryServer,
        QueryService,
        ServiceConfig,
    )

    def log(msg: str) -> None:
        print(f"[soak] {msg}")
        sys.stdout.flush()

    catalog = GraphCatalog()
    catalog.add({"name": "grid", "generator": "grid", "scale": 10, "seed": 0})
    catalog.add({"name": "ring", "generator": "ws", "scale": 8, "seed": 1})
    grid = catalog.get("grid")
    graph_meta = {
        "n_vertices": int(grid.n_vertices),
        "n_edges": int(grid.n_edges),
    }

    baseline_threads = threading.active_count()
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        service = QueryService(
            catalog,
            data_dir=os.path.join(tmp, "svc"),
            config=ServiceConfig(
                max_concurrent=4,
                max_queue_depth=4,
                breaker_threshold=5,
                breaker_cooldown_s=1.0,
                cache_ttl_s=5.0,
                record_ledger=False,
                observe=args.observe,
                incidents_dir=os.path.join(tmp, "incidents"),
            ),
        )
        # Chaos rides the server's own resilience policy: injected task
        # faults are mostly absorbed by its retries; the survivors
        # exercise the 500 / stale-while-error path.
        service._resilience = ResiliencePolicy(
            chaos=FaultInjector(seed=args.seed, task_rate=0.01),
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0),
        )
        server = GraphQueryServer(service)
        server.start()
        log(f"serving {sorted(catalog.names())} on "
            f"{server.address[0]}:{server.address[1]}")
        try:
            mixed = mixed_phase(
                server.address, args.seconds, args.clients, args.seed, log
            )
            breaker_phase(service, server.address, log)
            shedding_phase(service, server.address, log)
        finally:
            server.stop()

        settle = time.monotonic() + 5.0
        while (
            threading.active_count() > baseline_threads
            and time.monotonic() < settle
        ):
            time.sleep(0.02)
        leaked = threading.active_count() - baseline_threads
        assert leaked <= 0, f"{leaked} threads leaked after server.stop()"
        log("threads: zero leaked after stop")

        if args.observe:
            flight = service.observability.flight.stats()
            latency = service.observability.latency_summary()
            overall = latency.get("_all", {})
            log(
                f"observe: {flight['recorded']} ring events, "
                f"{flight['dumped']} incident files, traced p99 "
                f"{overall.get('p99', 0.0):.1f} ms over "
                f"{int(overall.get('count', 0))} queries"
            )

        assert service.journal is not None
        assert service.journal.in_flight() == [], "journal left orphans"

    if not args.skip_subprocess:
        crash_recovery_phase(log)

    entry = trajectory_entry(args.label, mixed, graph_meta)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log(f"wrote {args.json}")
    log(
        f"PASS: p50 {mixed['p50_s'] * 1e3:.1f} ms, "
        f"p95 {mixed['p95_s'] * 1e3:.1f} ms, "
        f"p99 {mixed['p99_s'] * 1e3:.1f} ms, "
        f"{mixed['qps']:.1f} qps"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
