"""Experiment L4 — Listing 4: complete SSSP vs textbook baselines.

Rows: the packaged SSSP per policy, delta-stepping, async, Dijkstra and
Bellman–Ford, on both the scale-free and the road-like workloads.
Shape expectations (EXPERIMENTS.md): par_vector within a small factor of
Dijkstra; BSP superstep count ~ graph diameter; delta-stepping buckets
far fewer than BSP supersteps on the grid.
"""

import numpy as np
import pytest

from repro.algorithms.sssp import sssp, sssp_delta_stepping
from repro.baselines import bellman_ford, dijkstra
from repro.execution import par_vector, seq


@pytest.mark.benchmark(group="L4-sssp-rmat")
class TestSSSPRmat:
    def test_framework_par_vector(self, benchmark, bench_rmat_directed):
        r = benchmark(sssp, bench_rmat_directed, 0, policy=par_vector)
        assert r.stats.converged

    def test_framework_delta_stepping(self, benchmark, bench_rmat_directed):
        r = benchmark(sssp_delta_stepping, bench_rmat_directed, 0)
        assert r.stats.converged

    def test_baseline_dijkstra(self, benchmark, bench_rmat_directed):
        d = benchmark(dijkstra, bench_rmat_directed, 0)
        assert d[0] == 0.0

    def test_baseline_bellman_ford(self, benchmark, bench_rmat_directed):
        d = benchmark(bellman_ford, bench_rmat_directed, 0)
        assert d[0] == 0.0


@pytest.mark.benchmark(group="L4-sssp-grid")
class TestSSSPGrid:
    def test_framework_par_vector(self, benchmark, bench_grid):
        r = benchmark(sssp, bench_grid, 0, policy=par_vector)
        assert r.stats.converged

    def test_framework_delta_stepping(self, benchmark, bench_grid):
        r = benchmark(sssp_delta_stepping, bench_grid, 0)
        assert r.stats.converged

    def test_baseline_dijkstra(self, benchmark, bench_grid):
        d = benchmark(dijkstra, bench_grid, 0)
        assert d[0] == 0.0


def test_shape_all_variants_agree(bench_grid):
    ref = dijkstra(bench_grid, 0)
    for dist in (
        sssp(bench_grid, 0, policy=par_vector).distances,
        sssp_delta_stepping(bench_grid, 0).distances,
        bellman_ford(bench_grid, 0),
    ):
        assert np.allclose(dist, ref, atol=1e-2)


def test_shape_delta_uses_fewer_rounds_than_bsp_on_grid(bench_grid):
    bsp = sssp(bench_grid, 0, policy=par_vector).stats.num_iterations
    delta = sssp_delta_stepping(bench_grid, 0).stats.num_iterations
    assert delta < bsp
