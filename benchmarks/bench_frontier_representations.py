"""Experiment F1 — frontier representation crossover vs active fraction.

§IV-B: "depending on the scheduling and communication model, these
frontier representations can be partitioned or streamed"; the practical
choice is sparse-vs-dense by active fraction.  This bench sweeps the
fraction over four decades and times the operations an advance actually
performs per superstep: build the output frontier, dedup it, and test
membership.

Shape expectations (EXPERIMENTS.md): the sparse vector wins at small
fractions (work ~ k), the bitmap wins once the fraction passes a few
percent (work ~ n but constant-factor-tiny), and the crossover sits
near the default DENSE_THRESHOLD the auto-selector uses.
"""

import numpy as np
import pytest

from repro.frontier import DenseFrontier, SparseFrontier, auto_select

CAPACITY = 1 << 17
FRACTIONS = [0.0001, 0.001, 0.01, 0.1, 0.5]


def _ids(fraction):
    rng = np.random.default_rng(17)
    k = max(1, int(CAPACITY * fraction))
    return rng.choice(CAPACITY, size=k, replace=False).astype(np.int32)


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.benchmark(group="F1-build")
def test_build_sparse(benchmark, fraction):
    ids = _ids(fraction)

    def build():
        f = SparseFrontier(CAPACITY)
        f.add_many(ids)
        return f

    benchmark(build)


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.benchmark(group="F1-build")
def test_build_dense(benchmark, fraction):
    ids = _ids(fraction)

    def build():
        f = DenseFrontier(CAPACITY)
        f.add_many(ids)
        return f

    benchmark(build)


@pytest.mark.parametrize("fraction", [0.001, 0.1])
@pytest.mark.benchmark(group="F1-dedup")
def test_dedup_sparse_sort(benchmark, fraction):
    ids = np.concatenate([_ids(fraction)] * 3)  # duplicates
    from repro.operators import uniquify

    f = SparseFrontier.from_indices(ids, CAPACITY)
    benchmark(uniquify, "seq", f, strategy="sort")


@pytest.mark.parametrize("fraction", [0.001, 0.1])
@pytest.mark.benchmark(group="F1-dedup")
def test_dedup_bitmap(benchmark, fraction):
    ids = np.concatenate([_ids(fraction)] * 3)
    from repro.operators import uniquify

    f = SparseFrontier.from_indices(ids, CAPACITY)
    benchmark(uniquify, "seq", f, strategy="bitmap")


@pytest.mark.parametrize("fraction", [0.001, 0.1])
@pytest.mark.benchmark(group="F1-membership")
def test_membership_sparse(benchmark, fraction):
    f = SparseFrontier.from_indices(_ids(fraction), CAPACITY)
    probes = list(range(0, CAPACITY, CAPACITY // 256))

    def probe_all():
        return sum(1 for p in probes if p in f)

    benchmark(probe_all)


@pytest.mark.parametrize("fraction", [0.001, 0.1])
@pytest.mark.benchmark(group="F1-membership")
def test_membership_dense(benchmark, fraction):
    f = DenseFrontier.from_indices(_ids(fraction), CAPACITY)
    probes = list(range(0, CAPACITY, CAPACITY // 256))

    def probe_all():
        return sum(1 for p in probes if p in f)

    benchmark(probe_all)


class TestFrontierShapes:
    def test_auto_select_picks_the_winner_side(self):
        tiny = SparseFrontier.from_indices(_ids(0.0001), CAPACITY)
        wide = SparseFrontier.from_indices(_ids(0.5), CAPACITY)
        assert isinstance(auto_select(tiny), SparseFrontier)
        assert isinstance(auto_select(wide), DenseFrontier)

    def test_sparse_build_scales_with_k_not_n(self):
        """Sparse frontier work is O(active), dense is O(capacity): at
        fraction 1e-4 the sparse build touches ~13 ids, the dense build
        allocates the full bitmap."""
        import time

        ids = _ids(0.0001)
        t0 = time.perf_counter()
        for _ in range(200):
            f = SparseFrontier(CAPACITY)
            f.add_many(ids)
        sparse_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(200):
            f = DenseFrontier(CAPACITY)
            f.add_many(ids)
        dense_t = time.perf_counter() - t0
        assert sparse_t < dense_t
