"""Experiment P1 — Timing pillar: bulk-synchronous vs asynchronous.

§III-A: async "allows for better workload balance" at the cost of
complexity; BSP's barriers dominate when supersteps are many and narrow.
Rows: SSSP on (a) the high-diameter grid — many narrow supersteps, the
regime where barrier count hurts BSP — and (b) the low-diameter R-MAT —
few wide supersteps, where bulk vectorization is unbeatable in Python.

Shape expectations (EXPERIMENTS.md): superstep count tracks diameter
(hundreds on the grid, a handful on R-MAT); async matches BSP answers on
both; Python's GIL keeps thread-level async from *timing* wins, so the
shape claim is iteration-structure, not wall clock (substitution note).
"""

import numpy as np
import pytest

from repro.algorithms.sssp import sssp, sssp_async, sssp_delta_stepping
from repro.execution import par_vector


@pytest.mark.benchmark(group="P1-grid-highdiameter")
class TestGridTiming:
    def test_bsp_par_vector(self, benchmark, bench_grid):
        r = benchmark(sssp, bench_grid, 0, policy=par_vector)
        assert r.stats.converged

    def test_async_queue(self, benchmark, bench_grid):
        r = benchmark(
            sssp_async, bench_grid, 0, num_workers=4, timeout=600
        )
        assert r.stats.converged

    def test_bucketed_delta(self, benchmark, bench_grid):
        r = benchmark(sssp_delta_stepping, bench_grid, 0)
        assert r.stats.converged


@pytest.mark.benchmark(group="P1-rmat-lowdiameter")
class TestRmatTiming:
    def test_bsp_par_vector(self, benchmark, bench_rmat_directed):
        r = benchmark(sssp, bench_rmat_directed, 0, policy=par_vector)
        assert r.stats.converged

    def test_async_queue(self, benchmark, bench_rmat_directed):
        r = benchmark(
            sssp_async, bench_rmat_directed, 0, num_workers=4, timeout=600
        )
        assert r.stats.converged


class TestTimingShapes:
    def test_superstep_count_tracks_diameter(self, bench_grid, bench_rmat_directed):
        grid_iters = sssp(bench_grid, 0, policy=par_vector).stats.num_iterations
        rmat_iters = sssp(
            bench_rmat_directed, 0, policy=par_vector
        ).stats.num_iterations
        # Grid diameter ~ 2*side; RMAT diameter ~ log(n).
        assert grid_iters > 10 * rmat_iters

    def test_async_and_bsp_agree(self, bench_grid):
        bsp = sssp(bench_grid, 0, policy=par_vector).distances
        asy = sssp_async(bench_grid, 0, num_workers=4, timeout=600).distances
        assert np.allclose(bsp, asy, atol=1e-3)

    def test_grid_frontiers_narrow_rmat_frontiers_wide(
        self, bench_grid, bench_rmat_directed
    ):
        grid_stats = sssp(bench_grid, 0, policy=par_vector).stats
        rmat_stats = sssp(bench_rmat_directed, 0, policy=par_vector).stats
        grid_peak = max(s.frontier_size for s in grid_stats.iterations)
        rmat_peak = max(s.frontier_size for s in rmat_stats.iterations)
        # Peak active fraction: tiny on the grid, large on RMAT.
        assert grid_peak / bench_grid.n_vertices < 0.25
        assert rmat_peak / bench_rmat_directed.n_vertices > 0.25
