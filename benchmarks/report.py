#!/usr/bin/env python
"""Render benchmark results: pytest-benchmark tables and the trajectory.

Usage:
    pytest benchmarks/ --benchmark-only --benchmark-json=results.json
    python benchmarks/report.py results.json       # per-experiment tables
    python benchmarks/report.py --json BENCH_PR2.json   # write a trajectory entry
    python benchmarks/report.py --pr8 BENCH_PR8.json [--trials N]
                                                        # par vs par_proc R-MAT sweep
    python benchmarks/report.py --pr10 BENCH_PR10.json [--trials N]
                                                        # native vs linalg backend sweep
    python benchmarks/report.py --check BENCH_PR2.json  # schema-validate one
    python benchmarks/report.py --trajectory            # render all BENCH_*.json
    python benchmarks/report.py --compare BENCH_PR3.json BENCH_PR4.json
                                                        # regression gate (exit 1)

Tables: groups map to DESIGN.md experiment ids (T1, L1-L4, P1-P4, F1-F2,
A1, ablations); within each group rows are sorted fastest-first and shown
with the slowdown relative to the group's best — the "who wins, by what
factor" shape EXPERIMENTS.md records.

Trajectory: each PR commits a ``BENCH_PRn.json`` file — a small, seeded,
probe-instrumented workload sweep — so performance across the PR stack
can be compared from the files alone.  ``--json`` produces the entry for
this checkout, ``--check`` is the CI well-formedness gate,
``--trajectory`` renders every committed entry side by side, and
``--compare`` runs the regression gate between two entries (exit 1 on
regression — what CI runs against the previous PR's entry).
"""

from __future__ import annotations

import glob
import json
import os
import sys
import time
from collections import defaultdict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BENCH_SCHEMA = "repro-bench-trajectory/v1"

GROUP_TITLES = {
    "L1": "Listing 1 — graph API over sparse formats",
    "L2": "Listing 2 — frontier representations",
    "L3": "Listing 3 — neighbor-expand policy overloads",
    "L4": "Listing 4 — complete SSSP vs baselines",
    "P1": "Pillar 1 (Timing) — BSP vs async",
    "P2": "Pillar 2 (Communication) — shared memory vs messages",
    "P3": "Pillar 3 (Execution model) — push vs pull",
    "P4": "Pillar 4 (Partitioning) — heuristic cost",
    "F1": "Frontier representation crossover",
    "F2": "Load-balancing schedules",
    "A1": "Algorithm suite",
    "R1": "Resilience — checkpoint overhead by interval",
    "R2": "Resilience — retry scaffolding cost",
    "O1": "Observability — probe overhead (disabled/metrics/trace)",
    "ablation": "Ablations",
}


def experiment_of(group: str) -> str:
    for key in GROUP_TITLES:
        if group.startswith(key):
            return key
    return "other"


def load_rows(path: str):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    rows = defaultdict(list)
    for bench in data.get("benchmarks", []):
        group = bench.get("group") or "ungrouped"
        rows[group].append((bench["name"], bench["stats"]["mean"]))
    return rows


def render(rows) -> str:
    out = []
    by_experiment = defaultdict(list)
    for group in sorted(rows):
        by_experiment[experiment_of(group)].append(group)
    for exp in GROUP_TITLES:
        groups = by_experiment.get(exp)
        if not groups:
            continue
        out.append("")
        out.append("=" * 78)
        out.append(f"{exp}: {GROUP_TITLES[exp]}")
        out.append("=" * 78)
        for group in groups:
            entries = sorted(rows[group], key=lambda r: r[1])
            best = entries[0][1]
            out.append(f"\n  [{group}]")
            out.append(
                f"  {'benchmark':<52} {'mean':>12} {'vs best':>9}"
            )
            for name, mean in entries:
                ratio = mean / best if best > 0 else float("inf")
                out.append(
                    f"  {name:<52} {mean * 1e3:>9.3f} ms {ratio:>8.2f}x"
                )
    leftovers = by_experiment.get("other", [])
    for group in leftovers:
        out.append(f"\n  [{group}] (uncategorized)")
        for name, mean in sorted(rows[group], key=lambda r: r[1]):
            out.append(f"  {name:<52} {mean * 1e3:>9.3f} ms")
    return "\n".join(out)


# -- trajectory entries (BENCH_PRn.json) -----------------------------------------------

#: The seeded workload sweep a trajectory entry records.  Small enough
#: for a CI commit check, broad enough to cover the BSP, priority,
#: asynchronous, and message-passing timing models.
TRAJECTORY_WORKLOADS = [
    {"name": "sssp_grid", "algorithm": "sssp", "scale": 12},
    {"name": "sssp_delta_grid", "algorithm": "sssp_delta", "scale": 12},
    {"name": "bfs_grid", "algorithm": "bfs", "scale": 12},
    {"name": "pagerank_grid", "algorithm": "pagerank", "scale": 10},
    {"name": "pregel_pagerank_grid", "algorithm": "pregel_pagerank", "scale": 8},
]


def _bootstrap_repro() -> None:
    """Make ``repro`` importable when run from a plain checkout."""
    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)


#: Trials per workload when collecting a trajectory entry.  MTEPS is a
#: *throughput capacity* metric; a single run of these millisecond-scale
#: workloads is dominated by scheduler noise and first-call
#: initialization on a shared machine, so each workload runs
#: ``TRAJECTORY_TRIALS`` times and the entry keeps the fastest run —
#: the least-contaminated estimate of steady state.  The kept run's
#: ``trials`` field records the count for provenance.
TRAJECTORY_TRIALS = 5


def collect_entry(label: str = "", trials: int = TRAJECTORY_TRIALS) -> dict:
    """Run the trajectory workloads under the probe; return the entry.

    Each workload is measured ``trials`` times on a fresh seeded graph
    and the fastest run is recorded (see :data:`TRAJECTORY_TRIALS`).
    """
    _bootstrap_repro()
    import numpy as np

    from repro.graph import generators as gen
    from repro.observability.profile import profile_algorithm

    workloads = []
    for spec in TRAJECTORY_WORKLOADS:
        side = int(np.sqrt(1 << spec["scale"]))
        best = None
        for _ in range(max(1, trials)):
            graph = gen.grid_2d(side, side, weighted=True, seed=0)
            report = profile_algorithm(graph, spec["algorithm"])
            entry = report.summary_metrics()
            if best is None or entry["seconds"] < best["seconds"]:
                best = entry
        best["name"] = spec["name"]
        best["scale"] = spec["scale"]
        best["trials"] = max(1, trials)
        workloads.append(best)
    entry = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workloads": workloads,
    }
    _ledger_entry(entry)
    return entry


# -- PR8: multiprocess (par_proc) vs threaded policies on R-MAT ------------------------

#: The PR8 sweep: scale-16 and scale-18 R-MAT (Graph500 parameters,
#: weighted) with each algorithm run under the threaded policies it is
#: feasible under plus ``par_proc``.  ``sssp`` omits plain ``par``: that
#: policy's scalar condition path is a Python per-edge loop, which at
#: millions of edges is not a baseline anyone would deploy — ``par_vector``
#: is the best threaded contender and the honest comparison point.
PR8_WORKLOADS = [
    {"algorithm": "bfs", "scale": 16,
     "policies": ("par", "par_vector", "par_proc")},
    {"algorithm": "sssp", "scale": 16,
     "policies": ("par_vector", "par_proc")},
    {"algorithm": "pagerank", "scale": 16,
     "policies": ("par_vector", "par_proc")},
    {"algorithm": "bfs", "scale": 18,
     "policies": ("par", "par_vector", "par_proc")},
    {"algorithm": "sssp", "scale": 18,
     "policies": ("par_vector", "par_proc")},
    {"algorithm": "pagerank", "scale": 18,
     "policies": ("par_vector", "par_proc")},
]

#: Iteration cap for the PR8 PageRank runs: throughput comparison needs a
#: fixed amount of work per policy, not convergence (which is identical
#: across policies anyway — the conformance matrix checks that).
PR8_PAGERANK_ITERATIONS = 20


def _pr8_runner(algorithm: str):
    """Runner for :func:`profile_algorithm` honoring the iteration cap."""
    if algorithm != "pagerank":
        return None

    def run(graph, source, policy, num_workers):
        from repro.algorithms import pagerank

        return pagerank(
            graph, policy=policy, max_iterations=PR8_PAGERANK_ITERATIONS
        )

    return run


def collect_pr8_entry(label: str = "", trials: int = 3) -> dict:
    """Run the PR8 par-vs-par_proc sweep; return a trajectory entry.

    Each (workload, policy) cell runs ``trials`` times on a shared
    seeded graph (one R-MAT instance per scale — generation dominates at
    scale 18 and the graph is immutable) and keeps the fastest run.
    Entries record the worker count and the machine's core count:
    ``par_proc`` is a multicore policy, and a single-core container
    (like CI) measures its IPC overhead, not its speedup — consumers
    must read ``cores`` before interpreting the ratio.
    """
    _bootstrap_repro()
    from repro.execution.proc_pool import default_proc_workers
    from repro.graph.generators import rmat
    from repro.observability.profile import profile_algorithm

    graphs = {}
    workloads = []
    for spec in PR8_WORKLOADS:
        scale = spec["scale"]
        if scale not in graphs:
            graphs[scale] = rmat(scale, 16, weighted=True, seed=0)
        graph = graphs[scale]
        runner = _pr8_runner(spec["algorithm"])
        for policy in spec["policies"]:
            best = None
            for _ in range(max(1, trials)):
                report = profile_algorithm(
                    graph,
                    spec["algorithm"],
                    policy=policy,
                    trace=False,
                    runner=runner,
                )
                entry = report.summary_metrics()
                if best is None or entry["seconds"] < best["seconds"]:
                    best = entry
            best["algorithm"] = spec["algorithm"]
            best["name"] = f"{spec['algorithm']}_rmat{scale}/{policy}"
            best["scale"] = scale
            best["policy"] = policy
            best["trials"] = max(1, trials)
            best["workers"] = default_proc_workers()
            best["cores"] = os.cpu_count() or 1
            workloads.append(best)
            print(
                f"  {best['name']:<28} {best['seconds'] * 1e3:>9.1f} ms"
                + (f"  {best['mteps']:.1f} MTEPS" if "mteps" in best else ""),
                file=sys.stderr,
            )
    entry = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cores": os.cpu_count() or 1,
        "workloads": workloads,
    }
    _ledger_entry(entry)
    return entry


# -- PR10: linear-algebra backend vs the native frontier path --------------------------

#: The PR10 sweep: bulk workloads (every vertex active every round) on a
#: scale-16 R-MAT, native ``par_vector`` vs the ``linalg`` backend.  The
#: native workload names match PR8's exactly so ``repro diff`` and
#: ``--compare`` line up against ``BENCH_PR8.json``; the ``/linalg``
#: rows are the new columns the crossover claim rests on.  Frontier
#: algorithms (BFS/SSSP) are deliberately absent: sparse frontiers are
#: the native path's home turf and docs/linalg.md covers why.
PR10_WORKLOADS = [
    {"algorithm": "pagerank", "scale": 16,
     "backends": ("native", "linalg")},
    {"algorithm": "spmv", "scale": 16,
     "backends": ("native", "linalg")},
]

#: SpMV repetitions per measured run: one scale-16 multiply is a
#: couple of milliseconds, so a single call is scheduler noise.  The
#: recorded ``seconds`` is for all repeats under both backends alike —
#: the ratio is what the entry exists to pin down.
PR10_SPMV_REPEATS = 8


def _pr10_runner(algorithm: str):
    """Runner for :func:`profile_algorithm` covering the PR10 sweep.

    Both runners accept ``backend`` so the same closure serves the
    native and linalg columns; PageRank reuses the PR8 iteration cap so
    its native row stays comparable with ``BENCH_PR8.json``.
    """
    if algorithm == "pagerank":

        def run_pagerank(graph, source, policy, num_workers, backend="native"):
            from repro.algorithms import pagerank

            return pagerank(
                graph,
                policy=policy,
                max_iterations=PR8_PAGERANK_ITERATIONS,
                backend=backend,
            )

        return run_pagerank
    if algorithm == "spmv":

        def run_spmv(graph, source, policy, num_workers, backend="native"):
            import numpy as np

            from repro.algorithms import spmv

            x = np.random.default_rng(0).random(graph.n_vertices)
            y = x
            for _ in range(PR10_SPMV_REPEATS):
                y = spmv(graph, y, policy=policy, backend=backend)
            return y

        return run_spmv
    return None


def collect_pr10_entry(label: str = "", trials: int = 3) -> dict:
    """Run the PR10 native-vs-linalg sweep; return a trajectory entry.

    Same discipline as :func:`collect_pr8_entry`: one shared seeded
    graph per scale, ``trials`` runs per cell, fastest kept.  The
    linalg cells are warmed once before timing so the one-time
    ``import scipy.sparse`` and cached-operand builds (``graph.derived``)
    don't masquerade as kernel cost.
    """
    _bootstrap_repro()
    from repro.graph.generators import rmat
    from repro.linalg.kernels import scipy_available
    from repro.observability.profile import profile_algorithm

    graphs = {}
    workloads = []
    for spec in PR10_WORKLOADS:
        scale = spec["scale"]
        if scale not in graphs:
            graphs[scale] = rmat(scale, 16, weighted=True, seed=0)
        graph = graphs[scale]
        runner = _pr10_runner(spec["algorithm"])
        for backend in spec["backends"]:
            if backend == "linalg":
                profile_algorithm(
                    graph,
                    spec["algorithm"],
                    trace=False,
                    runner=runner,
                    backend="linalg",
                )
            best = None
            for _ in range(max(1, trials)):
                report = profile_algorithm(
                    graph,
                    spec["algorithm"],
                    policy="par_vector",
                    trace=False,
                    runner=runner,
                    backend=backend,
                )
                entry = report.summary_metrics()
                if best is None or entry["seconds"] < best["seconds"]:
                    best = entry
            suffix = "par_vector" if backend == "native" else backend
            best["algorithm"] = spec["algorithm"]
            best["name"] = f"{spec['algorithm']}_rmat{scale}/{suffix}"
            best["scale"] = scale
            best["backend"] = backend
            best["trials"] = max(1, trials)
            best["cores"] = os.cpu_count() or 1
            if backend == "linalg":
                best["scipy"] = scipy_available()
            workloads.append(best)
            print(
                f"  {best['name']:<28} {best['seconds'] * 1e3:>9.1f} ms",
                file=sys.stderr,
            )
    entry = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cores": os.cpu_count() or 1,
        "workloads": workloads,
    }
    _ledger_entry(entry)
    return entry


def _ledger_entry(entry: dict) -> None:
    """Best-effort run-ledger record of a trajectory collection.

    Stores the workload sweep under ``metrics.workloads`` — the shape
    ``repro diff`` compares directly against another benchmark record or
    a committed ``BENCH_*.json``.
    """
    from repro.observability import ledger as ledger_mod

    if not ledger_mod.ledger_enabled():
        return
    record = ledger_mod.make_record(
        kind="benchmark",
        algorithm="trajectory",
        label=entry.get("label", ""),
        metrics={"workloads": entry["workloads"]},
    )
    try:
        run_id = ledger_mod.RunLedger().append(record)
    except OSError:
        return
    print(f"ledger: {run_id}", file=sys.stderr)


def check_entry(entry) -> list:
    """Well-formedness problems of one trajectory entry (empty = valid)."""
    problems = []
    if not isinstance(entry, dict):
        return [f"entry must be an object, got {type(entry).__name__}"]
    if entry.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema {entry.get('schema')!r} != {BENCH_SCHEMA!r}"
        )
    workloads = entry.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        return problems + ["workloads must be a non-empty list"]
    for i, w in enumerate(workloads):
        where = f"workloads[{i}]"
        if not isinstance(w, dict):
            problems.append(f"{where} is not an object")
            continue
        for key in ("name", "algorithm", "seconds", "n_vertices", "n_edges"):
            if key not in w:
                problems.append(f"{where} missing {key!r}")
        seconds = w.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            problems.append(f"{where} seconds must be a non-negative number")
    return problems


def trajectory_files() -> list:
    """Committed BENCH_*.json entries, repo root then benchmarks/."""
    found = []
    for base in (REPO_ROOT, os.path.join(REPO_ROOT, "benchmarks")):
        found.extend(sorted(glob.glob(os.path.join(base, "BENCH_*.json"))))
    return found


def render_trajectory(paths) -> str:
    """Side-by-side seconds per workload across all trajectory entries."""
    entries = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            entries.append((os.path.basename(path), json.load(fh)))
    if not entries:
        return "no BENCH_*.json trajectory entries found"
    names = []
    for _, entry in entries:
        for w in entry.get("workloads", []):
            if w.get("name") not in names:
                names.append(w.get("name"))
    out = [
        f"{'workload':<24} " + " ".join(f"{label:>18}" for label, _ in entries)
    ]
    out.append("-" * (25 + 19 * len(entries)))
    for name in names:
        cells = []
        for _, entry in entries:
            match = next(
                (w for w in entry.get("workloads", []) if w.get("name") == name),
                None,
            )
            cells.append(
                f"{match['seconds'] * 1e3:>15.1f} ms" if match else f"{'—':>18}"
            )
        out.append(f"{name:<24} " + " ".join(cells))
    return "\n".join(out)


def main(argv=None) -> int:
    argv = list(argv if argv is not None else sys.argv[1:])
    if argv and argv[0] == "--json":
        if len(argv) != 2:
            print("usage: report.py --json OUT.json", file=sys.stderr)
            return 2
        entry = collect_entry(
            label=os.path.splitext(os.path.basename(argv[1]))[0]
        )
        with open(argv[1], "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {argv[1]} ({len(entry['workloads'])} workloads)")
        return 0
    if argv and argv[0] == "--pr8":
        trials = 3
        if "--trials" in argv:
            i = argv.index("--trials")
            try:
                trials = int(argv[i + 1])
            except (IndexError, ValueError):
                print("--trials requires an integer", file=sys.stderr)
                return 2
            del argv[i : i + 2]
        if len(argv) != 2:
            print(
                "usage: report.py --pr8 OUT.json [--trials N]", file=sys.stderr
            )
            return 2
        entry = collect_pr8_entry(
            label=os.path.splitext(os.path.basename(argv[1]))[0],
            trials=trials,
        )
        with open(argv[1], "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {argv[1]} ({len(entry['workloads'])} workloads)")
        return 0
    if argv and argv[0] == "--pr10":
        trials = 3
        if "--trials" in argv:
            i = argv.index("--trials")
            try:
                trials = int(argv[i + 1])
            except (IndexError, ValueError):
                print("--trials requires an integer", file=sys.stderr)
                return 2
            del argv[i : i + 2]
        if len(argv) != 2:
            print(
                "usage: report.py --pr10 OUT.json [--trials N]", file=sys.stderr
            )
            return 2
        entry = collect_pr10_entry(
            label=os.path.splitext(os.path.basename(argv[1]))[0],
            trials=trials,
        )
        with open(argv[1], "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {argv[1]} ({len(entry['workloads'])} workloads)")
        return 0
    if argv and argv[0] == "--check":
        if len(argv) != 2:
            print("usage: report.py --check BENCH_PRn.json", file=sys.stderr)
            return 2
        try:
            with open(argv[1], "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{argv[1]}: unreadable ({exc})", file=sys.stderr)
            return 1
        problems = check_entry(entry)
        for p in problems:
            print(f"{argv[1]}: {p}", file=sys.stderr)
        if not problems:
            print(f"{argv[1]}: ok")
        return 1 if problems else 0
    if argv and argv[0] == "--trajectory":
        print(render_trajectory(trajectory_files()))
        return 0
    if argv and argv[0] == "--compare":
        threshold = None
        if "--threshold" in argv:
            i = argv.index("--threshold")
            try:
                threshold = float(argv[i + 1])
            except (IndexError, ValueError):
                print("--threshold requires a number", file=sys.stderr)
                return 2
            del argv[i : i + 2]
        if len(argv) != 3:
            print(
                "usage: report.py --compare BASELINE.json CANDIDATE.json "
                "[--threshold X]",
                file=sys.stderr,
            )
            return 2
        _bootstrap_repro()
        from repro.observability.regression import (
            DEFAULT_THRESHOLD,
            compare,
            load_comparable,
        )

        try:
            baseline = load_comparable(argv[1])
            candidate = load_comparable(argv[2])
            report = compare(
                baseline,
                candidate,
                threshold=threshold if threshold is not None else DEFAULT_THRESHOLD,
                baseline_label=os.path.basename(argv[1]),
                candidate_label=os.path.basename(argv[2]),
            )
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"--compare: {exc}", file=sys.stderr)
            return 2
        print(report.render())
        return report.exit_code()
    if len(argv) != 1:
        print(__doc__)
        return 2
    print(render(load_rows(argv[0])))
    return 0


if __name__ == "__main__":
    sys.exit(main())
