#!/usr/bin/env python
"""Render a pytest-benchmark JSON export as per-experiment tables.

Usage:
    pytest benchmarks/ --benchmark-only --benchmark-json=results.json
    python benchmarks/report.py results.json

Groups map to DESIGN.md experiment ids (T1, L1-L4, P1-P4, F1-F2, A1,
ablations); within each group rows are sorted fastest-first and shown
with the slowdown relative to the group's best — the "who wins, by what
factor" shape EXPERIMENTS.md records.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict

GROUP_TITLES = {
    "L1": "Listing 1 — graph API over sparse formats",
    "L2": "Listing 2 — frontier representations",
    "L3": "Listing 3 — neighbor-expand policy overloads",
    "L4": "Listing 4 — complete SSSP vs baselines",
    "P1": "Pillar 1 (Timing) — BSP vs async",
    "P2": "Pillar 2 (Communication) — shared memory vs messages",
    "P3": "Pillar 3 (Execution model) — push vs pull",
    "P4": "Pillar 4 (Partitioning) — heuristic cost",
    "F1": "Frontier representation crossover",
    "F2": "Load-balancing schedules",
    "A1": "Algorithm suite",
    "R1": "Resilience — checkpoint overhead by interval",
    "R2": "Resilience — retry scaffolding cost",
    "ablation": "Ablations",
}


def experiment_of(group: str) -> str:
    for key in GROUP_TITLES:
        if group.startswith(key):
            return key
    return "other"


def load_rows(path: str):
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    rows = defaultdict(list)
    for bench in data.get("benchmarks", []):
        group = bench.get("group") or "ungrouped"
        rows[group].append((bench["name"], bench["stats"]["mean"]))
    return rows


def render(rows) -> str:
    out = []
    by_experiment = defaultdict(list)
    for group in sorted(rows):
        by_experiment[experiment_of(group)].append(group)
    for exp in GROUP_TITLES:
        groups = by_experiment.get(exp)
        if not groups:
            continue
        out.append("")
        out.append("=" * 78)
        out.append(f"{exp}: {GROUP_TITLES[exp]}")
        out.append("=" * 78)
        for group in groups:
            entries = sorted(rows[group], key=lambda r: r[1])
            best = entries[0][1]
            out.append(f"\n  [{group}]")
            out.append(
                f"  {'benchmark':<52} {'mean':>12} {'vs best':>9}"
            )
            for name, mean in entries:
                ratio = mean / best if best > 0 else float("inf")
                out.append(
                    f"  {name:<52} {mean * 1e3:>9.3f} ms {ratio:>8.2f}x"
                )
    leftovers = by_experiment.get("other", [])
    for group in leftovers:
        out.append(f"\n  [{group}] (uncategorized)")
        for name, mean in sorted(rows[group], key=lambda r: r[1]):
            out.append(f"  {name:<52} {mean * 1e3:>9.3f} ms")
    return "\n".join(out)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print(__doc__)
        return 2
    print(render(load_rows(argv[0])))
    return 0


if __name__ == "__main__":
    sys.exit(main())
