#!/usr/bin/env python
"""Quickstart: the paper's Listing 4 in a dozen lines of Python.

Builds a small weighted graph, runs single-source shortest paths through
the native-graph abstraction under the vectorized bulk-synchronous
policy, and prints the per-superstep frontier profile the enactor
recorded.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import from_edge_list, par_vector, sssp


def main() -> None:
    # The diamond graph from the test suite: two paths 0 -> 3.
    graph = from_edge_list(
        [
            (0, 1, 1.0),
            (0, 2, 4.0),
            (1, 3, 2.0),
            (2, 3, 1.0),
        ],
        n_vertices=4,
        directed=True,
    )
    print(f"graph: {graph}")

    # Listing 4: dist = inf, dist[source] = 0, expand until the frontier
    # empties.  One call; the policy picks the execution engine.
    result = sssp(graph, source=0, policy=par_vector)

    print(f"distances from 0: {result.distances.tolist()}")
    print(f"reached: {result.reached().tolist()}")
    print(f"supersteps: {result.stats.num_iterations}")
    print(f"frontier profile: {result.stats.frontier_profile()}")

    assert np.allclose(result.distances, [0.0, 1.0, 4.0, 3.0])
    print("shortest path 0 -> 3 goes through 1 (cost 3), not 2 (cost 5). OK")


if __name__ == "__main__":
    main()
