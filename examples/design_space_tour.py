#!/usr/bin/env python
"""A guided tour of all four TLAV pillars through one BFS query.

For each pillar the tour runs the same traversal with the pillar's knob
flipped and prints what changed — the executable version of the paper's
Table I.  Ends by printing the capability matrix itself.

Run:  python examples/design_space_tour.py
"""

import time

import numpy as np

from repro.algorithms import bfs, sssp, sssp_async
from repro.algorithms.pregel_programs import pregel_sssp
from repro.capability import format_table, verify_capabilities
from repro.execution import par, par_nosync, par_vector, seq
from repro.frontier import DenseFrontier, SparseFrontier, convert
from repro.graph.generators import rmat, with_random_weights
from repro.types import INF


def main() -> None:
    graph = with_random_weights(rmat(11, 12, seed=9, directed=False), seed=9)
    print(f"workload: {graph}\n")
    reference = sssp(graph, 0).distances
    finite = reference < INF

    print("=" * 72)
    print("Pillar 1 — TIMING: execution policies select the engine")
    print("=" * 72)
    for policy in (seq, par, par_vector):
        t0 = time.perf_counter()
        r = sssp(graph, 0, policy=policy)
        assert np.allclose(r.distances[finite], reference[finite], atol=1e-3)
        print(
            f"  {policy.name:<12} {time.perf_counter() - t0:7.3f}s  "
            f"{r.stats.num_iterations} barriered supersteps"
        )
    t0 = time.perf_counter()
    r = sssp_async(graph, 0, num_workers=4, timeout=300)
    assert np.allclose(r.distances[finite], reference[finite], atol=1e-3)
    print(
        f"  {'async':<12} {time.perf_counter() - t0:7.3f}s  "
        f"no supersteps at all (quiescence detection)"
    )

    print()
    print("=" * 72)
    print("Pillar 2 — COMMUNICATION: same frontier, three representations")
    print("=" * 72)
    f = SparseFrontier.from_indices(range(0, graph.n_vertices, 3), graph.n_vertices)
    dense = convert(f, "dense")
    queue = convert(f, "queue")
    print(f"  sparse vector : {f.size()} ids, duplicates allowed")
    print(f"  dense bitmap  : {dense.size()} bits set (shared memory)")
    print(f"  async queue   : {queue.size()} queued messages")
    messaged = pregel_sssp(graph, 0)
    assert np.allclose(messaged[finite], reference[finite], atol=1e-3)
    print("  pregel (message passing only) reproduces the SSSP answer")

    print()
    print("=" * 72)
    print("Pillar 3 — EXECUTION MODEL: push vs pull vs direction-optimized")
    print("=" * 72)
    for direction in ("push", "pull", "auto"):
        t0 = time.perf_counter()
        r = bfs(graph, 0, direction=direction)
        extra = f" switches: {r.directions}" if direction == "auto" else ""
        print(
            f"  {direction:<5} {time.perf_counter() - t0:7.3f}s  "
            f"levels max {r.levels.max()}{extra}"
        )

    print()
    print("=" * 72)
    print("Pillar 4 — PARTITIONING: edge cut by heuristic (4 parts)")
    print("=" * 72)
    from repro.partition import (
        edge_cut,
        load_balance,
        metis_like_partition,
        random_partition,
        ldg_partition,
    )

    for name, fn in (
        ("random", lambda: random_partition(graph, 4, seed=0)),
        ("ldg (stream)", lambda: ldg_partition(graph, 4, seed=0)),
        ("metis-like", lambda: metis_like_partition(graph, 4, seed=0)),
    ):
        p = fn()
        print(
            f"  {name:<13} cut {edge_cut(graph, p):>7}   "
            f"balance {load_balance(p):.3f}"
        )

    print()
    print("=" * 72)
    print("Table I — capability matrix (generated from the registry)")
    print("=" * 72)
    print(format_table())
    failures = verify_capabilities()
    print(
        f"\nregistry-backed implementations verified: "
        f"{'all OK' if not failures else failures}"
    )


if __name__ == "__main__":
    main()
