#!/usr/bin/env python
"""Vertex programs over simulated message passing (the Pregel corner).

The same SSSP answered two ways:

1. shared-memory BSP operators (Listing 4), and
2. a "think like a vertex" program whose only communication is messages
   routed between partition ranks through the mailbox substrate —

then the partition count is swept to show what changes (message traffic)
and what must not (the answer).  Finally the partitioner quality shows
up as remote-traffic reduction: METIS-like placement cuts cross-rank
messages vs random placement.

Run:  python examples/pregel_vertex_programs.py
"""

import numpy as np

from repro.algorithms import sssp
from repro.algorithms.pregel_programs import SSSPProgram
from repro.comm.pregel import PregelEngine
from repro.graph.generators import watts_strogatz, with_random_weights
from repro.partition import metis_like_partition, random_partition
from repro.types import INF


def run_partitioned(graph, n_ranks, partitioner, seed=0):
    if n_ranks == 1:
        owner = np.zeros(graph.n_vertices, dtype=np.int64)
    else:
        owner = partitioner(graph, n_ranks, seed=seed).assignment
    engine = PregelEngine(graph, owner_of=owner)
    distances = engine.run(
        SSSPProgram(0), np.full(graph.n_vertices, float(INF))
    )
    return distances, engine.stats


def main() -> None:
    graph = with_random_weights(
        watts_strogatz(400, 6, 0.05, seed=5), seed=6
    )
    print(f"graph: {graph}\n")

    shared = sssp(graph, 0).distances
    print("shared-memory BSP SSSP done "
          f"(reaches {int((shared < INF).sum())} vertices)")

    print(f"\n{'ranks':>5} {'partitioner':<12} {'supersteps':>10} "
          f"{'remote msgs':>11} {'local msgs':>10} {'match':>6}")
    for n_ranks in (1, 2, 4, 8):
        for name, partitioner in (
            ("random", random_partition),
            ("metis-like", metis_like_partition),
        ):
            if n_ranks == 1 and name == "metis-like":
                continue
            distances, stats = run_partitioned(graph, n_ranks, partitioner)
            finite = shared < INF
            match = np.allclose(distances[finite], shared[finite], atol=1e-3)
            print(
                f"{n_ranks:>5} {name:<12} {stats.supersteps:>10} "
                f"{stats.remote_messages:>11} {stats.local_messages:>10} "
                f"{'yes' if match else 'NO'}"
            )
            assert match

    print(
        "\nSame distances at every rank count — the communication model is "
        "a configuration choice, not an algorithm change (§III-B).  And "
        "metis-like placement sends far fewer remote messages than random: "
        "the partitioning pillar's payoff."
    )


if __name__ == "__main__":
    main()
