#!/usr/bin/env python
"""Road-network routing: SSSP design-space tour on a high-diameter graph.

Road networks (here: a weighted 2-D lattice, the standard synthetic
stand-in) are the worst case for bulk-synchronous traversal — thousands
of narrow supersteps.  This example runs the same SSSP query through
every timing model the framework provides and reports iteration counts
and timings:

* BSP with each execution policy (Listing 4's loop),
* delta-stepping (bucketed priority frontiers),
* fully asynchronous (Atos-style task queue),
* Dijkstra / Bellman–Ford textbook baselines.

Run:  python examples/road_network_routing.py [side]
"""

import sys
import time

import numpy as np

from repro import par, par_vector, seq, sssp, sssp_async, sssp_delta_stepping
from repro.baselines import bellman_ford, dijkstra
from repro.graph.generators import grid_2d


def timed(label, fn):
    t0 = time.perf_counter()
    out = fn()
    dt = time.perf_counter() - t0
    return label, out, dt


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    graph = grid_2d(side, side, weighted=True, seed=7)
    source = 0
    target = graph.n_vertices - 1  # opposite corner
    print(
        f"road-like lattice: {side}x{side} = {graph.n_vertices} vertices, "
        f"{graph.n_edges} edges, diameter ~{2 * side}"
    )

    reference = dijkstra(graph, source)
    print(f"Dijkstra distance corner->corner: {reference[target]:.2f}\n")

    rows = [
        timed("sssp bsp/seq", lambda: sssp(graph, source, policy=seq)),
        timed("sssp bsp/par", lambda: sssp(graph, source, policy=par)),
        timed("sssp bsp/par_vector", lambda: sssp(graph, source, policy=par_vector)),
        timed("sssp delta-stepping", lambda: sssp_delta_stepping(graph, source)),
        timed(
            "sssp async (4 workers)",
            lambda: sssp_async(graph, source, num_workers=4, timeout=300),
        ),
    ]

    print(f"{'variant':<24} {'sec':>8} {'supersteps':>11} {'corner dist':>12}")
    for label, result, dt in rows:
        iters = result.stats.num_iterations
        d = result.distances[target]
        assert np.isclose(d, reference[target], atol=1e-2), label
        print(f"{label:<24} {dt:>8.3f} {iters:>11} {d:>12.2f}")

    for label, fn in (
        ("dijkstra (baseline)", lambda: dijkstra(graph, source)),
        ("bellman-ford (baseline)", lambda: bellman_ford(graph, source)),
    ):
        label, out, dt = timed(label, fn)
        print(f"{label:<24} {dt:>8.3f} {'-':>11} {out[target]:>12.2f}")

    # Single-pair routing: A* with the grid's Manhattan bound settles a
    # corridor instead of the whole Dijkstra ball.
    from repro.algorithms import astar, grid_heuristic

    min_w = float(graph.csr().values.min())
    near_target = side - 1  # far end of the source's row
    plain = astar(graph, source, near_target)
    guided = astar(
        graph,
        source,
        near_target,
        heuristic=grid_heuristic(side, near_target, min_edge_weight=min_w),
    )
    print(
        f"\nsingle-pair 0 -> {near_target}: dijkstra settles "
        f"{plain.settled} vertices, A* settles {guided.settled} "
        f"(same distance {guided.distance:.2f})"
    )

    print(
        "\nNote the superstep count: ~2x the lattice side for BSP, and far "
        "fewer buckets for delta-stepping — the iteration-structure story "
        "the timing pillar tells (DESIGN.md exp P1)."
    )


if __name__ == "__main__":
    main()
