#!/usr/bin/env python
"""Social-network analysis: the full algorithm suite on a scale-free graph.

R-MAT graphs share the degree skew of social networks; this example runs
the influence/structure questions an analyst actually asks — who matters
(PageRank, betweenness, HITS), what communities look like (connected
components, k-core shells, triangles/clustering), and how the graph
colors (a scheduling proxy) — all through the one abstraction.

Run:  python examples/social_network_analysis.py [scale]
"""

import sys
import time

import numpy as np

from repro.algorithms import (
    betweenness_centrality,
    connected_components,
    graph_coloring,
    hits,
    kcore_decomposition,
    pagerank,
    triangle_count,
)
from repro.algorithms.bfs import bfs
from repro.graph.generators import rmat


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    graph = rmat(scale, 16, seed=42, directed=False)
    n = graph.n_vertices
    degrees = graph.out_degrees()
    print(
        f"R-MAT scale {scale}: {n} vertices, {graph.n_edges} edges, "
        f"max degree {degrees.max()} (mean {degrees.mean():.1f}) — "
        f"hub-dominated, like a social graph\n"
    )

    t0 = time.perf_counter()
    cc = connected_components(graph)
    print(
        f"components: {cc.n_components} "
        f"(largest {cc.component_sizes().max()} vertices) "
        f"[{time.perf_counter() - t0:.3f}s]"
    )

    giant = int(np.argmax(degrees))
    t0 = time.perf_counter()
    hops = bfs(graph, giant, direction="auto")
    reached = hops.reached().sum()
    print(
        f"bfs from top hub {giant}: reaches {reached} vertices in "
        f"{hops.levels.max()} hops, directions={hops.directions} "
        f"[{time.perf_counter() - t0:.3f}s]"
    )

    t0 = time.perf_counter()
    pr = pagerank(graph, tolerance=1e-8)
    top_pr = np.argsort(-pr.ranks)[:5]
    print(
        f"pagerank ({pr.iterations} iters): top-5 {top_pr.tolist()} "
        f"[{time.perf_counter() - t0:.3f}s]"
    )

    t0 = time.perf_counter()
    sample = range(0, n, max(1, n // 64))  # sampled Brandes
    bc = betweenness_centrality(graph, sources=sample)
    top_bc = np.argsort(-bc.centrality)[:5]
    print(
        f"betweenness (sampled, {bc.n_sources} sources): top-5 "
        f"{top_bc.tolist()} [{time.perf_counter() - t0:.3f}s]"
    )

    t0 = time.perf_counter()
    h = hits(graph)
    print(
        f"hits ({h.iterations} iters): top hub "
        f"{int(np.argmax(h.hubs))}, top authority "
        f"{int(np.argmax(h.authorities))} [{time.perf_counter() - t0:.3f}s]"
    )

    t0 = time.perf_counter()
    tc = triangle_count(graph)
    print(f"triangles: {tc.total} [{time.perf_counter() - t0:.3f}s]")

    t0 = time.perf_counter()
    kc = kcore_decomposition(graph)
    shells = np.bincount(kc.core_numbers)
    print(
        f"k-core: degeneracy {kc.max_core}, inner shell holds "
        f"{shells[kc.max_core]} vertices [{time.perf_counter() - t0:.3f}s]"
    )

    t0 = time.perf_counter()
    coloring = graph_coloring(graph, seed=0)
    print(
        f"coloring: {coloring.n_colors} colors in {coloring.rounds} "
        f"rounds [{time.perf_counter() - t0:.3f}s]"
    )

    # Cross-checks an analyst would eyeball: hubs rank high everywhere.
    assert top_pr[0] in np.argsort(-degrees)[:10]
    print("\ntop PageRank vertex is a top-degree hub — sanity holds.")


if __name__ == "__main__":
    main()
