#!/usr/bin/env python
"""Local analytics: communities, personalized ranking, and random walks.

The "recommendation" workload: on a modular small-world graph, find
communities (LPA), rank vertices from a seed's point of view (PPR two
ways — global power iteration and local forward push), and sample
random walks as a Monte-Carlo cross-check: walk visit frequencies
approximate PPR, so the three methods must tell one consistent story.

Run:  python examples/community_and_walks.py [n_vertices]
"""

import sys

import numpy as np

from repro.algorithms import (
    label_propagation_communities,
    modularity,
    personalized_pagerank,
    ppr_forward_push,
    random_walks,
    visit_frequencies,
)
from repro.graph.generators import watts_strogatz


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    graph = watts_strogatz(n, 8, 0.03, seed=17)
    print(f"graph: {graph}\n")

    # 1. Communities.
    communities = label_propagation_communities(graph, seed=1)
    q = modularity(graph, communities.labels)
    sizes = communities.community_sizes()
    print(
        f"LPA: {communities.n_communities} communities in "
        f"{communities.rounds} rounds, modularity Q={q:.3f}, "
        f"largest {sizes.max()} vertices"
    )
    assert q > 0.3, "small-world graphs should show community structure"

    # 2. Personalized PageRank from a seed, two algorithms.
    seed_vertex = int(np.argmax(graph.out_degrees()))
    power = personalized_pagerank(graph, seed_vertex, tolerance=1e-12)
    push = ppr_forward_push(graph, seed_vertex, epsilon=1e-9)
    agreement = float(np.abs(power.ranks - push.ranks).max())
    print(
        f"\nPPR from {seed_vertex}: power iteration {power.iterations} "
        f"rounds vs forward push {push.iterations} rounds; "
        f"max disagreement {agreement:.2e}"
    )
    top_power = np.argsort(-power.ranks)[:8]
    print(f"top-8 by PPR: {top_power.tolist()}")

    # 3. Monte-Carlo cross-check with random walks.
    starts = np.full(2000, seed_vertex)
    walks = random_walks(graph, starts, 12, seed=2)
    freq = visit_frequencies(walks, graph.n_vertices).astype(np.float64)
    freq /= freq.sum()
    top_walk = np.argsort(-freq)[:8]
    overlap = len(set(top_power.tolist()) & set(top_walk.tolist()))
    print(
        f"top-8 by walk frequency: {top_walk.tolist()} "
        f"({overlap}/8 overlap with PPR)"
    )
    assert overlap >= 4, "walk sampling should agree with PPR on the head"

    # 4. The community lens on PPR: the seed's mass stays home.
    seed_community = communities.labels[seed_vertex]
    mass_home = float(power.ranks[communities.labels == seed_community].sum())
    share = sizes[seed_community] / graph.n_vertices
    print(
        f"\nPPR mass inside the seed's community: {mass_home:.2f} "
        f"(community holds {share:.2%} of vertices) — "
        f"{'locality confirmed' if mass_home > 2 * share else 'weak locality'}"
    )


if __name__ == "__main__":
    main()
