"""Dynamic graphs: delta-overlay mutation, incremental recompute, streams.

The subsystem layers mutability on the repo's immutable CSR world in
three pieces: :class:`DeltaOverlay` stages batched edge edits over a
frozen base, :class:`DynamicGraph` turns that into an epoch-versioned
graph whose merged snapshots run every static algorithm unmodified, and
the ``incremental_*`` functions repair previous results from the set of
affected vertices instead of recomputing from scratch.
:mod:`repro.dynamic.stream` drives the whole stack over a timestamped
edge stream in windows.
"""

from repro.dynamic.dynamic_graph import (
    DynamicGraph,
    MutationBatch,
    dynamic_from_edges,
)
from repro.dynamic.incremental import (
    incremental_bfs,
    incremental_cc,
    incremental_pagerank,
    incremental_ppr,
    incremental_sssp,
)
from repro.dynamic.overlay import DeltaOverlay
from repro.dynamic.stream import EdgeStream, StreamDriver, StreamReport

__all__ = [
    "DeltaOverlay",
    "DynamicGraph",
    "MutationBatch",
    "dynamic_from_edges",
    "incremental_bfs",
    "incremental_cc",
    "incremental_pagerank",
    "incremental_ppr",
    "incremental_sssp",
    "EdgeStream",
    "StreamDriver",
    "StreamReport",
]
