"""Incremental recompute: repair results from the affected set.

The paper's frontier/operator decomposition makes "start from the dirty
vertices" a first-class operation (Gunrock's framing): the repair loops
below are *the same* ``neighbors_expand`` + min-relax supersteps the
static algorithms run — only the initial frontier changes, from
``{source}`` (or all vertices) to the set of vertices a mutation batch
can actually affect.  Each function returns the static algorithm's
result type, so callers swap ``sssp(...)`` for
``incremental_sssp(...)`` without touching anything downstream.

The repair recipes:

* **SSSP** — inserted edges are relaxed directly (monotone improvement
  propagates forward); deletions invalidate the *least* fixpoint of
  lost tight support (a vertex with a surviving tight in-edge from a
  strictly closer valid vertex keeps its distance), the invalidated
  region resets to ``INF``, and the boundary (finite-distance
  in-neighbors of the invalidated set) re-relaxes it.
* **BFS** — the same with unit weights, plus the parent tree: deleted
  parent edges start a level-ordered invalidation wave that a vertex
  escapes by having *any* surviving in-edge from a valid vertex one
  level up; repaired (and rescued-but-orphaned) vertices pick any
  tight in-edge as the new parent (the conformance comparator is
  tie-tolerant, as any valid parent is a valid BFS tree).
* **CC** — a deleted edge matters only if it disconnects its
  endpoints, so deletions are settled by one exact certificate: an
  undirected BFS from the root of every component that lost an edge
  (one traversal of the affected components, however many deletions
  the batch carries); unreached members are genuine split-offs and are
  relabelled in place.  Insertions merge at the label level (a tiny
  union-find over component labels).
* **PageRank / PPR** — warm restart: power iteration from the previous
  rank vector converges to the same fixed point (it is a contraction),
  typically in a small fraction of the cold-start iterations after a
  small mutation batch.

Every repair records a ``dynamic:repair`` span with the invalidated /
seed counts, and ``dynamic.*`` counters through the ambient Probe.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.algorithms.bfs import BFSResult, UNREACHED
from repro.algorithms.cc import CCResult
from repro.algorithms.pagerank import PageRankResult, pagerank
from repro.algorithms.ppr import PPRResult, personalized_pagerank
from repro.algorithms.sssp import SSSPResult
from repro.dynamic.dynamic_graph import DynamicGraph, MutationBatch
from repro.errors import GraphFormatError
from repro.execution.atomics import AtomicArray
from repro.execution.policy import (
    ExecutionPolicy,
    SequencedPolicy,
    VectorPolicy,
    par_vector,
    resolve_policy,
)
from repro.frontier.sparse import SparseFrontier
from repro.graph.csc import CSCMatrix
from repro.graph.csr import CSRMatrix
from repro.graph.graph import Graph
from repro.loop.enactor import Enactor
from repro.observability.probe import active_probe
from repro.operators.advance import neighbors_expand
from repro.operators.conditions import scalar_condition
from repro.operators.fused import (
    fused_kernel_of,
    min_relax_condition,
)
from repro.operators.uniquify import uniquify
from repro.types import (
    INF,
    INVALID_VERTEX,
    VALUE_DTYPE,
    VERTEX_DTYPE,
    WEIGHT_DTYPE,
)
from repro.utils.counters import IterationStats, RunStats

GraphLike = Union[Graph, DynamicGraph]


def _resolve(graph: GraphLike, batch: Optional[MutationBatch], since_epoch):
    """Normalize the (graph, batch) pair every incremental entry takes.

    A :class:`DynamicGraph` supplies both the merged snapshot and (via
    its mutation log) the batch; a plain :class:`Graph` must come with
    an explicit batch.
    """
    if isinstance(graph, DynamicGraph):
        merged = graph.graph()
        if batch is None:
            batch = graph.mutations_since(
                0 if since_epoch is None else since_epoch
            )
        return merged, batch
    if batch is None:
        raise GraphFormatError(
            "incremental recompute on a plain Graph needs an explicit "
            "MutationBatch (pass batch=, or pass the DynamicGraph)"
        )
    return graph, batch


def _min_relax_fixpoint(
    graph: Graph,
    values: np.ndarray,
    seed_ids: np.ndarray,
    policy,
    *,
    state_name: str,
    resilience=None,
) -> RunStats:
    """Run the label-correcting relax loop from ``seed_ids`` to empty.

    This is :func:`repro.algorithms.sssp.sssp`'s superstep verbatim —
    scalar atomic min under threaded/sequential policies, the fused
    single-pass kernel under ``par_vector`` — so repair inherits the
    whole policy matrix for free.
    """
    n = graph.n_vertices
    if seed_ids.size == 0:
        stats = RunStats()
        stats.converged = True
        return stats

    if isinstance(policy, (SequencedPolicy,)) or (
        not isinstance(policy, VectorPolicy) and policy.parallel
    ):
        atomic = AtomicArray(values)

        @scalar_condition
        def condition(src, dst, edge, weight):
            new_v = values[src] + weight
            curr = atomic.min_at(dst, new_v)
            return new_v < curr

    else:
        condition = min_relax_condition(values)

    enactor = Enactor(graph)
    emits_sets = (
        isinstance(policy, VectorPolicy)
        and fused_kernel_of(condition) is not None
    )

    def step(f, state):
        out = neighbors_expand(
            policy, graph, f, condition, workspace=enactor.workspace
        )
        if not emits_sets:
            out = uniquify(policy, out, workspace=enactor.workspace)
        return out

    frontier = SparseFrontier.from_indices(
        seed_ids.astype(VERTEX_DTYPE, copy=False), n
    )
    return enactor.run(
        frontier,
        step,
        resilience=resilience,
        state_arrays={state_name: values},
    )


def _relax_push(
    merged: Graph,
    dist: np.ndarray,
    seeds: np.ndarray,
    *,
    unit: bool,
) -> RunStats:
    """The ``par_vector`` fast path of :func:`_min_relax_fixpoint`.

    Same label-correcting fixpoint, hand-vectorized: gather the
    frontier's out-edges straight off the CSR arrays, scatter-min the
    improvements, and the vertices whose value actually dropped form
    the next frontier.  Repair frontiers are batch-sized, not
    graph-sized, so the generic operator pipeline's per-superstep
    machinery (workspaces, frontier objects, dedup passes) would
    dominate the runtime — this loop is the same dozen numpy kernels
    with nothing between them.  ``unit=True`` relaxes hop counts
    (BFS) without touching the weight array at all.
    """
    stats = RunStats()
    csr = merged.csr()
    ro = csr.row_offsets.astype(np.int64, copy=False)
    ci = csr.column_indices
    frontier = np.unique(seeds).astype(np.int64)
    iteration = 0
    while frontier.size:
        starts = ro[frontier]
        cnts = ro[frontier + 1] - starts
        total = int(cnts.sum())
        if total == 0:
            break
        seg0 = np.cumsum(cnts) - cnts
        idx = np.repeat(starts - seg0, cnts) + np.arange(
            total, dtype=np.int64
        )
        dsts = ci[idx].astype(np.int64)
        src_d = np.repeat(dist[frontier], cnts)
        cand = src_d + 1.0 if unit else src_d + csr.values[idx]
        better = cand < dist[dsts]
        stats.record(
            IterationStats(iteration, int(frontier.size), total, 0.0)
        )
        iteration += 1
        if not np.any(better):
            break
        d2 = dsts[better]
        c2 = cand[better]
        snap = dist[d2]
        np.minimum.at(dist, d2, c2)
        frontier = np.unique(d2[dist[d2] < snap])
    stats.converged = True
    return stats


def _pull_refill(
    merged: Graph,
    dist: np.ndarray,
    invalid: np.ndarray,
    *,
    unit: bool,
) -> np.ndarray:
    """One pull step: refill each invalidated vertex from its in-edges.

    The CSC stores a vertex's in-edges contiguously, so one gather plus
    a segmented ``minimum.reduceat`` recomputes every invalidated
    vertex's best supported value in a handful of kernels — far cheaper
    than seeding the push loop with the whole region boundary and
    expanding *all* of the boundary's out-edges.  Invalid sources hold
    the INF sentinel, so they never vouch for a neighbor.  Returns the
    vertices that ended up with a finite value — the push loop's
    starting frontier; vertices supported only through other invalid
    vertices get their value when those push.
    """
    inv = np.nonzero(invalid)[0]
    if inv.size == 0:
        return inv
    csc = merged.csc()
    co = csc.col_offsets.astype(np.int64, copy=False)
    starts = co[inv]
    cnts = co[inv + 1] - starts
    nz = cnts > 0
    inv, starts, cnts = inv[nz], starts[nz], cnts[nz]
    if inv.size == 0:
        return inv
    total = int(cnts.sum())
    seg0 = np.cumsum(cnts) - cnts
    idx = np.repeat(starts - seg0, cnts)
    idx += np.arange(total, dtype=np.int64)
    srcs = csc.row_indices[idx]
    cand = dist[srcs] + 1.0 if unit else dist[srcs] + csc.values[idx]
    refilled = np.minimum(dist[inv], np.minimum.reduceat(cand, seg0))
    dist[inv] = refilled
    return inv[refilled < INF]


def _tight_invalidate(
    merged: Graph,
    old: np.ndarray,
    dirty: np.ndarray,
    *,
    protect: int,
) -> np.ndarray:
    """Least fixpoint of "invalid iff no surviving tight support".

    A vertex's old distance survives a deletion batch iff it still has
    a *tight in-edge* (``old[src] + w == old[dst]``) from a vertex that
    itself survives.  Starting from the heads of deleted supporting
    edges, each candidate is first given the chance to be **rescued**
    by an alternative tight in-edge from a strictly-closer valid vertex
    (strictness keeps zero-weight cycles from vouching for themselves);
    only unrescued candidates are invalidated, and their tight
    out-neighbors re-examined — a supporter falling later re-queues
    anyone it had previously rescued.  Tight support strictly decreases
    distance along the chain, so the dependency order is acyclic and
    the iteration terminates with the *minimal* invalid set — the whole
    point, since repair cost scales with it.

    Returns a boolean mask; ``protect`` (the source) is never marked.
    """
    csr = merged.csr()
    csc = merged.csc()
    n = old.shape[0]
    invalid = np.zeros(n, dtype=bool)
    wave = np.unique(dirty[dirty != protect]).astype(VERTEX_DTYPE)
    while wave.size:
        srcs, dsts, _, wts = csc.gather_in_edges(wave)
        rescued = np.zeros(n, dtype=bool)
        if srcs.size:
            support = (
                (old[srcs] < old[dsts])
                & ~invalid[srcs]
                & (old[srcs] + wts == old[dsts])
            )
            rescued[dsts[support]] = True
        newly = wave[~rescued[wave] & ~invalid[wave]]
        if newly.size == 0:
            break
        invalid[newly] = True
        s2, d2, _, w2 = csr.expand_vertices(newly)
        dependents = (
            (old[d2] < INF)
            & (old[s2] + w2 == old[d2])
            & ~invalid[d2]
            & (d2 != protect)
        )
        wave = np.unique(d2[dependents]).astype(VERTEX_DTYPE)
    return invalid


def _gather_arcs(offsets: np.ndarray, targets: np.ndarray, ids: np.ndarray):
    """``(endpoint, owner)`` arc pairs for ``ids`` off raw index arrays.

    One segmented gather off a CSR/CSC offset+index pair — the weight
    and sort work :meth:`gather_in_edges` / :meth:`expand_vertices` do
    is pure waste on the structural hot paths here (level rescue, kid
    cascade, parent re-pick), which only need endpoints.
    """
    offs = offsets.astype(np.int64, copy=False)
    starts = offs[ids]
    cnts = offs[ids + 1] - starts
    total = int(cnts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    seg0 = np.cumsum(cnts) - cnts
    idx = np.repeat(starts - seg0, cnts) + np.arange(total, dtype=np.int64)
    return targets[idx].astype(np.int64), np.repeat(
        ids.astype(np.int64, copy=False), cnts
    )


def _boundary_seeds(graph: Graph, values: np.ndarray, invalid: np.ndarray):
    """Finite-valued in-neighbors of the invalidated set — the frontier
    from which the region is re-derived."""
    inv_ids = np.nonzero(invalid)[0].astype(VERTEX_DTYPE)
    if inv_ids.size == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    srcs, _, _, _ = graph.csc().gather_in_edges(inv_ids)
    if srcs.size == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    return np.unique(srcs[values[srcs] < INF]).astype(VERTEX_DTYPE)


def incremental_sssp(
    graph: GraphLike,
    prev: SSSPResult,
    *,
    batch: Optional[MutationBatch] = None,
    since_epoch: Optional[int] = None,
    policy: Union[str, ExecutionPolicy] = par_vector,
    resilience=None,
) -> SSSPResult:
    """Repair a previous SSSP result after a mutation batch.

    ``graph`` is the mutated graph (a :class:`DynamicGraph`, or a plain
    merged :class:`Graph` with ``batch`` given explicitly); ``prev`` is
    the result computed before the batch.  Distances equal a full
    recompute's exactly — the metamorphic oracle in ``repro verify``
    holds this to account across the policy matrix.
    """
    policy = resolve_policy(policy)
    merged, batch = _resolve(graph, batch, since_epoch)
    source = prev.source
    old = prev.distances
    dist = old.astype(VALUE_DTYPE, copy=True)
    probe = active_probe()
    with probe.span(
        "dynamic:repair", algorithm="sssp", batch=batch.size
    ) as span:
        invalid = np.zeros(merged.n_vertices, dtype=bool)
        if batch.n_removed:
            rs, rd, rw = (
                batch.removed_src.astype(np.int64),
                batch.removed_dst.astype(np.int64),
                batch.removed_w.astype(VALUE_DTYPE),
            )
            supported = (old[rs] < INF) & (old[rs] + rw == old[rd])
            invalid = _tight_invalidate(
                merged, old, rd[supported].astype(VERTEX_DTYPE), protect=source
            )
            dist[invalid] = INF
        vector = isinstance(policy, VectorPolicy)
        seeds = []
        if batch.n_inserted:
            is_, id_ = (
                batch.inserted_src.astype(np.int64),
                batch.inserted_dst.astype(np.int64),
            )
            cand = (dist[is_] + batch.inserted_w.astype(VALUE_DTYPE)).astype(
                VALUE_DTYPE
            )
            before = dist[id_].copy()
            np.minimum.at(dist, id_, cand)
            seeds.append(
                np.unique(id_[dist[id_] < before]).astype(VERTEX_DTYPE)
            )
        if vector:
            seeds.append(
                _pull_refill(merged, dist, invalid, unit=False).astype(
                    VERTEX_DTYPE
                )
            )
        else:
            seeds.append(_boundary_seeds(merged, dist, invalid))
        seed_ids = np.unique(np.concatenate(seeds)).astype(VERTEX_DTYPE)
        n_invalid = int(np.count_nonzero(invalid))
        span.set("invalidated", n_invalid)
        span.set("seeds", int(seed_ids.size))
        probe.counter("dynamic.invalidated", n_invalid)
        probe.counter("dynamic.repair_seeds", int(seed_ids.size))
        if vector:
            stats = _relax_push(merged, dist, seed_ids, unit=False)
        else:
            stats = _min_relax_fixpoint(
                merged,
                dist,
                seed_ids,
                policy,
                state_name="dist",
                resilience=resilience,
            )
    return SSSPResult(distances=dist, source=source, stats=stats)


def _unit_weight_graph(merged: Graph) -> Graph:
    """The merged structure with unit weights (shared index arrays) —
    BFS-as-SSSP needs hop counts, not edge weights.

    The CSC is built from ``merged``'s (deriving it there so the
    transpose is cached on the snapshot across repair calls) rather
    than re-transposed per call: the index arrays are identical, only
    the values differ, and they are all ones anyway.
    """
    csr = merged.csr()
    ones = np.ones(csr.get_num_edges(), dtype=WEIGHT_DTYPE)
    csc = merged.csc()
    views = {
        "csr": CSRMatrix(
            csr.n_rows, csr.n_cols, csr.row_offsets, csr.column_indices, ones
        ),
        "csc": CSCMatrix(
            csc.n_rows, csc.n_cols, csc.col_offsets, csc.row_indices, ones
        ),
    }
    return Graph(views, merged.properties)


def incremental_bfs(
    graph: GraphLike,
    prev: BFSResult,
    *,
    batch: Optional[MutationBatch] = None,
    since_epoch: Optional[int] = None,
    policy: Union[str, ExecutionPolicy] = par_vector,
    resilience=None,
) -> BFSResult:
    """Repair BFS levels and parents after a mutation batch.

    Deleted parent-tree edges start an invalidation wave processed in
    increasing level order: a candidate with a surviving in-edge from a
    still-valid vertex one level up is *rescued* (its level is still
    achievable — only its parent pointer may need re-picking), and
    invalidation cascades only through vertices with no alternate
    support.  Repair then runs the unit-weight min-relax from the
    region boundary and re-derives parents for every vertex whose
    level changed or whose recorded parent edge is gone.
    """
    policy = resolve_policy(policy)
    merged, batch = _resolve(graph, batch, since_epoch)
    n = merged.n_vertices
    source = prev.source
    old_levels = prev.levels
    levels = old_levels.copy()
    parents = prev.parents.copy()
    probe = active_probe()
    with probe.span(
        "dynamic:repair", algorithm="bfs", batch=batch.size
    ) as span:
        # 1. Invalidate exactly the vertices that lost all level
        #    support.  Candidates are processed in increasing old-level
        #    order (supporters live one level up, so they are already
        #    decided): a candidate with a surviving in-edge from a
        #    still-valid vertex at ``level - 1`` keeps its level — only
        #    its parent pointer may need repair — and invalidation
        #    cascades only through vertices with no such alternate.
        invalid = np.zeros(n, dtype=bool)
        broken_roots = np.empty(0, dtype=np.int64)
        if batch.n_removed:
            csc = merged.csc()
            rs = batch.removed_src.astype(np.int64)
            rd = batch.removed_dst.astype(np.int64)
            broken = (
                (levels[rd] > 0)
                & (parents[rd] == rs.astype(parents.dtype))
                & (rd != source)
            )
            broken_roots = np.unique(rd[broken])
            pending = broken_roots
            while pending.size:
                level = int(old_levels[pending].min())
                at_level = old_levels[pending] == level
                now = pending[at_level]
                rest = pending[~at_level]
                srcs, dsts = _gather_arcs(
                    csc.col_offsets, csc.row_indices, now
                )
                rescued = np.zeros(n, dtype=bool)
                if srcs.size:
                    support = ~invalid[srcs] & (
                        old_levels[srcs] == level - 1
                    )
                    rescued[dsts[support]] = True
                newly = now[~rescued[now]]
                invalid[newly] = True
                kids = np.empty(0, dtype=np.int64)
                if newly.size:
                    csr = merged.csr()
                    d2, _ = _gather_arcs(
                        csr.row_offsets, csr.column_indices, newly
                    )
                    kids = np.unique(
                        d2[
                            (old_levels[d2] == level + 1)
                            & ~invalid[d2]
                            & (d2 != source)
                        ]
                    )
                pending = np.union1d(rest, kids)
        # 2. Levels as float distances; invalid region reset.
        #    _boundary_seeds/_min_relax compare against float32 INF;
        #    use a float64 array with INF as the sentinel.
        dist = np.where(
            (levels < 0) | invalid, INF, levels.astype(np.float64)
        )
        vector = isinstance(policy, VectorPolicy)
        seeds = []
        if batch.n_inserted:
            is_ = batch.inserted_src.astype(np.int64)
            id_ = batch.inserted_dst.astype(np.int64)
            cand = dist[is_] + 1.0
            before = dist[id_].copy()
            np.minimum.at(dist, id_, cand)
            seeds.append(
                np.unique(id_[dist[id_] < before]).astype(VERTEX_DTYPE)
            )
        if vector:
            seeds.append(
                _pull_refill(merged, dist, invalid, unit=True).astype(
                    VERTEX_DTYPE
                )
            )
        else:
            seeds.append(_boundary_seeds(merged, dist, invalid))
        seed_ids = np.unique(np.concatenate(seeds)).astype(VERTEX_DTYPE)
        n_invalid = int(np.count_nonzero(invalid))
        span.set("invalidated", n_invalid)
        span.set("seeds", int(seed_ids.size))
        probe.counter("dynamic.invalidated", n_invalid)
        probe.counter("dynamic.repair_seeds", int(seed_ids.size))
        if vector:
            stats = _relax_push(merged, dist, seed_ids, unit=True)
        else:
            stats = _min_relax_fixpoint(
                _unit_weight_graph(merged),
                dist,
                seed_ids,
                policy,
                state_name="levels",
                resilience=resilience,
            )
        # 3. Back to integer levels; fix parents where needed.  Three
        #    ways a parent pointer goes stale: the vertex itself was
        #    repaired; it was a rescued broken root (level kept, but
        #    the recorded edge is gone); or its recorded parent was
        #    repaired to a different level out from under it.
        new_levels = np.where(dist < INF, dist, UNREACHED).astype(np.int64)
        new_levels[source] = 0
        changed = (new_levels != old_levels) | invalid
        changed[broken_roots] = True
        pclamp = np.where(parents >= 0, parents, 0).astype(np.int64)
        changed |= (
            (new_levels > 0)
            & (parents >= 0)
            & (new_levels[pclamp] != new_levels - 1)
        )
        changed[source] = False
        parents[changed] = INVALID_VERTEX
        fix = np.nonzero(changed & (new_levels >= 0))[0]
        if fix.size:
            csc = merged.csc()
            srcs, dsts = _gather_arcs(
                csc.col_offsets, csc.row_indices, fix
            )
            tight = (new_levels[srcs] >= 0) & (
                new_levels[srcs] + 1 == new_levels[dsts]
            )
            # Any tight in-edge is a valid parent; last write wins.
            parents[dsts[tight]] = srcs[tight]
    levels = new_levels
    return BFSResult(levels=levels, parents=parents, source=source, stats=stats)


def _deletion_structure(merged: Graph, batch: MutationBatch):
    """Cached underlying-undirected adjacency ``(offsets, neighbors)``
    of the merged snapshot *minus the batch's inserted arcs*.

    Deletion certificates must run on exactly "yesterday's structure
    after the deletions": traversing an inserted edge would let one
    component's BFS wander into another and mark a genuinely split-off
    piece as reached, silently re-gluing it to a component it no longer
    belongs to when the insert union-find later merges labels.  Every
    insert-induced reconnection instead goes through that union-find.

    Each vertex's neighbor list is its surviving out-neighbors (CSR)
    followed by its surviving in-neighbors (CSC), so every arc appears
    in both endpoints' lists.  Built with vectorized scatters off the
    cached views and memoized on the snapshot (keyed by the inserted
    arcs) — rebuilt only when the overlay produces a new merged graph.
    """
    ins_src = batch.inserted_src
    ins_dst = batch.inserted_dst
    cached = merged.__dict__.get("_dynamic_und")
    if cached is not None:
        c_src, c_dst, offs, nbrs = cached
        if np.array_equal(c_src, ins_src) and np.array_equal(c_dst, ins_dst):
            return offs, nbrs
    csr = merged.csr()
    csc = merged.csc()
    n = merged.n_vertices
    ro = csr.row_offsets.astype(np.int64, copy=False)
    co = csc.col_offsets.astype(np.int64, copy=False)
    owner_out = np.repeat(np.arange(n, dtype=np.int64), np.diff(ro))
    owner_in = np.repeat(np.arange(n, dtype=np.int64), np.diff(co))
    out_nb = csr.column_indices
    in_nb = csc.row_indices
    if batch.n_inserted:
        nn = np.int64(n)
        inserted = np.sort(
            ins_src.astype(np.int64) * nn + ins_dst.astype(np.int64)
        )

        def survives(srcs, dsts):
            keys = srcs * nn + dsts
            pos = np.searchsorted(inserted, keys)
            clip = np.minimum(pos, inserted.size - 1)
            return ~((pos < inserted.size) & (inserted[clip] == keys))

        keep = survives(owner_out, out_nb.astype(np.int64))
        owner_out, out_nb = owner_out[keep], out_nb[keep]
        keep = survives(in_nb.astype(np.int64), owner_in)
        owner_in, in_nb = owner_in[keep], in_nb[keep]
    out_cnt = np.bincount(owner_out, minlength=n)
    in_cnt = np.bincount(owner_in, minlength=n)
    offs = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_cnt + in_cnt, out=offs[1:])
    # VERTEX_DTYPE neighbors: the traversal is gather-bound, and the
    # narrower lanes halve its memory traffic.
    nbrs = np.empty(int(offs[-1]), dtype=VERTEX_DTYPE)
    # Both owner arrays are owner-sorted, so each element's slot within
    # its owner's block is its global index minus the block start.
    blk0 = np.cumsum(out_cnt) - out_cnt
    nbrs[
        offs[owner_out] + (np.arange(owner_out.size) - blk0[owner_out])
    ] = out_nb
    blk0 = np.cumsum(in_cnt) - in_cnt
    nbrs[
        offs[owner_in]
        + out_cnt[owner_in]
        + (np.arange(owner_in.size) - blk0[owner_in])
    ] = in_nb
    merged.__dict__["_dynamic_und"] = (
        ins_src.copy(),
        ins_dst.copy(),
        offs,
        nbrs,
    )
    return offs, nbrs


def _certified_reach(
    merged: Graph, batch: MutationBatch, roots: np.ndarray
) -> np.ndarray:
    """Vertices reachable from ``roots`` over the underlying undirected
    deletion-only structure — the exact certificate deletions need.

    One frontier BFS over :func:`_deletion_structure`; every edge of
    the roots' components is touched once, so the cost is proportional
    to the components that actually lost an edge, not to the graph.
    """
    offs, nbrs = _deletion_structure(merged, batch)
    n = merged.n_vertices
    seen = np.zeros(n, dtype=bool)
    seen[roots] = True
    frontier = roots
    while frontier.size:
        starts = offs[frontier]
        cnts = offs[frontier + 1] - starts
        total = int(cnts.sum())
        if total == 0:
            break
        seg0 = np.cumsum(cnts) - cnts
        idx = np.repeat(starts - seg0, cnts) + np.arange(
            total, dtype=np.int64
        )
        # Scatter-first: dumping every gathered neighbor into a fresh
        # mask and subtracting ``seen`` afterwards beats filtering the
        # gather (a second 300k-element gather) on the heavy middle
        # levels of a scale-free component.
        mask = np.zeros(n, dtype=bool)
        mask[nbrs[idx]] = True
        mask &= ~seen
        seen |= mask
        frontier = np.nonzero(mask)[0]
    return seen


def _relabel_split(
    merged: Graph,
    batch: MutationBatch,
    labels: np.ndarray,
    cut: np.ndarray,
) -> int:
    """Relabel the split-off vertices ``cut`` to per-component minima.

    Every surviving non-inserted edge out of a cut vertex leads to
    another cut vertex (anything still tied to the old root was
    reached by the certificate BFS; old edges never cross old
    components), so a min-label hook-and-shortcut loop restricted to
    the cut's own deletion-structure edges settles the new labels in
    :math:`O(\\log)` rounds.  Inserted edges that tie a cut piece to
    anything — another piece, its old component, a different component
    — are deliberately left to the caller's label-level union-find.
    """
    cut_ids = np.nonzero(cut)[0]
    if cut_ids.size == 0:
        return 0
    labels[cut_ids] = cut_ids.astype(labels.dtype)
    offs, nbrs = _deletion_structure(merged, batch)
    starts = offs[cut_ids]
    cnts = offs[cut_ids + 1] - starts
    total = int(cnts.sum())
    if total:
        seg0 = np.cumsum(cnts) - cnts
        idx = np.repeat(starts - seg0, cnts) + np.arange(
            total, dtype=np.int64
        )
        srcs = np.repeat(cut_ids, cnts)
        dsts = nbrs[idx]
        keep = cut[dsts]
        srcs, dsts = srcs[keep], dsts[keep]
        while True:
            before = labels[cut_ids].copy()
            np.minimum.at(labels, dsts, labels[srcs])
            labels[cut_ids] = labels[labels[cut_ids].astype(np.int64)]
            if np.array_equal(labels[cut_ids], before):
                break
    return int(cut_ids.size)


def incremental_cc(
    graph: GraphLike,
    prev: CCResult,
    *,
    batch: Optional[MutationBatch] = None,
    since_epoch: Optional[int] = None,
    policy: Union[str, ExecutionPolicy] = par_vector,
    resilience=None,
) -> CCResult:
    """Repair connected components after a mutation batch.

    A deleted edge changes nothing unless it actually disconnects its
    endpoints, so deletions are settled by one exact *reachability
    certificate*: an undirected BFS from the root (minimum-id) vertex
    of every component that lost an edge.  Members the BFS still
    reaches keep their label; the rest are genuine split-offs and are
    relabelled by a hook-and-shortcut min-label pass restricted to
    their own edges.  The certificate costs one traversal of the
    affected components — independent of how many deletions the batch
    carries.  Insertions then merge at the *label* level — a tiny
    union-find over component labels, no propagation — which also
    stitches split-offs (and their old components) back together when
    an inserted edge bridges them.
    """
    policy = resolve_policy(policy)
    merged, batch = _resolve(graph, batch, since_epoch)
    n = merged.n_vertices
    labels = prev.labels.copy()
    probe = active_probe()
    with probe.span(
        "dynamic:repair", algorithm="cc", batch=batch.size
    ) as span:
        stats = RunStats()
        stats.converged = True
        n_relabelled = 0
        n_roots = 0
        if batch.n_removed and n:
            rs = batch.removed_src.astype(np.int64)
            rd = batch.removed_dst.astype(np.int64)
            real = rs != rd  # self-loops never carry connectivity
            if np.any(real):
                ends = np.concatenate([rs[real], rd[real]])
                # Labels are component-minimum vertex ids, so a label
                # value doubles as the component's root vertex.
                roots = np.unique(labels[ends]).astype(np.int64)
                n_roots = int(roots.size)
                seen = _certified_reach(merged, batch, roots)
                pos = np.searchsorted(roots, labels)
                clip = np.minimum(pos, roots.size - 1)
                members = roots[clip] == labels
                cut = members & ~seen
                n_relabelled = _relabel_split(merged, batch, labels, cut)
        if batch.n_inserted:
            # Merge at the label level: a min-label hook-and-shortcut
            # loop over the label graph the inserted edges induce, then
            # one remap pass over the vertex labels.  Labels are
            # component-minimum vertex ids, so the smaller label wins
            # and stays the merged component's minimum.
            la = labels[batch.inserted_src.astype(np.int64)]
            lb = labels[batch.inserted_dst.astype(np.int64)]
            diff = la != lb
            if np.any(diff):
                hooks = np.concatenate([la[diff], lb[diff]])
                peers = np.concatenate([lb[diff], la[diff]])
                involved = np.unique(hooks)
                hi = np.searchsorted(involved, hooks)
                pi = np.searchsorted(involved, peers)
                root = involved.copy()
                while True:
                    before = root.copy()
                    np.minimum.at(root, hi, root[pi])
                    root = root[np.searchsorted(involved, root)]
                    if np.array_equal(root, before):
                        break
                pos = np.searchsorted(involved, labels)
                clip = np.minimum(pos, involved.size - 1)
                hit = involved[clip] == labels
                labels[hit] = root[clip[hit]]
        span.set("invalidated", n_relabelled)
        span.set("seeds", n_roots)
        probe.counter("dynamic.invalidated", n_relabelled)
        probe.counter("dynamic.repair_seeds", n_roots)
    # Labels are component minima, so exactly the roots satisfy
    # ``labels[v] == v`` — counting them is one vectorized pass.
    n_components = int(
        np.count_nonzero(labels == np.arange(n, dtype=labels.dtype))
    )
    return CCResult(labels=labels, n_components=n_components, stats=stats)


def incremental_pagerank(
    graph: GraphLike,
    prev: PageRankResult,
    *,
    batch: Optional[MutationBatch] = None,
    since_epoch: Optional[int] = None,
    policy: Union[str, ExecutionPolicy] = par_vector,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
) -> PageRankResult:
    """PageRank warm-restarted from the previous rank vector.

    Power iteration is a contraction toward a unique fixed point, so
    starting near it (the pre-mutation ranks, for a small batch) needs
    far fewer iterations than the uniform cold start — same result
    type, same tolerance semantics.
    """
    merged, _ = _resolve(graph, batch, since_epoch or 0)
    probe = active_probe()
    with probe.span(
        "dynamic:repair", algorithm="pagerank", warm=True
    ):
        result = pagerank(
            merged,
            damping=damping,
            tolerance=tolerance,
            max_iterations=max_iterations,
            policy=policy,
            initial_ranks=prev.ranks,
        )
        probe.counter("dynamic.warm_iterations", result.iterations)
    return result


def incremental_ppr(
    graph: GraphLike,
    prev: PPRResult,
    *,
    batch: Optional[MutationBatch] = None,
    since_epoch: Optional[int] = None,
    policy: Union[str, ExecutionPolicy] = par_vector,
    damping: float = 0.85,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
) -> PPRResult:
    """Personalized PageRank warm-restarted from the previous ranks."""
    merged, _ = _resolve(graph, batch, since_epoch or 0)
    probe = active_probe()
    with probe.span("dynamic:repair", algorithm="ppr", warm=True):
        result = personalized_pagerank(
            merged,
            prev.seeds,
            damping=damping,
            tolerance=tolerance,
            max_iterations=max_iterations,
            policy=policy,
            initial_ranks=prev.ranks,
        )
        probe.counter("dynamic.warm_iterations", result.iterations)
    return result
