"""A mutable graph: immutable CSR snapshot + delta overlay + epochs.

:class:`DynamicGraph` is the dynamic-graph facade.  It quacks like
:class:`~repro.graph.graph.Graph` — ``csr()``, ``csc()``, ``coo()``,
``n_vertices``, the scalar adjacency API — so every algorithm in the
repo runs unmodified on a mutated graph.  Internally it is three parts:

* an immutable **base** :class:`Graph` snapshot (never touched);
* a :class:`~repro.dynamic.overlay.DeltaOverlay` of staged mutations;
* a per-epoch **merged snapshot cache**: the first structural read after
  a mutation batch merges base+delta into a fresh ordinary ``Graph``
  (one O(V + E) counting sort), and every subsequent read — push CSR,
  pull CSC, COO, transpose — reuses it until the next mutation.

Scalar adjacency queries (``get_neighbors``, ``has_edge``, degree,
``iter_edges``) answer straight from base+delta without forcing the
merge, so a mutate-heavy phase that only pokes at neighborhoods never
pays snapshot cost.

**Epochs**: every mutation batch bumps a monotonic ``epoch`` counter —
the coherence token the service's result cache and the incremental
algorithms key off.  **Compaction**: when the overlay grows past
``compact_threshold`` × base edges, the merged snapshot is promoted to
be the new base and the overlay reset (amortized O(1) per mutation).

The mutation *log* records each batch (epoch, inserts, deletes with the
weights they carried) so incremental recompute can ask "what changed
since epoch e" (:meth:`mutations_since`) and repair from exactly the
affected set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import from_edge_array
from repro.graph.coo import COOMatrix
from repro.graph.csr import CSRMatrix
from repro.graph.graph import Graph
from repro.dynamic.overlay import DeltaOverlay
from repro.observability.probe import active_probe
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

EdgeLike = Union[Tuple[int, int], Tuple[int, int, float], Sequence]


@dataclass
class MutationBatch:
    """What changed between two epochs, as flat arrays.

    ``removed_*`` carries the weight each arc had when it was removed —
    incremental SSSP needs it to decide whether a deleted edge could
    have supported a shortest path.
    """

    inserted_src: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=VERTEX_DTYPE)
    )
    inserted_dst: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=VERTEX_DTYPE)
    )
    inserted_w: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=WEIGHT_DTYPE)
    )
    removed_src: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=VERTEX_DTYPE)
    )
    removed_dst: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=VERTEX_DTYPE)
    )
    removed_w: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=WEIGHT_DTYPE)
    )

    @property
    def n_inserted(self) -> int:
        return int(self.inserted_src.shape[0])

    @property
    def n_removed(self) -> int:
        return int(self.removed_src.shape[0])

    @property
    def size(self) -> int:
        return self.n_inserted + self.n_removed

    @staticmethod
    def concat(batches: Sequence["MutationBatch"]) -> "MutationBatch":
        """Fold several batches into one *net* batch (in order).

        Opposing mutations cancel: an arc inserted in one batch and
        deleted in a later one contributes nothing, and only the last
        insertion of an arc survives.  The folded batch therefore means
        exactly "apply all removals, then all insertions" relative to
        the state *before the first batch* — the contract every
        ``incremental_*`` repair assumes.  Removal records keep the
        weights arcs carried at the fold's start (all of them, for
        multigraph bases with parallel arcs), since incremental SSSP
        uses them to detect lost tight support.
        """
        batches = [b for b in batches if b.size]
        if not batches:
            return MutationBatch()
        if len(batches) == 1:
            # A single _apply batch is already in net form: removals
            # precede insertions and each arc appears at most once per
            # side.
            return batches[0]
        # One chronological event table: per batch, removals happen
        # before insertions, and batches are already in epoch order.
        srcs, dsts, wts, kinds = [], [], [], []
        for b in batches:
            srcs += [b.removed_src, b.inserted_src]
            dsts += [b.removed_dst, b.inserted_dst]
            wts += [b.removed_w, b.inserted_w]
            kinds += [
                np.zeros(b.n_removed, dtype=bool),
                np.ones(b.n_inserted, dtype=bool),
            ]
        src = np.concatenate(srcs).astype(np.int64)
        dst = np.concatenate(dsts).astype(np.int64)
        w = np.concatenate(wts)
        is_ins = np.concatenate(kinds)
        # Stable sort groups events by arc while preserving the
        # chronological order within each group.
        key = (src << 32) | dst
        order = np.argsort(key, kind="stable")
        k = key[order]
        ins = is_ins[order]
        group_start = np.r_[True, k[1:] != k[:-1]]
        gid = np.cumsum(group_start) - 1
        n_groups = int(gid[-1]) + 1
        pos = np.arange(k.size, dtype=np.int64)
        # Removals before an arc's first insertion tombstone arcs that
        # were live at the fold's start — those survive the fold.  A
        # removal after an insertion only cancels that insertion.
        first_ins = np.full(n_groups, k.size, dtype=np.int64)
        np.minimum.at(first_ins, gid[ins], pos[ins])
        rem_idx = order[~ins & (pos < first_ins[gid])]
        # An arc is live at the fold's end iff its last event is an
        # insertion; that event carries the final weight.
        last_pos = np.r_[np.nonzero(group_start)[0][1:], k.size] - 1
        ins_idx = order[last_pos[ins[last_pos]]]
        return MutationBatch(
            inserted_src=src[ins_idx].astype(VERTEX_DTYPE),
            inserted_dst=dst[ins_idx].astype(VERTEX_DTYPE),
            inserted_w=w[ins_idx].astype(WEIGHT_DTYPE),
            removed_src=src[rem_idx].astype(VERTEX_DTYPE),
            removed_dst=dst[rem_idx].astype(VERTEX_DTYPE),
            removed_w=w[rem_idx].astype(WEIGHT_DTYPE),
        )


def _as_edge_triples(
    edges: Sequence[EdgeLike], *, default_weight: float = 1.0
) -> List[Tuple[int, int, float]]:
    out = []
    for edge in edges:
        if len(edge) == 2:
            s, d = edge
            w = default_weight
        elif len(edge) == 3:
            s, d, w = edge
        else:
            raise GraphFormatError(
                f"edges must be (src, dst) or (src, dst, weight); got "
                f"length-{len(edge)} entry"
            )
        out.append((int(s), int(d), float(w)))
    return out


class DynamicGraph:
    """A graph that accepts edge mutations and still serves every view.

    Parameters
    ----------
    graph:
        The initial snapshot.  Its CSR view is adopted as the immutable
        base; the original object is never mutated.
    compact_threshold:
        Overlay size (staged inserts + tombstones) as a fraction of base
        edges beyond which the next mutation triggers :meth:`compact`.
        ``None`` disables auto-compaction.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        compact_threshold: Optional[float] = 0.25,
    ) -> None:
        if compact_threshold is not None and compact_threshold <= 0:
            raise GraphFormatError(
                f"compact_threshold must be positive or None, "
                f"got {compact_threshold}"
            )
        self._base = graph
        self._overlay = DeltaOverlay(graph.csr())
        self.compact_threshold = compact_threshold
        self.properties = graph.properties
        self._epoch = 0
        self._compactions = 0
        self._log: List[Tuple[int, MutationBatch]] = []
        #: (epoch, Graph) of the last merged snapshot, or None.
        self._snapshot: Optional[Tuple[int, Graph]] = None

    # -- identity ----------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; bumped once per mutation batch."""
        return self._epoch

    @property
    def overlay(self) -> DeltaOverlay:
        """The current delta overlay (read-only use, please)."""
        return self._overlay

    @property
    def base_graph(self) -> Graph:
        """The immutable base snapshot under the overlay."""
        return self._base

    @property
    def compactions(self) -> int:
        """How many times the overlay has been folded into the base."""
        return self._compactions

    @property
    def n_vertices(self) -> int:
        return self._base.n_vertices

    @property
    def n_edges(self) -> int:
        """Live directed edge count (base − tombstones + inserts)."""
        return self._overlay.live_edge_count()

    def get_num_vertices(self) -> int:
        """Graph-API alias for :attr:`n_vertices`."""
        return self.n_vertices

    def get_num_edges(self) -> int:
        """Graph-API alias for :attr:`n_edges`."""
        return self.n_edges

    # -- mutation ----------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self.n_vertices):
            raise GraphFormatError(
                f"vertex {v} out of range for n_vertices={self.n_vertices}"
            )

    def _both_arcs(self, triples):
        """Undirected graphs mutate both stored arc directions."""
        if self.properties.directed:
            return triples
        out = list(triples)
        for s, d, w in triples:
            if s != d:
                out.append((d, s, w))
        return out

    def insert_edges(self, edges: Sequence[EdgeLike]) -> MutationBatch:
        """Stage a batch of edge insertions; one epoch bump for the batch.

        Inserting an arc that is already live *updates its weight* (the
        logical edge set has no parallel duplicates across base+delta);
        on undirected graphs both arc directions are staged.  Returns
        the :class:`MutationBatch` recorded in the log.
        """
        return self._apply(inserts=_as_edge_triples(edges), deletes=[])

    def insert_edge(self, src: int, dst: int, weight: float = 1.0) -> MutationBatch:
        """Stage one insertion (its own epoch)."""
        return self.insert_edges([(src, dst, weight)])

    def remove_edges(self, edges: Sequence[EdgeLike]) -> MutationBatch:
        """Stage a batch of deletions; one epoch bump for the batch.

        Removing an arc that does not exist (or was already removed)
        raises :class:`GraphFormatError` and leaves the whole batch
        unapplied — mutation batches are all-or-nothing.
        """
        return self._apply(
            inserts=[], deletes=[(s, d) for s, d, _ in _as_edge_triples(edges)]
        )

    def remove_edge(self, src: int, dst: int) -> MutationBatch:
        """Stage one deletion (its own epoch)."""
        return self.remove_edges([(src, dst)])

    def update_weight(self, src: int, dst: int, weight: float) -> MutationBatch:
        """Replace the weight of a live edge (error if absent)."""
        self._check_vertex(src)
        self._check_vertex(dst)
        if not self.has_edge(src, dst):
            raise GraphFormatError(
                f"cannot update weight of edge ({src}, {dst}): "
                f"no live edge exists"
            )
        return self.insert_edges([(src, dst, weight)])

    def apply(
        self,
        *,
        insert: Sequence[EdgeLike] = (),
        remove: Sequence[EdgeLike] = (),
    ) -> MutationBatch:
        """Stage one mixed batch (removals first, then insertions)."""
        return self._apply(
            inserts=_as_edge_triples(insert),
            deletes=[(s, d) for s, d, _ in _as_edge_triples(remove)],
        )

    def _apply(self, *, inserts, deletes) -> MutationBatch:
        for s, d, _ in inserts:
            self._check_vertex(s)
            self._check_vertex(d)
        for s, d in deletes:
            self._check_vertex(s)
            self._check_vertex(d)
        inserts = self._both_arcs(inserts)
        deletes = [
            (s, d, 0.0) for s, d in deletes
        ]
        deletes = [(s, d) for s, d, _ in self._both_arcs(deletes)]
        # Validate the whole batch against the current state before
        # staging anything — batches are all-or-nothing, so every way a
        # mutation can fail (missing delete target, duplicate delete,
        # non-finite insert weight) must be ruled out while the overlay
        # is still untouched.
        seen = set()
        for s, d in deletes:
            if (s, d) in seen:
                raise GraphFormatError(
                    f"edge ({s}, {d}) removed twice in one batch"
                )
            seen.add((s, d))
            if not self.has_edge(s, d):
                raise GraphFormatError(
                    f"cannot remove edge ({s}, {d}): no live edge exists"
                )
        for s, d, w in inserts:
            if not np.isfinite(w):
                raise GraphFormatError(
                    f"edge ({s}, {d}) weight must be finite, got {w!r}"
                )
        probe = active_probe()
        with probe.span(
            "dynamic:mutate",
            n_insert=len(inserts),
            n_remove=len(deletes),
            epoch=self._epoch + 1,
        ):
            rs, rd, rw = [], [], []
            for s, d in deletes:
                rw.append(self._overlay.stage_delete(s, d))
                rs.append(s)
                rd.append(d)
            is_, id_, iw = [], [], []
            for s, d, w in inserts:
                for old in self._overlay.stage_insert(s, d, w):
                    # Weight update = logical remove + insert, and the
                    # log must say so: incremental SSSP treats a weight
                    # increase exactly like an edge deletion.
                    rs.append(s)
                    rd.append(d)
                    rw.append(old)
                is_.append(s)
                id_.append(d)
                iw.append(w)
            batch = MutationBatch(
                inserted_src=np.asarray(is_, dtype=VERTEX_DTYPE),
                inserted_dst=np.asarray(id_, dtype=VERTEX_DTYPE),
                inserted_w=np.asarray(iw, dtype=WEIGHT_DTYPE),
                removed_src=np.asarray(rs, dtype=VERTEX_DTYPE),
                removed_dst=np.asarray(rd, dtype=VERTEX_DTYPE),
                removed_w=np.asarray(rw, dtype=WEIGHT_DTYPE),
            )
            self._epoch += 1
            self._log.append((self._epoch, batch))
            self._snapshot = None
            probe.counter("dynamic.mutations", batch.size)
            probe.gauge("dynamic.epoch", self._epoch)
        self._maybe_compact()
        return batch

    # -- the mutation log --------------------------------------------------------

    def mutations_since(self, epoch: int) -> MutationBatch:
        """Every mutation applied after ``epoch``, folded into one batch."""
        return MutationBatch.concat(
            [b for e, b in self._log if e > epoch]
        )

    def log_length(self) -> int:
        """Number of batches retained in the mutation log."""
        return len(self._log)

    def trim_log(self, *, keep_epochs_after: int) -> int:
        """Drop log entries at or before the given epoch; returns dropped
        count.  Long-running streams call this once consumers catch up —
        the log otherwise grows without bound."""
        before = len(self._log)
        self._log = [(e, b) for e, b in self._log if e > keep_epochs_after]
        return before - len(self._log)

    # -- snapshots and compaction --------------------------------------------------

    def graph(self) -> Graph:
        """The merged base+delta snapshot as an ordinary :class:`Graph`.

        Cached per epoch: the first call after a mutation pays one
        O(V + E) merge; later calls (and every view derived from the
        returned graph — CSC transpose included) are free.  With an
        empty overlay the base graph itself is returned.
        """
        if self._overlay.size == 0:
            return self._base
        if self._snapshot is not None and self._snapshot[0] == self._epoch:
            return self._snapshot[1]
        probe = active_probe()
        with probe.span(
            "dynamic:snapshot",
            epoch=self._epoch,
            overlay=self._overlay.size,
            n_edges=self.n_edges,
        ):
            rows, cols, vals = self._overlay.merged_coo_arrays()
            n = self.n_vertices
            coo = COOMatrix(n, n, rows, cols, vals)
            ro, ci, merged_vals = coo.to_csr_arrays()
            csr = CSRMatrix(n, n, ro, ci, merged_vals)
            merged = Graph({"csr": csr}, self.properties)
        self._snapshot = (self._epoch, merged)
        return merged

    # ``snapshot`` reads better at call sites that emphasize immutability.
    snapshot = graph

    def compact(self) -> Graph:
        """Fold the overlay into a fresh immutable base; returns it.

        The merged snapshot (built if absent) is *promoted*: it becomes
        the new base, the overlay resets to empty, and the epoch is
        unchanged — compaction is a representation change, not a
        mutation.  The mutation log survives so incremental consumers
        reading ``mutations_since`` are unaffected.
        """
        if self._overlay.size == 0:
            return self._base
        probe = active_probe()
        with probe.span(
            "dynamic:compact",
            epoch=self._epoch,
            overlay=self._overlay.size,
            n_edges=self.n_edges,
        ):
            merged = self.graph()
            self._base = merged
            self._overlay = DeltaOverlay(merged.csr())
            self._snapshot = None
            self._compactions += 1
            probe.counter("dynamic.compactions")
        return merged

    def _maybe_compact(self) -> None:
        if self.compact_threshold is None:
            return
        base_edges = max(1, self._base.n_edges)
        if self._overlay.size > self.compact_threshold * base_edges:
            self.compact()

    # -- Graph-facade delegation ---------------------------------------------------

    def view(self, name: str):
        """Named view of the merged snapshot (see :meth:`Graph.view`)."""
        return self.graph().view(name)

    def has_view(self, name: str) -> bool:
        """Whether the merged snapshot can produce view ``name``."""
        return self.graph().has_view(name)

    def csr(self):
        """Push-traversal CSR of the *merged* graph."""
        return self.graph().csr()

    def csc(self):
        """Pull-traversal CSC (transpose) of the merged graph."""
        return self.graph().csc()

    def coo(self):
        """Edge-list COO of the merged graph."""
        return self.graph().coo()

    def reverse(self) -> Graph:
        """The merged graph with every arc flipped."""
        return self.graph().reverse()

    def out_degrees(self) -> np.ndarray:
        """Per-vertex out-degrees of the merged graph."""
        return self.graph().out_degrees()

    def in_degrees(self) -> np.ndarray:
        """Per-vertex in-degrees of the merged graph."""
        return self.graph().in_degrees()

    def memory_footprint(self):
        """Byte accounting of the merged snapshot's views."""
        return self.graph().memory_footprint()

    # -- overlay-direct scalar adjacency (no merge forced) -------------------------

    def get_num_neighbors(self, v: int) -> int:
        """Live out-degree of ``v`` straight off the overlay (no merge)."""
        self._check_vertex(v)
        return int(self._overlay.neighbors_of(v)[0].shape[0])

    def get_neighbors(self, v: int) -> np.ndarray:
        """Live out-neighbors of ``v`` straight off the overlay."""
        self._check_vertex(v)
        return self._overlay.neighbors_of(v)[0]

    def get_neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`get_neighbors`."""
        self._check_vertex(v)
        return self._overlay.neighbors_of(v)[1]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether arc ``(u, v)`` is live in base+delta."""
        self._check_vertex(u)
        self._check_vertex(v)
        if self._overlay.staged_weight(u, v) is not None:
            return True
        return self._overlay.find_live_base_edge(u, v) >= 0

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the live edge ``(u, v)`` (error if absent)."""
        staged = self._overlay.staged_weight(u, v)
        if staged is not None:
            return float(staged)
        e = self._overlay.find_live_base_edge(u, v)
        if e < 0:
            raise GraphFormatError(f"no live edge ({u}, {v})")
        return float(self._overlay.base.values[e])

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` over live edges, overlay-merged."""
        return self._overlay.iter_live_edges()

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges}, epoch={self._epoch}, "
            f"overlay={self._overlay.size}, "
            f"compactions={self._compactions})"
        )


def dynamic_from_edges(
    sources,
    destinations,
    weights=None,
    *,
    n_vertices: Optional[int] = None,
    directed: bool = True,
    compact_threshold: Optional[float] = 0.25,
) -> DynamicGraph:
    """Convenience: build a :class:`DynamicGraph` straight from edge arrays."""
    return DynamicGraph(
        from_edge_array(
            sources,
            destinations,
            weights,
            n_vertices=n_vertices,
            directed=directed,
        ),
        compact_threshold=compact_threshold,
    )
