"""Windowed edge-stream replay: mutate, repair, measure freshness.

The driver behind ``repro stream``.  An :class:`EdgeStream` is a
timestamped sequence of edge events (insert / delete) plus the base
snapshot they apply to; :class:`StreamDriver` replays it window by
window against a :class:`~repro.dynamic.dynamic_graph.DynamicGraph`,
alternating mutation batches with queries, and reports *freshness*
(mutation arrival → repaired result, via the incremental algorithms)
against the cost of recomputing each query from scratch.

The stream generator (:meth:`EdgeStream.rmat`) splits an R-MAT edge
list into a base prefix and a streamed suffix, interleaving deletions
of currently-live edges at a configurable rate — the standard sliding-
window-ish workload for dynamic-graph systems, kept fully deterministic
under a seed so CI and the conformance oracles can replay it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.cc import connected_components
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import sssp
from repro.dynamic.dynamic_graph import DynamicGraph
from repro.dynamic.incremental import (
    incremental_bfs,
    incremental_cc,
    incremental_pagerank,
    incremental_sssp,
)
from repro.errors import GraphFormatError
from repro.execution.policy import ExecutionPolicy, par_vector
from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.observability.probe import active_probe
from repro.utils.rng import SeedLike, resolve_rng

#: Ops an event can carry.
INSERT, DELETE = 0, 1

#: Algorithms the driver knows how to query incrementally.
STREAM_ALGORITHMS = ("bfs", "sssp", "cc", "pagerank")


@dataclass
class EdgeStream:
    """A base snapshot plus a timestamped edge-event sequence."""

    base: Graph
    timestamps: np.ndarray  # int64, non-decreasing
    ops: np.ndarray  # int8: INSERT / DELETE
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray

    @property
    def n_events(self) -> int:
        return int(self.ops.shape[0])

    def __post_init__(self) -> None:
        n = self.n_events
        for name in ("timestamps", "src", "dst", "weight"):
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise GraphFormatError(
                    f"stream arrays disagree on length: ops has {n}, "
                    f"{name} has {arr.shape[0]}"
                )
        if n and np.any(np.diff(self.timestamps) < 0):
            raise GraphFormatError("stream timestamps must be non-decreasing")

    @classmethod
    def rmat(
        cls,
        scale: int,
        edge_factor: int = 8,
        *,
        base_fraction: float = 0.5,
        delete_fraction: float = 0.2,
        seed: SeedLike = 0,
    ) -> "EdgeStream":
        """A deterministic R-MAT stream: base prefix + insert/delete mix.

        ``base_fraction`` of the (deduplicated) edge list becomes the
        initial snapshot; the rest streams in as inserts, with one
        deletion of a random currently-live edge interleaved per
        ``1/delete_fraction`` inserts.  Every delete targets a live
        edge, so replay never trips the no-such-edge validation.
        """
        from repro.graph.generators import rmat as _rmat

        if not (0.0 < base_fraction < 1.0):
            raise GraphFormatError(
                f"base_fraction must be in (0, 1), got {base_fraction}"
            )
        if not (0.0 <= delete_fraction < 1.0):
            raise GraphFormatError(
                f"delete_fraction must be in [0, 1), got {delete_fraction}"
            )
        rng = resolve_rng(seed)
        full = _rmat(scale, edge_factor, weighted=True, seed=seed)
        coo = full.coo()
        m = coo.rows.shape[0]
        order = rng.permutation(m)
        n_base = max(1, int(m * base_fraction))
        base_ids, rest = order[:n_base], order[n_base:]
        base = from_edge_array(
            coo.rows[base_ids],
            coo.cols[base_ids],
            coo.vals[base_ids],
            n_vertices=full.n_vertices,
            directed=True,
        )
        # Live edge pool for picking deletion victims; swap-remove keeps
        # the draw O(1).  Seed it with the base edges.
        live: List[Tuple[int, int]] = list(
            zip(coo.rows[base_ids].tolist(), coo.cols[base_ids].tolist())
        )
        live_pos = {e: i for i, e in enumerate(live)}
        ops: List[int] = []
        srcs: List[int] = []
        dsts: List[int] = []
        wts: List[float] = []

        def emit_delete() -> None:
            if not live:
                return
            k = int(rng.integers(len(live)))
            s, d = live[k]
            last = len(live) - 1
            if k != last:
                live[k] = live[last]
                live_pos[live[k]] = k
            live.pop()
            del live_pos[(s, d)]
            ops.append(DELETE)
            srcs.append(s)
            dsts.append(d)
            wts.append(0.0)

        deletes_owed = 0.0
        for e in rest:
            s, d = int(coo.rows[e]), int(coo.cols[e])
            ops.append(INSERT)
            srcs.append(s)
            dsts.append(d)
            wts.append(float(coo.vals[e]))
            if (s, d) not in live_pos:
                live_pos[(s, d)] = len(live)
                live.append((s, d))
            deletes_owed += delete_fraction
            while deletes_owed >= 1.0:
                emit_delete()
                deletes_owed -= 1.0
        n_events = len(ops)
        return cls(
            base=base,
            timestamps=np.arange(n_events, dtype=np.int64),
            ops=np.asarray(ops, dtype=np.int8),
            src=np.asarray(srcs, dtype=np.int64),
            dst=np.asarray(dsts, dtype=np.int64),
            weight=np.asarray(wts, dtype=np.float64),
        )

    def windows(self, window_events: int):
        """Yield ``(start, stop)`` event index ranges of window size."""
        if window_events <= 0:
            raise GraphFormatError(
                f"window_events must be positive, got {window_events}"
            )
        for start in range(0, self.n_events, window_events):
            yield start, min(start + window_events, self.n_events)


@dataclass
class StreamReport:
    """Per-window accounting the driver produces."""

    algorithms: Tuple[str, ...]
    windows: List[Dict] = field(default_factory=list)

    def summary(self) -> Dict:
        """Aggregate freshness vs recompute cost over all windows."""
        out: Dict = {
            "n_windows": len(self.windows),
            "n_events": sum(w["n_events"] for w in self.windows),
            "mutate_seconds": sum(w["mutate_seconds"] for w in self.windows),
            "snapshot_seconds": sum(
                w["snapshot_seconds"] for w in self.windows
            ),
            "algorithms": {},
        }
        for name in self.algorithms:
            inc = sum(w["queries"][name]["incremental_seconds"] for w in self.windows)
            full = sum(
                w["queries"][name].get("full_seconds", 0.0)
                for w in self.windows
            )
            entry = {"incremental_seconds": inc}
            if full:
                entry["full_seconds"] = full
                entry["speedup"] = full / inc if inc > 0 else float("inf")
            mismatches = sum(
                1
                for w in self.windows
                if w["queries"][name].get("matches_full") is False
            )
            if any(
                "matches_full" in w["queries"][name] for w in self.windows
            ):
                entry["mismatched_windows"] = mismatches
            out["algorithms"][name] = entry
        return out

    def to_dict(self) -> Dict:
        """JSON-ready report: windows, algorithms, and the summary."""
        return {
            "algorithms": list(self.algorithms),
            "windows": self.windows,
            "summary": self.summary(),
        }


def _results_match(name: str, incremental, full) -> bool:
    if name == "bfs":
        return bool(np.array_equal(incremental.levels, full.levels))
    if name == "sssp":
        return bool(np.array_equal(incremental.distances, full.distances))
    if name == "cc":
        # Labels are canonical (component-minimum vertex id) under the
        # min-propagation scheme, so exact equality is the right bar.
        return bool(np.array_equal(incremental.labels, full.labels))
    # pagerank: two convergent runs agree to the tolerance's order.
    return bool(np.allclose(incremental.ranks, full.ranks, atol=1e-5))


class StreamDriver:
    """Replay an :class:`EdgeStream` in windows against a DynamicGraph.

    Each window: net out its events into one mutation batch, apply it
    (one epoch bump), force the merged snapshot, then run every
    configured query *incrementally* from the previous window's result —
    and, when ``compare_full`` is on, also from scratch, so the report
    can state the freshness-vs-recompute tradeoff instead of implying
    it.  ``verify`` additionally checks the two results agree (the
    stream-level form of the conformance oracle).
    """

    def __init__(
        self,
        stream: EdgeStream,
        *,
        algorithms: Sequence[str] = STREAM_ALGORITHMS,
        source: int = 0,
        policy: Union[str, ExecutionPolicy] = par_vector,
        window_events: int = 1024,
        compare_full: bool = True,
        verify: bool = False,
        compact_threshold: Optional[float] = 0.25,
    ) -> None:
        unknown = set(algorithms) - set(STREAM_ALGORITHMS)
        if unknown:
            raise GraphFormatError(
                f"unknown stream algorithms {sorted(unknown)}; "
                f"choose from {STREAM_ALGORITHMS}"
            )
        self.stream = stream
        self.algorithms = tuple(algorithms)
        self.source = source
        self.policy = policy
        self.window_events = window_events
        self.compare_full = compare_full or verify
        self.verify = verify
        self.dynamic = DynamicGraph(
            stream.base, compact_threshold=compact_threshold
        )

    # -- query plumbing ----------------------------------------------------------

    def _full(self, name: str, graph: Graph):
        if name == "bfs":
            return bfs(graph, self.source, policy=self.policy)
        if name == "sssp":
            return sssp(graph, self.source, policy=self.policy)
        if name == "cc":
            return connected_components(graph, policy=self.policy)
        return pagerank(graph, policy=self.policy)

    def _incremental(self, name: str, prev, batch):
        if name == "bfs":
            return incremental_bfs(
                self.dynamic, prev, batch=batch, policy=self.policy
            )
        if name == "sssp":
            return incremental_sssp(
                self.dynamic, prev, batch=batch, policy=self.policy
            )
        if name == "cc":
            return incremental_cc(
                self.dynamic, prev, batch=batch, policy=self.policy
            )
        return incremental_pagerank(
            self.dynamic, prev, batch=batch, policy=self.policy
        )

    def _net_window(self, start: int, stop: int):
        """Fold a window's event run into net (insert, remove) lists.

        Within a window later events win: insert-then-delete of an edge
        that was not live before the window cancels out entirely;
        delete-then-insert nets to a weight update (plain insert).
        """
        s = self.stream
        net: Dict[Tuple[int, int], Optional[float]] = {}
        for i in range(start, stop):
            edge = (int(s.src[i]), int(s.dst[i]))
            if s.ops[i] == INSERT:
                net[edge] = float(s.weight[i])
            elif edge in net and net[edge] is not None:
                # Delete after an insert staged this window: nets to a
                # delete when the edge was live before the window (the
                # insert was a weight update), cancels out otherwise.
                if self.dynamic.has_edge(*edge):
                    net[edge] = None
                else:
                    del net[edge]
            else:
                net[edge] = None
        inserts = [
            (e[0], e[1], w) for e, w in net.items() if w is not None
        ]
        removes = [e for e, w in net.items() if w is None]
        return inserts, removes

    # -- the drive loop ----------------------------------------------------------

    def run(self, *, max_windows: Optional[int] = None) -> StreamReport:
        """Replay the stream; returns the per-window report."""
        report = StreamReport(algorithms=self.algorithms)
        probe = active_probe()
        # Cold start: full results on the base snapshot.
        prev = {}
        cold = {}
        for name in self.algorithms:
            t0 = time.perf_counter()
            prev[name] = self._full(name, self.dynamic.graph())
            cold[name] = time.perf_counter() - t0
        for w_idx, (start, stop) in enumerate(
            self.stream.windows(self.window_events)
        ):
            if max_windows is not None and w_idx >= max_windows:
                break
            with probe.span(
                "dynamic:window", window=w_idx, events=stop - start
            ):
                inserts, removes = self._net_window(start, stop)
                t0 = time.perf_counter()
                batch = self.dynamic.apply(insert=inserts, remove=removes)
                mutate_seconds = time.perf_counter() - t0
                t0 = time.perf_counter()
                merged = self.dynamic.graph()
                snapshot_seconds = time.perf_counter() - t0
                record = {
                    "window": w_idx,
                    "n_events": stop - start,
                    "n_inserted": batch.n_inserted,
                    "n_removed": batch.n_removed,
                    "epoch": self.dynamic.epoch,
                    "mutate_seconds": mutate_seconds,
                    "snapshot_seconds": snapshot_seconds,
                    "queries": {},
                }
                for name in self.algorithms:
                    t0 = time.perf_counter()
                    repaired = self._incremental(name, prev[name], batch)
                    inc_seconds = time.perf_counter() - t0
                    q = {
                        "incremental_seconds": inc_seconds,
                        "freshness_seconds": mutate_seconds
                        + snapshot_seconds
                        + inc_seconds,
                    }
                    if self.compare_full:
                        t0 = time.perf_counter()
                        full = self._full(name, merged)
                        q["full_seconds"] = time.perf_counter() - t0
                        if self.verify:
                            q["matches_full"] = _results_match(
                                name, repaired, full
                            )
                    record["queries"][name] = q
                    prev[name] = repaired
                    probe.counter(f"dynamic.stream.{name}_queries")
                report.windows.append(record)
        return report
