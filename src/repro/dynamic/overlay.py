"""The delta overlay: batched mutations staged on top of an immutable CSR.

The GraphX lesson (Xin et al.) is that analytics stay cheap under change
when the *base* structure never mutates: edits accumulate in a small
side structure (here: an insert log plus a tombstone set over base edge
ids), reads see base+delta merged, and a periodic *compaction* folds the
delta back into a fresh immutable snapshot.  The overlay is deliberately
dumb — no per-vertex trees, just flat arrays — because every consumer
that needs speed (the operators) reads the merged CSR snapshot, and the
overlay only has to make mutation O(batch) and scalar adjacency queries
O(degree).

Invariants (audited by :func:`repro.graph.validate.validate_overlay`):

* tombstones reference *base* edge ids only, each at most once —
  deleting a delta-inserted edge removes it from the insert log instead;
* an inserted edge never duplicates a live edge: inserting an existing
  ``(src, dst)`` arc is a *weight update* (the base arc is tombstoned or
  the staged insert rewritten);
* every staged endpoint is a valid vertex id and every weight finite.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRMatrix
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE


class DeltaOverlay:
    """Staged edge mutations against one base :class:`CSRMatrix`.

    The overlay holds directed *arcs*; undirected-graph symmetry is the
    caller's concern (:class:`~repro.dynamic.dynamic_graph.DynamicGraph`
    stages both arc directions).
    """

    __slots__ = (
        "base",
        "_add_src",
        "_add_dst",
        "_add_w",
        "_add_index",
        "_dead",
        "_dead_count",
    )

    def __init__(self, base: CSRMatrix) -> None:
        self.base = base
        self._add_src: List[int] = []
        self._add_dst: List[int] = []
        self._add_w: List[float] = []
        #: (src, dst) -> position in the insert log, for O(1) weight
        #: updates and duplicate-insert detection.
        self._add_index: Dict[Tuple[int, int], int] = {}
        #: Tombstone flags over base edge ids (lazy; None until the
        #: first delete so a pure-insert overlay costs no O(E) array).
        self._dead = None
        self._dead_count = 0

    # -- size accounting ---------------------------------------------------------

    @property
    def n_inserted(self) -> int:
        """Number of staged (live) inserted arcs."""
        return len(self._add_src)

    @property
    def n_deleted(self) -> int:
        """Number of tombstoned base arcs."""
        return self._dead_count

    @property
    def size(self) -> int:
        """Total staged mutations — the compaction-trigger measure."""
        return self.n_inserted + self.n_deleted

    def live_edge_count(self) -> int:
        """Edges visible through the overlay (base − dead + inserted)."""
        return self.base.get_num_edges() - self._dead_count + self.n_inserted

    # -- membership --------------------------------------------------------------

    def _dead_flags(self) -> np.ndarray:
        if self._dead is None:
            self._dead = np.zeros(self.base.get_num_edges(), dtype=bool)
        return self._dead

    def is_dead(self, edge_id: int) -> bool:
        """Whether base edge ``edge_id`` is tombstoned."""
        return self._dead is not None and bool(self._dead[edge_id])

    def find_live_base_edge(self, src: int, dst: int) -> int:
        """The id of a live (un-tombstoned) base arc ``(src, dst)``, or -1.

        When the base stores parallel arcs, the first live one wins —
        mutation semantics treat ``(src, dst)`` as a single logical edge.
        """
        base = self.base
        start, stop = int(base.row_offsets[src]), int(base.row_offsets[src + 1])
        cols = base.column_indices[start:stop]
        for k in np.nonzero(cols == dst)[0]:
            e = start + int(k)
            if not self.is_dead(e):
                return e
        return -1

    def _live_base_edges(self, src: int, dst: int) -> List[int]:
        """Every live base arc id for ``(src, dst)`` (multigraph bases)."""
        base = self.base
        start, stop = int(base.row_offsets[src]), int(base.row_offsets[src + 1])
        cols = base.column_indices[start:stop]
        return [
            start + int(k)
            for k in np.nonzero(cols == dst)[0]
            if not self.is_dead(start + int(k))
        ]

    def staged_weight(self, src: int, dst: int):
        """Weight of a staged insert for ``(src, dst)``, or None."""
        pos = self._add_index.get((src, dst))
        return None if pos is None else self._add_w[pos]

    # -- mutation primitives -----------------------------------------------------

    def stage_insert(self, src: int, dst: int, weight: float) -> List[float]:
        """Stage arc ``(src, dst)`` with ``weight``.

        Returns the weights the arc carried before when this turned out
        to be a *weight update* (the arc was already live — staged or
        base; base via tombstone + re-insert), else an empty list for a
        brand-new insert.  Multigraph bases may report several replaced
        weights: every live parallel arc is tombstoned so the merged
        edge set never holds a duplicate of a staged insert.
        """
        if not np.isfinite(weight):
            raise GraphFormatError(
                f"edge ({src}, {dst}) weight must be finite, got {weight!r}"
            )
        pos = self._add_index.get((src, dst))
        if pos is not None:
            old = self._add_w[pos]
            self._add_w[pos] = float(weight)
            return [float(old)]
        replaced = []
        for e in self._live_base_edges(src, dst):
            replaced.append(float(self.base.values[e]))
            self._dead_flags()[e] = True
            self._dead_count += 1
        self._add_index[(src, dst)] = len(self._add_src)
        self._add_src.append(int(src))
        self._add_dst.append(int(dst))
        self._add_w.append(float(weight))
        return replaced

    def stage_delete(self, src: int, dst: int) -> float:
        """Tombstone the live arc ``(src, dst)``; returns its weight.

        Raises :class:`GraphFormatError` when no live arc exists — a
        delete of nothing is a caller bug, not a no-op.
        """
        pos = self._add_index.get((src, dst))
        if pos is not None:
            # Deleting a staged insert un-stages it (swap-remove keeps
            # the log dense; the index of the moved tail entry is fixed).
            weight = self._add_w[pos]
            last = len(self._add_src) - 1
            if pos != last:
                self._add_src[pos] = self._add_src[last]
                self._add_dst[pos] = self._add_dst[last]
                self._add_w[pos] = self._add_w[last]
                self._add_index[
                    (self._add_src[pos], self._add_dst[pos])
                ] = pos
            self._add_src.pop()
            self._add_dst.pop()
            self._add_w.pop()
            del self._add_index[(src, dst)]
            return float(weight)
        base_edge = self.find_live_base_edge(src, dst)
        if base_edge < 0:
            raise GraphFormatError(
                f"cannot remove edge ({src}, {dst}): no live edge exists"
            )
        self._dead_flags()[base_edge] = True
        self._dead_count += 1
        return float(self.base.values[base_edge])

    # -- merged reads ------------------------------------------------------------

    def inserted_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The staged inserts as ``(src, dst, weight)`` arrays."""
        return (
            np.asarray(self._add_src, dtype=VERTEX_DTYPE),
            np.asarray(self._add_dst, dtype=VERTEX_DTYPE),
            np.asarray(self._add_w, dtype=WEIGHT_DTYPE),
        )

    def live_mask(self) -> np.ndarray:
        """Boolean mask over base edge ids: True where not tombstoned."""
        if self._dead is None:
            return np.ones(self.base.get_num_edges(), dtype=bool)
        return ~self._dead

    def dead_edge_ids(self) -> np.ndarray:
        """Tombstoned base edge ids (sorted)."""
        if self._dead is None:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(self._dead)[0]

    def neighbors_of(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """Live out-neighbors and weights of ``v`` through the overlay.

        Base-order survivors first, then staged inserts in log order —
        O(degree + inserts(v)) with no global merge.
        """
        base = self.base
        start, stop = int(base.row_offsets[v]), int(base.row_offsets[v + 1])
        nbrs = base.column_indices[start:stop]
        wts = base.values[start:stop]
        if self._dead is not None:
            alive = ~self._dead[start:stop]
            if not alive.all():
                nbrs = nbrs[alive]
                wts = wts[alive]
        if self._add_src:
            add_src, add_dst, add_w = self.inserted_arrays()
            mine = add_src == v
            if mine.any():
                nbrs = np.concatenate([nbrs, add_dst[mine]])
                wts = np.concatenate([wts, add_w[mine]])
        return nbrs.astype(VERTEX_DTYPE, copy=False), wts.astype(
            WEIGHT_DTYPE, copy=False
        )

    def iter_live_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` for every live edge (base order
        per vertex, then that vertex's staged inserts)."""
        for v in range(self.base.get_num_vertices()):
            nbrs, wts = self.neighbors_of(v)
            for dst, w in zip(nbrs, wts):
                yield v, int(dst), float(w)

    def merged_coo_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The full live edge set as parallel COO arrays.

        Base survivors keep CSR order (sources non-decreasing); inserts
        append in log order.  The counting sort in
        :meth:`COOMatrix.to_csr_arrays` is stable, so a CSR built from
        these arrays lists each vertex's surviving base edges before its
        inserted ones — the property the round-trip tests pin down.
        """
        base = self.base
        keep = self.live_mask()
        degrees = np.diff(base.row_offsets)
        all_src = np.repeat(
            np.arange(base.get_num_vertices(), dtype=VERTEX_DTYPE), degrees
        )
        add_src, add_dst, add_w = self.inserted_arrays()
        return (
            np.concatenate([all_src[keep], add_src]),
            np.concatenate([base.column_indices[keep], add_dst]),
            np.concatenate([base.values[keep], add_w]),
        )

    def __repr__(self) -> str:
        return (
            f"DeltaOverlay(base_edges={self.base.get_num_edges()}, "
            f"inserted={self.n_inserted}, deleted={self.n_deleted})"
        )
