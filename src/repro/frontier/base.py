"""The uniform frontier interface.

"With thoughtful design, regardless of the underlying representation,
the top-level interface to query the frontier (or presence of an active
vertex or edge) remains the same." (§III-B)  This ABC is that interface;
operators are written against it only, so swapping the representation
never changes algorithm code.
"""

from __future__ import annotations

import abc
import enum
from typing import Iterable, Union

import numpy as np


class FrontierKind(enum.Enum):
    """What a frontier's elements denote — active vertices or active edges.

    Vertex and edge frontiers are never mixed implicitly; operators check
    the kind and raise :class:`~repro.errors.FrontierError` on mismatch.
    """

    VERTEX = "vertex"
    EDGE = "edge"


class Frontier(abc.ABC):
    """Abstract active set of vertex or edge ids.

    Concrete subclasses choose the storage (sparse vector, dense bitmap,
    async queue) and therefore the communication model it supports; the
    query surface below is representation-independent.

    All frontiers know their ``capacity`` — the number of vertices (or
    edges) in the underlying graph — so conversions between sparse and
    dense forms are always well-defined.
    """

    kind: FrontierKind = FrontierKind.VERTEX

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)

    # -- queries -----------------------------------------------------------------

    @abc.abstractmethod
    def size(self) -> int:
        """Number of active elements."""

    def is_empty(self) -> bool:
        """Whether no element is active — the default convergence signal
        of the iterative loop (Listing 4: ``while (f.size() != 0)``)."""
        return self.size() == 0

    @abc.abstractmethod
    def to_indices(self) -> np.ndarray:
        """All active ids as a 1-D array (copy; safe to mutate)."""

    @abc.abstractmethod
    def __contains__(self, element: int) -> bool:
        """Whether ``element`` is active."""

    # -- mutation -----------------------------------------------------------------

    @abc.abstractmethod
    def add(self, element: int) -> None:
        """Activate a single element (Listing 2's ``add_vertex``)."""

    @abc.abstractmethod
    def add_many(self, elements: Union[np.ndarray, Iterable[int]]) -> None:
        """Activate many elements at once (bulk path used by operators)."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Deactivate everything."""

    @abc.abstractmethod
    def copy(self) -> "Frontier":
        """Independent deep copy with the same representation."""

    # -- convenience -----------------------------------------------------------------

    def active_fraction(self) -> float:
        """Active elements / capacity — drives representation heuristics."""
        if self.capacity == 0:
            return 0.0
        return self.size() / self.capacity

    def __len__(self) -> int:
        return self.size()

    def __iter__(self):
        return iter(self.to_indices())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={self.size()}, "
            f"capacity={self.capacity}, kind={self.kind.value})"
        )
