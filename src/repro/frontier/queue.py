"""Asynchronous queue frontier: elements as messages (§III-B, ``++Asynchrony``).

"When represented as an asynchronous queue [Chen et al., Atos], a
frontier can communicate its elements using messages."  This frontier is
a thread-safe multi-producer/multi-consumer queue: workers *pop* active
vertices whenever they are free (no superstep barrier) and *push* newly
activated ones, so the same object is both the active set and the
communication channel.

Unlike the bulk frontiers it supports destructive consumption
(:meth:`pop`, :meth:`pop_chunk`); the outstanding-work accounting needed
for asynchronous termination detection lives in the scheduler's
:class:`~repro.utils.counters.WorkCounter`, not here.
"""

from __future__ import annotations

import collections
import threading
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.errors import FrontierError
from repro.frontier.base import Frontier, FrontierKind
from repro.types import VERTEX_DTYPE
from repro.utils.validation import check_vertex_in_range, check_vertices_in_range


class AsyncQueueFrontier(Frontier):
    """Active vertices stored in a locked MPMC deque.

    The lock is coarse but operations are O(1) appends/pops; chunked pops
    (:meth:`pop_chunk`) amortize lock traffic for bulk consumers.
    """

    kind = FrontierKind.VERTEX

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_indices(
        cls, indices: Union[np.ndarray, Iterable[int]], capacity: int
    ) -> "AsyncQueueFrontier":
        f = cls(capacity)
        f.add_many(indices)
        return f

    # -- queries ----------------------------------------------------------------------

    def size(self) -> int:
        with self._lock:
            return len(self._queue)

    def to_indices(self) -> np.ndarray:
        """Snapshot of the queued ids *without* consuming them."""
        with self._lock:
            return np.asarray(list(self._queue), dtype=VERTEX_DTYPE)

    def __contains__(self, element: int) -> bool:
        with self._lock:
            return element in self._queue

    # -- message passing (producer side) ----------------------------------------------

    def add(self, element: int) -> None:
        element = check_vertex_in_range(element, self.capacity)
        with self._lock:
            self._queue.append(element)
            self._not_empty.notify()

    def add_many(self, elements: Union[np.ndarray, Iterable[int]]) -> None:
        arr = np.asarray(
            elements if isinstance(elements, np.ndarray) else list(elements),
            dtype=VERTEX_DTYPE,
        ).ravel()
        if arr.size == 0:
            return
        check_vertices_in_range(arr, self.capacity)
        items = arr.tolist()
        with self._lock:
            self._queue.extend(items)
            self._not_empty.notify(len(items))

    # -- message passing (consumer side) ----------------------------------------------

    def pop(self, timeout: Optional[float] = None) -> Optional[int]:
        """Dequeue one vertex; block up to ``timeout`` seconds when empty.

        Returns ``None`` on timeout (and immediately when ``timeout`` is 0
        and the queue is empty) — callers use ``None`` as the "no work
        right now" signal while termination detection runs elsewhere.
        """
        with self._lock:
            if not self._queue and timeout != 0:
                self._not_empty.wait_for(lambda: bool(self._queue), timeout=timeout)
            if not self._queue:
                return None
            return int(self._queue.popleft())

    def pop_chunk(self, max_items: int) -> List[int]:
        """Dequeue up to ``max_items`` vertices without blocking."""
        if max_items <= 0:
            raise FrontierError(f"max_items must be positive, got {max_items}")
        out: List[int] = []
        with self._lock:
            while self._queue and len(out) < max_items:
                out.append(int(self._queue.popleft()))
        return out

    def drain(self) -> np.ndarray:
        """Dequeue everything at once (used to seed a BSP superstep from a
        queue-fed frontier)."""
        with self._lock:
            items = np.asarray(list(self._queue), dtype=VERTEX_DTYPE)
            self._queue.clear()
        return items

    # -- mutation --------------------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._queue.clear()

    def copy(self) -> "AsyncQueueFrontier":
        f = AsyncQueueFrontier(self.capacity)
        f.add_many(self.to_indices())
        return f
