"""Sparse vertex frontier: a vector of active ids (Listing 2).

The default shared-memory representation.  Storage is an over-allocated
NumPy array grown geometrically, so scalar ``add`` is amortized O(1)
and bulk ``add_many`` is one vectorized copy — the Python translation of
``std::vector<int> active_vertices``.

Duplicates are permitted (a vertex discovered by several parents appears
several times), exactly as in the paper's Listing 3 output frontier; the
``uniquify`` operator removes them when an algorithm needs set semantics.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.errors import FrontierError
from repro.frontier.base import Frontier, FrontierKind
from repro.types import VERTEX_DTYPE
from repro.utils.validation import check_vertex_in_range, check_vertices_in_range

_INITIAL_ROOM = 16


class SparseFrontier(Frontier):
    """Active vertices stored as a growable id vector."""

    kind = FrontierKind.VERTEX

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._data = np.empty(_INITIAL_ROOM, dtype=VERTEX_DTYPE)
        self._size = 0

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_indices(
        cls, indices: Union[np.ndarray, Iterable[int]], capacity: int
    ) -> "SparseFrontier":
        """Build a frontier holding exactly ``indices``."""
        f = cls(capacity)
        f.add_many(indices)
        return f

    # -- queries ----------------------------------------------------------------------

    def size(self) -> int:
        return self._size

    def to_indices(self) -> np.ndarray:
        return self._data[: self._size].copy()

    def indices_view(self) -> np.ndarray:
        """Zero-copy view of the active ids — operators use this on the
        hot path; callers must not grow the frontier while holding it."""
        return self._data[: self._size]

    def get_active_vertex(self, i: int) -> int:
        """The i-th active vertex (Listing 2's positional query)."""
        if not (0 <= i < self._size):
            raise FrontierError(
                f"active index {i} out of range [0, {self._size})"
            )
        return int(self._data[i])

    def __contains__(self, element: int) -> bool:
        return bool(np.any(self._data[: self._size] == element))

    # -- mutation --------------------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= self._data.shape[0]:
            return
        new_room = max(needed, self._data.shape[0] * 2)
        grown = np.empty(new_room, dtype=VERTEX_DTYPE)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def add(self, element: int) -> None:
        element = check_vertex_in_range(element, self.capacity)
        self._reserve(1)
        self._data[self._size] = element
        self._size += 1

    def add_vertex(self, v: int) -> None:
        """Alias matching Listing 2's method name."""
        self.add(v)

    def add_many(self, elements: Union[np.ndarray, Iterable[int]]) -> None:
        arr = np.asarray(
            elements if isinstance(elements, np.ndarray) else list(elements),
            dtype=VERTEX_DTYPE,
        ).ravel()
        if arr.size == 0:
            return
        check_vertices_in_range(arr, self.capacity)
        self._reserve(arr.shape[0])
        self._data[self._size : self._size + arr.shape[0]] = arr
        self._size += arr.shape[0]

    def add_many_trusted(self, arr: np.ndarray) -> None:
        """Bulk append of ids already known to be valid.

        The fused kernels call this with ids read straight out of the
        graph's own ``column_indices`` / ``row_indices`` arrays — in
        range by construction — so the range check and dtype round-trip
        of :meth:`add_many` would be pure overhead on the hot path.
        Never pass user-supplied ids here.
        """
        k = arr.shape[0]
        if k == 0:
            return
        self._reserve(k)
        self._data[self._size : self._size + k] = arr
        self._size += k

    def clear(self) -> None:
        self._size = 0

    def copy(self) -> "SparseFrontier":
        f = SparseFrontier(self.capacity)
        f.add_many(self._data[: self._size])
        return f

    # -- set maintenance ---------------------------------------------------------------

    def uniquify(self) -> "SparseFrontier":
        """Remove duplicate ids in place (sorts as a side effect).

        Returns ``self`` for chaining.
        """
        if self._size:
            unique = np.unique(self._data[: self._size])
            self._data[: unique.shape[0]] = unique
            self._size = unique.shape[0]
        return self
