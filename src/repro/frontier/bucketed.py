"""Bucketed (priority) frontier: active ids grouped by priority band.

The representation behind priority-ordered traversal optimizations —
delta-stepping's distance buckets and Gunrock's near-far split both
instantiate it.  Elements carry a float priority; the frontier exposes
the usual interface over the *current* bucket while later buckets wait,
and :meth:`advance_bucket` rotates to the next non-empty band.

Priorities may be updated by re-adding an element with a lower value;
like the sparse frontier, stale duplicates are permitted and are
filtered by the algorithm's own monotonicity check on pop (the same
lazy-deletion discipline as a binary-heap Dijkstra).
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.errors import FrontierError
from repro.frontier.base import Frontier, FrontierKind
from repro.types import VERTEX_DTYPE


class BucketedFrontier(Frontier):
    """Vertex frontier with float priorities quantized into width-``delta``
    buckets.

    ``current_bucket`` indexes the active band; ids added with a priority
    inside an earlier band are clamped into the current one (they are
    late arrivals that must still be processed).
    """

    kind = FrontierKind.VERTEX

    def __init__(self, capacity: int, delta: float) -> None:
        super().__init__(capacity)
        if delta <= 0:
            raise FrontierError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self._buckets: dict[int, list] = {}
        self.current_bucket = 0

    @classmethod
    def from_priorities(
        cls,
        ids: Union[np.ndarray, Iterable[int]],
        priorities: Union[np.ndarray, Iterable[float]],
        capacity: int,
        delta: float,
    ) -> "BucketedFrontier":
        f = cls(capacity, delta)
        f.add_with_priorities(ids, priorities)
        return f

    # -- priority insertion -------------------------------------------------------

    def bucket_of(self, priority: float) -> int:
        """Bucket index a priority falls into (clamped to current)."""
        return max(int(priority / self.delta), self.current_bucket)

    def add_with_priority(self, element: int, priority: float) -> None:
        """Activate ``element`` in the bucket its priority maps to."""
        if not (0 <= element < self.capacity):
            raise FrontierError(
                f"vertex {element} out of range [0, {self.capacity})"
            )
        self._buckets.setdefault(self.bucket_of(priority), []).append(
            int(element)
        )

    def add_with_priorities(self, ids, priorities) -> None:
        """Bulk insert: one priority per id, vectorized bucketing."""
        ids = np.asarray(
            ids if isinstance(ids, np.ndarray) else list(ids),
            dtype=VERTEX_DTYPE,
        ).ravel()
        priorities = np.asarray(
            priorities
            if isinstance(priorities, np.ndarray)
            else list(priorities),
            dtype=np.float64,
        ).ravel()
        if ids.shape != priorities.shape:
            raise FrontierError(
                f"ids and priorities must have equal length, got "
                f"{ids.shape[0]} and {priorities.shape[0]}"
            )
        if ids.size == 0:
            return
        if int(ids.min()) < 0 or int(ids.max()) >= self.capacity:
            raise FrontierError(
                f"vertex ids out of range [0, {self.capacity})"
            )
        buckets = np.maximum(
            (priorities / self.delta).astype(np.int64), self.current_bucket
        )
        for b in np.unique(buckets):
            self._buckets.setdefault(int(b), []).extend(
                ids[buckets == b].tolist()
            )

    # -- frontier interface over the current bucket ---------------------------------

    def size(self) -> int:
        """Active elements in the *current* bucket."""
        return len(self._buckets.get(self.current_bucket, []))

    def total_size(self) -> int:
        """Elements across all pending buckets."""
        return sum(len(v) for v in self._buckets.values())

    def to_indices(self) -> np.ndarray:
        return np.asarray(
            self._buckets.get(self.current_bucket, []), dtype=VERTEX_DTYPE
        )

    def __contains__(self, element: int) -> bool:
        return element in self._buckets.get(self.current_bucket, [])

    def add(self, element: int) -> None:
        """Interface add: lands in the current bucket."""
        self.add_with_priority(element, self.current_bucket * self.delta)

    def add_many(self, elements) -> None:
        for e in np.asarray(list(elements), dtype=VERTEX_DTYPE).ravel():
            self.add(int(e))

    def clear(self) -> None:
        self._buckets.clear()

    def copy(self) -> "BucketedFrontier":
        f = BucketedFrontier(self.capacity, self.delta)
        f.current_bucket = self.current_bucket
        f._buckets = {k: list(v) for k, v in self._buckets.items()}
        return f

    # -- bucket rotation ---------------------------------------------------------------

    def take_current(self) -> np.ndarray:
        """Drain and return the current bucket's ids."""
        items = self._buckets.pop(self.current_bucket, [])
        return np.asarray(items, dtype=VERTEX_DTYPE)

    def advance_bucket(self) -> bool:
        """Move to the next non-empty bucket.  False when none remain."""
        pending = [
            b
            for b, items in self._buckets.items()
            if items and b > self.current_bucket
        ]
        if not pending:
            # Maybe the current bucket itself still has late arrivals.
            if self._buckets.get(self.current_bucket):
                return True
            return False
        self.current_bucket = min(pending)
        return True

    def is_exhausted(self) -> bool:
        """No elements anywhere (the loop's convergence signal)."""
        return self.total_size() == 0
