"""Dense vertex frontier: a boolean bitmap (§IV-B).

"A dense frontier can be represented as a boolean array, where each
element is true only if the corresponding vertex or edge is active."
Membership is O(1), set-union is a vectorized OR, and — unlike the
sparse vector — duplicates are impossible by construction.  The natural
representation for the *pull* direction, which asks "is any in-neighbor
of v active?" per candidate v.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.frontier.base import Frontier, FrontierKind
from repro.types import FLAG_DTYPE, VERTEX_DTYPE
from repro.utils.validation import check_vertex_in_range, check_vertices_in_range


class DenseFrontier(Frontier):
    """Active vertices stored as a capacity-length boolean bitmap."""

    kind = FrontierKind.VERTEX

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._flags = np.zeros(capacity, dtype=FLAG_DTYPE)
        self._count = 0  # cached popcount; kept exact by all mutators

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_indices(
        cls, indices: Union[np.ndarray, Iterable[int]], capacity: int
    ) -> "DenseFrontier":
        f = cls(capacity)
        f.add_many(indices)
        return f

    @classmethod
    def from_flags(cls, flags: np.ndarray) -> "DenseFrontier":
        """Adopt an existing boolean array (copied) as the bitmap."""
        flags = np.asarray(flags, dtype=FLAG_DTYPE).ravel()
        f = cls(flags.shape[0])
        f._flags = flags.copy()
        f._count = int(flags.sum())
        return f

    # -- queries ----------------------------------------------------------------------

    def size(self) -> int:
        return self._count

    def to_indices(self) -> np.ndarray:
        return np.nonzero(self._flags)[0].astype(VERTEX_DTYPE)

    def flags_view(self) -> np.ndarray:
        """Zero-copy view of the bitmap (hot path for pull advance)."""
        return self._flags

    def __contains__(self, element: int) -> bool:
        if not (0 <= element < self.capacity):
            return False
        return bool(self._flags[element])

    # -- mutation --------------------------------------------------------------------

    def add(self, element: int) -> None:
        element = check_vertex_in_range(element, self.capacity)
        if not self._flags[element]:
            self._flags[element] = True
            self._count += 1

    def add_many(self, elements: Union[np.ndarray, Iterable[int]]) -> None:
        arr = np.asarray(
            elements if isinstance(elements, np.ndarray) else list(elements),
            dtype=VERTEX_DTYPE,
        ).ravel()
        if arr.size == 0:
            return
        check_vertices_in_range(arr, self.capacity)
        before = self._count
        self._flags[arr] = True
        # Recount only when something could have changed; the bitmap OR is
        # idempotent so duplicates in `arr` are free.
        self._count = int(self._flags.sum()) if arr.size else before

    def remove(self, element: int) -> None:
        """Deactivate one element (no-op if already inactive)."""
        element = check_vertex_in_range(element, self.capacity)
        if self._flags[element]:
            self._flags[element] = False
            self._count -= 1

    def clear(self) -> None:
        self._flags[:] = False
        self._count = 0

    def copy(self) -> "DenseFrontier":
        return DenseFrontier.from_flags(self._flags)

    # -- set algebra (bitmap-only fast paths) -------------------------------------------

    def union_(self, other: "DenseFrontier") -> "DenseFrontier":
        """In-place union with another dense frontier of equal capacity."""
        self._check_compatible(other)
        np.logical_or(self._flags, other._flags, out=self._flags)
        self._count = int(self._flags.sum())
        return self

    def difference_(self, other: "DenseFrontier") -> "DenseFrontier":
        """In-place removal of ``other``'s elements (e.g. visited mask)."""
        self._check_compatible(other)
        self._flags &= ~other._flags
        self._count = int(self._flags.sum())
        return self

    def _check_compatible(self, other: "DenseFrontier") -> None:
        if self.capacity != other.capacity:
            raise ValueError(
                f"capacity mismatch: {self.capacity} vs {other.capacity}"
            )
