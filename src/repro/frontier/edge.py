"""Edge frontier: the active set holds *edge* ids, not vertex ids.

"The frontier type, expressed as either a set of active vertices or a
set of active edges ... allows for both edge and vertex-centric
programs" (§III-C).  Edge ids are CSR positions; the companion helpers
resolve them back to (src, dst, weight) tuples in bulk.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np

from repro.errors import FrontierError
from repro.frontier.base import Frontier, FrontierKind
from repro.graph.graph import Graph
from repro.types import EDGE_DTYPE

_INITIAL_ROOM = 16


class EdgeFrontier(Frontier):
    """Active edges stored as a growable vector of CSR edge ids."""

    kind = FrontierKind.EDGE

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._data = np.empty(_INITIAL_ROOM, dtype=EDGE_DTYPE)
        self._size = 0

    @classmethod
    def from_indices(
        cls, indices: Union[np.ndarray, Iterable[int]], capacity: int
    ) -> "EdgeFrontier":
        f = cls(capacity)
        f.add_many(indices)
        return f

    @classmethod
    def all_edges(cls, graph: Graph) -> "EdgeFrontier":
        """A frontier activating every edge — the start state of
        edge-centric programs like triangle counting."""
        n = graph.n_edges
        f = cls(n)
        f.add_many(np.arange(n, dtype=EDGE_DTYPE))
        return f

    # -- queries ----------------------------------------------------------------------

    def size(self) -> int:
        return self._size

    def to_indices(self) -> np.ndarray:
        return self._data[: self._size].copy()

    def indices_view(self) -> np.ndarray:
        """Zero-copy view of the active edge ids."""
        return self._data[: self._size]

    def __contains__(self, element: int) -> bool:
        return bool(np.any(self._data[: self._size] == element))

    def resolve(
        self, graph: Graph
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bulk-resolve the active edges to ``(sources, dests, weights)``."""
        csr = graph.csr()
        eids = self._data[: self._size]
        if eids.size and (int(eids.min()) < 0 or int(eids.max()) >= graph.n_edges):
            raise FrontierError(
                f"edge ids out of range [0, {graph.n_edges}) in frontier"
            )
        return (
            csr.source_of_edges(eids),
            csr.column_indices[eids],
            csr.values[eids],
        )

    # -- mutation --------------------------------------------------------------------

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= self._data.shape[0]:
            return
        new_room = max(needed, self._data.shape[0] * 2)
        grown = np.empty(new_room, dtype=EDGE_DTYPE)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def add(self, element: int) -> None:
        if not (0 <= element < self.capacity):
            raise FrontierError(
                f"edge id {element} out of range [0, {self.capacity})"
            )
        self._reserve(1)
        self._data[self._size] = element
        self._size += 1

    def add_many(self, elements: Union[np.ndarray, Iterable[int]]) -> None:
        arr = np.asarray(
            elements if isinstance(elements, np.ndarray) else list(elements),
            dtype=EDGE_DTYPE,
        ).ravel()
        if arr.size == 0:
            return
        if int(arr.min()) < 0 or int(arr.max()) >= self.capacity:
            raise FrontierError(
                f"edge ids must lie in [0, {self.capacity}); got range "
                f"[{int(arr.min())}, {int(arr.max())}]"
            )
        self._reserve(arr.shape[0])
        self._data[self._size : self._size + arr.shape[0]] = arr
        self._size += arr.shape[0]

    def clear(self) -> None:
        self._size = 0

    def copy(self) -> "EdgeFrontier":
        f = EdgeFrontier(self.capacity)
        f.add_many(self._data[: self._size])
        return f
