"""Conversions between frontier representations, and the size heuristic.

Because every representation answers :meth:`~repro.frontier.base.Frontier.to_indices`,
conversion is mechanical; the interesting piece is
:func:`auto_select` — the "depending on the size ... of a frontier"
heuristic from §III-B that picks sparse storage for small active sets
and the dense bitmap once the active fraction crosses a threshold (the
same crossover direction-optimized BFS exploits).
"""

from __future__ import annotations

from typing import Type, Union

from repro.errors import FrontierError
from repro.frontier.base import Frontier, FrontierKind
from repro.frontier.dense import DenseFrontier
from repro.frontier.edge import EdgeFrontier
from repro.frontier.queue import AsyncQueueFrontier
from repro.frontier.sparse import SparseFrontier

#: Active-fraction threshold above which the dense bitmap wins.  Measured
#: by ``benchmarks/bench_frontier_representations.py``; the default is the
#: conventional BFS direction-switch region.
DENSE_THRESHOLD = 0.05

_NAMES = {
    "sparse": SparseFrontier,
    "dense": DenseFrontier,
    "queue": AsyncQueueFrontier,
    "edge": EdgeFrontier,
}


def make_frontier(
    representation: Union[str, Type[Frontier]], capacity: int
) -> Frontier:
    """Construct an empty frontier by representation name or class."""
    if isinstance(representation, str):
        cls = _NAMES.get(representation)
        if cls is None:
            raise FrontierError(
                f"unknown frontier representation {representation!r}; "
                f"expected one of {sorted(_NAMES)}"
            )
    else:
        cls = representation
        if not (isinstance(cls, type) and issubclass(cls, Frontier)):
            raise FrontierError(
                f"representation must be a name or Frontier subclass, got "
                f"{representation!r}"
            )
    return cls(capacity)


def convert(frontier: Frontier, target: Union[str, Type[Frontier]]) -> Frontier:
    """Rebuild ``frontier`` in the ``target`` representation.

    Vertex frontiers convert among sparse/dense/queue freely; converting
    between vertex and edge kinds is rejected because ids mean different
    things.
    """
    out = make_frontier(target, frontier.capacity)
    if out.kind != frontier.kind:
        raise FrontierError(
            f"cannot convert a {frontier.kind.value} frontier to a "
            f"{out.kind.value} frontier: element ids are not comparable"
        )
    from repro.observability.probe import active_probe

    probe = active_probe()
    if not probe.enabled:
        out.add_many(frontier.to_indices())
        return out
    # Traced: representation changes are frontier-layer work the
    # analysis engine attributes (the §III-B re-representation cost).
    with probe.span(
        "frontier:convert",
        source=type(frontier).__name__,
        target=type(out).__name__,
        size=frontier.size(),
    ):
        out.add_many(frontier.to_indices())
    return out


def auto_select(frontier: Frontier, *, threshold: float = DENSE_THRESHOLD) -> Frontier:
    """Re-represent a vertex frontier based on its active fraction.

    Returns the input unchanged when it is already in the preferred
    representation (no copy), otherwise converts: dense above
    ``threshold``, sparse below.  Queue and edge frontiers are returned
    unchanged — their choice is a communication-model decision, not a
    size decision.
    """
    if frontier.kind is not FrontierKind.VERTEX:
        return frontier
    if isinstance(frontier, AsyncQueueFrontier):
        return frontier
    want_dense = frontier.active_fraction() >= threshold
    if want_dense and not isinstance(frontier, DenseFrontier):
        return convert(frontier, DenseFrontier)
    if not want_dense and not isinstance(frontier, SparseFrontier):
        return convert(frontier, SparseFrontier)
    return frontier
