"""Frontiers: the active working set — essential component 2.

A frontier is the set of vertices (or edges) active in the current
iteration of a graph algorithm.  The paper's key move (§III-B, §IV-B) is
that one top-level interface covers *multiple underlying
representations*, and the choice of representation is what selects the
communication model:

* :class:`~repro.frontier.sparse.SparseFrontier` — a vector of active
  ids (Listing 2); shared-memory, compact when the active fraction is
  small.
* :class:`~repro.frontier.dense.DenseFrontier` — a boolean bitmap;
  shared-memory, O(1) membership, wins when most vertices are active.
* :class:`~repro.frontier.queue.AsyncQueueFrontier` — a thread-safe
  queue; elements are *messages*, enabling the asynchronous /
  message-passing models (Chen et al.'s Atos queue).
* :class:`~repro.frontier.edge.EdgeFrontier` — active *edges* instead of
  vertices, for edge-centric programs (§III-C).

:func:`~repro.frontier.convert.convert` moves between representations,
and :func:`~repro.frontier.convert.auto_select` implements the
size-based heuristic for picking one.
"""

from repro.frontier.base import Frontier, FrontierKind
from repro.frontier.sparse import SparseFrontier
from repro.frontier.dense import DenseFrontier
from repro.frontier.queue import AsyncQueueFrontier
from repro.frontier.edge import EdgeFrontier
from repro.frontier.bucketed import BucketedFrontier
from repro.frontier.convert import convert, auto_select, make_frontier

__all__ = [
    "BucketedFrontier",
    "Frontier",
    "FrontierKind",
    "SparseFrontier",
    "DenseFrontier",
    "AsyncQueueFrontier",
    "EdgeFrontier",
    "convert",
    "auto_select",
    "make_frontier",
]
