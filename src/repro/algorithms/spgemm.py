"""SpGEMM — sparse matrix-matrix multiply over the native-graph API.

The `spgemm` entry of the essentials suite and the second face of the
graph/matrix duality (§IV-A): ``C = A·B`` where A and B are graphs'
weighted adjacencies.  Squaring an adjacency counts 2-hop paths, the
building block of friend-of-friend queries and of triangle counting by
trace.

The kernel is row-wise expansion (Gustavson's algorithm) vectorized a
row-block at a time: expand each of A's rows into its B-row
contributions with one bulk gather, then collapse duplicates with a
sorted segmented reduction.  Memory stays bounded by the block's
intermediate product size.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.coo import COOMatrix
from repro.graph.csr import CSRMatrix
from repro.graph.graph import Graph
from repro.execution.policy import ExecutionPolicy, par_vector, resolve_policy
from repro.types import EDGE_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE
from repro.operators.fused import segmented_sum


def spgemm(
    a: Graph,
    b: Graph,
    *,
    policy: Union[str, ExecutionPolicy] = par_vector,
    row_block: int = 2048,
    backend: str = "native",
) -> Graph:
    """Multiply two graphs' weighted adjacency matrices; return the
    product as a new graph.

    Requires ``a.n_vertices == b.n_vertices`` (square, same id space).
    The result's edge (i, j) has weight ``Σ_k A[i,k]·B[k,j]``; zero
    products are kept out structurally (only realized pairs appear).
    """
    from repro.execution.backend import resolve_backend

    if resolve_backend(backend, "spgemm") == "linalg":
        from repro.linalg.algorithms import linalg_spgemm

        return linalg_spgemm(a, b)
    resolve_policy(policy)
    if a.n_vertices != b.n_vertices:
        raise GraphFormatError(
            f"operand vertex counts differ: {a.n_vertices} vs {b.n_vertices}"
        )
    n = a.n_vertices
    a_csr = a.csr()
    b_csr = b.csr()

    out_rows: list = []
    out_cols: list = []
    out_vals: list = []
    for start in range(0, n, row_block):
        stop = min(start + row_block, n)
        rows = np.arange(start, stop, dtype=VERTEX_DTYPE)
        # Expand A's rows: one (i, k, w_ik) triple per A-nonzero.
        i_src, k_mid, _, w_ik = a_csr.expand_vertices(rows)
        if k_mid.size == 0:
            continue
        # Expand each k into B's row k: the intermediate product.
        b_deg = b_csr.degrees_of(k_mid)
        total = int(b_deg.sum())
        if total == 0:
            continue
        i_rep = np.repeat(i_src, b_deg)
        w_rep = np.repeat(w_ik.astype(np.float64), b_deg)
        _, j_dst, _, w_kj = b_csr.expand_vertices(k_mid)
        # Note: expand_vertices on k_mid with duplicates repeats B rows in
        # the same order counts were computed, so arrays align.
        contrib = w_rep * w_kj.astype(np.float64)
        # Collapse duplicate (i, j) pairs.
        keys = i_rep.astype(np.int64) * n + j_dst.astype(np.int64)
        uniq, inverse = np.unique(keys, return_inverse=True)
        # `inverse` covers 0..len(uniq)-1 densely: bincount territory.
        summed = segmented_sum(inverse, contrib, uniq.shape[0])
        out_rows.append((uniq // n).astype(VERTEX_DTYPE))
        out_cols.append((uniq % n).astype(VERTEX_DTYPE))
        out_vals.append(summed.astype(WEIGHT_DTYPE))

    if out_rows:
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        vals = np.concatenate(out_vals)
    else:
        rows = np.empty(0, dtype=VERTEX_DTYPE)
        cols = np.empty(0, dtype=VERTEX_DTYPE)
        vals = np.empty(0, dtype=WEIGHT_DTYPE)
    coo = COOMatrix(n, n, rows, cols, vals)
    ro, ci, v = coo.to_csr_arrays()
    product = Graph(
        {"csr": CSRMatrix(n, n, ro, ci, v), "coo": coo},
        a.properties.with_(weighted=True),
    )
    return product


def count_two_hop_paths(graph: Graph, **kwargs) -> int:
    """Number of weighted 2-hop path endpoints: nnz-weighted sum of A²."""
    sq = spgemm(graph, graph, **kwargs)
    return int(round(float(sq.csr().values.sum())))
