"""Single-source shortest paths — the paper's worked example (§IV-D).

:func:`sssp` is Listing 4 transliterated: initialize distances to
infinity, seed the frontier with the source, and iterate
``neighbors_expand`` with the relaxation condition

    ``new_d = dist[src] + weight;  return atomic_min(dist[dst], new_d) > new_d``

under the chosen execution policy until the frontier empties — the
Bellman–Ford-style *label-correcting* parallel SSSP.  The same function
therefore demonstrates all four policies and both output frontier
representations.

Two further variants map the other timing models:

* :func:`sssp_async` — the asynchronous (Atos-style) version: each
  active vertex is a scheduler task relaxing its out-edges, no
  supersteps at all.  Monotone relaxation makes stale reads safe.
* :func:`sssp_delta_stepping` — the bucketed label-correcting hybrid
  (Meyer & Sanders), an "optional/extension" feature that shows the loop
  structure accommodates priority-ordered frontiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.frontier.sparse import SparseFrontier
from repro.graph.graph import Graph
from repro.loop.enactor import Enactor
from repro.loop.async_enactor import AsyncEnactor
from repro.operators.advance import neighbors_expand
from repro.operators.fused import (
    dedup_ids,
    fused_kernel_of,
    min_relax_condition,
)
from repro.operators.uniquify import uniquify
from repro.operators.conditions import scalar_condition
from repro.execution.atomics import AtomicArray
from repro.execution.policy import (
    ExecutionPolicy,
    SequencedPolicy,
    VectorPolicy,
    par_vector,
    resolve_policy,
)
from repro.types import INF, VALUE_DTYPE, VERTEX_DTYPE
from repro.utils.counters import RunStats
from repro.utils.validation import check_vertex_in_range


@dataclass
class SSSPResult:
    """Distances plus run accounting.

    ``distances[v]`` is ``INF`` (float32 max) for unreachable vertices,
    matching Listing 4's initializer.
    """

    distances: np.ndarray
    source: int
    stats: RunStats = field(default_factory=RunStats)

    def reached(self) -> np.ndarray:
        """Boolean mask of vertices with a finite distance."""
        return self.distances < INF


def sssp(
    graph: Graph,
    source: int,
    *,
    policy: Union[str, ExecutionPolicy] = par_vector,
    direction: str = "push",
    output_representation: str = "sparse",
    deduplicate_frontier: bool = True,
    resilience=None,
    backend: str = "native",
) -> SSSPResult:
    """Bulk-synchronous SSSP via the native-graph abstraction (Listing 4).

    Parameters
    ----------
    graph:
        Weighted graph (unit weights degrade this to BFS distances).
    source:
        Source vertex id.
    policy:
        Execution policy for the advance operator; the algorithm text is
        identical for all of them.
    direction:
        ``"push"``, ``"pull"``, or ``"auto"`` (Beamer heuristic per
        superstep) — forwarded to the advance; results are identical in
        every mode because min-relaxation is direction-agnostic.
    output_representation:
        Frontier representation produced by the advance each superstep
        (``"auto"`` switches sparse↔dense on frontier density).
    deduplicate_frontier:
        Uniquify between supersteps (saves re-relaxations; disable to
        observe the raw Listing 4 behavior, which is still correct).
    resilience:
        Optional :class:`~repro.resilience.ResiliencePolicy` — superstep
        retry under chaos plus checkpointing of the distance array.
    backend:
        ``"native"`` (frontier enactor), ``"linalg"`` ((min, +) matrix
        products), or ``"auto"``.
    """
    from repro.execution.backend import resolve_backend

    if resolve_backend(backend, "sssp") == "linalg":
        from repro.linalg.algorithms import linalg_sssp

        return linalg_sssp(graph, source, direction=direction)
    policy = resolve_policy(policy)
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)

    # Initialize data (Listing 4).
    dist = np.full(n, INF, dtype=VALUE_DTYPE)
    dist[source] = 0.0

    frontier = SparseFrontier.from_indices([source], n)

    if isinstance(policy, (SequencedPolicy,)) or (
        not isinstance(policy, VectorPolicy) and policy.parallel
    ):
        # Scalar-condition path: threaded/sequential policies relax via
        # the striped-lock atomic, Listing 4's atomic::min verbatim.
        atomic_dist = AtomicArray(dist)

        @scalar_condition
        def condition(src, dst, edge, weight):
            new_d = dist[src] + weight
            curr_d = atomic_dist.min_at(dst, new_d)
            return new_d < curr_d

    else:
        # Bulk + fused: same relaxation, with the single-pass kernel
        # attached so the vectorized policy skips the generic pipeline.
        condition = min_relax_condition(dist)

    enactor = Enactor(graph)

    # The fused kernel emits deduplicated frontiers; the explicit
    # uniquify pass is only needed on the unfused routes.
    emits_sets = (
        isinstance(policy, VectorPolicy)
        and fused_kernel_of(condition) is not None
    )

    def step(f, state):
        out = neighbors_expand(
            policy,
            graph,
            f,
            condition,
            direction=direction,
            output_representation=output_representation,
            workspace=enactor.workspace,
        )
        if deduplicate_frontier and not emits_sets:
            out = uniquify(policy, out, workspace=enactor.workspace)
        return out

    stats = enactor.run(
        frontier, step, resilience=resilience, state_arrays={"dist": dist}
    )
    return SSSPResult(distances=dist, source=source, stats=stats)


def sssp_async(
    graph: Graph,
    source: int,
    *,
    num_workers: int = 4,
    timeout: Optional[float] = 120.0,
    resilience=None,
) -> SSSPResult:
    """Asynchronous SSSP: per-vertex relaxation tasks to quiescence.

    Each task relaxes every out-edge of its vertex against the shared
    atomic distance array and re-activates improved neighbors by pushing
    them back on the queue — message-passing semantics where the queue
    entry "vertex v" is the message "your distance may have improved".
    """
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    dist = np.full(n, INF, dtype=VALUE_DTYPE)
    dist[source] = 0.0
    atomic_dist = AtomicArray(dist)
    csr = graph.csr()

    def process(v: int, push) -> None:
        base = atomic_dist.load(v)
        if base >= INF:
            return
        nbrs = csr.get_neighbors(v)
        wts = csr.get_neighbor_weights(v)
        for k in range(nbrs.shape[0]):
            u = int(nbrs[k])
            new_d = base + float(wts[k])
            if new_d < atomic_dist.min_at(u, new_d):
                push(u)

    enactor = AsyncEnactor(
        graph, num_workers=num_workers, timeout=timeout, resilience=resilience
    )
    enactor.run([source], process)
    # Async has no supersteps; the enactor records the whole run as one
    # pseudo-iteration (tasks processed, edges expanded, wall seconds) in
    # the same RunStats shape the BSP enactors produce.
    return SSSPResult(distances=dist, source=source, stats=enactor.last_stats)


def sssp_delta_stepping(
    graph: Graph,
    source: int,
    *,
    delta: Optional[float] = None,
    policy: Union[str, ExecutionPolicy] = par_vector,
) -> SSSPResult:
    """Delta-stepping SSSP: bucketed frontiers between Dijkstra and
    Bellman–Ford.

    Vertices are settled bucket by bucket (bucket i holds tentative
    distances in ``[i·delta, (i+1)·delta)``); within a bucket, light
    edges (w < delta) iterate to a fixed point, then heavy edges relax
    once.  ``delta`` defaults to the mean edge weight, the standard
    heuristic.
    """
    policy = resolve_policy(policy)
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    csr = graph.csr()
    if delta is None:
        delta = float(csr.values.mean()) if graph.n_edges else 1.0
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")

    dist = np.full(n, INF, dtype=VALUE_DTYPE)
    dist[source] = 0.0
    light = csr.values < delta
    heavy = ~light
    stats = RunStats()

    # Edge-masked fused relaxations (push-only kernels: the mask indexes
    # CSR edge ids).  Identical semantics to the handwritten
    # where(mask, new_d, INF) conditions under every policy.
    relax_light = min_relax_condition(dist, edge_mask=light)
    relax_heavy = min_relax_condition(dist, edge_mask=heavy)

    from repro.execution.workspace import Workspace
    from repro.utils.counters import IterationStats
    import time as _time

    workspace = Workspace()
    bucket_idx = 0
    finalized = np.zeros(n, dtype=bool)
    # Fused kernels emit deduplicated frontiers already.
    emits_sets = (
        isinstance(policy, VectorPolicy)
        and fused_kernel_of(relax_light) is not None
    )

    while True:
        lo = bucket_idx * delta
        hi = lo + delta
        candidates = (dist >= lo) & (dist < hi) & ~finalized
        active = np.nonzero(candidates)[0]
        if active.size == 0:
            pending = dist[~finalized & (dist < INF)]
            if pending.size == 0:
                break
            bucket_idx = int(pending.min() // delta)
            continue
        t0 = _time.perf_counter()
        edges_touched = 0
        # Light-edge fixed point.  A vertex re-enters `active` every time
        # its distance improves while staying in this bucket (the classic
        # re-insertion rule); R accumulates everything ever processed here
        # and feeds the heavy phase.
        in_r = np.zeros(n, dtype=bool)
        while active.size:
            in_r[active] = True
            f = SparseFrontier(n)
            f.add_many_trusted(active.astype(VERTEX_DTYPE, copy=False))
            edges_touched += int(csr.degrees_of(f.indices_view()).sum())
            out = neighbors_expand(
                policy, graph, f, relax_light, workspace=workspace
            )
            out_ids = (
                out.indices_view()
                if isinstance(out, SparseFrontier)
                else out.to_indices()
            )
            touched = (
                out_ids if emits_sets else dedup_ids(out_ids, n, workspace)
            )
            if touched.size:
                # Re-admit only vertices whose (just-relaxed) distance
                # still lands in this bucket — a gather over the touched
                # set, not a fresh full-length bucket mask per round.
                dt = dist[touched]
                active = touched[(dt >= lo) & (dt < hi) & ~finalized[touched]]
            else:
                active = touched
        # Distances of this bucket are now final; one heavy relaxation
        # from R completes the bucket.
        members = np.nonzero(in_r)[0]
        finalized[members] = True
        f = SparseFrontier.from_indices(members, n)
        edges_touched += int(csr.degrees_of(f.indices_view()).sum())
        neighbors_expand(policy, graph, f, relax_heavy, workspace=workspace)
        stats.record(
            IterationStats(
                iteration=bucket_idx,
                frontier_size=int(members.size),
                edges_touched=edges_touched,
                seconds=_time.perf_counter() - t0,
            )
        )
        bucket_idx += 1
    stats.converged = True
    return SSSPResult(distances=dist, source=source, stats=stats)
