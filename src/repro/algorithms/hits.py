"""HITS hubs-and-authorities — the push/pull pair in one algorithm.

Each iteration needs *both* graph orientations: authority scores pull
over in-edges (CSC), hub scores push over out-edges (CSR) — the dual-representation cost
§III-C accepts "at the cost of memory space" pays off here, since
neither direction alone suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.graph.graph import Graph
from repro.execution.policy import ExecutionPolicy, par_vector, resolve_policy
from repro.utils.counters import RunStats
from repro.operators.fused import segmented_sum


@dataclass
class HITSResult:
    """Hub and authority vectors (L2-normalized), iteration count."""

    hubs: np.ndarray
    authorities: np.ndarray
    iterations: int
    converged: bool
    stats: RunStats = field(default_factory=RunStats)


def hits(
    graph: Graph,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    policy: Union[str, ExecutionPolicy] = par_vector,
    backend: str = "native",
) -> HITSResult:
    """Kleinberg's HITS on the directed graph.

    ``auth = Aᵀ·hub`` (pull) then ``hub = A·auth`` (push), L2-normalized
    each round; stops when both vectors move less than ``tolerance`` in
    max-norm.
    """
    from repro.execution.backend import resolve_backend

    if resolve_backend(backend, "hits") == "linalg":
        from repro.linalg.algorithms import linalg_hits

        return linalg_hits(
            graph, max_iterations=max_iterations, tolerance=tolerance
        )
    resolve_policy(policy)
    n = graph.n_vertices
    if n == 0:
        empty = np.empty(0)
        return HITSResult(empty, empty, 0, True)
    coo = graph.coo()
    hubs = np.full(n, 1.0 / np.sqrt(n), dtype=np.float64)
    auth = hubs.copy()
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_auth = segmented_sum(
            coo.cols, coo.vals.astype(np.float64) * hubs[coo.rows], n
        )
        norm = np.linalg.norm(new_auth)
        if norm > 0:
            new_auth /= norm
        new_hubs = segmented_sum(
            coo.rows, coo.vals.astype(np.float64) * new_auth[coo.cols], n
        )
        norm = np.linalg.norm(new_hubs)
        if norm > 0:
            new_hubs /= norm
        delta = max(
            float(np.abs(new_auth - auth).max(initial=0.0)),
            float(np.abs(new_hubs - hubs).max(initial=0.0)),
        )
        auth, hubs = new_auth, new_hubs
        if delta <= tolerance:
            converged = True
            break
    stats = RunStats()
    stats.converged = converged
    return HITSResult(
        hubs=hubs,
        authorities=auth,
        iterations=iterations,
        converged=converged,
        stats=stats,
    )
