"""Greedy parallel graph coloring (Jones–Plassmann with random priorities).

Each round, the frontier of uncolored vertices is *filtered* for local
priority maxima among uncolored neighbors; those winners are an
independent set, colored simultaneously with their smallest feasible
color, and removed.  The loop converges when every vertex is colored —
a filter-driven algorithm complementing the advance-driven traversals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.graph.graph import Graph
from repro.graph.builder import as_undirected_simple
from repro.execution.policy import ExecutionPolicy, par_vector, resolve_policy
from repro.utils.counters import IterationStats, RunStats
from repro.utils.rng import SeedLike, resolve_rng

#: Color value for not-yet-colored vertices.
UNCOLORED = -1


@dataclass
class ColoringResult:
    """Colors (0-based), color count, validity accounting."""

    colors: np.ndarray
    n_colors: int
    rounds: int
    stats: RunStats = field(default_factory=RunStats)


def graph_coloring(
    graph: Graph,
    *,
    policy: Union[str, ExecutionPolicy] = par_vector,
    seed: SeedLike = 0,
) -> ColoringResult:
    """Color vertices so no edge is monochromatic (undirected semantics).

    Returns a proper coloring (tests verify) using, empirically,
    Δ+1 or fewer colors.  Deterministic given ``seed``.
    """
    resolve_policy(policy)
    rng = resolve_rng(seed)
    n = graph.n_vertices
    # A proper coloring constrains both endpoints of every edge, so a
    # directed (or self-looped) input must be symmetrized first — CSR
    # alone would hide in-neighbors and produce monochromatic arcs.
    csr = as_undirected_simple(graph).csr()
    priorities = rng.permutation(n).astype(np.int64)
    colors = np.full(n, UNCOLORED, dtype=np.int64)
    stats = RunStats()
    import time as _time

    uncolored = np.arange(n, dtype=np.int64)
    rounds = 0
    while uncolored.size:
        t0 = _time.perf_counter()
        # Independent set: vertices whose priority beats every uncolored
        # neighbor's.
        srcs, dsts, _, _ = csr.expand_vertices(uncolored)
        edges_touched = srcs.shape[0]
        contested = colors[dsts] == UNCOLORED
        # Max uncolored-neighbor priority per source.
        best_rival = np.full(n, -1, dtype=np.int64)
        if np.any(contested):
            np.maximum.at(
                best_rival, srcs[contested], priorities[dsts[contested]]
            )
        winners = uncolored[priorities[uncolored] > best_rival[uncolored]]
        # Color each winner with its smallest feasible color.  Winners are
        # independent (no two adjacent), so no intra-round conflicts.
        for v in winners:
            v = int(v)
            nbr_colors = colors[csr.get_neighbors(v)]
            used = np.unique(nbr_colors[nbr_colors >= 0])
            c = 0
            for u in used:
                if u == c:
                    c += 1
                elif u > c:
                    break
            colors[v] = c
        uncolored = uncolored[colors[uncolored] == UNCOLORED]
        stats.record(
            IterationStats(
                iteration=rounds,
                frontier_size=int(winners.size),
                edges_touched=edges_touched,
                seconds=_time.perf_counter() - t0,
            )
        )
        rounds += 1
        if winners.size == 0 and uncolored.size:
            # Cannot happen with distinct priorities; guard regardless.
            raise RuntimeError("coloring made no progress")
    stats.converged = True
    n_colors = int(colors.max(initial=-1)) + 1
    return ColoringResult(
        colors=colors, n_colors=n_colors, rounds=rounds, stats=stats
    )


def verify_coloring(graph: Graph, colors: np.ndarray) -> bool:
    """Whether no edge joins two equal colors (ignoring self-loops)."""
    coo = graph.coo()
    off_diagonal = coo.rows != coo.cols
    return not bool(
        np.any(colors[coo.rows[off_diagonal]] == colors[coo.cols[off_diagonal]])
    )
