"""Borůvka minimum spanning forest — bulk-parallel component merging.

Each round (superstep) every component selects its minimum-weight
outgoing edge — a vectorized segmented arg-min over the edge list —
those edges join the forest, and the touched components merge by
pointer-jumping.  Rounds halve the component count, so the loop
converges in O(log V) supersteps: a textbook showcase of the BSP loop
over a *component* frontier rather than a vertex frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph
from repro.execution.policy import ExecutionPolicy, par_vector, resolve_policy
from repro.utils.counters import IterationStats, RunStats


@dataclass
class MSTResult:
    """Selected edges (as COO triples), total weight, component labels."""

    edge_sources: np.ndarray
    edge_destinations: np.ndarray
    edge_weights: np.ndarray
    total_weight: float
    labels: np.ndarray
    n_components: int
    stats: RunStats = field(default_factory=RunStats)

    @property
    def n_edges(self) -> int:
        return int(self.edge_sources.shape[0])


def boruvka_mst(
    graph: Graph,
    *,
    policy: Union[str, ExecutionPolicy] = par_vector,
) -> MSTResult:
    """Minimum spanning forest of an undirected weighted graph.

    Requires an undirected graph (both arcs stored); ties between equal
    weights are broken by edge index, which keeps every round's choice
    deterministic and cycle-free.
    """
    resolve_policy(policy)
    if graph.properties.directed:
        raise GraphFormatError("boruvka_mst requires an undirected graph")
    n = graph.n_vertices
    coo = graph.coo()
    rows = coo.rows.astype(np.int64)
    cols = coo.cols.astype(np.int64)
    weights = coo.vals.astype(np.float64)
    m = rows.shape[0]

    labels = np.arange(n, dtype=np.int64)
    # Canonical per-undirected-edge key: both arcs of one edge share it.
    # Tie-breaking on this key (not the arc index) gives every component a
    # consistent total order over edges, which is what excludes cycles in
    # the picked set when weights tie.
    pair_key = np.minimum(rows, cols) * n + np.maximum(rows, cols)
    picked_u: list = []
    picked_v: list = []
    picked_w: list = []
    stats = RunStats()
    import time as _time

    iteration = 0
    while True:
        t0 = _time.perf_counter()
        cu = labels[rows]
        cv = labels[cols]
        cross = cu != cv
        if not np.any(cross):
            break
        # Segmented arg-min: per component, its lightest outgoing edge.
        # Order candidates by (component, weight, canonical pair key); the
        # first row per component wins.
        cand = np.nonzero(cross)[0]
        order = np.lexsort((pair_key[cand], weights[cand], cu[cand]))
        sorted_comp = cu[cand][order]
        first = np.empty(sorted_comp.shape[0], dtype=bool)
        first[0] = True
        first[1:] = sorted_comp[1:] != sorted_comp[:-1]
        winners = cand[order][first]

        # Record each undirected edge once (smaller endpoint first); both
        # arcs may win for their own components, so dedup by pair key.
        u = np.minimum(rows[winners], cols[winners])
        v = np.maximum(rows[winners], cols[winners])
        keys = u * n + v
        _, keep = np.unique(keys, return_index=True)
        picked_u.append(u[keep])
        picked_v.append(v[keep])
        picked_w.append(weights[winners][keep])

        # Merge: hook the larger label onto the smaller along each winner,
        # then pointer-jump to full compression.
        lu = labels[rows[winners]]
        lv = labels[cols[winners]]
        lo = np.minimum(lu, lv)
        hi = np.maximum(lu, lv)
        np.minimum.at(labels, hi, lo)
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels[:] = jumped
        stats.record(
            IterationStats(
                iteration=iteration,
                frontier_size=int(winners.shape[0]),
                edges_touched=m,
                seconds=_time.perf_counter() - t0,
            )
        )
        iteration += 1
    stats.converged = True

    if picked_u:
        eu = np.concatenate(picked_u)
        ev = np.concatenate(picked_v)
        ew = np.concatenate(picked_w)
        # Rounds may re-pick a pair already merged through another path in
        # an earlier round; final dedup by pair keeps the forest exact.
        keys = eu * n + ev
        _, keep = np.unique(keys, return_index=True)
        eu, ev, ew = eu[keep], ev[keep], ew[keep]
    else:
        eu = np.empty(0, dtype=np.int64)
        ev = np.empty(0, dtype=np.int64)
        ew = np.empty(0, dtype=np.float64)
    n_components = int(np.unique(labels).shape[0])
    return MSTResult(
        edge_sources=eu,
        edge_destinations=ev,
        edge_weights=ew,
        total_weight=float(ew.sum()),
        labels=labels,
        n_components=n_components,
        stats=stats,
    )
