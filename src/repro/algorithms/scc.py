"""Strongly connected components — parallel FW-BW-Trim.

The Fleischer–Hendrickson–Pinar algorithm, the standard parallel SCC
(weak connectivity's directed sibling): repeatedly

1. **Trim** trivial SCCs (vertices with zero in- or out-degree inside
   the remaining subgraph) — a filter fixed point;
2. pick a pivot and compute its **forward** reachable set (BFS on the
   CSR) and **backward** reachable set (BFS on the CSC) within the
   remaining vertices;
3. their intersection is one SCC; the three disjoint remainders
   (forward-only, backward-only, unreached) contain no SCC spanning
   them, so each recurses independently.

Both BFS directions reuse the push advance machinery over masked
vertex sets; the recursion is managed with an explicit worklist.
Validated against Tarjan (:func:`tarjan_scc`) and networkx.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.graph.graph import Graph
from repro.types import VERTEX_DTYPE
from repro.utils.counters import IterationStats, RunStats


@dataclass
class SCCResult:
    """Component labels (smallest member id per SCC) and counts."""

    labels: np.ndarray
    n_components: int
    stats: RunStats = field(default_factory=RunStats)

    def component_sizes(self) -> np.ndarray:
        """Size of each SCC, over compacted component ids."""
        _, counts = np.unique(self.labels, return_counts=True)
        return counts


def _masked_reachable(
    offsets: np.ndarray,
    targets: np.ndarray,
    start: int,
    active: np.ndarray,
) -> np.ndarray:
    """Vertices reachable from ``start`` using only ``active`` vertices.

    Level-synchronous frontier sweep with the bulk multi-range gather
    (the same kernel as advance, specialized to a boolean visited set).
    """
    visited = np.zeros(active.shape[0], dtype=bool)
    visited[start] = True
    frontier = np.asarray([start], dtype=np.int64)
    while frontier.size:
        starts = offsets[frontier]
        counts = offsets[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        cum = np.cumsum(counts)
        base = np.repeat(starts - (cum - counts), counts)
        positions = np.arange(total, dtype=np.int64) + base
        neighbors = targets[positions].astype(np.int64)
        fresh = active[neighbors] & ~visited[neighbors]
        frontier = np.unique(neighbors[fresh])
        visited[frontier] = True
    return visited


def strongly_connected_components(graph: Graph) -> SCCResult:
    """FW-BW-Trim SCC labeling of a directed graph."""
    n = graph.n_vertices
    csr = graph.csr()
    csc = graph.csc()
    fwd_offsets = csr.row_offsets.astype(np.int64)
    fwd_targets = csr.column_indices.astype(np.int64)
    bwd_offsets = csc.col_offsets.astype(np.int64)
    bwd_targets = csc.row_indices.astype(np.int64)

    labels = np.full(n, -1, dtype=np.int64)
    stats = RunStats()
    import time as _time

    worklist: List[np.ndarray] = []
    if n:
        worklist.append(np.arange(n, dtype=np.int64))
    iteration = 0
    while worklist:
        vertices = worklist.pop()
        if vertices.size == 0:
            continue
        t0 = _time.perf_counter()
        active = np.zeros(n, dtype=bool)
        active[vertices] = True

        # Trim: peel vertices with no in- or out-neighbor inside the
        # active set — each is a singleton SCC.
        while True:
            verts = np.nonzero(active)[0]
            if verts.size == 0:
                break
            has_out = np.zeros(n, dtype=bool)
            has_in = np.zeros(n, dtype=bool)
            for v in verts:
                v = int(v)
                outs = fwd_targets[fwd_offsets[v] : fwd_offsets[v + 1]]
                if np.any(active[outs] & (outs != v)):
                    has_out[v] = True
                ins = bwd_targets[bwd_offsets[v] : bwd_offsets[v + 1]]
                if np.any(active[ins] & (ins != v)):
                    has_in[v] = True
            trivial = verts[~(has_out[verts] & has_in[verts])]
            if trivial.size == 0:
                break
            labels[trivial] = trivial  # singleton SCCs
            active[trivial] = False
        remaining = np.nonzero(active)[0]
        if remaining.size == 0:
            stats.record(
                IterationStats(iteration, int(vertices.size), 0,
                               _time.perf_counter() - t0)
            )
            iteration += 1
            continue

        pivot = int(remaining[0])
        fwd = _masked_reachable(fwd_offsets, fwd_targets, pivot, active)
        bwd = _masked_reachable(bwd_offsets, bwd_targets, pivot, active)
        scc_mask = fwd & bwd & active
        members = np.nonzero(scc_mask)[0]
        labels[members] = int(members.min())

        for sub_mask in (
            fwd & ~scc_mask & active,
            bwd & ~scc_mask & active,
            active & ~fwd & ~bwd,
        ):
            sub = np.nonzero(sub_mask)[0]
            if sub.size:
                worklist.append(sub.astype(np.int64))
        stats.record(
            IterationStats(
                iteration,
                int(vertices.size),
                0,
                _time.perf_counter() - t0,
            )
        )
        iteration += 1
    stats.converged = True
    n_components = int(np.unique(labels).shape[0]) if n else 0
    return SCCResult(labels=labels, n_components=n_components, stats=stats)


def tarjan_scc(graph: Graph) -> np.ndarray:
    """Iterative Tarjan SCC — the sequential textbook oracle.

    Returns labels canonicalized to the smallest member id, directly
    comparable to :func:`strongly_connected_components`.
    """
    n = graph.n_vertices
    csr = graph.csr()
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = np.full(n, -1, dtype=np.int64)
    stack: List[int] = []
    counter = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # Iterative DFS: (vertex, next-edge-position) frames.
        frames = [(root, int(csr.row_offsets[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while frames:
            v, pos = frames[-1]
            if pos < int(csr.row_offsets[v + 1]):
                frames[-1] = (v, pos + 1)
                w = int(csr.column_indices[pos])
                if index[w] == -1:
                    index[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    frames.append((w, int(csr.row_offsets[w])))
                elif on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            else:
                frames.pop()
                if frames:
                    parent = frames[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[v])
                if lowlink[v] == index[v]:
                    members = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        members.append(w)
                        if w == v:
                            break
                    label = min(members)
                    for w in members:
                        comp[w] = label
    return comp
