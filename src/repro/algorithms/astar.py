"""A* single-pair shortest path — goal-directed search with heuristics.

The routing-engine companion to the SSSP family: given per-vertex
coordinates (a road network's geometry, or the lattice positions our
grid generator implies), A* expands vertices in order of
``g(v) + h(v)`` where ``h`` is an admissible distance-to-goal lower
bound, settling far fewer vertices than Dijkstra while returning the
same optimal distance — the classic speed/optimality result the tests
verify on both counts.

Heuristics provided: :func:`euclidean_heuristic` from coordinate
arrays, :func:`grid_heuristic` for our ``grid_2d`` vertex numbering,
and ``h = 0`` degrades A* to plain Dijkstra (also verified).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.graph.graph import Graph
from repro.types import INF, INVALID_VERTEX
from repro.utils.counters import RunStats
from repro.utils.validation import check_vertex_in_range

#: ``h(vertex) -> float`` — admissible estimate of remaining distance.
Heuristic = Callable[[int], float]


@dataclass
class AStarResult:
    """Optimal distance, path, and search-effort accounting."""

    distance: float
    path: list
    settled: int
    source: int
    target: int
    stats: RunStats = field(default_factory=RunStats)

    @property
    def found(self) -> bool:
        """Whether the target is reachable."""
        return self.distance < INF


def euclidean_heuristic(
    xs: np.ndarray, ys: np.ndarray, target: int, *, scale: float = 1.0
) -> Heuristic:
    """Straight-line distance to ``target`` from coordinate arrays.

    ``scale`` must lower-bound the cost-per-unit-distance of edges for
    admissibility (use the minimum edge weight / unit length).
    """
    tx, ty = float(xs[target]), float(ys[target])

    def h(v: int) -> float:
        dx = float(xs[v]) - tx
        dy = float(ys[v]) - ty
        return scale * float(np.hypot(dx, dy))

    return h


def grid_heuristic(cols: int, target: int, *, min_edge_weight: float = 1.0) -> Heuristic:
    """Manhattan-distance heuristic for ``grid_2d`` vertex numbering
    (vertex v sits at row ``v // cols``, column ``v % cols``)."""
    tr, tc = target // cols, target % cols

    def h(v: int) -> float:
        return min_edge_weight * (abs(v // cols - tr) + abs(v % cols - tc))

    return h


def astar(
    graph: Graph,
    source: int,
    target: int,
    *,
    heuristic: Optional[Heuristic] = None,
) -> AStarResult:
    """Optimal source→target path under an admissible heuristic.

    With ``heuristic=None`` this is exactly Dijkstra restricted to one
    target (early exit on settling it).  Requires non-negative weights.
    """
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    target = check_vertex_in_range(target, n)
    h = heuristic or (lambda v: 0.0)
    csr = graph.csr()

    dist = np.full(n, INF, dtype=np.float64)
    parent = np.full(n, INVALID_VERTEX, dtype=np.int64)
    dist[source] = 0.0
    settled = np.zeros(n, dtype=bool)
    heap = [(h(source), 0.0, source)]
    n_settled = 0
    while heap:
        _, d, v = heapq.heappop(heap)
        if settled[v]:
            continue
        settled[v] = True
        n_settled += 1
        if v == target:
            break
        start, stop = int(csr.row_offsets[v]), int(csr.row_offsets[v + 1])
        for k in range(start, stop):
            u = int(csr.column_indices[k])
            nd = d + float(csr.values[k])
            if nd < dist[u]:
                dist[u] = nd
                parent[u] = v
                heapq.heappush(heap, (nd + h(u), nd, u))

    path: list = []
    if dist[target] < INF:
        v = target
        while v != INVALID_VERTEX:
            path.append(int(v))
            if v == source:
                break
            v = int(parent[v])
        path.reverse()
    stats = RunStats()
    stats.converged = True
    return AStarResult(
        distance=float(dist[target]),
        path=path,
        settled=n_settled,
        source=source,
        target=target,
        stats=stats,
    )
