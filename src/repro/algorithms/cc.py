"""Connected components: frontier-driven label propagation, plus a
pointer-jumping (Shiloach–Vishkin style) variant.

Label propagation is the abstraction-native formulation: every vertex
holds a component label (initially its own id); active vertices push
their label to neighbors via the advance condition "my label is smaller
than yours", and exactly the vertices whose labels dropped form the next
frontier — converging when the frontier empties, like SSSP.

The pointer-jumping variant (``method="hooking"``) is the classic
parallel CC: alternate hooking (adopt the smaller neighboring root) and
shortcutting (halve trees by ``label[v] = label[label[v]]``), with every
round a bulk vectorized step.  Both agree with the union-find baseline
on every input (tests).

For directed graphs both methods compute *weakly* connected components
(edges are treated as undirected by consulting CSR and CSC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.frontier.sparse import SparseFrontier
from repro.graph.graph import Graph
from repro.loop.enactor import Enactor
from repro.operators.advance import neighbors_expand
from repro.operators.fused import dedup_ids, min_relax_condition
from repro.execution.policy import (
    ExecutionPolicy,
    par_vector,
    resolve_policy,
)
from repro.types import VERTEX_DTYPE
from repro.utils.counters import RunStats


@dataclass
class CCResult:
    """Component labels (root vertex id per component) and counts."""

    labels: np.ndarray
    n_components: int
    stats: RunStats = field(default_factory=RunStats)

    def component_sizes(self) -> np.ndarray:
        """Size of each component, indexed by compacted component id."""
        _, counts = np.unique(self.labels, return_counts=True)
        return counts


def _undirected_edges(graph: Graph):
    """Both arc directions of every edge (for weak connectivity)."""
    coo = graph.coo()
    if graph.properties.directed:
        rows = np.concatenate([coo.rows, coo.cols])
        cols = np.concatenate([coo.cols, coo.rows])
        return rows, cols
    return coo.rows, coo.cols


def connected_components(
    graph: Graph,
    *,
    method: str = "label_propagation",
    policy: Union[str, ExecutionPolicy] = par_vector,
    resilience=None,
    backend: str = "native",
) -> CCResult:
    """Weakly connected components.

    ``method`` is ``"label_propagation"`` (frontier/operator formulation)
    or ``"hooking"`` (pointer-jumping bulk formulation).  ``resilience``
    (label propagation only — hooking has no enactor loop to protect)
    adds superstep retry under chaos and label-array checkpointing.
    ``backend="linalg"`` runs min-label propagation as semiring matrix
    products instead of the frontier enactor.
    """
    from repro.execution.backend import resolve_backend

    if resolve_backend(backend, "cc") == "linalg":
        from repro.linalg.algorithms import linalg_cc

        return linalg_cc(graph)
    policy = resolve_policy(policy)
    if method == "label_propagation":
        return _cc_label_propagation(graph, policy, resilience=resilience)
    if method == "hooking":
        return _cc_hooking(graph)
    raise ValueError(
        f"method must be 'label_propagation' or 'hooking', got {method!r}"
    )


def _cc_label_propagation(graph: Graph, policy, *, resilience=None) -> CCResult:
    n = graph.n_vertices
    labels = np.arange(n, dtype=np.int64)
    # Weak connectivity on directed graphs needs reverse edges too; the
    # reverse graph shares the same labels array.
    reverse = graph.reverse() if graph.properties.directed else None

    # Unweighted min-relax on the label array — the CC propagation is the
    # same condition shape as SSSP's, so it rides the same fused kernel.
    propagate = min_relax_condition(labels, weighted=False)

    enactor = Enactor(graph)

    def step(frontier, state):
        out = neighbors_expand(
            policy, graph, frontier, propagate, workspace=enactor.workspace
        )
        merged = out.to_indices()
        if reverse is not None:
            out_r = neighbors_expand(
                policy, reverse, frontier, propagate, workspace=enactor.workspace
            )
            merged = np.concatenate([merged, out_r.to_indices()])
        nxt = SparseFrontier(n)
        nxt.add_many_trusted(dedup_ids(merged, n, enactor.workspace))
        return nxt

    frontier = SparseFrontier.from_indices(np.arange(n, dtype=VERTEX_DTYPE), n)
    stats = enactor.run(
        frontier, step, resilience=resilience, state_arrays={"labels": labels}
    )
    # Labels have converged to the component minimum (a fixed point of
    # min-propagation over connected neighbors).
    n_components = int(np.unique(labels).shape[0])
    return CCResult(labels=labels, n_components=n_components, stats=stats)


def _cc_hooking(graph: Graph) -> CCResult:
    n = graph.n_vertices
    labels = np.arange(n, dtype=np.int64)
    rows, cols = _undirected_edges(graph)
    stats = RunStats()
    import time as _time
    from repro.utils.counters import IterationStats

    iteration = 0
    while True:
        t0 = _time.perf_counter()
        changed = False
        # Hooking: every edge tries to lower the root of its endpoint's
        # current root — grafting trees onto smaller-labeled ones.
        lu = labels[rows]
        lv = labels[cols]
        smaller = np.minimum(lu, lv)
        larger = np.maximum(lu, lv)
        mask = lu != lv
        if np.any(mask):
            old = labels[larger[mask]].copy()
            np.minimum.at(labels, larger[mask], smaller[mask])
            changed = bool(np.any(labels[larger[mask]] < old))
        # Shortcutting: pointer jumping until all trees are stars.
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels[:] = jumped
            changed = True
        stats.record(
            IterationStats(
                iteration=iteration,
                frontier_size=int(np.count_nonzero(mask)),
                edges_touched=int(rows.shape[0]),
                seconds=_time.perf_counter() - t0,
            )
        )
        iteration += 1
        if not changed:
            break
    stats.converged = True
    n_components = int(np.unique(labels).shape[0])
    return CCResult(labels=labels, n_components=n_components, stats=stats)
