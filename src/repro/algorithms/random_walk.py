"""Batched random walks — the sampling workload of modern graph stacks.

Runs W independent walks in lockstep: one superstep advances *every*
walk by one hop with a single vectorized gather (uniform or
weight-proportional next-hop choice).  Walks that hit a sink vertex
terminate early and are padded with :data:`INVALID`.  This is the
"frontier of walkers" reading of the abstraction: the active set is the
set of live walks, shrinking as walks die — another frontier-convergent
loop, just not over vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int

#: Padding value for steps after a walk terminated in a sink.
INVALID = -1


@dataclass
class WalkResult:
    """Walk matrix of shape (n_walks, length + 1); row w is walk w's
    vertex sequence, INVALID-padded after termination."""

    walks: np.ndarray
    terminated_early: np.ndarray

    @property
    def n_walks(self) -> int:
        return self.walks.shape[0]

    @property
    def length(self) -> int:
        return self.walks.shape[1] - 1


def random_walks(
    graph: Graph,
    starts,
    length: int,
    *,
    weighted: bool = False,
    seed: SeedLike = None,
) -> WalkResult:
    """Walk ``length`` steps from each start vertex.

    ``weighted`` draws each next hop with probability proportional to
    edge weight; otherwise uniformly over out-neighbors.
    """
    length = check_nonnegative_int(length, "length")
    rng = resolve_rng(seed)
    starts = np.atleast_1d(np.asarray(starts, dtype=np.int64))
    n = graph.n_vertices
    if starts.size and (int(starts.min()) < 0 or int(starts.max()) >= n):
        raise ValueError(f"start vertices must lie in [0, {n})")
    csr = graph.csr()
    degrees = csr.degrees()

    # Per-vertex cumulative weight tables for weighted sampling, built
    # lazily once (flat array aligned with CSR positions).
    if weighted and graph.n_edges:
        flat_cum = np.zeros(graph.n_edges, dtype=np.float64)
        vals = csr.values.astype(np.float64)
        for v in range(n):
            s, e = int(csr.row_offsets[v]), int(csr.row_offsets[v + 1])
            if e > s:
                flat_cum[s:e] = np.cumsum(vals[s:e])

    walks = np.full((starts.shape[0], length + 1), INVALID, dtype=np.int64)
    walks[:, 0] = starts
    current = starts.copy()
    alive = np.ones(starts.shape[0], dtype=bool)
    for step in range(1, length + 1):
        if not np.any(alive):
            break
        cur = current[alive]
        deg = degrees[cur]
        can_move = deg > 0
        # Walks at sinks die this step.
        alive_idx = np.nonzero(alive)[0]
        dying = alive_idx[~can_move]
        alive[dying] = False
        movers = alive_idx[can_move]
        if movers.size == 0:
            continue
        mcur = current[movers]
        mdeg = degrees[mcur]
        moffs = csr.row_offsets[mcur]
        if weighted and graph.n_edges:
            # Inverse-CDF draw inside each vertex's cumulative slice.
            totals = flat_cum[moffs + mdeg - 1]
            u = rng.random(movers.size) * totals
            # searchsorted per walker within its slice.
            pick = np.empty(movers.size, dtype=np.int64)
            for i in range(movers.size):
                s = int(moffs[i])
                d = int(mdeg[i])
                pick[i] = s + np.searchsorted(flat_cum[s : s + d], u[i])
        else:
            pick = moffs + rng.integers(0, mdeg)
        nxt = csr.column_indices[pick].astype(np.int64)
        current[movers] = nxt
        walks[movers, step] = nxt
    terminated = walks[:, -1] == INVALID
    return WalkResult(walks=walks, terminated_early=terminated)


def visit_frequencies(result: WalkResult, n_vertices: int) -> np.ndarray:
    """Per-vertex visit counts over all walks (the PPR-by-sampling
    estimator's raw statistic)."""
    flat = result.walks.ravel()
    flat = flat[flat >= 0]
    return np.bincount(flat, minlength=n_vertices)
