"""Label-propagation community detection (asynchronous LPA).

Raghavan et al.'s algorithm expressed through the abstraction: every
vertex repeatedly adopts the most frequent label among its neighbors;
communities are the fixed-point label groups.  The frontier is the set
of vertices that changed label last round (their neighbors are the only
candidates to change next), making LPA another frontier-convergent
loop — and, because plain LPA can oscillate under synchronous updates,
a natural showcase for why the *asynchronous-within-superstep* update
order matters (TLAV's timing discussion): we sweep vertices in a seeded
random order within each round, the standard stabilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.graph.graph import Graph
from repro.utils.counters import IterationStats, RunStats
from repro.utils.rng import SeedLike, resolve_rng


@dataclass
class CommunityResult:
    """Community labels (compacted to 0..k-1), counts, accounting."""

    labels: np.ndarray
    n_communities: int
    rounds: int
    stats: RunStats = field(default_factory=RunStats)

    def community_sizes(self) -> np.ndarray:
        """Vertex count per community, indexed by compact label."""
        return np.bincount(self.labels, minlength=self.n_communities)


def label_propagation_communities(
    graph: Graph,
    *,
    max_rounds: int = 100,
    seed: SeedLike = 0,
) -> CommunityResult:
    """Asynchronous LPA on an undirected graph.

    Deterministic given ``seed`` (sweep order and tie-breaking are both
    seeded).  Ties between equally frequent neighbor labels keep the
    current label when it is among the winners, else pick the smallest —
    the common convention that guarantees termination.
    """
    rng = resolve_rng(seed)
    n = graph.n_vertices
    csr = graph.csr()
    labels = np.arange(n, dtype=np.int64)
    stats = RunStats()
    import time as _time

    active = np.ones(n, dtype=bool)
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        t0 = _time.perf_counter()
        order = rng.permutation(np.nonzero(active)[0])
        edges_touched = 0
        changed: list = []
        for v in order:
            v = int(v)
            nbrs = csr.get_neighbors(v)
            if nbrs.shape[0] == 0:
                continue
            edges_touched += nbrs.shape[0]
            nbr_labels = labels[nbrs]
            uniq, counts = np.unique(nbr_labels, return_counts=True)
            best = counts.max()
            winners = uniq[counts == best]
            if labels[v] in winners:
                continue
            new_label = int(winners.min())
            labels[v] = new_label
            changed.append(v)
        stats.record(
            IterationStats(
                iteration=rounds - 1,
                frontier_size=len(changed),
                edges_touched=edges_touched,
                seconds=_time.perf_counter() - t0,
            )
        )
        if not changed:
            break
        # Next round's candidates: the changed vertices' neighborhoods.
        active[:] = False
        changed_arr = np.asarray(changed, dtype=np.int32)
        active[changed_arr] = True
        _, dsts, _, _ = csr.expand_vertices(changed_arr)
        if dsts.size:
            active[dsts] = True
    stats.converged = True
    # Compact labels to 0..k-1.
    uniq, compact = np.unique(labels, return_inverse=True)
    return CommunityResult(
        labels=compact.astype(np.int64),
        n_communities=int(uniq.shape[0]),
        rounds=rounds,
        stats=stats,
    )


def modularity(graph: Graph, labels: np.ndarray) -> float:
    """Newman modularity Q of a labeling on an undirected graph.

    ``Q = (1/2m) Σ_ij [A_ij - k_i·k_j / 2m] δ(c_i, c_j)`` — the standard
    community-quality score the LPA tests threshold.
    """
    coo = graph.coo()
    two_m = float(coo.get_num_edges())  # both arcs stored = 2m
    if two_m == 0:
        return 0.0
    labels = np.asarray(labels)
    same = labels[coo.rows] == labels[coo.cols]
    intra = float(np.count_nonzero(same)) / two_m
    degrees = graph.out_degrees().astype(np.float64)
    # Σ_c (Σ_{i in c} k_i / 2m)^2
    per_community = np.bincount(labels, weights=degrees) / two_m
    expected = float(np.sum(per_community**2))
    return intra - expected
