"""Vertex-program (Pregel-model) ports of the core algorithms.

These run on :class:`~repro.comm.pregel.PregelEngine` — the
message-passing, bulk-synchronous corner of the TLAV space — and are
validated against the shared-memory implementations by the equivalence
tests: same graph, same answers, different communication model, which is
precisely the claim of §III-B.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.comm.messages import MaxCombiner, MinCombiner, SumCombiner
from repro.comm.pregel import PregelEngine, VertexProgram
from repro.graph.graph import Graph
from repro.types import INF


class MaxValueProgram(VertexProgram):
    """The Pregel paper's introductory example: flood the maximum value."""

    combiner = MaxCombiner()

    def compute(self, ctx) -> None:
        old = ctx.value
        if ctx.messages:
            best = max(ctx.messages)
            if best > ctx.value:
                ctx.value = best
        if ctx.superstep == 0 or ctx.value > old:
            ctx.send_to_neighbors(ctx.value)
        ctx.vote_to_halt()


class SSSPProgram(VertexProgram):
    """Pregel SSSP: distances as values, relaxations as messages."""

    combiner = MinCombiner()

    def __init__(self, source: int) -> None:
        self.source = source

    def compute(self, ctx) -> None:
        if ctx.superstep == 0:
            ctx.value = 0.0 if ctx.vertex == self.source else float(INF)
        candidate = min(ctx.messages) if ctx.messages else float(INF)
        improved = candidate < ctx.value
        if improved:
            ctx.value = candidate
        if improved or (ctx.superstep == 0 and ctx.vertex == self.source):
            neighbors, weights = ctx.out_edges()
            for n, w in zip(neighbors, weights):
                ctx.send(int(n), ctx.value + float(w))
        ctx.vote_to_halt()


class PageRankProgram(VertexProgram):
    """Pregel PageRank with a fixed superstep budget (the Pregel paper's
    formulation: run a fixed number of rounds, then halt).

    Dangling-vertex mass is pooled through the engine's sum-aggregator
    (the Pregel paper's aggregator mechanism) and redistributed uniformly
    next superstep, which makes the recurrence identical to the
    shared-memory implementation — asserted by the equivalence tests.
    """

    combiner = SumCombiner()

    def __init__(self, n_vertices: int, *, damping: float = 0.85, rounds: int = 30):
        self.n = n_vertices
        self.damping = damping
        self.rounds = rounds

    def compute(self, ctx) -> None:
        if ctx.superstep == 0:
            ctx.value = 1.0 / self.n
        else:
            incoming = sum(ctx.messages) if ctx.messages else 0.0
            dangling_mass = ctx.aggregated("dangling") / self.n
            ctx.value = (1.0 - self.damping) / self.n + self.damping * (
                incoming + dangling_mass
            )
        if ctx.superstep < self.rounds:
            degree = ctx.num_out_edges()
            if degree:
                ctx.send_to_neighbors(ctx.value / degree)
            else:
                ctx.aggregate("dangling", ctx.value)
        else:
            ctx.vote_to_halt()


class ComponentsProgram(VertexProgram):
    """Min-label flooding: converges to per-component minimum vertex id."""

    combiner = MinCombiner()

    def compute(self, ctx) -> None:
        if ctx.superstep == 0:
            ctx.value = float(ctx.vertex)
        candidate = min(ctx.messages) if ctx.messages else float("inf")
        improved = candidate < ctx.value
        if improved:
            ctx.value = candidate
        if ctx.superstep == 0 or improved:
            ctx.send_to_neighbors(ctx.value)
        ctx.vote_to_halt()


def pregel_sssp(
    graph: Graph,
    source: int,
    *,
    owner_of: Optional[np.ndarray] = None,
    parallel_ranks: bool = False,
) -> np.ndarray:
    """Run Pregel SSSP; returns the distance vector."""
    engine = PregelEngine(graph, owner_of=owner_of, parallel_ranks=parallel_ranks)
    return engine.run(SSSPProgram(source), np.full(graph.n_vertices, float(INF)))


def pregel_pagerank(
    graph: Graph,
    *,
    damping: float = 0.85,
    rounds: int = 30,
    owner_of: Optional[np.ndarray] = None,
    parallel_ranks: bool = False,
) -> np.ndarray:
    """Run Pregel PageRank for a fixed round budget; returns ranks."""
    engine = PregelEngine(graph, owner_of=owner_of, parallel_ranks=parallel_ranks)
    n = graph.n_vertices
    return engine.run(
        PageRankProgram(n, damping=damping, rounds=rounds),
        np.full(n, 1.0 / max(n, 1)),
    )


def pregel_components(
    graph: Graph,
    *,
    owner_of: Optional[np.ndarray] = None,
    parallel_ranks: bool = False,
) -> np.ndarray:
    """Run min-label component flooding; returns integer labels.

    Directed inputs yield *forward-reachability* labels, so callers
    wanting weak components should symmetrize first (the equivalence
    tests do).
    """
    engine = PregelEngine(graph, owner_of=owner_of, parallel_ranks=parallel_ranks)
    vals = engine.run(
        ComponentsProgram(),
        np.arange(graph.n_vertices, dtype=np.float64),
    )
    return vals.astype(np.int64)
