"""Breadth-first search: push, pull, and direction-optimized traversal.

BFS is the pillar-3 demonstrator (§III-C): the same algorithm written
against the CSR (push — expand out-edges of the frontier) or the CSC
(pull — every unvisited vertex scans in-edges for a visited parent),
plus the Beamer-style direction-optimizing hybrid that switches to pull
while the frontier is large and back to push when it shrinks — the
switch is driven by the frontier's ``active_fraction``, i.e. by exactly
the size heuristic the paper attaches to frontier representations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.frontier.dense import DenseFrontier
from repro.frontier.sparse import SparseFrontier
from repro.graph.graph import Graph
from repro.loop.enactor import Enactor
from repro.operators.advance import neighbors_expand
from repro.operators.fused import (
    claim_levels_condition,
    dedup_ids,
    fused_kernel_of,
)
from repro.execution.policy import (
    ExecutionPolicy,
    VectorPolicy,
    par_vector,
    resolve_policy,
)
from repro.types import INVALID_VERTEX, VERTEX_DTYPE
from repro.utils.counters import RunStats
from repro.utils.validation import check_vertex_in_range

#: Level value for unreached vertices.
UNREACHED = -1


@dataclass
class BFSResult:
    """Levels (hop distances, ``-1`` unreached), parents, accounting."""

    levels: np.ndarray
    parents: np.ndarray
    source: int
    stats: RunStats = field(default_factory=RunStats)
    #: Per-iteration direction choices made by the direction-optimized
    #: variant ("push"/"pull"); empty for the fixed-direction variants.
    directions: list = field(default_factory=list)

    def reached(self) -> np.ndarray:
        """Boolean mask of vertices with a BFS level (visited)."""
        return self.levels >= 0


def _validate_parents(levels, parents):  # pragma: no cover - debug helper
    return np.all((levels <= 0) | (parents != INVALID_VERTEX))


def bfs(
    graph: Graph,
    source: int,
    *,
    policy: Union[str, ExecutionPolicy] = par_vector,
    direction: str = "push",
    pull_threshold: float = 0.05,
    push_back_threshold: float = 0.01,
    resilience=None,
    backend: str = "native",
) -> BFSResult:
    """BFS from ``source``.

    Parameters
    ----------
    direction:
        ``"push"`` — expand the frontier's out-edges (CSR);
        ``"pull"`` — candidates scan in-edges for a visited parent (CSC);
        ``"auto"`` — direction-optimized: pull while the frontier holds
        more than ``pull_threshold`` of all vertices, push otherwise.
    resilience:
        Optional :class:`~repro.resilience.ResiliencePolicy` — superstep
        retry under chaos plus checkpointing of levels and parents.
    backend:
        ``"native"`` (frontier enactor), ``"linalg"`` (boolean-semiring
        matrix products), or ``"auto"``.
    """
    from repro.execution.backend import resolve_backend

    if resolve_backend(backend, "bfs") == "linalg":
        from repro.linalg.algorithms import linalg_bfs

        return linalg_bfs(
            graph,
            source,
            direction=direction,
            pull_threshold=pull_threshold,
            push_back_threshold=push_back_threshold,
        )
    policy = resolve_policy(policy)
    if direction not in ("push", "pull", "auto"):
        raise ValueError(
            f"direction must be 'push', 'pull', or 'auto', got {direction!r}"
        )
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    levels = np.full(n, UNREACHED, dtype=np.int64)
    parents = np.full(n, INVALID_VERTEX, dtype=VERTEX_DTYPE)
    levels[source] = 0
    parents[source] = source
    result = BFSResult(levels=levels, parents=parents, source=source)

    if direction == "pull":
        graph.csc()  # materialize the transposed view up front

    # Claim destinations not yet visited.  Duplicate dsts within a batch
    # both pass (several parents discover one child); the level write is
    # idempotent and the parent write races benignly (any discovered
    # parent is a valid BFS parent).  The factory's condition carries a
    # fused claim kernel, so the vectorized policy runs discovery as one
    # pass; every other policy calls the condition exactly as before.
    discover = claim_levels_condition(levels, parents, unreached=UNREACHED)

    enactor = Enactor(graph)

    # The fused claim kernel (vectorized policy) and every pull overload
    # emit deduplicated frontiers already; only the unfused push paths
    # may surface one child per discovering parent.
    emits_sets = (
        isinstance(policy, VectorPolicy)
        and fused_kernel_of(discover) is not None
    )

    def _dedup(out):
        # Dedup via the pooled bitmap round-trip; output stays a sorted
        # set, same as the np.unique formulation, minus the sort.
        ids = (
            out.indices_view()
            if isinstance(out, SparseFrontier)
            else out.to_indices()
        )
        f = SparseFrontier(n)
        f.add_many_trusted(dedup_ids(ids, n, enactor.workspace))
        return f

    def push_step(frontier, state):
        out = neighbors_expand(
            policy, graph, frontier, discover, workspace=enactor.workspace
        )
        return out if emits_sets else _dedup(out)

    def pull_step(frontier, state):
        candidates = np.nonzero(levels == UNREACHED)[0].astype(VERTEX_DTYPE)
        out = neighbors_expand(
            policy,
            graph,
            frontier,
            discover,
            direction="pull",
            candidates=candidates,
            workspace=enactor.workspace,
        )
        return out if emits_sets else _dedup(out)

    if direction == "auto":

        def step(frontier, state):
            frac = frontier.active_fraction()
            use_pull = frac >= pull_threshold or (
                result.directions
                and result.directions[-1] == "pull"
                and frac > push_back_threshold
            )
            result.directions.append("pull" if use_pull else "push")
            return (pull_step if use_pull else push_step)(frontier, state)

    else:
        step = push_step if direction == "push" else pull_step

    frontier = SparseFrontier.from_indices([source], n)
    result.stats = enactor.run(
        frontier,
        step,
        resilience=resilience,
        state_arrays={"levels": levels, "parents": parents},
    )
    return result


def bfs_levels_by_superstep(result: BFSResult) -> dict:
    """Map level -> vertex count, the frontier 'bell curve' profile."""
    reached = result.levels[result.levels >= 0]
    uniq, counts = np.unique(reached, return_counts=True)
    return {int(l): int(c) for l, c in zip(uniq, counts)}
