"""Triangle counting via the segmented-intersection operator.

The edge-centric showcase (§III-C): the active set is the *edge*
frontier, and the work per element is the sorted-neighborhood
intersection |N(u) ∩ N(v)|.  To count each triangle once we orient the
(undirected) graph by degree — keep only edges from lower-rank to
higher-rank endpoints — and intersect oriented neighborhoods: the
standard forward counting scheme that also slashes the intersection
sizes on skewed graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.operators.intersection import segmented_intersection_counts
from repro.execution.policy import ExecutionPolicy, par, resolve_policy
from repro.utils.counters import RunStats


@dataclass
class TCResult:
    """Total triangles, per-edge counts over the oriented edge list."""

    total: int
    per_edge: np.ndarray
    edge_u: np.ndarray
    edge_v: np.ndarray
    stats: RunStats = field(default_factory=RunStats)


def _orient_by_degree(graph: Graph) -> Graph:
    """Keep edges (u, v) with rank(u) < rank(v), rank = (degree, id).

    The result is a DAG whose out-neighborhoods are small for hubs, and
    every triangle of the input appears as exactly one directed wedge
    closure.
    """
    coo = graph.coo()
    degrees = graph.out_degrees()
    du, dv = degrees[coo.rows], degrees[coo.cols]
    forward = (du < dv) | ((du == dv) & (coo.rows < coo.cols))
    oriented = from_edge_array(
        coo.rows[forward],
        coo.cols[forward],
        coo.vals[forward],
        n_vertices=graph.n_vertices,
        directed=True,
    )
    return oriented.with_sorted_neighbors()


def triangle_count(
    graph: Graph,
    *,
    policy: Union[str, ExecutionPolicy] = par,
) -> TCResult:
    """Count triangles in an undirected graph.

    Directed inputs are treated as their underlying undirected graph
    (each arc contributes the edge).  Self-loops never form triangles
    and are ignored via the orientation step.
    """
    policy = resolve_policy(policy)
    if graph.properties.directed:
        # Symmetrize so both endpoints see the edge, then orient.
        coo = graph.coo()
        und = from_edge_array(
            np.concatenate([coo.rows, coo.cols]),
            np.concatenate([coo.cols, coo.rows]),
            None,
            n_vertices=graph.n_vertices,
            directed=True,
            deduplicate=True,
            remove_self_loops=True,
        )
    else:
        und = graph
    oriented = _orient_by_degree(und)
    ocoo = oriented.coo()
    counts = segmented_intersection_counts(
        policy, oriented, ocoo.rows, ocoo.cols
    )
    stats = RunStats()
    stats.converged = True
    return TCResult(
        total=int(counts.sum()),
        per_edge=counts,
        edge_u=ocoo.rows.copy(),
        edge_v=ocoo.cols.copy(),
        stats=stats,
    )


def clustering_coefficient(graph: Graph, *, policy=par) -> np.ndarray:
    """Local clustering coefficient per vertex, from triangle counts.

    ``c(v) = 2·T(v) / (deg(v)·(deg(v)-1))`` with T(v) the triangles
    through v; vertices of degree < 2 get 0.
    """
    result = triangle_count(graph, policy=policy)
    n = graph.n_vertices
    tri_per_vertex = np.zeros(n, dtype=np.float64)
    # Each counted triangle (u, v, w) with oriented edges u->v, u->w, v->w
    # touches all three vertices; attribute per-edge counts to both
    # endpoints, and the third vertex is found by re-intersection — cheaper:
    # each triangle is counted once per oriented edge (u,v) for each common
    # neighbor w, so incrementing u, v and w by per-edge contributions
    # needs the member lists.  We recompute memberships directly.
    csr = graph.csr() if not graph.properties.directed else None
    if csr is None:
        und_counts = result
        # Directed input: fall back via symmetrized graph handled inside
        # triangle_count; recompute degrees on the undirected structure.
        raise NotImplementedError(
            "clustering_coefficient supports undirected graphs"
        )
    oriented = _orient_by_degree(graph)
    ocsr = oriented.csr()
    for u, v in zip(result.edge_u, result.edge_v):
        a = ocsr.get_neighbors(int(u))
        b = ocsr.get_neighbors(int(v))
        common = np.intersect1d(a, b, assume_unique=False)
        for w in common:
            tri_per_vertex[int(u)] += 1
            tri_per_vertex[int(v)] += 1
            tri_per_vertex[int(w)] += 1
    deg = graph.out_degrees().astype(np.float64)
    denom = deg * (deg - 1.0)
    out = np.zeros(n, dtype=np.float64)
    ok = denom > 0
    out[ok] = 2.0 * tri_per_vertex[ok] / denom[ok]
    return out
