"""k-truss decomposition — edge-level cohesion by iterative peeling.

The edge-centric sibling of k-core: the k-truss is the maximal subgraph
whose every edge closes at least ``k - 2`` triangles.  The algorithm is
a peeling loop over an *edge* frontier (§III-C's edge-centric program
in earnest): compute per-edge triangle support with the segmented
intersection operator, repeatedly remove edges below threshold
(decrementing the support of the triangles they closed), then raise k —
the same two-operator shape as k-core, one level down the
vertex/edge hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

import numpy as np

from repro.graph.builder import from_edge_array
from repro.graph.graph import Graph
from repro.operators.intersection import segmented_intersection_counts
from repro.execution.policy import ExecutionPolicy, par, resolve_policy
from repro.utils.counters import IterationStats, RunStats


@dataclass
class KTrussResult:
    """Truss number per (oriented) edge and the maximum truss."""

    edge_u: np.ndarray
    edge_v: np.ndarray
    truss_numbers: np.ndarray
    max_truss: int
    stats: RunStats = field(default_factory=RunStats)

    def truss_subgraph_edges(self, k: int):
        """The (u, v) pairs whose truss number is at least ``k``."""
        keep = self.truss_numbers >= k
        return self.edge_u[keep], self.edge_v[keep]


def _oriented_with_adjacency(graph: Graph):
    """Degree-oriented simple graph + per-vertex sorted neighbor sets of
    the *undirected* simple graph (for triangle membership updates)."""
    coo = graph.coo()
    if graph.properties.directed:
        und = from_edge_array(
            np.concatenate([coo.rows, coo.cols]),
            np.concatenate([coo.cols, coo.rows]),
            None,
            n_vertices=graph.n_vertices,
            directed=True,
            deduplicate=True,
            remove_self_loops=True,
        )
    else:
        und = from_edge_array(
            coo.rows,
            coo.cols,
            None,
            n_vertices=graph.n_vertices,
            directed=True,
            deduplicate=True,
            remove_self_loops=True,
        )
    return und.with_sorted_neighbors()


def ktruss_decomposition(
    graph: Graph,
    *,
    policy: Union[str, ExecutionPolicy] = par,
) -> KTrussResult:
    """Peel the graph into trusses (undirected semantics).

    Truss numbers are reported per undirected edge (smaller endpoint
    first); an edge in no triangle has truss number 2, matching the
    standard convention where the k-truss requires support ≥ k-2.
    """
    policy = resolve_policy(policy)
    simple = _oriented_with_adjacency(graph)
    csr = simple.csr()
    n = simple.n_vertices
    # Undirected edge list, canonical orientation u < v.
    coo = simple.coo()
    fwd = coo.rows < coo.cols
    eu = coo.rows[fwd].astype(np.int64)
    ev = coo.cols[fwd].astype(np.int64)
    m = eu.shape[0]
    # Edge index lookup: pair key -> position.
    keys = eu * n + ev
    key_to_idx: Dict[int, int] = {int(k): i for i, k in enumerate(keys)}

    support = segmented_intersection_counts(
        policy, simple, eu.astype(np.int32), ev.astype(np.int32)
    ).astype(np.int64)
    alive = np.ones(m, dtype=bool)
    truss = np.full(m, 2, dtype=np.int64)
    stats = RunStats()
    import time as _time

    def common_neighbors(a: int, b: int) -> np.ndarray:
        return np.intersect1d(
            csr.get_neighbors(a), csr.get_neighbors(b), assume_unique=True
        )

    k = 3
    remaining = m
    iteration = 0
    while remaining > 0:
        t0 = _time.perf_counter()
        edges_touched = 0
        while True:
            victims = np.nonzero(alive & (support < k - 2))[0]
            if victims.size == 0:
                break
            for e in victims:
                e = int(e)
                alive[e] = False
                truss[e] = k - 1
                remaining -= 1
                a, b = int(eu[e]), int(ev[e])
                # Decrement support of the other two edges of every
                # triangle this edge closed with still-alive partners.
                for w in common_neighbors(a, b):
                    w = int(w)
                    ea = key_to_idx.get(min(a, w) * n + max(a, w))
                    eb = key_to_idx.get(min(b, w) * n + max(b, w))
                    if ea is None or eb is None:
                        continue
                    if alive[ea] and alive[eb]:
                        support[ea] -= 1
                        support[eb] -= 1
                edges_touched += 1
        if remaining > 0:
            truss[alive] = k
            k += 1
        stats.record(
            IterationStats(
                iteration=iteration,
                frontier_size=int(remaining),
                edges_touched=edges_touched,
                seconds=_time.perf_counter() - t0,
            )
        )
        iteration += 1
    stats.converged = True
    return KTrussResult(
        edge_u=eu,
        edge_v=ev,
        truss_numbers=truss,
        max_truss=int(truss.max(initial=2)) if m else 2,
        stats=stats,
    )
