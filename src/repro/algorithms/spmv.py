"""SpMV through the native-graph API — the graph/matrix duality made
concrete (§IV-A: "the duality of graphs and sparse matrices can be
exploited even in the native-graph approach").

``y = A·x`` where A is the graph's weighted adjacency: each edge
(u, v, w) contributes ``w·x[v]`` to ``y[u]`` (out-edge gather).  The
vectorized policy is a single scatter-add over the edge list; seq/par go
through per-vertex accumulation.  :func:`power_iteration` builds the
dominant-eigenvector loop on top, reusing the framework's convergence
conditions.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.graph.graph import Graph
from repro.execution.policy import (
    ExecutionPolicy,
    SequencedPolicy,
    VectorPolicy,
    par_vector,
    resolve_policy,
)
from repro.execution.thread_pool import even_chunks, get_pool
from repro.operators.fused import segmented_sum


def spmv(
    graph: Graph,
    x: np.ndarray,
    *,
    policy: Union[str, ExecutionPolicy] = par_vector,
    backend: str = "native",
) -> np.ndarray:
    """Multiply the graph's weighted adjacency matrix by vector ``x``.

    ``y[u] = Σ_{(u,v,w)} w · x[v]`` over u's out-edges.
    """
    from repro.execution.backend import resolve_backend

    if resolve_backend(backend, "spmv") == "linalg":
        from repro.linalg.algorithms import linalg_spmv

        return linalg_spmv(graph, x)
    policy = resolve_policy(policy)
    n = graph.n_vertices
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.shape[0] != n:
        raise ValueError(
            f"x must have one entry per vertex ({n}), got {x.shape[0]}"
        )
    csr = graph.csr()
    y = np.zeros(n, dtype=np.float64)

    if isinstance(policy, VectorPolicy):
        coo = graph.coo()
        y = segmented_sum(coo.rows, coo.vals.astype(np.float64) * x[coo.cols], n)
        return y

    def rows_span(start: int, stop: int) -> None:
        for u in range(start, stop):
            s, e = int(csr.row_offsets[u]), int(csr.row_offsets[u + 1])
            if s != e:
                y[u] = float(
                    np.dot(
                        csr.values[s:e].astype(np.float64),
                        x[csr.column_indices[s:e]],
                    )
                )

    if isinstance(policy, SequencedPolicy):
        rows_span(0, n)
        return y
    pool = get_pool(policy.num_workers)
    # Row-disjoint writes: no synchronization needed.
    pool.run_tasks(
        [
            (lambda s=s, e=e: rows_span(s, e))
            for s, e in even_chunks(n, policy.num_workers or pool.num_workers)
        ]
    )
    return y


def power_iteration(
    graph: Graph,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-9,
    policy: Union[str, ExecutionPolicy] = par_vector,
    seed: int = 0,
) -> Tuple[np.ndarray, float, int]:
    """Dominant eigenpair of the adjacency matrix by power iteration.

    Returns ``(eigenvector, eigenvalue, iterations)``; the vector is
    L2-normalized with a deterministic random start.
    """
    n = graph.n_vertices
    if n == 0:
        return np.empty(0), 0.0, 0
    rng = np.random.default_rng(seed)
    v = rng.random(n)
    v /= np.linalg.norm(v)
    eigenvalue = 0.0
    for it in range(1, max_iterations + 1):
        w = spmv(graph, v, policy=policy)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            return v, 0.0, it
        w /= norm
        delta = float(np.abs(w - v).max())
        v = w
        eigenvalue = norm
        if delta <= tolerance:
            return v, eigenvalue, it
    return v, eigenvalue, max_iterations
