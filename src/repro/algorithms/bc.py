"""Betweenness centrality — Brandes' algorithm on frontier machinery.

The forward phase is a BFS whose per-level frontiers are *retained*:
advancing also accumulates shortest-path counts (sigma) into
destinations one level down.  The backward phase walks the retained
frontiers in reverse, accumulating the dependency
``delta[v] += sigma[v]/sigma[w] * (1 + delta[w])`` over tree edges —
a pull-shaped traversal over the same graph views.

Exact BC runs one rooted phase per source (O(V·E)); ``sources`` limits
the roots for the standard sampling approximation.  Unweighted graphs
only (Brandes' BFS variant), matching essentials' `bc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.frontier.sparse import SparseFrontier
from repro.graph.graph import Graph
from repro.operators.advance import neighbors_expand
from repro.operators.conditions import bulk_condition
from repro.execution.policy import ExecutionPolicy, par_vector, resolve_policy
from repro.types import VERTEX_DTYPE
from repro.utils.counters import RunStats


@dataclass
class BCResult:
    """Centrality scores plus accounting.

    For undirected graphs scores are halved per convention (each path is
    found from both endpoints).
    """

    centrality: np.ndarray
    n_sources: int
    stats: RunStats = field(default_factory=RunStats)


def betweenness_centrality(
    graph: Graph,
    *,
    sources: Optional[Sequence[int]] = None,
    normalize: bool = False,
    policy: Union[str, ExecutionPolicy] = par_vector,
) -> BCResult:
    """Brandes betweenness centrality (unweighted shortest paths).

    Parameters
    ----------
    sources:
        Root vertices to accumulate from (default: all — exact BC).
    normalize:
        Scale into [0, 1] by the number of vertex pairs.
    """
    policy = resolve_policy(policy)
    n = graph.n_vertices
    csr = graph.csr()
    roots = (
        np.arange(n, dtype=VERTEX_DTYPE)
        if sources is None
        else np.asarray(list(sources), dtype=VERTEX_DTYPE)
    )
    centrality = np.zeros(n, dtype=np.float64)
    stats = RunStats()

    for s in roots:
        s = int(s)
        levels = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        levels[s] = 0
        sigma[s] = 1.0
        frontiers = [np.asarray([s], dtype=VERTEX_DTYPE)]

        # Forward: level-synchronous BFS accumulating path counts.
        level = 0
        while frontiers[-1].size:
            current = frontiers[-1]

            @bulk_condition
            def count_paths(srcs, dsts, edges, weights, _level=level):
                on_next = (levels[dsts] == -1) | (levels[dsts] == _level + 1)
                fresh = levels[dsts] == -1
                if np.any(fresh):
                    levels[dsts[fresh]] = _level + 1
                take = on_next & (levels[dsts] == _level + 1)
                if np.any(take):
                    np.add.at(sigma, dsts[take], sigma[srcs[take]])
                return take & fresh

            f = SparseFrontier.from_indices(current, n)
            out = neighbors_expand(policy, graph, f, count_paths)
            nxt = np.unique(out.to_indices())
            level += 1
            frontiers.append(nxt)
        frontiers.pop()  # drop the empty terminator

        # Backward: dependency accumulation over the BFS dag.
        delta = np.zeros(n, dtype=np.float64)
        for depth in range(len(frontiers) - 1, 0, -1):
            wave = frontiers[depth]
            # Pull over the reverse: for each w in this wave, credit every
            # predecessor v (levels[v] == depth-1 and edge v->w).
            srcs, dsts, _, _ = csr.expand_vertices(frontiers[depth - 1])
            tree = levels[dsts] == depth
            if not np.any(tree):
                continue
            v = srcs[tree]
            w = dsts[tree]
            credit = sigma[v] / sigma[w] * (1.0 + delta[w])
            np.add.at(delta, v, credit)
        mask = np.ones(n, dtype=bool)
        mask[s] = False
        centrality[mask] += delta[mask]

    if not graph.properties.directed:
        centrality /= 2.0
    if normalize and n > 2:
        scale = (
            1.0 / ((n - 1) * (n - 2))
            if graph.properties.directed
            else 2.0 / ((n - 1) * (n - 2))
        )
        centrality *= scale
        if sources is not None and len(roots) < n and len(roots) > 0:
            centrality *= n / len(roots)
    stats.converged = True
    return BCResult(centrality=centrality, n_sources=len(roots), stats=stats)
