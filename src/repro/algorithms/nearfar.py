"""Near-far SSSP — Gunrock's two-bucket priority optimization.

A lightweight special case of delta-stepping used by the essentials
library: the frontier splits into a *near* pile (tentative distance
below the current threshold) and a *far* pile (everything else).  The
near pile iterates to a fixed point; then the threshold advances by
delta and the far pile is re-split.  Compared with Listing 4's single
frontier this skips re-relaxing far vertices every superstep; compared
with full delta-stepping it keeps only two piles, trading work for
simplicity — exactly the kind of operator-level optimization §IV-C says
the abstraction should admit without changing the algorithm's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.algorithms.sssp import SSSPResult
from repro.frontier.sparse import SparseFrontier
from repro.graph.graph import Graph
from repro.operators.advance import neighbors_expand
from repro.operators.conditions import bulk_condition
from repro.execution.atomics import bulk_min_relax
from repro.execution.policy import ExecutionPolicy, par_vector, resolve_policy
from repro.types import INF, VALUE_DTYPE
from repro.utils.counters import IterationStats, RunStats
from repro.utils.validation import check_vertex_in_range


def sssp_near_far(
    graph: Graph,
    source: int,
    *,
    delta: Optional[float] = None,
    policy: Union[str, ExecutionPolicy] = par_vector,
) -> SSSPResult:
    """SSSP with the near-far frontier split.

    ``delta`` defaults to the mean edge weight.  Returns the same
    :class:`~repro.algorithms.sssp.SSSPResult` contract as the other
    variants (equivalence is asserted by tests).
    """
    policy = resolve_policy(policy)
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    csr = graph.csr()
    if delta is None:
        delta = float(csr.values.mean()) if graph.n_edges else 1.0
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")

    dist = np.full(n, INF, dtype=VALUE_DTYPE)
    dist[source] = 0.0
    stats = RunStats()
    import time as _time

    @bulk_condition
    def relax(srcs, dsts, edges, weights):
        return bulk_min_relax(dist, dsts, dist[srcs] + weights)

    threshold = delta
    near = np.asarray([source], dtype=np.int64)
    far: np.ndarray = np.empty(0, dtype=np.int64)
    round_idx = 0
    while near.size or far.size:
        t0 = _time.perf_counter()
        edges_touched = 0
        processed = int(near.size)
        # Near-pile fixed point under the current threshold.
        while near.size:
            f = SparseFrontier.from_indices(near, n)
            edges_touched += int(csr.degrees_of(f.indices_view()).sum())
            out = neighbors_expand(policy, graph, f, relax)
            touched = np.unique(out.to_indices()).astype(np.int64)
            if touched.size == 0:
                near = touched
                break
            is_near = dist[touched] < threshold
            near = touched[is_near]
            far = np.concatenate([far, touched[~is_near]])
            processed += int(near.size)
        # Advance the threshold and re-split the far pile.  Vertices whose
        # distance improved below INF but above threshold wait here.
        if far.size:
            far = np.unique(far)
            far = far[dist[far] < INF]
            if far.size:
                next_threshold = max(
                    threshold + delta, float(dist[far].min()) + delta
                )
                is_near = dist[far] < next_threshold
                near = far[is_near]
                far = far[~is_near]
                threshold = next_threshold
        stats.record(
            IterationStats(
                iteration=round_idx,
                frontier_size=processed,
                edges_touched=edges_touched,
                seconds=_time.perf_counter() - t0,
            )
        )
        round_idx += 1
    stats.converged = True
    return SSSPResult(distances=dist, source=source, stats=stats)
