"""Graph algorithms expressed through the essential components.

Every algorithm here is a composition of the abstraction's pieces —
graph views, frontiers, policy-overloaded operators, and a convergent
loop — exactly as §IV-D builds SSSP.  The suite mirrors the algorithm
set of the ``gunrock/essentials`` library the paper points to:

========================== ===========================================
module                      algorithm(s)
========================== ===========================================
:mod:`~repro.algorithms.sssp`      SSSP (Listing 4), async SSSP, delta-stepping
:mod:`~repro.algorithms.bfs`       push / pull / direction-optimized BFS
:mod:`~repro.algorithms.pagerank`  PageRank (BSP)
:mod:`~repro.algorithms.cc`        connected components (label prop + pointer jumping)
:mod:`~repro.algorithms.bc`        betweenness centrality (Brandes)
:mod:`~repro.algorithms.tc`        triangle counting (segmented intersection)
:mod:`~repro.algorithms.kcore`     k-core decomposition (iterative peeling)
:mod:`~repro.algorithms.color`     greedy parallel graph coloring (Jones–Plassmann)
:mod:`~repro.algorithms.spmv`      SpMV over the native-graph API
:mod:`~repro.algorithms.hits`      HITS hubs & authorities
:mod:`~repro.algorithms.mst`       Borůvka minimum spanning forest
:mod:`~repro.algorithms.pregel_programs`  Pregel-model ports (SSSP, PageRank, CC, max-value)
========================== ===========================================
"""

from repro.algorithms.sssp import sssp, sssp_async, sssp_delta_stepping, SSSPResult
from repro.algorithms.nearfar import sssp_near_far
from repro.algorithms.sssp_pull import sssp_pull
from repro.algorithms.community import (
    label_propagation_communities,
    modularity,
    CommunityResult,
)
from repro.algorithms.bfs import bfs, BFSResult
from repro.algorithms.pagerank import pagerank, PageRankResult
from repro.algorithms.cc import connected_components, CCResult
from repro.algorithms.bc import betweenness_centrality, BCResult
from repro.algorithms.tc import triangle_count, TCResult
from repro.algorithms.kcore import kcore_decomposition, KCoreResult
from repro.algorithms.color import graph_coloring, ColoringResult
from repro.algorithms.spmv import spmv, power_iteration
from repro.algorithms.hits import hits, HITSResult
from repro.algorithms.mst import boruvka_mst, MSTResult
from repro.algorithms.ppr import personalized_pagerank, ppr_forward_push, PPRResult
from repro.algorithms.spgemm import spgemm, count_two_hop_paths
from repro.algorithms.random_walk import random_walks, visit_frequencies, WalkResult
from repro.algorithms.mis import maximal_independent_set, verify_mis, MISResult
from repro.algorithms.ktruss import ktruss_decomposition, KTrussResult
from repro.algorithms.geo import geolocate, haversine_km, GeoResult
from repro.algorithms.scc import strongly_connected_components, tarjan_scc, SCCResult
from repro.algorithms.astar import astar, euclidean_heuristic, grid_heuristic, AStarResult

__all__ = [
    "sssp",
    "sssp_near_far",
    "sssp_pull",
    "label_propagation_communities",
    "modularity",
    "CommunityResult",
    "personalized_pagerank",
    "ppr_forward_push",
    "PPRResult",
    "spgemm",
    "count_two_hop_paths",
    "random_walks",
    "visit_frequencies",
    "WalkResult",
    "maximal_independent_set",
    "verify_mis",
    "MISResult",
    "ktruss_decomposition",
    "KTrussResult",
    "geolocate",
    "haversine_km",
    "GeoResult",
    "strongly_connected_components",
    "tarjan_scc",
    "SCCResult",
    "astar",
    "euclidean_heuristic",
    "grid_heuristic",
    "AStarResult",
    "sssp_async",
    "sssp_delta_stepping",
    "SSSPResult",
    "bfs",
    "BFSResult",
    "pagerank",
    "PageRankResult",
    "connected_components",
    "CCResult",
    "betweenness_centrality",
    "BCResult",
    "triangle_count",
    "TCResult",
    "kcore_decomposition",
    "KCoreResult",
    "graph_coloring",
    "ColoringResult",
    "spmv",
    "power_iteration",
    "hits",
    "HITSResult",
    "boruvka_mst",
    "MSTResult",
]
