"""k-core decomposition by iterative peeling with the filter operator.

The core number of a vertex is the largest k such that it belongs to a
subgraph where every vertex has degree ≥ k.  Peeling is frontier-shaped:
for k = 1, 2, ... repeatedly *filter* the surviving vertices for degree
< k, assign them core number k-1, remove them (decrementing neighbor
degrees via an advance), and iterate until the removal frontier empties
— two essential operators and a nested convergent loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.graph.graph import Graph
from repro.execution.policy import ExecutionPolicy, par_vector, resolve_policy
from repro.utils.counters import IterationStats, RunStats


@dataclass
class KCoreResult:
    """Core number per vertex and the maximum core (degeneracy)."""

    core_numbers: np.ndarray
    max_core: int
    stats: RunStats = field(default_factory=RunStats)

    def core_subgraph_vertices(self, k: int) -> np.ndarray:
        """Vertices whose core number is at least ``k``."""
        return np.nonzero(self.core_numbers >= k)[0]


def kcore_decomposition(
    graph: Graph,
    *,
    policy: Union[str, ExecutionPolicy] = par_vector,
) -> KCoreResult:
    """Peel the graph into cores; undirected semantics (out-degrees on a
    symmetrized structure).

    The inner loop is vectorized: each round removes *all* vertices
    below the current threshold at once and subtracts their edge
    contributions with a scatter-add — the bulk-synchronous reading of
    peeling, where one round is one superstep.
    """
    resolve_policy(policy)
    n = graph.n_vertices
    csr = graph.csr()
    degrees = csr.degrees().astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    core = np.zeros(n, dtype=np.int64)
    stats = RunStats()
    import time as _time

    k = 1
    iteration = 0
    remaining = n
    while remaining > 0:
        t0 = _time.perf_counter()
        edges_touched = 0
        # Peel everything below k to a fixed point before raising k.
        while True:
            victims = np.nonzero(alive & (degrees < k))[0]
            if victims.size == 0:
                break
            core[victims] = k - 1
            alive[victims] = False
            remaining -= victims.size
            srcs, dsts, _, _ = csr.expand_vertices(victims)
            edges_touched += srcs.shape[0]
            if dsts.size:
                live = alive[dsts]
                np.subtract.at(degrees, dsts[live], 1)
        stats.record(
            IterationStats(
                iteration=iteration,
                frontier_size=int(remaining),
                edges_touched=edges_touched,
                seconds=_time.perf_counter() - t0,
            )
        )
        iteration += 1
        if remaining > 0:
            # Survivors of threshold k have core number >= k.
            core[alive] = k
            k += 1
    stats.converged = True
    return KCoreResult(
        core_numbers=core, max_core=int(core.max(initial=0)), stats=stats
    )
