"""Personalized PageRank — the `ppr` entry of the essentials suite.

Two implementations with complementary regimes:

* :func:`personalized_pagerank` — power iteration with teleport mass
  concentrated on the seed set (a one-line change to global PageRank's
  update, which is the point: same loop, different convergence data).
* :func:`ppr_forward_push` — Andersen-Chung-Lang forward push: a
  *frontier-driven* local algorithm that only touches vertices whose
  residual exceeds the tolerance — the sparse-frontier regime, in
  contrast to power iteration's all-vertices frontiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.graph.graph import Graph
from repro.execution.policy import ExecutionPolicy, par_vector, resolve_policy
from repro.resilience.deadline import active_token
from repro.utils.counters import IterationStats, RunStats
from repro.utils.validation import check_probability
from repro.operators.fused import segmented_sum


@dataclass
class PPRResult:
    """Personalized rank vector plus accounting."""

    ranks: np.ndarray
    seeds: np.ndarray
    iterations: int
    converged: bool
    stats: RunStats = field(default_factory=RunStats)


def personalized_pagerank(
    graph: Graph,
    seeds: Union[int, Sequence[int]],
    *,
    damping: float = 0.85,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
    policy: Union[str, ExecutionPolicy] = par_vector,
    initial_ranks: Optional[np.ndarray] = None,
    backend: str = "native",
) -> PPRResult:
    """PPR by power iteration: teleport returns to ``seeds`` uniformly.

    ``initial_ranks`` warm-starts the iteration from a previous rank
    vector (the unique fixed point is unchanged; only the iteration
    count to reach it shrinks)."""
    from repro.execution.backend import resolve_backend

    if resolve_backend(backend, "ppr") == "linalg":
        from repro.linalg.algorithms import linalg_ppr

        return linalg_ppr(
            graph,
            seeds,
            damping=damping,
            tolerance=tolerance,
            max_iterations=max_iterations,
            initial_ranks=initial_ranks,
        )
    resolve_policy(policy)
    damping = float(damping)
    if not (0.0 <= damping <= 1.0):
        raise ValueError(f"damping must be in [0, 1], got {damping}")
    n = graph.n_vertices
    seeds = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        raise ValueError("at least one seed vertex is required")
    if int(seeds.min()) < 0 or int(seeds.max()) >= n:
        raise ValueError(f"seed ids must lie in [0, {n})")
    coo = graph.coo()
    out_weight = segmented_sum(coo.rows, coo.vals.astype(np.float64), n)
    dangling = out_weight == 0

    teleport = np.zeros(n, dtype=np.float64)
    teleport[seeds] = 1.0 / seeds.size
    if initial_ranks is not None:
        if initial_ranks.shape != (n,):
            raise ValueError(
                f"initial_ranks must have shape ({n},), "
                f"got {initial_ranks.shape}"
            )
        ranks = initial_ranks.astype(np.float64, copy=True)
        total = float(ranks.sum())
        if total > 0:
            ranks /= total
    else:
        ranks = teleport.copy()
    converged = False
    iterations = 0
    token = active_token()
    for iterations in range(1, max_iterations + 1):
        if token is not None and token.should_stop():
            # Anytime semantics: stop at the last completed iterate and
            # report it unconverged instead of erroring out.
            iterations -= 1
            break
        share = np.where(dangling, 0.0, ranks / np.maximum(out_weight, 1e-300))
        incoming = segmented_sum(
            coo.cols, coo.vals.astype(np.float64) * share[coo.rows], n
        )
        dangling_mass = float(ranks[dangling].sum())
        new_ranks = (
            (1.0 - damping) * teleport
            + damping * (incoming + dangling_mass * teleport)
        )
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if delta <= tolerance:
            converged = True
            break
    stats = RunStats()
    stats.converged = converged
    return PPRResult(
        ranks=ranks,
        seeds=seeds,
        iterations=iterations,
        converged=converged,
        stats=stats,
    )


def ppr_forward_push(
    graph: Graph,
    seed: int,
    *,
    damping: float = 0.85,
    epsilon: float = 1e-6,
) -> PPRResult:
    """Local PPR by forward push (Andersen–Chung–Lang).

    Maintains estimate ``p`` and residual ``r``; while some vertex v has
    ``r[v] > epsilon * deg(v)``, push: move ``(1-damping)·r[v]`` into
    ``p[v]`` and spread ``damping·r[v]`` across v's out-neighbors.
    Touches only the seed's neighborhood — the frontier stays sparse on
    big graphs, the regime where push-style locality wins.

    Convergence: ``p`` approximates PPR with additive error ≤ epsilon·deg
    per vertex (the classic guarantee, checked against power iteration
    in tests at matching tolerance).
    """
    check_probability(damping, "damping")
    n = graph.n_vertices
    if not (0 <= seed < n):
        raise ValueError(f"seed must lie in [0, {n})")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    csr = graph.csr()
    degrees = csr.degrees()
    p = np.zeros(n, dtype=np.float64)
    r = np.zeros(n, dtype=np.float64)
    r[seed] = 1.0
    stats = RunStats()
    import time as _time

    converged = True
    token = active_token()
    iteration = 0
    while True:
        if token is not None and token.should_stop():
            # Push is anytime too: p is a valid underestimate whenever
            # the loop stops; only the residual bound is unmet.
            converged = False
            break
        t0 = _time.perf_counter()
        # All vertices currently violating the residual bound, at once —
        # the bulk-synchronous reading of the push loop.
        deg_floor = np.maximum(degrees, 1)
        active = np.nonzero(r > epsilon * deg_floor)[0]
        if active.size == 0:
            break
        pushed = r[active].copy()
        p[active] += (1.0 - damping) * pushed
        r[active] = 0.0
        srcs, dsts, _, _ = csr.expand_vertices(active.astype(np.int32))
        if dsts.size:
            spread = damping * pushed / deg_floor[active]
            per_edge = np.repeat(spread, degrees[active])
            np.add.at(r, dsts, per_edge)
        else:
            # Dangling active vertices: residual reflects back to self
            # (standard treatment keeps mass conserved).
            r[active] += damping * pushed
            if np.all(degrees[active] == 0):
                break
        stats.record(
            IterationStats(
                iteration=iteration,
                frontier_size=int(active.size),
                edges_touched=int(dsts.size),
                seconds=_time.perf_counter() - t0,
            )
        )
        iteration += 1
    stats.converged = converged
    return PPRResult(
        ranks=p,
        seeds=np.asarray([seed]),
        iterations=iteration,
        converged=converged,
        stats=stats,
    )
