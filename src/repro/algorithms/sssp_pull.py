"""Pull-direction SSSP: Bellman–Ford iteration as a segmented min-reduce.

The push SSSP of Listing 4 scatters relaxations from the frontier; the
pull dual has every vertex *gather* ``min(dist[u] + w(u, v))`` over its
in-neighbors — one segmented reduction over the CSC per superstep, with
no atomics at all (each vertex owns its output slot).  Convergence is a
distance-vector fixed point rather than an empty frontier, exercising
the other convergence-condition family.

Pull SSSP touches every edge every round, so it loses to push when
frontiers are narrow — the same trade-off as BFS direction choice —
but it is the natural form for dense/synchronous hardware and for the
linear-algebra reading (min-plus matrix-vector products).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.algorithms.sssp import SSSPResult
from repro.errors import ConvergenceError
from repro.graph.graph import Graph
from repro.operators.segmented import segmented_neighbor_reduce
from repro.execution.policy import ExecutionPolicy, par_vector, resolve_policy
from repro.types import INF, VALUE_DTYPE
from repro.utils.counters import IterationStats, RunStats
from repro.utils.validation import check_vertex_in_range


def sssp_pull(
    graph: Graph,
    source: int,
    *,
    policy: Union[str, ExecutionPolicy] = par_vector,
    max_iterations: int = 1_000_000,
) -> SSSPResult:
    """SSSP by pull-mode min-plus iteration to a fixed point.

    Each superstep: ``dist'[v] = min(dist[v], min_u(dist[u] + w(u,v)))``
    over in-edges — |V|-1 supersteps worst case (Bellman–Ford bound),
    usually ~diameter.  Agrees with every push variant (tests).
    """
    policy = resolve_policy(policy)
    n = graph.n_vertices
    source = check_vertex_in_range(source, n)
    graph.csc()  # pull layout
    dist = np.full(n, INF, dtype=np.float64)
    dist[source] = 0.0
    stats = RunStats()
    import time as _time

    n_edges = graph.n_edges
    for iteration in range(max_iterations):
        t0 = _time.perf_counter()
        gathered = segmented_neighbor_reduce(
            policy,
            graph,
            dist,
            op="min",
            direction="in",
            edge_transform=lambda vals, w: vals + w,
        )
        new_dist = np.minimum(dist, gathered)
        new_dist[source] = 0.0
        changed = int(np.count_nonzero(new_dist < dist))
        stats.record(
            IterationStats(
                iteration=iteration,
                frontier_size=changed,
                edges_touched=n_edges,
                seconds=_time.perf_counter() - t0,
            )
        )
        dist = new_dist
        if changed == 0:
            stats.converged = True
            return SSSPResult(
                distances=dist.astype(VALUE_DTYPE), source=source, stats=stats
            )
    raise ConvergenceError(
        f"pull SSSP did not reach a fixed point in {max_iterations} rounds"
    )
