"""Maximal independent set — Luby's randomized parallel algorithm.

Another filter-shaped frontier algorithm: each round, every undecided
vertex draws a random priority; local maxima among undecided neighbors
join the set, their neighbors are excluded, and the undecided frontier
shrinks — O(log n) rounds with high probability, which the tests check.
The structure is identical to Jones–Plassmann coloring's round (they
are the same independent-set engine; coloring just loops it per color),
so this module exposes the reusable single-shot form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.graph.graph import Graph
from repro.graph.builder import as_undirected_simple
from repro.execution.policy import ExecutionPolicy, par_vector, resolve_policy
from repro.utils.counters import IterationStats, RunStats
from repro.utils.rng import SeedLike, resolve_rng


@dataclass
class MISResult:
    """Membership mask, set size, round count."""

    in_set: np.ndarray
    size: int
    rounds: int
    stats: RunStats = field(default_factory=RunStats)

    def vertices(self) -> np.ndarray:
        """Ids of the selected vertices."""
        return np.nonzero(self.in_set)[0]


def maximal_independent_set(
    graph: Graph,
    *,
    policy: Union[str, ExecutionPolicy] = par_vector,
    seed: SeedLike = 0,
) -> MISResult:
    """Luby's MIS on an undirected graph (self-loops ignored).

    Returns a set that is independent (no edge inside — verified by
    tests) and maximal (every outside vertex has a neighbor inside).
    Deterministic given ``seed``.
    """
    resolve_policy(policy)
    rng = resolve_rng(seed)
    n = graph.n_vertices
    # Independence is a constraint on both endpoints of every edge, so a
    # directed input must be symmetrized — the CSR of the raw graph would
    # hide in-neighbors and let two adjacent vertices both win a round.
    csr = as_undirected_simple(graph).csr()
    in_set = np.zeros(n, dtype=bool)
    excluded = np.zeros(n, dtype=bool)
    stats = RunStats()
    import time as _time

    undecided = np.arange(n, dtype=np.int64)
    rounds = 0
    while undecided.size:
        t0 = _time.perf_counter()
        # Fresh random priorities each round (Luby's resampling).
        priorities = rng.random(n)
        srcs, dsts, _, _ = csr.expand_vertices(undecided.astype(np.int32))
        edges_touched = srcs.shape[0]
        live = ~(in_set[dsts] | excluded[dsts]) & (srcs != dsts)
        best_rival = np.zeros(n, dtype=np.float64)
        if np.any(live):
            np.maximum.at(best_rival, srcs[live], priorities[dsts[live]])
        winners = undecided[priorities[undecided] > best_rival[undecided]]
        in_set[winners] = True
        # Exclude the winners' neighborhoods.
        _, wn, _, _ = csr.expand_vertices(winners.astype(np.int32))
        if wn.size:
            excluded[wn[~in_set[wn]]] = True
        undecided = undecided[
            ~(in_set[undecided] | excluded[undecided])
        ]
        stats.record(
            IterationStats(
                iteration=rounds,
                frontier_size=int(winners.size),
                edges_touched=edges_touched,
                seconds=_time.perf_counter() - t0,
            )
        )
        rounds += 1
        if winners.size == 0 and undecided.size:
            # Distinct priorities make this unreachable; guard regardless.
            raise RuntimeError("MIS made no progress")
    stats.converged = True
    return MISResult(
        in_set=in_set, size=int(in_set.sum()), rounds=rounds, stats=stats
    )


def verify_mis(graph: Graph, in_set: np.ndarray) -> bool:
    """Independence and maximality check (the MIS contract)."""
    coo = graph.coo()
    off = coo.rows != coo.cols
    rows, cols = coo.rows[off], coo.cols[off]
    # Independence: no edge with both endpoints in the set.
    if np.any(in_set[rows] & in_set[cols]):
        return False
    # Maximality: every outside vertex has an in-set neighbor.
    has_in_neighbor = np.zeros(graph.n_vertices, dtype=bool)
    touched = rows[in_set[cols]]
    has_in_neighbor[touched] = True
    touched = cols[in_set[rows]]
    has_in_neighbor[touched] = True
    outside = ~in_set
    # Isolated vertices must be in the set themselves.  "Isolated" means
    # no incident non-loop edge in either direction — out-degree alone
    # would miscount a directed sink as isolated.
    incident = np.zeros(graph.n_vertices, dtype=np.int64)
    np.add.at(incident, rows, 1)
    np.add.at(incident, cols, 1)
    isolated = incident == 0
    if np.any(outside & isolated):
        return False
    return bool(np.all(has_in_neighbor[outside & ~isolated]))
