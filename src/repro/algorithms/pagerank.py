"""PageRank under the BSP loop with a fixed-point convergence condition.

PageRank is the canonical "iterate until values settle" workload: the
frontier is all vertices every superstep, so convergence comes from
:class:`~repro.loop.convergence.ValuesConverged` (or an iteration cap)
rather than frontier emptiness — demonstrating that the loop structure's
convergence conditions are pluggable, not hard-wired to traversal.

The rank update is the standard damped power iteration with dangling-
vertex mass redistributed uniformly; the vectorized policy computes each
superstep as one scatter-add over the edge list, the threaded/sequential
policies via per-edge accumulation through the operator layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.errors import CancellationError
from repro.frontier.sparse import SparseFrontier
from repro.graph.graph import Graph
from repro.loop.convergence import AnyOf, MaxIterations, ValuesConverged
from repro.loop.enactor import Enactor
from repro.execution.policy import (
    ExecutionPolicy,
    ProcPolicy,
    SequencedPolicy,
    VectorPolicy,
    par_vector,
    resolve_policy,
)
from repro.execution.thread_pool import even_chunks, get_pool
from repro.operators.fused import segmented_sum
from repro.utils.counters import RunStats


@dataclass
class PageRankResult:
    """Final ranks (summing to 1), iteration count, convergence delta."""

    ranks: np.ndarray
    iterations: int
    delta: float
    converged: bool
    stats: RunStats = field(default_factory=RunStats)


def pagerank(
    graph: Graph,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
    policy: Union[str, ExecutionPolicy] = par_vector,
    initial_ranks: Optional[np.ndarray] = None,
    backend: str = "native",
) -> PageRankResult:
    """Damped PageRank to an L1 fixed point.

    ``tolerance`` is the L1 movement between successive rank vectors at
    which iteration stops; ``max_iterations`` caps it (both conditions
    are composed with :class:`~repro.loop.convergence.AnyOf`).
    ``initial_ranks`` warm-starts the iteration (e.g. from a
    pre-mutation result); the fixed point is unique, so the start only
    affects how many iterations convergence takes.
    ``backend="linalg"`` runs the power iteration as (+, ×) matrix
    products (scipy's C matvec when importable).
    """
    from repro.execution.backend import resolve_backend

    if resolve_backend(backend, "pagerank") == "linalg":
        from repro.linalg.algorithms import linalg_pagerank

        return linalg_pagerank(
            graph,
            damping=damping,
            tolerance=tolerance,
            max_iterations=max_iterations,
            initial_ranks=initial_ranks,
        )
    policy = resolve_policy(policy)
    if not (0.0 <= damping <= 1.0):
        raise ValueError(f"damping must be in [0, 1], got {damping}")
    n = graph.n_vertices
    if n == 0:
        return PageRankResult(
            ranks=np.empty(0), iterations=0, delta=0.0, converged=True
        )
    csr = graph.csr()
    coo = graph.coo()
    # Rank mass flows along edges in proportion to edge weight (degrees
    # for unit weights) — the same convention as networkx, so oracles
    # compare directly on weighted graphs.
    out_weight = segmented_sum(coo.rows, coo.vals.astype(np.float64), n)
    dangling = out_weight == 0
    if initial_ranks is not None:
        if initial_ranks.shape != (n,):
            raise ValueError(
                f"initial_ranks must have shape ({n},), "
                f"got {initial_ranks.shape}"
            )
        ranks = initial_ranks.astype(np.float64, copy=True)
        total = float(ranks.sum())
        if total > 0:  # renormalize: a stale vector still sums to ~1
            ranks /= total
    else:
        ranks = np.full(n, 1.0 / n, dtype=np.float64)

    state_box = {"ranks": ranks, "delta": np.inf, "iterations": 0}

    def superstep_vector() -> None:
        r = state_box["ranks"]
        share = np.where(dangling, 0.0, r / np.maximum(out_weight, 1e-300))
        incoming = segmented_sum(
            coo.cols, coo.vals.astype(np.float64) * share[coo.rows], n
        )
        dangling_mass = float(r[dangling].sum()) / n
        new_ranks = (1.0 - damping) / n + damping * (incoming + dangling_mass)
        state_box["delta"] = float(np.abs(new_ranks - r).sum())
        state_box["ranks"] = new_ranks

    def superstep_proc() -> bool:
        """Sharded superstep: worker processes each scatter-add a
        contiguous CSC column range into a shared ``incoming`` vector.
        Per-vertex sums match the vectorized superstep up to float64
        summation order (the conformance tolerance for ranks).  Returns
        False when sharding is unavailable here (inside a worker) so the
        caller falls back to the vectorized form."""
        from repro.execution.proc_engine import get_engine, proc_available

        if not proc_available():
            return False
        r = state_box["ranks"]
        incoming = get_engine().pagerank_incoming(policy, graph, r, out_weight)
        dangling_mass = float(r[dangling].sum()) / n
        new_ranks = (1.0 - damping) / n + damping * (incoming + dangling_mass)
        state_box["delta"] = float(np.abs(new_ranks - r).sum())
        state_box["ranks"] = new_ranks
        return True

    def superstep_scalar(parallel: bool) -> None:
        r = state_box["ranks"]
        incoming = np.zeros(n, dtype=np.float64)

        def accumulate(start: int, stop: int) -> np.ndarray:
            local = np.zeros(n, dtype=np.float64)
            for v in range(start, stop):
                total = out_weight[v]
                if total == 0:
                    continue
                share = r[v] / total
                for e in csr.get_edges(v):
                    local[csr.get_dest_vertex(e)] += share * float(
                        csr.values[e]
                    )
            return local

        if parallel:
            pool = get_pool(policy.num_workers)
            partials = pool.run_tasks(
                [
                    (lambda s=s, e=e: accumulate(s, e))
                    for s, e in even_chunks(n, policy.num_workers or pool.num_workers)
                ]
            )
            for p in partials:
                incoming += p
        else:
            incoming = accumulate(0, n)
        dangling_mass = float(r[dangling].sum()) / n
        new_ranks = (1.0 - damping) / n + damping * (incoming + dangling_mass)
        state_box["delta"] = float(np.abs(new_ranks - r).sum())
        state_box["ranks"] = new_ranks

    def step(frontier, state):
        if isinstance(policy, ProcPolicy) and superstep_proc():
            pass
        elif isinstance(policy, VectorPolicy):
            superstep_vector()
        elif isinstance(policy, SequencedPolicy):
            superstep_scalar(parallel=False)
        else:
            superstep_scalar(parallel=True)
        state.context["delta"] = state_box["delta"]
        state_box["iterations"] += 1
        return frontier  # all-vertices frontier is static

    convergence = AnyOf(
        [
            MaxIterations(max_iterations),
            ValuesConverged(
                lambda s: state_box["ranks"], tolerance=tolerance, norm="l1"
            ),
        ]
    )
    all_vertices = SparseFrontier.from_indices(np.arange(n), n)
    enactor = Enactor(graph, convergence=convergence, max_iterations=max_iterations + 1)
    try:
        stats = enactor.run(all_vertices, step)
    except CancellationError:
        # Deadline/cancel fired between supersteps: every completed
        # superstep left a coherent rank vector in the state box, so the
        # best answer under the budget is the current iterate, surfaced
        # as an explicitly unconverged partial result rather than an
        # error — power iteration's anytime property.
        partial = RunStats()
        partial.converged = False
        return PageRankResult(
            ranks=state_box["ranks"],
            iterations=state_box["iterations"],
            delta=float(state_box["delta"]),
            converged=False,
            stats=partial,
        )

    ranks = state_box["ranks"]
    delta = float(state_box["delta"])
    return PageRankResult(
        ranks=ranks,
        iterations=stats.num_iterations,
        delta=delta,
        converged=delta <= tolerance,
        stats=stats,
    )
