"""Geolocation inference — the `geo` application of the essentials suite.

Given a graph where a subset of vertices have known coordinates
(latitude/longitude), infer every other vertex's location as the
spatial median of its located neighbors, iterating until the unlabeled
set stops shrinking and positions stabilize.  The frontier is the set
of vertices that gained or moved a location last round — the same
convergent-loop shape as everything else, applied to a geometric
payload (2 floats per vertex instead of 1).

The spatial median (geometric median on the sphere) is computed by
Weiszfeld iteration over gnomonic-projected neighbor coordinates; for
the few-neighbor case it degrades gracefully to the centroid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.graph.graph import Graph
from repro.utils.counters import IterationStats, RunStats

EARTH_RADIUS_KM = 6371.0


def haversine_km(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    """Great-circle distance in kilometers (vectorized)."""
    p1, p2 = np.radians(lat1), np.radians(lat2)
    dp = p2 - p1
    dl = np.radians(lon2) - np.radians(lon1)
    a = np.sin(dp / 2) ** 2 + np.cos(p1) * np.cos(p2) * np.sin(dl / 2) ** 2
    return 2 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0, 1)))


def _spatial_median(lats: np.ndarray, lons: np.ndarray, iters: int = 20) -> tuple:
    """Weiszfeld geometric median of small coordinate sets (planar
    approximation, adequate at neighborhood scale)."""
    if lats.shape[0] == 1:
        return float(lats[0]), float(lons[0])
    x, y = float(lats.mean()), float(lons.mean())
    for _ in range(iters):
        d = np.sqrt((lats - x) ** 2 + (lons - y) ** 2)
        if np.any(d < 1e-12):
            # Median coincides with a sample point.
            k = int(np.argmin(d))
            return float(lats[k]), float(lons[k])
        w = 1.0 / d
        nx = float((w * lats).sum() / w.sum())
        ny = float((w * lons).sum() / w.sum())
        if abs(nx - x) + abs(ny - y) < 1e-10:
            break
        x, y = nx, ny
    return x, y


@dataclass
class GeoResult:
    """Inferred coordinates, coverage, accounting."""

    latitudes: np.ndarray
    longitudes: np.ndarray
    located: np.ndarray
    iterations: int
    stats: RunStats = field(default_factory=RunStats)

    @property
    def coverage(self) -> float:
        """Fraction of vertices with a (known or inferred) location."""
        return float(self.located.mean()) if self.located.size else 0.0


def geolocate(
    graph: Graph,
    known_vertices,
    known_lats,
    known_lons,
    *,
    max_iterations: int = 50,
    position_tolerance: float = 1e-4,
) -> GeoResult:
    """Propagate locations from labeled seeds over the graph.

    Each round, every unlocated vertex adjacent to ≥1 located neighbor
    takes the spatial median of its located neighbors; located vertices
    never move (seeds are trusted).  Stops when no vertex gains a
    location — unreachable vertices stay unlocated (check
    :attr:`GeoResult.coverage`).
    """
    n = graph.n_vertices
    known_vertices = np.atleast_1d(np.asarray(known_vertices, dtype=np.int64))
    known_lats = np.atleast_1d(np.asarray(known_lats, dtype=np.float64))
    known_lons = np.atleast_1d(np.asarray(known_lons, dtype=np.float64))
    if not (
        known_vertices.shape == known_lats.shape == known_lons.shape
    ):
        raise ValueError("known arrays must have equal lengths")
    if known_vertices.size and (
        int(known_vertices.min()) < 0 or int(known_vertices.max()) >= n
    ):
        raise ValueError(f"seed vertex ids must lie in [0, {n})")

    lats = np.full(n, np.nan)
    lons = np.full(n, np.nan)
    located = np.zeros(n, dtype=bool)
    lats[known_vertices] = known_lats
    lons[known_vertices] = known_lons
    located[known_vertices] = True

    csr = graph.csr()
    stats = RunStats()
    import time as _time

    iterations = 0
    # Frontier: vertices whose location became available last round.
    frontier = known_vertices.copy()
    while frontier.size and iterations < max_iterations:
        t0 = _time.perf_counter()
        # Candidates: unlocated out-neighbors of the frontier.
        _, dsts, _, _ = csr.expand_vertices(frontier.astype(np.int32))
        candidates = np.unique(dsts[~located[dsts]]) if dsts.size else dsts
        newly = []
        edges_touched = int(dsts.size)
        for v in candidates:
            v = int(v)
            nbrs = csr.get_neighbors(v)
            mask = located[nbrs]
            if not np.any(mask):
                continue
            la, lo = _spatial_median(lats[nbrs[mask]], lons[nbrs[mask]])
            lats[v], lons[v] = la, lo
            newly.append(v)
        for v in newly:
            located[v] = True
        frontier = np.asarray(newly, dtype=np.int64)
        stats.record(
            IterationStats(
                iteration=iterations,
                frontier_size=len(newly),
                edges_touched=edges_touched,
                seconds=_time.perf_counter() - t0,
            )
        )
        iterations += 1
    stats.converged = True
    return GeoResult(
        latitudes=lats,
        longitudes=lons,
        located=located,
        iterations=iterations,
        stats=stats,
    )
