"""Service metrics exposition: JSON schema and Prometheus text format.

The service's ``metrics`` op returns one JSON snapshot (schema
:data:`METRICS_SCHEMA`) built by ``QueryService.metrics_snapshot`` —
per-(graph, algorithm) latency quantiles, admission/shed/breaker
counters, cache hit ratio, worker-pool busy fraction, dynamic-graph
epoch lag.  This module renders that snapshot in the Prometheus text
exposition format (version 0.0.4 — ``# HELP``/``# TYPE`` comments plus
``name{labels} value`` samples) and carries the validators for both
shapes, sitting next to the Chrome-trace validator in
:mod:`repro.observability.validate`.

Rendering is snapshot → text, never registry → text: the scrape path
reads the same frozen dict the JSON op returns, so the two formats can
never disagree about a value.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Tuple

#: Schema tag stamped into the JSON metrics snapshot.
METRICS_SCHEMA = "repro-service-metrics/v1"

#: Quantiles the snapshot exposes per latency histogram.
LATENCY_QUANTILES = (50, 95, 99)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r"\s+(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|NaN|Inf|inf))"
    r"(?:\s+[0-9]+)?$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')

#: Circuit-breaker state encoding for the ``repro_breaker_state`` gauge.
BREAKER_STATE_CODES = {"closed": 0, "open": 1, "half_open": 2}


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(pairs: Mapping[str, Any]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in pairs.items()
    )
    return "{" + body + "}"


def _num(value: Any) -> str:
    try:
        value = float(value)
    except (TypeError, ValueError):
        return "NaN"
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Exposition:
    """Accumulates families in declaration order, one TYPE line each."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, value: Any, labels: Mapping[str, Any] = {}
    ) -> None:
        self.lines.append(f"{name}{_labels(labels)} {_num(value)}")


def _split_key(key: str) -> Tuple[str, str]:
    """A ``graph/algorithm`` snapshot key into its label pair."""
    graph, _, algorithm = key.partition("/")
    return graph, algorithm or "*"


def metrics_to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a :data:`METRICS_SCHEMA` snapshot as Prometheus text.

    Counters map to ``*_total`` counter families, point-in-time readings
    to gauges, and each latency histogram to a summary family
    (quantile-labelled samples plus ``_sum``/``_count``).  Unknown or
    absent sections are simply skipped — the exposition degrades with
    the snapshot rather than erroring a scrape.
    """
    exp = _Exposition()

    exp.family("repro_uptime_seconds", "gauge", "Service uptime.")
    exp.sample("repro_uptime_seconds", snapshot.get("uptime_s", 0.0))

    queries = snapshot.get("queries") or {}
    responses = queries.get("responses") or {}
    exp.family(
        "repro_responses_total", "counter", "Responses by status code."
    )
    for code in sorted(responses):
        exp.sample(
            "repro_responses_total", responses[code], {"code": code}
        )

    latency = queries.get("latency_ms") or {}
    if latency:
        exp.family(
            "repro_query_latency_ms",
            "summary",
            "Query latency quantiles per (graph, algorithm).",
        )
        for key in sorted(latency):
            graph, algorithm = _split_key(key)
            labels = {"graph": graph, "algorithm": algorithm}
            summary = latency[key]
            for q in LATENCY_QUANTILES:
                exp.sample(
                    "repro_query_latency_ms",
                    summary.get(f"p{q}", 0.0),
                    {**labels, "quantile": f"0.{q:02d}".rstrip("0") or "0"},
                )
            exp.sample(
                "repro_query_latency_ms_sum", summary.get("sum", 0.0), labels
            )
            exp.sample(
                "repro_query_latency_ms_count",
                summary.get("count", 0),
                labels,
            )

    admission = snapshot.get("admission") or {}
    if admission:
        exp.family(
            "repro_admission_active", "gauge", "Queries holding a slot."
        )
        exp.sample("repro_admission_active", admission.get("active", 0))
        exp.family(
            "repro_admission_waiting", "gauge", "Queries queued for a slot."
        )
        exp.sample("repro_admission_waiting", admission.get("waiting", 0))
        exp.family(
            "repro_admission_admitted_total", "counter", "Admitted queries."
        )
        exp.sample(
            "repro_admission_admitted_total", admission.get("admitted", 0)
        )
        exp.family(
            "repro_admission_shed_total", "counter", "Shed queries by reason."
        )
        for reason in ("queue_full", "tenant_cap", "timeout"):
            exp.sample(
                "repro_admission_shed_total",
                admission.get(f"shed_{reason}", 0),
                {"reason": reason},
            )

    cache = snapshot.get("cache") or {}
    if cache:
        exp.family("repro_cache_entries", "gauge", "Live cache entries.")
        exp.sample("repro_cache_entries", cache.get("entries", 0))
        exp.family("repro_cache_hits_total", "counter", "Cache hits.")
        exp.sample("repro_cache_hits_total", cache.get("hits", 0))
        exp.family("repro_cache_misses_total", "counter", "Cache misses.")
        exp.sample("repro_cache_misses_total", cache.get("misses", 0))
        exp.family(
            "repro_cache_stale_served_total",
            "counter",
            "Stale entries served under degradation.",
        )
        exp.sample(
            "repro_cache_stale_served_total", cache.get("stale_served", 0)
        )
        exp.family(
            "repro_cache_hit_ratio", "gauge", "Lifetime cache hit ratio."
        )
        exp.sample("repro_cache_hit_ratio", cache.get("hit_ratio", 0.0))

    breakers = snapshot.get("breakers") or {}
    if breakers:
        exp.family(
            "repro_breaker_state",
            "gauge",
            "Circuit state (0=closed, 1=open, 2=half_open).",
        )
        for key in sorted(breakers):
            graph, algorithm = _split_key(key)
            exp.sample(
                "repro_breaker_state",
                BREAKER_STATE_CODES.get(breakers[key].get("state"), -1),
                {"graph": graph, "algorithm": algorithm},
            )
        exp.family(
            "repro_breaker_opened_total",
            "counter",
            "Times each circuit opened.",
        )
        for key in sorted(breakers):
            graph, algorithm = _split_key(key)
            exp.sample(
                "repro_breaker_opened_total",
                breakers[key].get("times_opened", 0),
                {"graph": graph, "algorithm": algorithm},
            )
        exp.family(
            "repro_breaker_rejections_total",
            "counter",
            "Queries rejected by an open circuit.",
        )
        for key in sorted(breakers):
            graph, algorithm = _split_key(key)
            exp.sample(
                "repro_breaker_rejections_total",
                breakers[key].get("rejections", 0),
                {"graph": graph, "algorithm": algorithm},
            )

    workers = snapshot.get("workers") or {}
    if workers:
        exp.family(
            "repro_worker_restarts_total",
            "counter",
            "Worker processes respawned after death.",
        )
        exp.sample(
            "repro_worker_restarts_total", workers.get("restarts", 0)
        )
        exp.family(
            "repro_worker_busy_fraction",
            "gauge",
            "Fraction of worker-pool capacity spent busy.",
        )
        exp.sample(
            "repro_worker_busy_fraction", workers.get("busy_fraction", 0.0)
        )

    epochs = snapshot.get("epochs") or {}
    if epochs:
        exp.family(
            "repro_epoch_lag",
            "gauge",
            "Mutation epochs applied since each graph was last queried.",
        )
        for graph in sorted(epochs):
            exp.sample(
                "repro_epoch_lag",
                epochs[graph].get("lag", 0),
                {"graph": graph},
            )

    trace = snapshot.get("trace") or {}
    if trace:
        exp.family(
            "repro_trace_dropped_spans_total",
            "counter",
            "Spans dropped at the tracer buffer cap.",
        )
        exp.sample(
            "repro_trace_dropped_spans_total", trace.get("dropped_spans", 0)
        )

    incidents = snapshot.get("incidents") or {}
    if incidents:
        exp.family(
            "repro_incidents_total",
            "counter",
            "Incident files dumped by the flight recorder.",
        )
        exp.sample("repro_incidents_total", incidents.get("dumped", 0))

    return "\n".join(exp.lines) + "\n"


# -- validators ------------------------------------------------------------------------


def validate_prometheus(lines: Iterable[str]) -> List[str]:
    """Schema-check Prometheus exposition text; returns problems.

    Checks the 0.0.4 text-format grammar line by line (comment or
    sample), that every sample's family was declared with ``# TYPE``
    first, and that declared counters end in ``_total`` (summaries are
    exempt via their ``_sum``/``_count`` children).
    """
    problems: List[str] = []
    declared: Dict[str, str] = {}
    saw_sample = False
    for i, raw in enumerate(lines):
        line = raw.rstrip("\n")
        where = f"line {i + 1}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"{where}: malformed comment {line!r}")
                continue
            if parts[1] == "TYPE":
                name, kind = parts[2], parts[3] if len(parts) > 3 else ""
                if not _NAME_RE.match(name):
                    problems.append(f"{where}: invalid metric name {name!r}")
                if kind not in (
                    "counter", "gauge", "summary", "histogram", "untyped"
                ):
                    problems.append(f"{where}: invalid type {kind!r}")
                elif name in declared:
                    problems.append(f"{where}: duplicate TYPE for {name!r}")
                else:
                    declared[name] = kind
                    if kind == "counter" and not name.endswith("_total"):
                        problems.append(
                            f"{where}: counter {name!r} should end in _total"
                        )
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"{where}: malformed sample {line!r}")
            continue
        saw_sample = True
        name = match.group("name")
        family = name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                family = name[: -len(suffix)]
                break
        if family not in declared:
            problems.append(
                f"{where}: sample {name!r} has no preceding TYPE declaration"
            )
        labels = match.group("labels")
        if labels:
            for pair in _split_label_pairs(labels):
                if not _LABEL_RE.match(pair.strip()):
                    problems.append(
                        f"{where}: malformed label pair {pair.strip()!r}"
                    )
    if not saw_sample:
        problems.append("no samples")
    return problems


def _split_label_pairs(body: str) -> List[str]:
    """Split ``a="x",b="y,z"`` on commas outside quotes."""
    pairs: List[str] = []
    depth_quote = False
    start = 0
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and depth_quote:
            i += 2
            continue
        if ch == '"':
            depth_quote = not depth_quote
        elif ch == "," and not depth_quote:
            pairs.append(body[start:i])
            start = i + 1
        i += 1
    tail = body[start:]
    if tail.strip():
        pairs.append(tail)
    return pairs


def validate_metrics_json(obj: Any) -> List[str]:
    """Schema-check a loaded JSON metrics snapshot; returns problems."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"snapshot root must be an object, got {type(obj).__name__}"]
    if obj.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema {obj.get('schema')!r} != {METRICS_SCHEMA!r}"
        )
    if not isinstance(obj.get("uptime_s"), (int, float)):
        problems.append("uptime_s must be numeric")
    for section in ("queries", "admission", "cache", "breakers", "epochs"):
        if not isinstance(obj.get(section), dict):
            problems.append(f"missing object section {section!r}")
    queries = obj.get("queries")
    if isinstance(queries, dict):
        responses = queries.get("responses")
        if not isinstance(responses, dict):
            problems.append("queries.responses must be an object")
        latency = queries.get("latency_ms")
        if not isinstance(latency, dict):
            problems.append("queries.latency_ms must be an object")
        else:
            for key, summary in latency.items():
                if not isinstance(summary, dict):
                    problems.append(f"latency_ms[{key!r}] is not an object")
                    continue
                for field in ("count", "p50", "p95", "p99"):
                    if not isinstance(summary.get(field), (int, float)):
                        problems.append(
                            f"latency_ms[{key!r}] missing numeric {field!r}"
                        )
    cache = obj.get("cache")
    if isinstance(cache, dict):
        ratio = cache.get("hit_ratio")
        if not isinstance(ratio, (int, float)) or not (
            0.0 <= float(ratio) <= 1.0
        ):
            problems.append("cache.hit_ratio must be in [0, 1]")
    breakers = obj.get("breakers")
    if isinstance(breakers, dict):
        for key, stats in breakers.items():
            if not isinstance(stats, dict) or stats.get(
                "state"
            ) not in BREAKER_STATE_CODES:
                problems.append(
                    f"breakers[{key!r}] missing a known state"
                )
    return problems
