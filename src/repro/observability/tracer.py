"""The :class:`Tracer` — nested-span recording with thread-safe buffering.

One tracer observes one run (or one profiling session).  Every thread
keeps its own span stack (``threading.local``), so spans nest correctly
under the threaded scheduler: a worker's ``scheduler:task`` spans parent
to whatever that *worker* has open, never to another thread's superstep.
Completed spans land in one shared, lock-guarded, bounded buffer.

Timing uses :meth:`repro.utils.timing.WallClock.measure` — each span
owns a stopwatch started on entry and stopped on exit — and timestamps
are ``perf_counter`` offsets from the tracer's epoch so spans recorded
on different threads share a single monotonic timeline.

The buffer is bounded (default one hundred thousand spans): a pathological
run cannot exhaust memory through its own telemetry.  Overflow drops the
*newest* spans and counts them in :attr:`Tracer.dropped`, which the
exporters surface.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

from repro.utils.timing import WallClock
from repro.observability.span import Span, SpanEvent

#: Default cap on buffered spans (see module docstring).
DEFAULT_MAX_SPANS = 100_000


class Tracer:
    """Collects nested spans from any number of threads.

    Parameters
    ----------
    max_spans:
        Buffer bound; completed spans beyond it are dropped (counted in
        :attr:`dropped`), keeping telemetry overhead and memory bounded.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        #: Wall-clock epoch (``time.time``) paired with the perf epoch —
        #: lets exporters translate offsets into absolute times.
        self.wall_epoch = time.time()
        self._perf_epoch = time.perf_counter()
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._local = threading.local()
        self.dropped = 0

    # -- clock -------------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the tracer epoch (shared across threads)."""
        return time.perf_counter() - self._perf_epoch

    # -- span stack --------------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; yields it so callers can ``.set()`` exit
        attributes.  Always records, even when the body raises (the span
        then carries an ``error`` attribute with the exception type)."""
        thread = threading.current_thread()
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(
            span_id=next(self._ids),
            name=name,
            start=self.now(),
            parent_id=parent,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            attrs=attrs,
        )
        stack.append(span)
        clock = WallClock()
        try:
            with clock.measure():
                yield span
        except BaseException as exc:
            span.set("error", type(exc).__name__)
            raise
        finally:
            stack.pop()
            span.end = span.start + clock.elapsed
            with self._lock:
                if len(self._spans) < self.max_spans:
                    self._spans.append(span)
                else:
                    self.dropped += 1

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration event on the calling thread's open span
        (dropped silently when no span is open — events decorate spans,
        they are not a standalone log)."""
        span = self.current_span()
        if span is None:
            return
        span.add_event(SpanEvent(name=name, timestamp=self.now(), attrs=attrs))

    # -- buffer ------------------------------------------------------------------------

    def spans(self) -> List[Span]:
        """Snapshot of completed spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        """Empty the buffer and reset the drop count."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0
