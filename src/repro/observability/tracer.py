"""The :class:`Tracer` — nested-span recording with thread-safe buffering.

One tracer observes one run (or one profiling session).  Every thread
keeps its own span stack (``threading.local``), so spans nest correctly
under the threaded scheduler: a worker's ``scheduler:task`` spans parent
to whatever that *worker* has open, never to another thread's superstep.
Completed spans land in one shared, lock-guarded, bounded buffer.

Timing uses :meth:`repro.utils.timing.WallClock.measure` — each span
owns a stopwatch started on entry and stopped on exit — and timestamps
are ``perf_counter`` offsets from the tracer's epoch so spans recorded
on different threads share a single monotonic timeline.

The buffer is bounded (default one hundred thousand spans): a pathological
run cannot exhaust memory through its own telemetry.  Overflow drops the
*newest* spans and counts them in :attr:`Tracer.dropped`, which the
exporters surface.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, List, Optional

from repro.observability.span import Span, SpanEvent

#: Default cap on buffered spans (see module docstring).
DEFAULT_MAX_SPANS = 100_000


class _SpanContext:
    """Slotted enter/exit handle for one span.

    The tracer opens thousands of spans per run, so this is a hot path:
    a plain two-slot object beats ``@contextmanager`` (which allocates a
    generator and helper per span) by several microseconds per span —
    real money at superstep granularity.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack()
        span = self._span
        span.parent_id = stack[-1].span_id if stack else None
        span.start = time.perf_counter() - tracer._perf_epoch
        stack.append(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if exc_type is not None:
            span.set("error", exc_type.__name__)
        tracer = self._tracer
        tracer._stack().pop()
        span.end = time.perf_counter() - tracer._perf_epoch
        # list.append is atomic under the GIL, so the buffer needs no
        # lock on this (hottest) path; the len check racing another
        # thread can overshoot max_spans by at most one span per thread,
        # which the bound tolerates.  Readers still take the lock.
        spans = tracer._spans
        if len(spans) < tracer.max_spans:
            spans.append(span)
        else:
            tracer._note_drop()
        return False


class Tracer:
    """Collects nested spans from any number of threads.

    Parameters
    ----------
    max_spans:
        Buffer bound; completed spans beyond it are dropped (counted in
        :attr:`dropped`), keeping telemetry overhead and memory bounded.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        #: Wall-clock epoch (``time.time``) paired with the perf epoch —
        #: lets exporters translate offsets into absolute times.
        self.wall_epoch = time.time()
        self._perf_epoch = time.perf_counter()
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._local = threading.local()
        self.dropped = 0
        #: Optional :class:`MetricsRegistry` mirror (set by the owning
        #: probe): buffer overflow then also shows up as the
        #: ``trace.dropped_spans`` counter, so a metrics scrape reveals
        #: incomplete attribution without reading the export header.
        self.metrics = None

    def _note_drop(self) -> None:
        """Count one dropped span (cold path — only runs at the cap)."""
        self.dropped += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("trace.dropped_spans").increment()

    # -- clock -------------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the tracer epoch (shared across threads)."""
        return time.perf_counter() - self._perf_epoch

    # -- span stack --------------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _thread_info(self):
        """Cached ``(ident, name)`` of the calling thread.

        ``threading.current_thread()`` walks a dict per call; caching
        the tuple in the thread-local makes the steady state a single
        ``getattr`` — a visible slice off span creation at two spans per
        superstep.
        """
        local = self._local
        info = getattr(local, "info", None)
        if info is None:
            thread = threading.current_thread()
            info = local.info = (thread.ident or 0, thread.name)
        return info

    def current_span(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span: a context manager whose ``__enter__``
        returns the :class:`Span` so callers can ``.set()`` exit
        attributes.  Always records, even when the body raises (the span
        then carries an ``error`` attribute with the exception type)."""
        ident, thread_name = self._thread_info()
        # Positional construction: the keyword form of the generated
        # dataclass __init__ costs ~2.5x as much, which matters at two
        # spans per superstep.  Order: span_id, name, start (stamped on
        # __enter__), end, parent_id, thread_id, thread_name, attrs.
        span = Span(
            next(self._ids), name, 0.0, None, None, ident, thread_name, attrs
        )
        return _SpanContext(self, span)

    def record(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> Optional[Span]:
        """Record an already-timed span directly into the buffer.

        The stitching path for work that ran outside this interpreter —
        a ``par_proc`` worker process reports how long its round kernel
        was busy, and the parent records that interval as a child of its
        currently open span.  ``start``/``end`` are seconds on this
        tracer's timeline (see :meth:`now`).
        """
        parent = self.current_span()
        ident, thread_name = self._thread_info()
        span = Span(
            next(self._ids),
            name,
            start,
            end,
            parent.span_id if parent is not None else None,
            ident,
            thread_name,
            attrs,
        )
        if len(self._spans) < self.max_spans:
            self._spans.append(span)
            return span
        self._note_drop()
        return None

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration event on the calling thread's open span
        (dropped silently when no span is open — events decorate spans,
        they are not a standalone log)."""
        span = self.current_span()
        if span is None:
            return
        span.add_event(SpanEvent(name=name, timestamp=self.now(), attrs=attrs))

    # -- buffer ------------------------------------------------------------------------

    def spans(self) -> List[Span]:
        """Snapshot of completed spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def spans_since(self, index: int) -> List[Span]:
        """Snapshot of completed spans from buffer position ``index`` on.

        The service harvests one query's spans by remembering the buffer
        length when the query began and copying only the tail when it
        settles — the buffer is append-only between :meth:`clear` calls,
        so positions are stable and the copy stays proportional to the
        query, not the session.
        """
        with self._lock:
            return list(self._spans[index:])

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        """Empty the buffer and reset the drop count."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0
