"""The performance-regression gate: compare two runs, exit nonzero on loss.

Compares workload timings between any two of:

* ``BENCH_*.json`` trajectory entries (schema
  ``repro-bench-trajectory/v1`` — each workload's ``seconds`` is already
  a best-of-n statistic, recorded in its ``trials`` field);
* run-ledger records (schema ``repro-run-ledger/v1``);
* raw dicts of the same shapes (what the tests construct).

The comparison is deliberately the one benchmark farms actually hold
up under: each side's number is the *minimum* over its trials (the
least-noise-contaminated estimate of steady state — see
``benchmarks/report.py``), and a workload regresses when the candidate
is more than ``threshold`` relatively slower than the baseline *and*
slower by more than ``min_seconds`` absolutely (sub-noise-floor
workloads cannot flag).  Improvements are reported symmetrically but
never fail the gate.

Used by ``repro diff``, ``benchmarks/report.py --compare``, and the CI
smoke job's ``BENCH_PR(n-1)`` vs ``BENCH_PRn`` gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Default relative slowdown that counts as a regression (25% — CI
#: compares entries collected in separate sessions of a shared machine,
#: so single-digit percentages would gate on noise).
DEFAULT_THRESHOLD = 0.25

#: Absolute noise floor: a workload must be at least this much slower
#: in absolute seconds to flag (guards microsecond-scale workloads).
DEFAULT_MIN_SECONDS = 0.0005


@dataclass
class WorkloadComparison:
    """One workload's baseline-vs-candidate verdict."""

    name: str
    baseline_seconds: float
    candidate_seconds: float
    regressed: bool
    improved: bool
    trials: Optional[int] = None

    @property
    def ratio(self) -> float:
        """candidate / baseline (>1 = slower)."""
        if self.baseline_seconds <= 0:
            return float("inf") if self.candidate_seconds > 0 else 1.0
        return self.candidate_seconds / self.baseline_seconds


@dataclass
class RegressionReport:
    """All comparisons plus the gate verdict."""

    comparisons: List[WorkloadComparison]
    threshold: float
    baseline_label: str = "baseline"
    candidate_label: str = "candidate"
    missing: Optional[List[str]] = None

    @property
    def regressions(self) -> List[WorkloadComparison]:
        return [c for c in self.comparisons if c.regressed]

    @property
    def improvements(self) -> List[WorkloadComparison]:
        return [c for c in self.comparisons if c.improved]

    def exit_code(self) -> int:
        """0 = gate passes, 1 = at least one regression."""
        return 1 if self.regressions else 0

    def render(self) -> str:
        """The comparison table plus the gate verdict line."""
        out: List[str] = []
        out.append(
            f"{self.baseline_label} -> {self.candidate_label} "
            f"(threshold {self.threshold:.0%})"
        )
        out.append(
            f"  {'workload':<24} {'baseline':>12} {'candidate':>12} "
            f"{'ratio':>8}  verdict"
        )
        for c in self.comparisons:
            if c.regressed:
                verdict = "REGRESSED"
            elif c.improved:
                verdict = "improved"
            else:
                verdict = "ok"
            out.append(
                f"  {c.name:<24} {c.baseline_seconds * 1e3:>9.3f} ms "
                f"{c.candidate_seconds * 1e3:>9.3f} ms {c.ratio:>7.2f}x"
                f"  {verdict}"
            )
        for name in self.missing or []:
            out.append(f"  {name:<24} (not present on both sides, skipped)")
        if self.regressions:
            worst = max(self.regressions, key=lambda c: c.ratio)
            out.append(
                f"REGRESSION: {len(self.regressions)} workload(s) exceed the "
                f"{self.threshold:.0%} threshold (worst: {worst.name} at "
                f"{worst.ratio:.2f}x)"
            )
        else:
            out.append("gate passed: no workload regressed")
        return "\n".join(out)


# -- input normalization ---------------------------------------------------------------


def workloads_of(obj: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Extract ``name -> {seconds, trials}`` from any supported shape.

    Trajectory entries contribute every workload; a ledger record
    contributes either its embedded trajectory workloads (benchmark
    runs) or one workload named after its algorithm.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"expected an object, got {type(obj).__name__}")
    schema = obj.get("schema", "")
    if isinstance(obj.get("workloads"), list):
        out = {}
        for w in obj["workloads"]:
            if isinstance(w, dict) and "name" in w and "seconds" in w:
                out[str(w["name"])] = {
                    "seconds": float(w["seconds"]),
                    "trials": w.get("trials"),
                }
        if out:
            return out
        raise ValueError("workloads list carries no (name, seconds) pairs")
    if schema.startswith("repro-run-ledger"):
        metrics = obj.get("metrics", {})
        if isinstance(metrics.get("workloads"), list):
            return workloads_of({"workloads": metrics["workloads"]})
        seconds = metrics.get("seconds")
        if not isinstance(seconds, (int, float)):
            raise ValueError(
                f"ledger record {obj.get('run_id')!r} has no "
                f"metrics.seconds to compare"
            )
        name = obj.get("algorithm") or "run"
        return {str(name): {"seconds": float(seconds), "trials": 1}}
    raise ValueError(
        f"unrecognized comparison input (schema {schema!r}); expected a "
        f"trajectory entry or a ledger record"
    )


def load_comparable(path: str) -> Dict[str, Any]:
    """Load a comparison side from a JSON file (trajectory entry or a
    single-record JSON dump of a ledger record)."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


# -- the gate --------------------------------------------------------------------------


def compare(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> RegressionReport:
    """Compare two runs/entries workload by workload."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    base = workloads_of(baseline)
    cand = workloads_of(candidate)
    shared = [name for name in base if name in cand]
    missing = sorted(
        (set(base) | set(cand)) - set(shared)
    )
    comparisons = []
    for name in shared:
        b = base[name]["seconds"]
        c = cand[name]["seconds"]
        slower = c - b
        regressed = (
            b > 0
            and c / b > 1.0 + threshold
            and slower > min_seconds
        )
        improved = b > 0 and c / b < 1.0 - threshold and (b - c) > min_seconds
        comparisons.append(
            WorkloadComparison(
                name=name,
                baseline_seconds=b,
                candidate_seconds=c,
                regressed=regressed,
                improved=improved,
                trials=cand[name].get("trials") or base[name].get("trials"),
            )
        )
    return RegressionReport(
        comparisons=comparisons,
        threshold=threshold,
        baseline_label=baseline_label,
        candidate_label=candidate_label,
        missing=missing,
    )
