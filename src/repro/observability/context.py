"""Ambient per-thread trace context — the id that ties a query together.

The service assigns every request a *trace id* (its query id) and needs
that id visible from every layer the query touches: the span the
connection thread opens, the execution engine's supersteps, and — across
a process boundary — the ``par_proc`` round frames, whose workers echo
the id back so stitched ``proc:task`` spans carry it too.

The probe itself is process-global (one ambient probe per session), so
the trace id cannot live there: concurrent queries on different server
threads each need their own.  This module is the thread-local half,
mirroring :class:`~repro.resilience.deadline.CancelToken`'s ambience:
``with trace_context(qid): ...`` installs the id for the current thread,
:func:`current_trace_id` reads it (one thread-local ``getattr`` — free
enough for the round-dispatch path, and never touched by kernel inner
loops).
"""

from __future__ import annotations

import threading
from typing import Optional

_tls = threading.local()


def current_trace_id() -> Optional[str]:
    """The calling thread's trace id, or ``None`` outside any query."""
    return getattr(_tls, "trace_id", None)


class trace_context:
    """Install a trace id for the current thread (re-entrant: nesting
    restores the previous id on exit, like the cancel-token stack)."""

    __slots__ = ("trace_id", "_prev")

    def __init__(self, trace_id: Optional[str]) -> None:
        self.trace_id = trace_id
        self._prev: Optional[str] = None

    def __enter__(self) -> "trace_context":
        self._prev = getattr(_tls, "trace_id", None)
        _tls.trace_id = self.trace_id
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _tls.trace_id = self._prev
        self._prev = None
