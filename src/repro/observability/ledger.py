"""The run ledger: append-only machine-checkable performance history.

Every ``repro run``, ``repro profile``, and benchmark trajectory
collection appends one JSON line to ``.repro/runs/ledger.jsonl`` —
config, environment, headline metrics, per-superstep summaries, and
(when spans were collected) the analysis engine's attribution — so
"did this change regress sssp_grid?" is answerable from the ledger
alone, months later, without re-reading Chrome traces.

The ledger is *append-only*: records are never rewritten, a run id
never changes meaning, and corrupt lines are skipped on read (a crashed
writer cannot poison history).  The directory is chosen by (in order)
an explicit argument, the ``REPRO_LEDGER_DIR`` environment variable,
and the default ``.repro/runs`` under the current working directory;
setting ``REPRO_LEDGER=0`` disables recording entirely.
"""

from __future__ import annotations

import json
import os
import platform
import time
import uuid
from typing import Any, Dict, Iterator, List, Optional

#: Schema tag stamped into every ledger record.
LEDGER_SCHEMA = "repro-run-ledger/v1"

#: Default ledger location (relative to the working directory).
DEFAULT_LEDGER_DIR = os.path.join(".repro", "runs")

#: Per-superstep rows kept verbatim in a record; longer runs keep the
#: head and a rollup so ledger lines stay bounded.
MAX_SUPERSTEP_ROWS = 512


def ledger_enabled() -> bool:
    """Whether recording is enabled (``REPRO_LEDGER=0`` disables)."""
    return os.environ.get("REPRO_LEDGER", "1") != "0"


def resolve_ledger_dir(explicit: Optional[str] = None) -> str:
    """The ledger directory: explicit arg > env var > default."""
    if explicit:
        return explicit
    return os.environ.get("REPRO_LEDGER_DIR") or DEFAULT_LEDGER_DIR


def new_run_id() -> str:
    """A unique, sortable run id: ``r<utc-timestamp>-<random>``."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"r{stamp}-{uuid.uuid4().hex[:6]}"


def capture_environment() -> Dict[str, Any]:
    """The environment fields a record carries for later comparability."""
    env: Dict[str, Any] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }
    try:
        import numpy

        env["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return env


def summarize_supersteps(stats) -> List[Dict[str, Any]]:
    """Per-superstep summaries from a :class:`RunStats` (bounded).

    Keeps up to :data:`MAX_SUPERSTEP_ROWS` rows; longer runs keep the
    head and append a rollup row (``type: "rollup"``) with the elided
    totals, so truncation is always visible in the record itself.
    """
    if stats is None:
        return []
    rows = [
        {
            "iteration": it.iteration,
            "frontier_size": it.frontier_size,
            "edges_touched": it.edges_touched,
            "seconds": it.seconds,
        }
        for it in stats.iterations
    ]
    if len(rows) <= MAX_SUPERSTEP_ROWS:
        return rows
    kept = rows[:MAX_SUPERSTEP_ROWS]
    rest = rows[MAX_SUPERSTEP_ROWS:]
    kept.append(
        {
            "type": "rollup",
            "elided": len(rest),
            "edges_touched": sum(r["edges_touched"] for r in rest),
            "seconds": sum(r["seconds"] for r in rest),
        }
    )
    return kept


def make_record(
    *,
    kind: str,
    algorithm: str,
    config: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Any]] = None,
    stats=None,
    analysis: Optional[Dict[str, Any]] = None,
    label: str = "",
) -> Dict[str, Any]:
    """Assemble one ledger record (pure; nothing is written)."""
    return {
        "schema": LEDGER_SCHEMA,
        "run_id": new_run_id(),
        "kind": kind,
        "algorithm": algorithm,
        "label": label,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": dict(config or {}),
        "environment": capture_environment(),
        "metrics": dict(metrics or {}),
        "supersteps": summarize_supersteps(stats),
        "analysis": analysis,
    }


class RunLedger:
    """Reader/appender for one ledger file.

    Parameters
    ----------
    root:
        Ledger directory (see :func:`resolve_ledger_dir`).  Created on
        first append, not on construction — instantiating a ledger to
        *read* never touches the filesystem.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = resolve_ledger_dir(root)
        self.path = os.path.join(self.root, "ledger.jsonl")
        #: Unparseable/garbage lines skipped by the most recent read
        #: pass (:meth:`records` resets it each time).  Skipping keeps a
        #: crashed writer from poisoning history, but the tolerance must
        #: not be silent — readers surface this count.
        self.skipped_lines = 0

    # -- writing -----------------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> str:
        """Append one record; returns its run id."""
        if record.get("schema") != LEDGER_SCHEMA:
            raise ValueError(
                f"record schema {record.get('schema')!r} != {LEDGER_SCHEMA!r}"
            )
        run_id = record.get("run_id")
        if not run_id:
            raise ValueError("record has no run_id")
        os.makedirs(self.root, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return str(run_id)

    # -- reading -----------------------------------------------------------------------

    def records(self) -> Iterator[Dict[str, Any]]:
        """All parseable records, oldest first.

        Corrupt lines (truncated writes, non-JSON garbage, records with
        no run id) are skipped, counted in :attr:`skipped_lines`, and
        mirrored to the ambient probe as the ``ledger.corrupt_lines``
        counter — tolerated, never hidden.
        """
        self.skipped_lines = 0
        if not os.path.exists(self.path):
            return
        skipped = 0
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        skipped += 1
                        self.skipped_lines = skipped
                        continue
                    if isinstance(record, dict) and record.get("run_id"):
                        yield record
                    else:
                        skipped += 1
                        self.skipped_lines = skipped
        finally:
            if skipped:
                from repro.observability.probe import active_probe

                probe = active_probe()
                if probe.enabled:
                    probe.counter("ledger.corrupt_lines", skipped)

    def tail(self, n: int = 10) -> List[Dict[str, Any]]:
        """The most recent ``n`` records, oldest first."""
        return list(self.records())[-n:]

    def get(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The record with the given id; unique prefixes also match
        (``repro explain r20260806`` works like an abbreviated git sha).
        Service query records additionally match on their ``qid`` field,
        so ``repro explain q1234-000007`` resolves the id a query
        response reported.  Returns ``None`` when absent or ambiguous."""
        exact = None
        prefixed: List[Dict[str, Any]] = []
        for record in self.records():
            ids = [str(record["run_id"])]
            qid = record.get("qid")
            if qid:
                ids.append(str(qid))
            if run_id in ids:
                exact = record  # last exact match wins (append-only)
            elif any(i.startswith(run_id) for i in ids):
                prefixed.append(record)
        if exact is not None:
            return exact
        if len(prefixed) == 1:
            return prefixed[0]
        return None

    def latest(self, kind: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """The most recent record (optionally of one kind)."""
        found = None
        for record in self.records():
            if kind is None or record.get("kind") == kind:
                found = record
        return found

    def __len__(self) -> int:
        return sum(1 for _ in self.records())
