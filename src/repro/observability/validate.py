"""Schema checks as a command: ``python -m repro.observability.validate``.

CI's smoke-profile job runs ``repro profile sssp --trace t.json --events
e.jsonl`` and then this module over the outputs; a non-empty problem
list is a failing exit code with the problems on stderr.  Files are
dispatched by extension: ``*.jsonl`` is checked as an event log,
anything else as a Chrome trace.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Sequence

from repro.observability.export import (
    validate_chrome_trace,
    validate_events_jsonl,
)


def validate_file(path: str) -> List[str]:
    """Validate one export file; returns its problems (empty = valid)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            if path.endswith(".jsonl"):
                return validate_events_jsonl(fh)
            return validate_chrome_trace(json.load(fh))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"could not read {path}: {exc}"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Validate each file argument; exit 0 iff all pass (2 on usage)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(
            "usage: python -m repro.observability.validate "
            "<trace.json|events.jsonl> [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in argv:
        problems = validate_file(path)
        if problems:
            failed = True
            for p in problems:
                print(f"{path}: {p}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
