"""Schema checks as a command: ``python -m repro.observability.validate``.

CI's smoke jobs run ``repro profile``/``repro query`` and then this
module over the outputs; a non-empty problem list is a failing exit
code with the problems on stderr.  Files are dispatched by shape:

* ``*.prom`` — Prometheus text exposition (the ``metrics`` op's text
  format);
* ``*.jsonl`` — peeked at the first line: an ``incident`` header is
  checked as a flight-recorder dump, anything else as a JSONL event
  log;
* everything else — parsed as JSON: a ``traceEvents`` root is a Chrome
  trace, a :data:`~repro.observability.prom.METRICS_SCHEMA` tag is a
  service metrics snapshot.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Sequence

from repro.observability.export import (
    validate_chrome_trace,
    validate_events_jsonl,
)
from repro.observability.flight import validate_incident_jsonl
from repro.observability.prom import (
    METRICS_SCHEMA,
    validate_metrics_json,
    validate_prometheus,
)


def validate_file(path: str) -> List[str]:
    """Validate one export file; returns its problems (empty = valid)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            if path.endswith(".prom"):
                return validate_prometheus(fh)
            if path.endswith(".jsonl"):
                lines = fh.readlines()
                first: dict = {}
                for line in lines:
                    if line.strip():
                        try:
                            first = json.loads(line)
                        except json.JSONDecodeError:
                            first = {}
                        break
                if isinstance(first, dict) and first.get("type") == "incident":
                    return validate_incident_jsonl(lines)
                return validate_events_jsonl(lines)
            obj = json.load(fh)
            if (
                isinstance(obj, dict)
                and str(obj.get("protocol", "")).startswith("repro-query/")
                and isinstance(obj.get("result"), dict)
            ):
                # A saved `repro query --op metrics` response: the
                # snapshot rides inside the protocol envelope.
                obj = obj["result"]
            if isinstance(obj, dict) and obj.get("schema") == METRICS_SCHEMA:
                return validate_metrics_json(obj)
            return validate_chrome_trace(obj)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"could not read {path}: {exc}"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Validate each file argument; exit 0 iff all pass (2 on usage)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(
            "usage: python -m repro.observability.validate "
            "<trace.json|events.jsonl> [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in argv:
        problems = validate_file(path)
        if problems:
            failed = True
            for p in problems:
                print(f"{path}: {p}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
