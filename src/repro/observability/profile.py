"""One-call profiling runs: algorithm in, traced + metered report out.

This is the engine behind ``repro profile`` — it installs a
:class:`~repro.observability.probe.Probe` as the ambient probe, runs the
requested algorithm, and hands back everything the exporters need: the
probe (spans + metrics), the per-iteration :class:`RunStats`, the result
values, and the end-to-end wall time.

Profiled algorithms deliberately span the timing models (BSP enactor,
priority enactor, asynchronous scheduler, Pregel engine) so one command
compares the same workload across the paper's §III-A axis with uniform
output.

Imports of the algorithm layer happen inside the runner functions —
profiling sits *above* the enactors in the dependency order, while the
rest of :mod:`repro.observability` sits below them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.observability.probe import Probe
from repro.utils.counters import RunStats
from repro.utils.timing import WallClock


@dataclass
class ProfileReport:
    """Everything one profiled run produced."""

    algorithm: str
    probe: Probe
    seconds: float
    stats: Optional[RunStats] = None
    values: Optional[np.ndarray] = None
    graph_info: Dict[str, Any] = field(default_factory=dict)

    def summary_metrics(self) -> Dict[str, Any]:
        """The flat numbers a JSON consumer wants for one run."""
        out: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "seconds": self.seconds,
        }
        out.update(self.graph_info)
        if self.stats is not None:
            out["iterations"] = self.stats.num_iterations
            out["edges_expanded"] = self.stats.total_edges_touched
            out["mteps"] = self.stats.mteps
            out["converged"] = self.stats.converged
        out["spans"] = len(self.probe.tracer) if self.probe.trace else 0
        return out


def _run_sssp(graph, source, policy, num_workers, backend="native"):
    from repro.algorithms import sssp

    return sssp(graph, source, policy=policy, backend=backend)


def _run_sssp_async(graph, source, policy, num_workers, backend="native"):
    from repro.algorithms import sssp_async

    return sssp_async(graph, source, num_workers=num_workers)


def _run_sssp_delta(graph, source, policy, num_workers, backend="native"):
    from repro.algorithms import sssp_delta_stepping

    return sssp_delta_stepping(graph, source, policy=policy)


def _run_bfs(graph, source, policy, num_workers, backend="native"):
    from repro.algorithms import bfs

    return bfs(graph, source, policy=policy, backend=backend)


def _run_cc(graph, source, policy, num_workers, backend="native"):
    from repro.algorithms import connected_components

    return connected_components(graph, policy=policy, backend=backend)


def _run_pagerank(graph, source, policy, num_workers, backend="native"):
    from repro.algorithms import pagerank

    return pagerank(graph, policy=policy, backend=backend)


def _run_pregel_pagerank(graph, source, policy, num_workers, backend="native"):
    from repro.algorithms.pregel_programs import pregel_pagerank

    return pregel_pagerank(graph)


#: name -> (runner, attribute holding the per-vertex values)
PROFILED_ALGORITHMS: Dict[str, tuple] = {
    "sssp": (_run_sssp, "distances"),
    "sssp_async": (_run_sssp_async, "distances"),
    "sssp_delta": (_run_sssp_delta, "distances"),
    "bfs": (_run_bfs, "levels"),
    "cc": (_run_cc, "labels"),
    "pagerank": (_run_pagerank, "ranks"),
    "pregel_pagerank": (_run_pregel_pagerank, "ranks"),
}


def profile_algorithm(
    graph,
    algorithm: str,
    *,
    source: int = 0,
    policy: str = "par_vector",
    num_workers: int = 4,
    probe: Optional[Probe] = None,
    trace: bool = True,
    runner: Optional[Callable] = None,
    backend: str = "native",
) -> ProfileReport:
    """Run ``algorithm`` on ``graph`` under an ambient probe.

    Parameters
    ----------
    graph:
        The graph to process.
    algorithm:
        A key of :data:`PROFILED_ALGORITHMS` (ignored when ``runner``
        is given).
    source:
        Source vertex for traversal algorithms.
    policy:
        Execution policy name for policy-overloaded algorithms.
    num_workers:
        Worker threads for the asynchronous timing model.
    probe:
        Reuse an existing probe (e.g. to accumulate several runs into
        one trace); a fresh one is created when omitted.
    trace:
        Collect spans (disable for metrics-only profiles).
    runner:
        Custom ``runner(graph, source, policy, num_workers) -> result``
        overriding the registry — how callers profile algorithms this
        module does not know about.
    backend:
        Execution backend for registry algorithms that support it
        (``"native"`` | ``"linalg"`` | ``"auto"``).  Passed to a custom
        ``runner`` only when non-native, so 4-argument runners keep
        working.
    """
    if runner is None:
        if algorithm not in PROFILED_ALGORITHMS:
            raise ValueError(
                f"unknown profile algorithm {algorithm!r}; expected one of "
                f"{sorted(PROFILED_ALGORITHMS)}"
            )
        runner, values_attr = PROFILED_ALGORITHMS[algorithm]
    else:
        values_attr = None
    if probe is None:
        probe = Probe(trace=trace)
    clock = WallClock()
    with probe:
        with clock.measure():
            if backend != "native":
                result = runner(
                    graph, source, policy, num_workers, backend=backend
                )
            else:
                result = runner(graph, source, policy, num_workers)
    stats = getattr(result, "stats", None)
    values = (
        getattr(result, values_attr, None) if values_attr is not None else None
    )
    report = ProfileReport(
        algorithm=algorithm,
        probe=probe,
        seconds=clock.elapsed,
        stats=stats,
        values=values,
        graph_info={
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
        },
    )
    probe.gauge("profile.seconds", clock.elapsed)
    probe.gauge("profile.n_vertices", graph.n_vertices)
    probe.gauge("profile.n_edges", graph.n_edges)
    return report
