"""Observability: unified tracing, metrics, and profiling.

The paper's iterative loop structure (essential component 4) is defined
by what happens at superstep boundaries; this subsystem makes those
boundaries *visible*.  Every layer — enactors, the execution layer, the
mailbox/Pregel communication layer, the operators, and the resilience
layer — reports through one ambient :class:`Probe`:

* :class:`Tracer` — nested spans (``superstep``, ``operator:advance``,
  ``scheduler:task``, ``mailbox:deliver``, ``checkpoint:save``, ...)
  with structured attributes (frontier size, edges expanded, bucket id,
  worker id) and thread-safe bounded buffering;
* :class:`MetricsRegistry` — named counters/gauges/histograms unifying
  the legacy ``ResilienceCounters`` and ``RunStats`` accounting;
* exporters — Chrome trace-event JSON (open in Perfetto, one track per
  worker thread), a JSONL event log, and a terminal summary table.

The default probe is the null object: with nothing installed every
instrumentation point is a no-op with bounded overhead (measured <2% on
the grid SSSP workload; see ``benchmarks/bench_observability_overhead.py``).

Usage::

    from repro.observability import Probe, render_summary, write_chrome_trace

    probe = Probe()
    with probe:                     # ambient, like a FaultInjector
        result = sssp(g, 0)
    print(render_summary(probe))
    write_chrome_trace(probe, "trace.json")

Or in one call via :func:`repro.observability.profile.profile_algorithm`
(what ``repro profile`` runs).  This module intentionally does not
import the profiling front-end — the instrumented layers import
:mod:`repro.observability.probe`, so the package root must stay below
them in the dependency order.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.probe import (
    NULL_PROBE,
    NullProbe,
    Probe,
    active_probe,
    install_probe,
    uninstall_probe,
)
from repro.observability.span import Span, SpanEvent
from repro.observability.tracer import Tracer
from repro.observability.export import (
    SCHEMA_VERSION,
    render_summary,
    to_chrome_trace,
    validate_chrome_trace,
    validate_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.observability.analysis import (
    AnalysisReport,
    analyze_file,
    analyze_probe,
    analyze_spans,
    nodes_from_span_dicts,
    render_span_tree,
)
from repro.observability.context import current_trace_id, trace_context
from repro.observability.flight import (
    INCIDENT_SCHEMA,
    FlightRecorder,
    validate_incident_jsonl,
)
from repro.observability.prom import (
    METRICS_SCHEMA,
    metrics_to_prometheus,
    validate_metrics_json,
    validate_prometheus,
)
from repro.observability.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    ledger_enabled,
    make_record,
    resolve_ledger_dir,
)
from repro.observability.regression import (
    RegressionReport,
    compare,
    load_comparable,
)

__all__ = [
    "AnalysisReport",
    "analyze_file",
    "analyze_probe",
    "analyze_spans",
    "nodes_from_span_dicts",
    "render_span_tree",
    "current_trace_id",
    "trace_context",
    "INCIDENT_SCHEMA",
    "FlightRecorder",
    "validate_incident_jsonl",
    "METRICS_SCHEMA",
    "metrics_to_prometheus",
    "validate_metrics_json",
    "validate_prometheus",
    "LEDGER_SCHEMA",
    "RunLedger",
    "ledger_enabled",
    "make_record",
    "resolve_ledger_dir",
    "RegressionReport",
    "compare",
    "load_comparable",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROBE",
    "NullProbe",
    "Probe",
    "active_probe",
    "install_probe",
    "uninstall_probe",
    "Span",
    "SpanEvent",
    "Tracer",
    "SCHEMA_VERSION",
    "render_summary",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_events_jsonl",
    "write_chrome_trace",
    "write_events_jsonl",
]
