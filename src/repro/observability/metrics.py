"""The :class:`MetricsRegistry` — one sink for every layer's numbers.

Before this subsystem the repo had three disjoint accounting mechanisms:
``ResilienceCounters`` (named event counts), ``IterationStats``/
``RunStats`` (per-superstep records), and ad-hoc benchmark prints.  The
registry unifies them: every layer reports named **counters** (monotone
event counts), **gauges** (last-written values), and **histograms**
(value distributions with count/sum/min/max/percentiles), and one
snapshot shows the whole run.

Legacy compatibility: ``ResilienceCounters.increment`` forwards into the
ambient probe's registry (see :func:`repro.utils.counters.set_metrics_sink`),
so the canonical resilience counter names
(:data:`repro.utils.counters.RESILIENCE_COUNTER_NAMES`) appear here
unchanged, and :func:`MetricsRegistry.record_run` folds a ``RunStats``
into the standard loop metrics.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, List, Optional, Union


class Counter:
    """A monotone named count (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, n: Union[int, float] = 1) -> None:
        """Add ``n`` (>= 0) to the count."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> Union[int, float]:
        with self._lock:
            return self._value


class Gauge:
    """A last-value-wins named reading (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        """Overwrite the reading."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> Union[int, float]:
        with self._lock:
            return self._value


class Histogram:
    """A bounded-reservoir distribution of observed values.

    Count/sum/min/max are exact.  Percentiles come from a **uniform**
    reservoir maintained with Vitter's algorithm R: once the reservoir
    is full, observation *i* replaces a random slot with probability
    ``reservoir / i``, so every observation — early superstep or late —
    is equally likely to be retained.  (Keeping the *first* N instead
    would skew long-run percentiles toward warm-up supersteps.)  The RNG
    is seeded from the histogram name, so a given observation sequence
    always yields the same sample — reports are reproducible.
    """

    __slots__ = ("name", "count", "total", "_min", "_max", "_sample",
                 "reservoir", "_rng", "_lock")

    def __init__(self, name: str, reservoir: int = 4096,
                 seed: Optional[int] = None) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._sample: List[float] = []
        self.reservoir = reservoir
        # Deterministic per-name seed (zlib.crc32, unlike hash(), is
        # stable across processes), overridable for tests.
        self._rng = random.Random(
            zlib.crc32(name.encode("utf-8")) if seed is None else seed
        )
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._sample) < self.reservoir:
                self._sample.append(value)
            else:
                # Vitter's algorithm R: keep with probability k/i.
                slot = self._rng.randrange(self.count)
                if slot < self.reservoir:
                    self._sample[slot] = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained sample (0 if empty)."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if not self._sample:
                return 0.0
            ordered = sorted(self._sample)
            rank = max(0, min(len(ordered) - 1,
                              round(q / 100.0 * (len(ordered) - 1))))
            return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """Exact count/sum/min/max/mean of everything observed."""
        with self._lock:
            if self.count == 0:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0}
            return {
                "count": self.count,
                "sum": self.total,
                "min": self._min,
                "max": self._max,
                "mean": self.total / self.count,
            }


class MetricsRegistry:
    """Named counters/gauges/histograms behind one lock-guarded namespace.

    Instruments are created on first use; a name is bound to one kind for
    the registry's lifetime (asking for the same name as a different
    kind raises, catching report-path typos early).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, requested {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        return self._get(name, Histogram)

    # -- legacy-shape unification --------------------------------------------------------

    def record_run(self, stats, prefix: str = "loop") -> None:
        """Fold a :class:`~repro.utils.counters.RunStats` into the
        standard loop metrics (the BSP/priority/async parity shape)."""
        self.counter(f"{prefix}.supersteps").increment(stats.num_iterations)
        self.counter(f"{prefix}.edges_expanded").increment(
            stats.total_edges_touched
        )
        self.gauge(f"{prefix}.converged").set(1.0 if stats.converged else 0.0)
        for it in stats.iterations:
            self.histogram(f"{prefix}.frontier_size").observe(it.frontier_size)
            self.histogram(f"{prefix}.superstep_seconds").observe(it.seconds)

    # -- snapshots ---------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot of every instrument."""
        with self._lock:
            instruments = dict(self._instruments)
        out: Dict[str, object] = {}
        for name, inst in sorted(instruments.items()):
            if isinstance(inst, (Counter, Gauge)):
                out[name] = inst.value
            else:
                out[name] = inst.summary()
        return out

    def counters_dict(self) -> Dict[str, Union[int, float]]:
        """Snapshot of counters only — comparable to
        ``ResilienceCounters.as_dict()`` for the legacy-equivalence tests."""
        with self._lock:
            instruments = dict(self._instruments)
        return {
            name: inst.value
            for name, inst in sorted(instruments.items())
            if isinstance(inst, Counter)
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh namespace)."""
        with self._lock:
            self._instruments.clear()
