"""Exporters: Chrome trace-event JSON, JSONL event log, terminal summary.

Three consumers, three formats:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format (the ``chrome://tracing`` / Perfetto "JSON object" flavor): one
  complete (``"ph": "X"``) event per span, one track per worker thread
  (thread-name metadata events), span events as thread-scoped instants.
  Open the file with https://ui.perfetto.dev or ``chrome://tracing``.
* :func:`write_events_jsonl` — one JSON object per line (a ``meta``
  header, then every span, then every metric), the machine-readable run
  record scripts can grep or load incrementally.
* :func:`render_summary` — the human-readable post-run table: span
  aggregates by name, then the metrics snapshot.

The matching validators (:func:`validate_chrome_trace`,
:func:`validate_events_jsonl`) return a list of problems (empty = valid)
and back both the CI schema check and the test suite.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.observability.span import Span
from repro.observability.probe import Probe

#: Schema tag stamped into both export formats.
SCHEMA_VERSION = "repro-observability/v1"


def _to_us(seconds: float) -> float:
    return seconds * 1e6


# -- Chrome trace-event format ---------------------------------------------------------


def to_chrome_trace(probe: Probe, *, process_name: str = "repro") -> Dict[str, Any]:
    """Render the probe's spans as a Trace Event Format object.

    Thread tracks are labelled with the Python thread names
    (``repro-async-3``, ``repro-worker_0``, ``MainThread``), so a trace
    of a threaded run shows exactly the per-worker timelines Gunrock's
    workload characterization plots are built from.
    """
    spans = probe.tracer.spans() if probe.trace else []
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    threads: Dict[int, str] = {}
    for span in spans:
        threads.setdefault(span.thread_id, span.thread_name)
    # Stable small tids: Perfetto sorts tracks by tid, so map thread
    # idents to dense indices with the main thread first.
    tid_of = {ident: i for i, ident in enumerate(sorted(threads))}
    for ident, name in threads.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid_of[ident],
                "args": {"name": name or f"thread-{ident}"},
            }
        )
    for span in spans:
        tid = tid_of[span.thread_id]
        args = {k: _jsonable(v) for k, v in span.attrs.items()}
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(":")[0],
                "ph": "X",
                "ts": _to_us(span.start),
                "dur": _to_us(span.duration),
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
        for ev in span.events or ():
            # Instants are tied to their enclosing span (span/span_id in
            # args): a retry mark in Perfetto names the superstep it
            # interrupted, and the analysis engine can re-join them.
            ev_args = {k: _jsonable(v) for k, v in ev.attrs.items()}
            ev_args["span"] = span.name
            ev_args["span_id"] = span.span_id
            events.append(
                {
                    "name": ev.name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": _to_us(ev.timestamp),
                    "pid": 0,
                    "tid": tid,
                    "args": ev_args,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": SCHEMA_VERSION,
            "spans": len(spans),
            "spans_dropped": probe.tracer.dropped if probe.trace else 0,
        },
    }


def warn_dropped_spans(probe: Probe, path: str) -> None:
    """One stderr line when the span buffer overflowed during the run.

    Both file exporters call this: silent overflow would make
    ``repro explain`` attribution quietly incomplete, and the counts in
    the export headers are easy to never look at.
    """
    if probe.trace and probe.tracer.dropped:
        print(
            f"repro: warning: {probe.tracer.dropped} spans dropped at the "
            f"tracer buffer cap; attribution in {path} is incomplete",
            file=sys.stderr,
        )


def write_chrome_trace(probe: Probe, path: str, **kwargs: Any) -> None:
    """Serialize :func:`to_chrome_trace` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(probe, **kwargs), fh)
    warn_dropped_spans(probe, path)


def validate_chrome_trace(obj: Any) -> List[str]:
    """Schema-check a loaded Chrome trace object; returns problems."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"trace root must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "B", "E"):
            problems.append(f"{where} has unknown phase {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where} ({ph}) missing {key!r}")
        if ph == "X":
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"{where} complete event missing numeric ts")
            if not isinstance(ev.get("dur"), (int, float)):
                problems.append(f"{where} complete event missing numeric dur")
            elif ev["dur"] < 0:
                problems.append(f"{where} has negative duration")
        if ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                problems.append(f"{where} instant event has invalid scope")
            if ev.get("cat") == "event":
                args = ev.get("args")
                if not isinstance(args, dict) or not isinstance(
                    args.get("span_id"), int
                ):
                    problems.append(
                        f"{where} span-event instant missing integer "
                        f"args.span_id (enclosing-span tie)"
                    )
    return problems


# -- JSONL event log -------------------------------------------------------------------


def write_events_jsonl(probe: Probe, path: str, **meta: Any) -> None:
    """Write the run record: a meta header line, then spans, then metrics."""
    spans = probe.tracer.spans() if probe.trace else []
    header = {
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "wall_epoch": probe.tracer.wall_epoch if probe.trace else None,
        "spans": len(spans),
        "spans_dropped": probe.tracer.dropped if probe.trace else 0,
    }
    header.update({k: _jsonable(v) for k, v in meta.items()})
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for span in spans:
            record = span.to_dict()
            record["attrs"] = {
                k: _jsonable(v) for k, v in record["attrs"].items()
            }
            fh.write(json.dumps(record) + "\n")
        fh.write(
            json.dumps({"type": "metrics", "values": probe.metrics.as_dict()})
            + "\n"
        )
    warn_dropped_spans(probe, path)


def validate_events_jsonl(lines: Iterable[str]) -> List[str]:
    """Schema-check a JSONL event log given as an iterable of lines."""
    problems: List[str] = []
    saw_meta = saw_metrics = False
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {i + 1}: invalid JSON ({exc})")
            continue
        kind = record.get("type")
        if kind == "meta":
            saw_meta = True
            if record.get("schema") != SCHEMA_VERSION:
                problems.append(
                    f"line {i + 1}: schema {record.get('schema')!r} != "
                    f"{SCHEMA_VERSION!r}"
                )
            if i != 0:
                problems.append(f"line {i + 1}: meta must be the first line")
        elif kind == "span":
            for key in ("id", "name", "ts", "dur", "thread_id", "attrs"):
                if key not in record:
                    problems.append(f"line {i + 1}: span missing {key!r}")
        elif kind == "metrics":
            saw_metrics = True
            if not isinstance(record.get("values"), dict):
                problems.append(f"line {i + 1}: metrics missing values object")
        else:
            problems.append(f"line {i + 1}: unknown record type {kind!r}")
    if not saw_meta:
        problems.append("no meta header line")
    if not saw_metrics:
        problems.append("no metrics line")
    return problems


# -- terminal summary ------------------------------------------------------------------


def render_summary(probe: Probe, *, top: int = 20) -> str:
    """The post-run table: span aggregates by name, then metrics."""
    out: List[str] = []
    spans = probe.tracer.spans() if probe.trace else []
    if spans:
        by_name: Dict[str, List[Span]] = defaultdict(list)
        for span in spans:
            by_name[span.name].append(span)
        total = sum(s.duration for s in spans if s.parent_id is None) or sum(
            s.duration for s in spans
        )
        out.append(f"{'span':<28} {'count':>7} {'total':>11} {'mean':>10} {'share':>7}")
        out.append("-" * 68)
        ranked = sorted(
            by_name.items(),
            key=lambda kv: -sum(s.duration for s in kv[1]),
        )
        for name, group in ranked[:top]:
            tot = sum(s.duration for s in group)
            share = tot / total if total > 0 else 0.0
            out.append(
                f"{name:<28} {len(group):>7} {tot * 1e3:>8.3f} ms "
                f"{tot / len(group) * 1e6:>7.1f} us {share:>6.1%}"
            )
        if len(ranked) > top:
            # Truncation must be visible: roll the hidden names up.
            hidden = ranked[top:]
            hidden_total = sum(
                s.duration for _, group in hidden for s in group
            )
            out.append(
                f"(+{len(hidden)} more span names, "
                f"{hidden_total * 1e3:.3f} ms total)"
            )
        if probe.tracer.dropped:
            out.append(f"(+{probe.tracer.dropped} spans dropped at buffer cap)")
        out.append("")
    metrics = probe.metrics.as_dict()
    if metrics:
        out.append(f"{'metric':<36} value")
        out.append("-" * 68)
        for name, value in metrics.items():
            if isinstance(value, dict):  # histogram summary
                out.append(
                    f"{name:<36} n={value['count']} mean={value['mean']:.4g} "
                    f"min={value['min']:.4g} max={value['max']:.4g}"
                )
            else:
                out.append(f"{name:<36} {value}")
    return "\n".join(out) if out else "(no telemetry recorded)"


# -- helpers ---------------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Coerce NumPy scalars and other leaves into JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)
