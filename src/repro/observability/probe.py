"""The :class:`Probe` — the single instrumentation handle, null by default.

Every instrumented seam (enactors, schedulers, the thread pool, the
mailbox router, operators, the resilience layer) asks
:func:`active_probe` for the current probe and reports through it.
Outside any profiling context that returns the process-wide
:data:`NULL_PROBE`, whose every method is a no-op returning shared
singletons — the disabled path costs one module-global read plus a
no-op call, which the overhead test bounds at under 2% of a grid-SSSP
run.

Installing a real probe is a context manager, mirroring the resilience
layer's ambient :class:`~repro.resilience.chaos.FaultInjector`::

    probe = Probe()
    with probe:
        sssp(g, 0)
    print(render_summary(probe))

Installation also bridges the legacy path: while a probe is installed,
``ResilienceCounters.increment`` forwards every count into the probe's
:class:`~repro.observability.metrics.MetricsRegistry` under the same
name, so resilience activity and loop telemetry land in one sink.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Optional, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.span import Span
from repro.observability.tracer import Tracer
from repro.utils.counters import set_metrics_sink


class _NullContext:
    """Reusable no-op context manager yielding a shared inert span.

    ``__enter__``/``__exit__`` are staticmethods: the with-statement
    machinery then skips binding ``self``, shaving ~25% off the
    disabled-path span cost (this context runs once per instrumentation
    touchpoint on every un-probed superstep).
    """

    __slots__ = ()

    @staticmethod
    def __enter__() -> "Span":
        return NULL_SPAN

    @staticmethod
    def __exit__(*exc_info) -> bool:
        return False


class _NullSpan(Span):
    """The span handed out on the disabled path; ``set`` discards."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(span_id=-1, name="null", start=0.0)

    def set(self, key: str, value: Any) -> "Span":
        return self

    def add_event(self, event) -> None:
        pass


NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class Probe:
    """A tracer plus a metrics registry behind one reporting surface.

    Parameters
    ----------
    tracer:
        Span collector (created fresh when omitted).
    metrics:
        Metrics sink (created fresh when omitted).
    trace:
        When ``False`` the probe collects metrics only — span calls
        become no-ops.  Cheap profiles that only need the summary table
        can skip span buffering entirely.
    """

    enabled = True

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        *,
        trace: bool = True,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace
        # Mirror buffer overflow into the metrics sink: a live scrape
        # then exposes ``trace.dropped_spans`` without reading exports.
        self.tracer.metrics = self.metrics

    # -- tracing ----------------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a nested span (a context manager yielding the span)."""
        if not self.trace:
            return _NULL_CONTEXT
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Mark an instant on the calling thread's open span."""
        if self.trace:
            self.tracer.event(name, **attrs)

    def record_span(self, name: str, *, duration: float, **attrs: Any) -> None:
        """Record a span for work already timed elsewhere (a worker
        process's busy interval), ending now and parented to the calling
        thread's open span."""
        if self.trace:
            end = self.tracer.now()
            self.tracer.record(name, max(0.0, end - duration), end, **attrs)

    # -- metrics ----------------------------------------------------------------------

    def counter(self, name: str, n: Union[int, float] = 1) -> None:
        """Increment the named counter by ``n``."""
        self.metrics.counter(name).increment(n)

    def gauge(self, name: str, value: Union[int, float]) -> None:
        """Set the named gauge."""
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: Union[int, float]) -> None:
        """Record into the named histogram."""
        self.metrics.histogram(name).observe(value)

    # -- ambient installation ----------------------------------------------------------

    def __enter__(self) -> "Probe":
        install_probe(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        uninstall_probe(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"Probe(spans={len(self.tracer)}, "
            f"metrics={len(self.metrics.as_dict())})"
        )


class NullProbe(Probe):
    """The disabled probe: every call is a no-op on shared singletons."""

    enabled = False

    def __init__(self) -> None:
        # No tracer/registry allocated: the null probe must be free.
        self.trace = False

    def span(self, name: str, **attrs: Any):
        return _NULL_CONTEXT

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def record_span(self, name: str, *, duration: float, **attrs: Any) -> None:
        pass

    def counter(self, name: str, n: Union[int, float] = 1) -> None:
        pass

    def gauge(self, name: str, value: Union[int, float]) -> None:
        pass

    def observe(self, name: str, value: Union[int, float]) -> None:
        pass

    def __enter__(self) -> "NullProbe":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: Process-wide disabled probe — what :func:`active_probe` returns
#: outside any installation, so call sites never branch on ``None``.
NULL_PROBE = NullProbe()

_install_lock = threading.Lock()
_active: Probe = NULL_PROBE


def active_probe() -> Probe:
    """The ambient probe (the :data:`NULL_PROBE` when none installed)."""
    return _active


def install_probe(probe: Probe) -> None:
    """Make ``probe`` ambient; nested installs are rejected (one probe
    observes one session, matching the chaos injector's discipline)."""
    global _active
    with _install_lock:
        if _active is not NULL_PROBE:
            raise RuntimeError("a probe is already installed")
        _active = probe
        set_metrics_sink(
            lambda name, n: probe.metrics.counter(name).increment(n)
        )


def uninstall_probe(probe: Probe) -> None:
    """Remove ``probe`` if it is the ambient one (idempotent otherwise)."""
    global _active
    with _install_lock:
        if _active is probe:
            _active = NULL_PROBE
            set_metrics_sink(None)
