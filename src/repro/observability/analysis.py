"""Trace analysis: from raw spans to an answer for "why was this run slow?".

PR 2 produced telemetry (spans, metrics, exporters); this module turns
it into *attribution*.  Given the spans of one run — from a live
:class:`~repro.observability.probe.Probe`, a JSONL event log, or a
Chrome trace file — the engine reconstructs the span tree and derives:

* **per-layer time attribution** — every span name maps onto one of the
  framework's layers (``graph`` / ``frontier`` / ``operator`` / ``loop``
  / ``comm`` / ``resilience``), and each span contributes its *self
  time* (duration minus same-thread children), so layer totals sum to
  exactly the traced time with no double counting.  Driver-thread time
  *between* top-level spans is the enactor's own bookkeeping
  (stats collection, convergence checks) and is attributed to ``loop``,
  tracked separately as :attr:`AnalysisReport.untraced_seconds` so the
  convention stays visible;
* the **critical path** — for each driver-thread top-level span, the
  chain formed by repeatedly descending into the heaviest child; the
  aggregate names the dominant call chain the way Gunrock's
  per-iteration runtime breakdowns do;
* **worker load imbalance** — per-worker busy time from
  ``scheduler:task`` / ``pool:task`` / ``proc:task`` spans (the last
  stitched back from ``par_proc`` worker processes), and the classic
  imbalance factor ``t_max / t_mean`` (1.0 = perfectly balanced);
* the **frontier timeline** — one row per superstep/bucket with frontier
  size, density, edges expanded, and the direction / fused-kernel /
  representation decisions PR 3's adaptive dispatch recorded on
  ``operator:advance`` spans;
* a one-paragraph **diagnosis** naming the dominant bottleneck.

The engine is pure post-processing: it never touches the probe hot path,
so the <2% disabled-overhead bound is unaffected.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Span-name prefix (the part before ``:``, or the whole name) → layer.
#: Unlisted prefixes fall into ``other`` so foreign traces still sum.
LAYER_OF_PREFIX: Dict[str, str] = {
    "graph": "graph",
    "frontier": "frontier",
    "operator": "operator",
    # linalg kernels (spmv/spmspv) are the matrix backend's operator
    # layer — same attribution slot as advance/filter.
    "linalg": "operator",
    "superstep": "loop",
    "bucket": "loop",
    "async": "loop",
    "scheduler": "loop",
    "pool": "loop",
    "mailbox": "comm",
    "pregel": "comm",
    "proc": "comm",
    "checkpoint": "resilience",
    "retry": "resilience",
    "fault": "resilience",
    "service": "service",
}

#: The layers the report always enumerates (stable ordering for output).
LAYERS = ("graph", "frontier", "operator", "loop", "comm", "resilience",
          "service", "other")

#: Span names that mark one loop iteration (a frontier-timeline row).
_SUPERSTEP_NAMES = ("superstep", "bucket")


def layer_of(name: str) -> str:
    """The framework layer a span name belongs to."""
    prefix = name.split(":", 1)[0]
    return LAYER_OF_PREFIX.get(prefix, "other")


# -- normalized span records -----------------------------------------------------------


@dataclass
class SpanNode:
    """One span, normalized from any telemetry source, with tree links."""

    span_id: int
    name: str
    start: float
    duration: float
    parent_id: Optional[int]
    thread_id: int
    thread_name: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def self_time(self) -> float:
        """Duration not covered by children (clamped at zero)."""
        covered = sum(c.duration for c in self.children)
        return max(0.0, self.duration - covered)


def nodes_from_probe(probe) -> List[SpanNode]:
    """Normalize a live probe's completed spans."""
    if not getattr(probe, "trace", False):
        return []
    out = []
    for s in probe.tracer.spans():
        out.append(
            SpanNode(
                span_id=s.span_id,
                name=s.name,
                start=s.start,
                duration=s.duration,
                parent_id=s.parent_id,
                thread_id=s.thread_id,
                thread_name=s.thread_name,
                attrs=dict(s.attrs),
                events=[e.to_dict() for e in s.events] if s.events else [],
            )
        )
    return out


def nodes_from_events_jsonl(lines: Iterable[str]) -> List[SpanNode]:
    """Normalize the span records of a JSONL event log."""
    out = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") != "span":
            continue
        out.append(
            SpanNode(
                span_id=int(record["id"]),
                name=record["name"],
                start=float(record["ts"]),
                duration=float(record["dur"]),
                parent_id=record.get("parent"),
                thread_id=int(record.get("thread_id", 0)),
                thread_name=record.get("thread_name", ""),
                attrs=dict(record.get("attrs", {})),
                events=list(record.get("events", [])),
            )
        )
    return out


def nodes_from_span_dicts(records: Iterable[Dict[str, Any]]) -> List[SpanNode]:
    """Normalize ``Span.to_dict``-shaped records (ledger-embedded traces,
    incident files) — the same field names the JSONL event log uses,
    minus the requirement that they arrive as serialized lines."""
    out = []
    for record in records:
        if not isinstance(record, dict) or "id" not in record:
            continue
        out.append(
            SpanNode(
                span_id=int(record["id"]),
                name=record.get("name", ""),
                start=float(record.get("ts", 0.0)),
                duration=float(record.get("dur") or 0.0),
                parent_id=record.get("parent"),
                thread_id=int(record.get("thread_id", 0)),
                thread_name=record.get("thread_name", ""),
                attrs=dict(record.get("attrs", {})),
                events=list(record.get("events") or []),
            )
        )
    return out


def metrics_from_events_jsonl(lines: Iterable[str]) -> Dict[str, Any]:
    """The metrics snapshot line of a JSONL event log (empty if absent)."""
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "metrics":
            return dict(record.get("values", {}))
    return {}


def nodes_from_chrome_trace(obj: Dict[str, Any]) -> List[SpanNode]:
    """Normalize a Chrome trace object, rebuilding parents by containment.

    The Trace Event Format has no parent ids; within each track the
    complete (``"X"``) events nest by time containment, so a per-tid
    stack sweep recovers the tree exactly for traces our exporter wrote.
    """
    completes = [
        ev
        for ev in obj.get("traceEvents", [])
        if ev.get("ph") == "X"
    ]
    # Parent spans share their child's start timestamp when the child
    # opened immediately; sorting longer-first at equal ts keeps the
    # parent below the child on the stack.
    completes.sort(key=lambda ev: (ev["ts"], -ev.get("dur", 0.0)))
    nodes: List[SpanNode] = []
    stacks: Dict[int, List[SpanNode]] = defaultdict(list)
    for i, ev in enumerate(completes):
        start = float(ev["ts"]) / 1e6
        dur = float(ev.get("dur", 0.0)) / 1e6
        tid = int(ev.get("tid", 0))
        node = SpanNode(
            span_id=i,
            name=ev.get("name", ""),
            start=start,
            duration=dur,
            parent_id=None,
            thread_id=tid,
            thread_name=str(tid),
            attrs=dict(ev.get("args", {})),
        )
        stack = stacks[tid]
        eps = 1e-9
        while stack and stack[-1].end <= start + eps:
            stack.pop()
        if stack:
            node.parent_id = stack[-1].span_id
        stack.append(node)
        nodes.append(node)
    return nodes


def load_trace_file(path: str) -> tuple:
    """Load ``(nodes, metrics)`` from a trace file.

    ``*.jsonl`` is read as an event log (spans + metrics line); anything
    else as a Chrome trace (no metrics snapshot).
    """
    with open(path, "r", encoding="utf-8") as fh:
        if path.endswith(".jsonl"):
            lines = fh.readlines()
            return nodes_from_events_jsonl(lines), metrics_from_events_jsonl(
                lines
            )
        return nodes_from_chrome_trace(json.load(fh)), {}


# -- tree ------------------------------------------------------------------------------


def build_tree(nodes: Sequence[SpanNode]) -> List[SpanNode]:
    """Link children (in start order) and return root spans in start order.

    Children reference parents by id; ids missing from the input (e.g.
    a parent dropped at the buffer cap) orphan the child into a root.
    """
    by_id = {n.span_id: n for n in nodes}
    for n in nodes:
        n.children = []
    roots: List[SpanNode] = []
    for n in nodes:
        parent = by_id.get(n.parent_id) if n.parent_id is not None else None
        if parent is not None and parent is not n:
            parent.children.append(n)
        else:
            roots.append(n)
    for n in nodes:
        n.children.sort(key=lambda c: c.start)
    roots.sort(key=lambda r: r.start)
    return roots


# -- report ----------------------------------------------------------------------------


@dataclass
class WorkerLoad:
    """Busy time and task count of one worker."""

    worker: Any
    tasks: int
    busy_seconds: float
    steals: int = 0


@dataclass
class CriticalPathEntry:
    """Aggregated contribution of one span name along the critical path."""

    name: str
    count: int
    seconds: float
    share: float  # of wall time


@dataclass
class SuperstepRow:
    """One frontier-timeline row (a superstep or a priority bucket)."""

    index: int
    iteration: Any
    seconds: float
    frontier_size: Optional[int] = None
    output_size: Optional[int] = None
    edges_expanded: Optional[int] = None
    density: Optional[float] = None
    direction: Optional[str] = None
    fused: Optional[bool] = None
    representation: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form; ``None`` fields are omitted."""
        return {k: v for k, v in self.__dict__.items() if v is not None}


@dataclass
class AnalysisReport:
    """Everything the engine derived from one run's spans."""

    wall_seconds: float
    layers: Dict[str, float]
    untraced_seconds: float
    critical_path: List[CriticalPathEntry]
    critical_path_seconds: float
    workers: List[WorkerLoad]
    imbalance_factor: float
    supersteps: List[SuperstepRow]
    direction_flips: int
    span_count: int
    n_vertices: Optional[int] = None

    # -- derived -----------------------------------------------------------------------

    @property
    def attributed_seconds(self) -> float:
        return sum(self.layers.values())

    @property
    def coverage(self) -> float:
        """Attributed share of wall time (1.0 when fully covered)."""
        if self.wall_seconds <= 0:
            return 1.0
        return min(1.0, self.attributed_seconds / self.wall_seconds)

    @property
    def share_denominator(self) -> float:
        """What layer shares divide by.

        Wall time for serial traces; for parallel traces the attributed
        total exceeds wall (worker threads burn CPU-seconds
        concurrently), so the larger of the two keeps shares <= 100%
        and summing to one.
        """
        return max(self.wall_seconds, self.attributed_seconds)

    def bottleneck_layer(self) -> str:
        """The layer with the largest attributed time."""
        if not self.layers:
            return "loop"
        return max(self.layers.items(), key=lambda kv: kv[1])[0]

    def diagnosis(self) -> str:
        """A short human summary naming the dominant bottleneck."""
        if self.span_count == 0 or self.wall_seconds <= 0:
            return "no spans recorded; nothing to diagnose"
        wall = self.wall_seconds
        denom = self.share_denominator
        layer = self.bottleneck_layer()
        share = self.layers.get(layer, 0.0) / denom if denom else 0.0
        parts = [f"dominant layer: {layer} ({share:.1%} of attributed time)"]
        top = self._heaviest_name_in_layer(layer)
        if top is not None:
            name, seconds = top
            parts.append(f"led by {name} ({seconds / denom:.1%})")
        if len(self.workers) >= 2:
            if self.imbalance_factor > 1.25:
                worst = max(self.workers, key=lambda w: w.busy_seconds)
                parts.append(
                    f"load imbalance {self.imbalance_factor:.2f}x "
                    f"(worker {worst.worker} busiest)"
                )
            else:
                parts.append(
                    f"load balanced ({self.imbalance_factor:.2f}x across "
                    f"{len(self.workers)} workers)"
                )
        if self.supersteps:
            peak = max(
                self.supersteps,
                key=lambda r: r.frontier_size or 0,
            )
            frontier = f"frontier peaked at {peak.frontier_size}"
            if peak.density is not None:
                frontier += f" ({peak.density:.1%} dense)"
            frontier += f" in superstep {peak.iteration}"
            parts.append(frontier)
        if self.direction_flips:
            parts.append(f"{self.direction_flips} direction flip(s)")
        if self.untraced_seconds > 0.25 * wall:
            parts.append(
                f"note: {self.untraced_seconds / wall:.1%} of wall time is "
                f"enactor bookkeeping between spans (attributed to loop)"
            )
        return "; ".join(parts)

    def _heaviest_name_in_layer(self, layer: str):
        best = None
        for name, seconds in self._by_name.items():
            if layer_of(name) != layer:
                continue
            if best is None or seconds > best[1]:
                best = (name, seconds)
        return best

    # Populated by analyze_spans (per-name self time); not part of the
    # dataclass signature to keep to_dict stable.
    _by_name: Dict[str, float] = field(default_factory=dict, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (what the ledger stores)."""
        return {
            "wall_seconds": self.wall_seconds,
            "layers": {k: v for k, v in self.layers.items()},
            "untraced_seconds": self.untraced_seconds,
            "coverage": self.coverage,
            "bottleneck_layer": self.bottleneck_layer(),
            "critical_path": [
                {
                    "name": e.name,
                    "count": e.count,
                    "seconds": e.seconds,
                    "share": e.share,
                }
                for e in self.critical_path
            ],
            "critical_path_seconds": self.critical_path_seconds,
            "workers": [
                {
                    "worker": w.worker,
                    "tasks": w.tasks,
                    "busy_seconds": w.busy_seconds,
                    "steals": w.steals,
                }
                for w in self.workers
            ],
            "imbalance_factor": self.imbalance_factor,
            "supersteps": [r.to_dict() for r in self.supersteps],
            "direction_flips": self.direction_flips,
            "span_count": self.span_count,
            "diagnosis": self.diagnosis(),
        }

    # -- rendering ---------------------------------------------------------------------

    def render(self, *, max_timeline_rows: int = 24) -> str:
        """The ``repro explain`` text: attribution, critical path,
        workers, frontier timeline, diagnosis."""
        out: List[str] = []
        wall = self.wall_seconds
        out.append(
            f"wall time {wall * 1e3:.3f} ms over {self.span_count} spans "
            f"(attribution covers {self.coverage:.1%})"
        )
        out.append("")
        denom = self.share_denominator
        out.append("per-layer attribution")
        out.append(f"  {'layer':<12} {'time':>12} {'share':>8}")
        for layer in LAYERS:
            seconds = self.layers.get(layer, 0.0)
            if seconds == 0.0 and layer not in ("loop", "operator"):
                continue
            share = seconds / denom if denom > 0 else 0.0
            out.append(f"  {layer:<12} {seconds * 1e3:>9.3f} ms {share:>7.1%}")
        if self.attributed_seconds > wall * 1.001:
            out.append(
                f"  (parallel run: {self.attributed_seconds * 1e3:.3f} ms of "
                f"CPU time attributed across threads, shares divide by it)"
            )
        if self.untraced_seconds > 0:
            out.append(
                f"  (loop includes {self.untraced_seconds * 1e3:.3f} ms of "
                f"untraced enactor bookkeeping)"
            )
        out.append("")
        out.append(
            f"critical path ({self.critical_path_seconds * 1e3:.3f} ms, "
            f"{(self.critical_path_seconds / wall if wall else 0):.1%} of wall)"
        )
        for entry in self.critical_path:
            out.append(
                f"  {entry.name:<28} x{entry.count:<6} "
                f"{entry.seconds * 1e3:>9.3f} ms {entry.share:>7.1%}"
            )
        out.append("")
        if self.workers:
            out.append(
                f"workers (imbalance factor {self.imbalance_factor:.2f}x)"
            )
            out.append(
                f"  {'worker':<8} {'tasks':>7} {'busy':>12} {'steals':>7}"
            )
            for w in sorted(self.workers, key=lambda w: str(w.worker)):
                out.append(
                    f"  {str(w.worker):<8} {w.tasks:>7} "
                    f"{w.busy_seconds * 1e3:>9.3f} ms {w.steals:>7}"
                )
        else:
            out.append("workers: single-threaded (no scheduler/pool spans)")
        out.append("")
        if self.supersteps:
            out.append(f"frontier timeline ({len(self.supersteps)} supersteps)")
            out.append(
                f"  {'step':>5} {'frontier':>9} {'out':>9} {'edges':>9} "
                f"{'dens':>6} {'dir':<5} {'fused':<5} {'repr':<7} {'ms':>8}"
            )
            rows = self.supersteps
            shown = rows
            if len(rows) > max_timeline_rows:
                half = max_timeline_rows // 2
                shown = rows[:half] + rows[-half:]
            previous_index = None
            for row in shown:
                if previous_index is not None and row.index != previous_index + 1:
                    out.append(f"  ... ({len(rows) - len(shown)} rows elided)")
                previous_index = row.index
                dens = f"{row.density:.1%}" if row.density is not None else "-"
                out.append(
                    f"  {row.iteration!s:>5} "
                    f"{row.frontier_size if row.frontier_size is not None else '-':>9} "
                    f"{row.output_size if row.output_size is not None else '-':>9} "
                    f"{row.edges_expanded if row.edges_expanded is not None else '-':>9} "
                    f"{dens:>6} {row.direction or '-':<5} "
                    f"{('yes' if row.fused else 'no') if row.fused is not None else '-':<5} "
                    f"{row.representation or '-':<7} "
                    f"{row.seconds * 1e3:>8.3f}"
                )
            if self.direction_flips:
                out.append(f"  direction flips: {self.direction_flips}")
        out.append("")
        out.append(f"diagnosis: {self.diagnosis()}")
        return "\n".join(out)


# -- engine ----------------------------------------------------------------------------


def _walk(node: SpanNode):
    yield node
    for child in node.children:
        yield from _walk(child)


def _critical_chain(node: SpanNode):
    """The heaviest chain from ``node`` down: the node itself, then the
    chain through its longest child."""
    yield node
    if node.children:
        heaviest = max(node.children, key=lambda c: c.duration)
        yield from _critical_chain(heaviest)


def analyze_spans(
    nodes: Sequence[SpanNode],
    *,
    n_vertices: Optional[int] = None,
) -> AnalysisReport:
    """Run the full analysis over normalized span records."""
    if not nodes:
        return AnalysisReport(
            wall_seconds=0.0,
            layers={},
            untraced_seconds=0.0,
            critical_path=[],
            critical_path_seconds=0.0,
            workers=[],
            imbalance_factor=1.0,
            supersteps=[],
            direction_flips=0,
            span_count=0,
            n_vertices=n_vertices,
        )
    roots = build_tree(nodes)
    wall = max(n.end for n in nodes) - min(n.start for n in nodes)

    # The driver thread owns the run's loop structure: the thread whose
    # root spans cover the most time (ties to the earliest root).
    root_cover: Dict[int, float] = defaultdict(float)
    for r in roots:
        root_cover[r.thread_id] += r.duration
    driver_thread = max(
        root_cover, key=lambda t: (root_cover[t], -min(
            r.start for r in roots if r.thread_id == t
        ))
    )
    driver_roots = [r for r in roots if r.thread_id == driver_thread]

    # Per-layer self-time attribution (exact: sums to total span time).
    layers: Dict[str, float] = {layer: 0.0 for layer in LAYERS}
    by_name: Dict[str, float] = defaultdict(float)
    for n in nodes:
        self_time = n.self_time
        layers[layer_of(n.name)] += self_time
        by_name[n.name] += self_time
    # Driver-thread time between top-level spans is the enactor's own
    # bookkeeping (stats, convergence checks): attribute it to the loop
    # layer, but keep the amount visible.
    driver_window = (
        max(r.end for r in driver_roots) - min(r.start for r in driver_roots)
        if driver_roots
        else 0.0
    )
    driver_covered = sum(r.duration for r in driver_roots)
    untraced = max(0.0, driver_window - driver_covered)
    # Edge-to-edge slack outside the driver window (other threads
    # starting earlier/ending later) stays unattributed.
    layers["loop"] += untraced
    layers = {k: v for k, v in layers.items() if v > 0 or k in ("loop",)}

    # Critical path: driver-thread top-level spans are serial segments;
    # inside each, descend into the heaviest child.
    path_totals: Dict[str, List[float]] = defaultdict(lambda: [0, 0.0])
    path_seconds = 0.0
    for root in driver_roots:
        for node in _critical_chain(root):
            entry = path_totals[node.name]
            entry[0] += 1
            entry[1] += node.self_time
            path_seconds += node.self_time
    critical_path = [
        CriticalPathEntry(
            name=name,
            count=int(count),
            seconds=seconds,
            share=seconds / wall if wall > 0 else 0.0,
        )
        for name, (count, seconds) in sorted(
            path_totals.items(), key=lambda kv: -kv[1][1]
        )
    ]

    # Worker load from scheduler/pool task spans.
    busy: Dict[Any, WorkerLoad] = {}
    for n in nodes:
        if n.name not in ("scheduler:task", "pool:task", "proc:task"):
            continue
        worker = n.attrs.get("worker")
        if worker is None:
            worker = n.thread_name or n.thread_id
        load = busy.get(worker)
        if load is None:
            load = busy[worker] = WorkerLoad(worker, 0, 0.0)
        load.tasks += 1
        load.busy_seconds += n.duration
        if n.attrs.get("stolen"):
            load.steals += 1
    workers = sorted(busy.values(), key=lambda w: str(w.worker))
    if len(workers) >= 2:
        mean = sum(w.busy_seconds for w in workers) / len(workers)
        peak = max(w.busy_seconds for w in workers)
        imbalance = peak / mean if mean > 0 else 1.0
    else:
        imbalance = 1.0

    # Frontier timeline from superstep/bucket spans, joined with the
    # adaptive-dispatch attributes on their operator:advance children.
    supersteps: List[SuperstepRow] = []
    flips = 0
    previous_direction = None
    step_spans = [
        n
        for n in nodes
        if n.name in _SUPERSTEP_NAMES and n.thread_id == driver_thread
    ]
    step_spans.sort(key=lambda n: n.start)
    for i, n in enumerate(step_spans):
        attrs = n.attrs
        row = SuperstepRow(
            index=i,
            iteration=attrs.get("iteration", attrs.get("bucket", i)),
            seconds=n.duration,
            frontier_size=attrs.get("frontier_size"),
            output_size=attrs.get("output_frontier_size"),
            edges_expanded=attrs.get("edges_expanded"),
        )
        if n_vertices and row.frontier_size is not None:
            row.density = row.frontier_size / n_vertices
        advance = next(
            (c for c in _walk(n) if c.name == "operator:advance"), None
        )
        if advance is not None:
            row.direction = advance.attrs.get("direction")
            row.fused = advance.attrs.get("fused")
            row.representation = advance.attrs.get("representation")
            if row.output_size is None:
                row.output_size = advance.attrs.get("output_size")
            if row.direction is not None:
                if (
                    previous_direction is not None
                    and row.direction != previous_direction
                ):
                    flips += 1
                previous_direction = row.direction
        supersteps.append(row)

    report = AnalysisReport(
        wall_seconds=wall,
        layers=layers,
        untraced_seconds=untraced,
        critical_path=critical_path,
        critical_path_seconds=path_seconds,
        workers=workers,
        imbalance_factor=imbalance,
        supersteps=supersteps,
        direction_flips=flips,
        span_count=len(nodes),
        n_vertices=n_vertices,
    )
    report._by_name = dict(by_name)
    return report


def analyze_probe(probe, *, n_vertices: Optional[int] = None) -> AnalysisReport:
    """Analyze a live probe's spans (``n_vertices`` read from the
    ``profile.n_vertices`` gauge when not given)."""
    if n_vertices is None and getattr(probe, "enabled", False):
        snapshot = probe.metrics.as_dict()
        value = snapshot.get("profile.n_vertices")
        if isinstance(value, (int, float)) and value > 0:
            n_vertices = int(value)
    return analyze_spans(nodes_from_probe(probe), n_vertices=n_vertices)


def analyze_file(path: str) -> AnalysisReport:
    """Analyze an exported trace file (Chrome ``*.json`` or ``*.jsonl``)."""
    nodes, metrics = load_trace_file(path)
    n_vertices = None
    value = metrics.get("profile.n_vertices")
    if isinstance(value, (int, float)) and value > 0:
        n_vertices = int(value)
    return analyze_spans(nodes, n_vertices=n_vertices)


# -- span-tree rendering ---------------------------------------------------------------

#: Attributes worth showing inline on a rendered span line.
_TREE_ATTR_LIMIT = 6


def render_span_tree(
    nodes: Sequence[SpanNode], *, max_lines: int = 200
) -> str:
    """One query's span tree as indented text (``repro explain <qid>``).

    Each line shows the span name, duration, and its most useful
    attributes; span events render as ``@`` marks under their span.
    Output is bounded: past ``max_lines`` the tree is cut with a visible
    elision count (an explain of a pathological query must not scroll
    the incident off the terminal).
    """
    roots = build_tree(nodes)
    lines: List[str] = []
    elided = 0

    def emit(node: SpanNode, depth: int) -> None:
        nonlocal elided
        if len(lines) >= max_lines:
            elided += 1 + _count(node)
            return
        indent = "  " * depth
        attrs = {
            k: v
            for k, v in node.attrs.items()
            if v is not None and k != "trace_id"
        }
        shown = list(attrs.items())[:_TREE_ATTR_LIMIT]
        attr_text = " ".join(f"{k}={v}" for k, v in shown)
        if len(attrs) > _TREE_ATTR_LIMIT:
            attr_text += f" (+{len(attrs) - _TREE_ATTR_LIMIT} more)"
        lines.append(
            f"{indent}{node.name:<{max(1, 30 - len(indent))}} "
            f"{node.duration * 1e3:>9.3f} ms"
            + (f"  {attr_text}" if attr_text else "")
        )
        for ev in node.events:
            if len(lines) >= max_lines:
                elided += 1
                continue
            ev_attrs = " ".join(
                f"{k}={v}" for k, v in (ev.get("attrs") or {}).items()
            )
            lines.append(
                f"{indent}  @ {ev.get('name', '?')}"
                + (f"  {ev_attrs}" if ev_attrs else "")
            )
        for child in node.children:
            emit(child, depth + 1)

    def _count(node: SpanNode) -> int:
        return sum(1 + _count(c) for c in node.children)

    for root in roots:
        emit(root, 0)
    if elided:
        lines.append(f"... ({elided} more lines elided)")
    return "\n".join(lines) if lines else "(no spans)"
