"""The incident flight recorder — evidence that survives degraded queries.

Always-on full tracing is too expensive for a long-running service, but
"the query timed out and nothing explains why" is the operational
failure mode the ROADMAP's service north-star cannot tolerate.  The
flight recorder splits the difference like its aviation namesake: a
bounded ring buffer of recent service events is always running, and the
moment a query ends badly (408/500/504), a breaker trips OPEN, or a
worker process has to be respawned, the recorder dumps the ring plus
the triggering query's own spans to ``.repro/incidents/<id>.jsonl`` —
a small, self-contained artifact for every degraded response.

File layout (one JSON object per line):

* line 1 — ``{"type": "incident", "schema": ..., "id", "reason",
  "trace_id", "created_at", ...detail}`` header;
* ``{"type": "ring", ...}`` — recent service events, oldest first;
* ``{"type": "span", ...}`` — the triggering query's span tree in
  ``Span.to_dict`` shape (what ``repro explain`` reconstructs).

:func:`validate_incident_jsonl` checks that layout and sits beside the
Chrome-trace and Prometheus validators in
:mod:`repro.observability.validate`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

#: Schema tag stamped into the incident header line.
INCIDENT_SCHEMA = "repro-incident/v1"

#: Where incident files land, relative to the working directory.
DEFAULT_INCIDENTS_DIR = os.path.join(".repro", "incidents")

#: Default ring capacity — enough to cover the requests *around* an
#: incident without the recorder itself becoming a memory liability.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Bounded ring of recent events, dumped to disk on incidents.

    Parameters
    ----------
    root:
        Directory for incident files (created lazily on first dump);
        defaults to :data:`DEFAULT_INCIDENTS_DIR`.
    capacity:
        Ring size in events; the oldest events fall off first.
    """

    def __init__(
        self, root: Optional[str] = None, *, capacity: int = DEFAULT_CAPACITY
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.root = root if root is not None else DEFAULT_INCIDENTS_DIR
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        #: Lifetime counts, exposed on the metrics snapshot.
        self.recorded = 0
        self.dumped = 0

    # -- the always-on ring ------------------------------------------------------------

    def record(self, kind: str, **attrs: Any) -> None:
        """Append one event to the ring (cheap: dict build + deque append)."""
        event = {"type": "ring", "kind": kind, "at": time.time()}
        event.update(attrs)
        with self._lock:
            self._ring.append(event)
            self.recorded += 1

    def snapshot(self) -> List[Dict[str, Any]]:
        """Copy of the ring, oldest event first."""
        with self._lock:
            return list(self._ring)

    # -- incident dumps ----------------------------------------------------------------

    def incident(
        self,
        reason: str,
        *,
        trace_id: Optional[str] = None,
        spans: Iterable[Dict[str, Any]] = (),
        **detail: Any,
    ) -> str:
        """Dump the ring plus ``spans`` to a new incident file.

        ``spans`` are ``Span.to_dict``-shaped records for the triggering
        query.  Returns the incident file path.  Dump failures are the
        caller's problem to swallow — the recorder never buffers an
        incident it could not write.
        """
        with self._lock:
            seq = next(self._ids)
            ring = list(self._ring)
            self.dumped += 1
        incident_id = f"inc-{os.getpid()}-{seq:04d}"
        header: Dict[str, Any] = {
            "type": "incident",
            "schema": INCIDENT_SCHEMA,
            "id": incident_id,
            "reason": reason,
            "trace_id": trace_id,
            "created_at": time.time(),
        }
        header.update(detail)
        os.makedirs(self.root, exist_ok=True)
        path = os.path.join(self.root, f"{incident_id}.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            for event in ring:
                fh.write(json.dumps(event) + "\n")
            for span in spans:
                record = dict(span)
                record["type"] = "span"
                fh.write(json.dumps(record) + "\n")
        return path

    def stats(self) -> Dict[str, Any]:
        """Lifetime counters plus the configured dump directory."""
        with self._lock:
            return {
                "recorded": self.recorded,
                "dumped": self.dumped,
                "ring": len(self._ring),
                "capacity": self.capacity,
                "dir": self.root,
            }


def validate_incident_jsonl(lines: Iterable[str]) -> List[str]:
    """Schema-check an incident file given as an iterable of lines."""
    problems: List[str] = []
    saw_header = False
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        where = f"line {i + 1}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{where}: invalid JSON ({exc})")
            continue
        kind = record.get("type")
        if i == 0:
            if kind != "incident":
                problems.append(f"{where}: first line must be the header")
                continue
            saw_header = True
            if record.get("schema") != INCIDENT_SCHEMA:
                problems.append(
                    f"{where}: schema {record.get('schema')!r} != "
                    f"{INCIDENT_SCHEMA!r}"
                )
            for key in ("id", "reason", "created_at"):
                if key not in record:
                    problems.append(f"{where}: header missing {key!r}")
        elif kind == "ring":
            for key in ("kind", "at"):
                if key not in record:
                    problems.append(f"{where}: ring event missing {key!r}")
        elif kind == "span":
            for key in ("id", "name", "ts", "attrs"):
                if key not in record:
                    problems.append(f"{where}: span missing {key!r}")
        elif kind == "incident":
            problems.append(f"{where}: duplicate header")
        else:
            problems.append(f"{where}: unknown record type {kind!r}")
    if not saw_header:
        problems.append("no incident header line")
    return problems
