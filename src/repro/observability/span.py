"""Span and span-event records — the tracing vocabulary.

A *span* is one timed, named region of a run (a superstep, an operator
call, a scheduler task, a checkpoint save, ...) carrying structured
attributes (frontier size, edges expanded, bucket id, worker id).  Spans
nest: each records the id of the span that was open on the same thread
when it started, which is how a Chrome trace reconstructs the stack per
worker track.

Span *events* are zero-duration points attached to a span — a fault
injected mid-superstep, a retry attempt, a steal — the marks Perfetto
renders as instants on the span's track.

Span categories follow a ``layer:detail`` naming scheme so traces map
straight onto the paper's essential components:

===================== =============================================
span name              essential component
===================== =============================================
``superstep``          4 — iterative loop structure
``bucket``             4 — loop structure (priority ordering)
``operator:advance``   3 — operators (traversal)
``operator:filter``    3 — operators (contraction)
``operator:reduce``    5 — convergence conditions
``scheduler:task``     4 — loop structure, asynchronous timing
``pool:task``          3/4 — BSP parallel region
``mailbox:send``       2 — frontier communication (messages)
``mailbox:deliver``    2 — frontier communication (messages)
``checkpoint:save``    resilience riding component 4
===================== =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(slots=True)
class SpanEvent:
    """A zero-duration mark inside a span (fault, retry, steal, ...)."""

    name: str
    timestamp: float  # seconds on the tracer's perf_counter clock
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form used by the exporters."""
        return {
            "name": self.name,
            "ts": self.timestamp,
            "attrs": dict(self.attrs),
        }


@dataclass(slots=True)
class Span:
    """One timed region of a run.

    ``start``/``end`` are seconds on the owning tracer's monotonic clock
    (``time.perf_counter`` offsets from the tracer epoch, so spans from
    different threads share a timeline).  ``end`` is ``None`` while the
    span is still open.

    Slotted, with the ``events`` list allocated lazily: a run opens two
    spans per superstep, so each span is three allocations (span, attrs
    dict, context handle) instead of five — measurable at superstep
    granularity.
    """

    span_id: int
    name: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    thread_id: int = 0
    thread_name: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: ``None`` until the first event lands (most spans have none).
    events: Optional[List[SpanEvent]] = None

    def set(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one attribute; chainable.

        Usable while the span is open — the idiom for attributes only
        known at exit (edges expanded, output frontier size).
        """
        self.attrs[key] = value
        return self

    def add_event(self, event: SpanEvent) -> None:
        """Append a zero-duration mark to this span."""
        if self.events is None:
            self.events = []
        self.events.append(event)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form used by the JSONL exporter."""
        return {
            "type": "span",
            "id": self.span_id,
            "name": self.name,
            "ts": self.start,
            "dur": self.duration,
            "parent": self.parent_id,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "attrs": dict(self.attrs),
            "events": [e.to_dict() for e in self.events] if self.events else [],
        }
