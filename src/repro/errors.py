"""Exception hierarchy for the framework.

All library-raised exceptions derive from :class:`GraphAnalyticsError` so
callers can catch framework failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class GraphAnalyticsError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class GraphFormatError(GraphAnalyticsError):
    """A graph representation is structurally invalid (bad offsets, out of
    range column indices, mismatched array lengths, ...)."""


class GraphViewError(GraphAnalyticsError):
    """A graph view (CSR/CSC/COO/...) required by an operation is missing
    and cannot be derived, or an unknown view name was requested."""


class FrontierError(GraphAnalyticsError):
    """Invalid frontier operation (e.g. vertex out of range, popping from a
    drained queue frontier, mixing vertex and edge frontiers)."""


class ExecutionPolicyError(GraphAnalyticsError):
    """An operator was invoked with an execution policy it does not
    support, or an unknown policy object."""


class ConvergenceError(GraphAnalyticsError):
    """An iterative loop failed to converge within its iteration budget."""


class PartitionError(GraphAnalyticsError):
    """Invalid partitioning request or malformed partition assignment."""


class CommunicationError(GraphAnalyticsError):
    """Misuse of the message-passing substrate (unknown destination rank,
    sending after channels are closed, ...)."""


class GraphIOError(GraphAnalyticsError):
    """A graph file could not be parsed."""
